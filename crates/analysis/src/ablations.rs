//! Ablation experiments for the reproduction's own design choices
//! (DESIGN.md §2): the tree-specialized delta engines versus the generic
//! apply-and-BFS engine, and the restricted coalition refuter versus the
//! exact k-BSE checker. Each ablation reports both *agreement* (the
//! correctness claim, asserted) and *work saved* (the reason the design
//! exists).

use crate::report::{fnum, Report};
use bncg_core::{
    agent_cost, agent_cost_from_matrix, concepts, delta, Alpha, CostModelSpec, GameError,
    GameState, Move,
};
use bncg_graph::{generators, DistanceMatrix};
use std::time::Instant;

/// Ablation 1: fast distance-matrix add/swap evaluation vs. the generic
/// engine — exact agreement on every candidate, with measured speedup.
///
/// # Errors
///
/// Forwards move-application errors (none expected).
pub fn delta_engines(report: &mut Report, quick: bool) -> Result<(), GameError> {
    let ns: Vec<usize> = if quick {
        vec![60, 120]
    } else {
        vec![60, 120, 240]
    };
    let section = report.section("Ablation: fast delta engines vs generic apply+BFS");
    section.note("every candidate move evaluated by both engines; agreement asserted; time per full BAE+BSwE scan");
    let table = section.table([
        "n",
        "candidates",
        "fast scan (ms)",
        "generic scan (ms)",
        "speedup",
    ]);
    let alpha = Alpha::integer(50).expect("α");
    for n in ns {
        let mut rng = bncg_graph::test_rng(n as u64);
        let tree = generators::random_tree(n, &mut rng);
        let d = DistanceMatrix::new(&tree);
        let old: Vec<_> = (0..n as u32).map(|u| agent_cost(&tree, u)).collect();

        // Collect the candidate space once.
        let adds: Vec<(u32, u32)> = tree.non_edges().collect();
        let mut swaps: Vec<(u32, u32, u32)> = Vec::new();
        for u in 0..n as u32 {
            for &v in tree.neighbors(u) {
                for w in 0..n as u32 {
                    if w != u && !tree.has_edge(u, w) {
                        swaps.push((u, v, w));
                    }
                }
            }
        }
        let candidates = adds.len() * 2 + swaps.len();

        // Fast engine pass.
        let t0 = Instant::now();
        let mut fast_improving = 0usize;
        for &(u, v) in &adds {
            if delta::cost_after_add(&tree, &d, u, v).better_than(&old[u as usize], alpha)
                && delta::cost_after_add(&tree, &d, v, u).better_than(&old[v as usize], alpha)
            {
                fast_improving += 1;
            }
        }
        for &(u, v, w) in &swaps {
            if let Some((cu, cw)) = delta::tree_swap_costs(&tree, &d, u, v, w) {
                if cu.better_than(&old[u as usize], alpha)
                    && cw.better_than(&old[w as usize], alpha)
                {
                    fast_improving += 1;
                }
            }
        }
        let fast_ms = t0.elapsed().as_secs_f64() * 1e3;

        // Generic engine pass.
        let t1 = Instant::now();
        let mut generic_improving = 0usize;
        for &(u, v) in &adds {
            if delta::move_improves_all_cached(&tree, alpha, &Move::BilateralAdd { u, v }, &old)? {
                generic_improving += 1;
            }
        }
        for &(u, v, w) in &swaps {
            let mv = Move::Swap {
                agent: u,
                old: v,
                new: w,
            };
            if delta::move_improves_all_cached(&tree, alpha, &mv, &old)? {
                generic_improving += 1;
            }
        }
        let generic_ms = t1.elapsed().as_secs_f64() * 1e3;

        assert_eq!(
            fast_improving, generic_improving,
            "delta engines disagree at n = {n}"
        );
        table.row([
            n.to_string(),
            candidates.to_string(),
            fnum(fast_ms),
            fnum(generic_ms),
            fnum(generic_ms / fast_ms.max(1e-9)),
        ]);
    }
    Ok(())
}

/// Ablation 2: restricted k-BSE refuter (≤ r removals) vs. the exact
/// checker — verdict agreement rate on an exhaustive corpus, per removal
/// budget.
///
/// # Errors
///
/// Forwards enumeration/checker guards.
pub fn kbse_restriction(report: &mut Report, quick: bool) -> Result<(), GameError> {
    let n = if quick { 6 } else { 7 };
    let corpus = if n <= 6 {
        bncg_graph::enumerate::connected_graphs(n).map_err(GameError::Graph)?
    } else {
        bncg_graph::enumerate::free_trees(n).map_err(GameError::Graph)?
    };
    let alphas: Vec<Alpha> = ["1", "2", "4", "8"]
        .iter()
        .map(|s| s.parse().expect("α"))
        .collect();
    let section = report.section(format!(
        "Ablation: restricted k-BSE refuter vs exact checker (corpus n = {n}, k = 3)"
    ));
    section.note("agreement = identical stable/unstable verdict; the restricted refuter may only miss violations");
    let table = section.table([
        "removal budget",
        "agreements",
        "missed violations",
        "agreement rate",
    ]);
    for max_removals in [0usize, 1, 2, 3] {
        let mut agree = 0usize;
        let mut missed = 0usize;
        let mut total = 0usize;
        for g in &corpus {
            for &alpha in &alphas {
                total += 1;
                let exact_unstable = concepts::kbse::find_violation(g, alpha, 3)?.is_some();
                let restricted_unstable =
                    concepts::kbse::find_violation_restricted(g, alpha, 3, max_removals).is_some();
                // Soundness: the refuter never invents violations.
                assert!(
                    !restricted_unstable || exact_unstable,
                    "restricted refuter produced a false violation"
                );
                if exact_unstable == restricted_unstable {
                    agree += 1;
                } else {
                    missed += 1;
                }
            }
        }
        table.row([
            max_removals.to_string(),
            format!("{agree}/{total}"),
            missed.to_string(),
            fnum(agree as f64 / total as f64),
        ]);
    }
    Ok(())
}

/// Ablation 3: serial vs. parallel restricted coalition scan on the
/// Figure 7 family (the largest coalition workload in the reproduction).
///
/// # Errors
///
/// Never fails; matches the runner signature.
pub fn parallel_scan(report: &mut Report, quick: bool) -> Result<(), GameError> {
    let rows = if quick {
        vec![8usize, 12]
    } else {
        vec![8, 12, 16]
    };
    let section =
        report.section("Ablation: serial vs parallel restricted 2-BSE scan (Figure 7 family)");
    section.note(
        "identical stable verdicts asserted; wall time for the full coalition scan (≤ 2 removals)",
    );
    let table = section.table(["i", "n", "serial (ms)", "parallel ×4 (ms)", "speedup"]);
    for i in rows {
        let fig = bncg_constructions::figures::figure7(i);
        let t0 = Instant::now();
        let serial = concepts::kbse::find_violation_restricted(&fig.graph, fig.alpha, 2, 2);
        let serial_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let parallel =
            concepts::kbse::find_violation_restricted_parallel(&fig.graph, fig.alpha, 2, 2, 4);
        let parallel_ms = t1.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            serial.is_some(),
            parallel.is_some(),
            "parallel scan verdict must match"
        );
        table.row([
            i.to_string(),
            fig.graph.n().to_string(),
            fnum(serial_ms),
            fnum(parallel_ms),
            fnum(serial_ms / parallel_ms.max(1e-9)),
        ]);
    }
    Ok(())
}

/// Ablation 4: the incremental `GameState` engine vs. the scratch path
/// that rebuilds a full distance matrix per candidate — exact agreement on
/// every candidate move, with measured speedup, plus the engine's parallel
/// batch evaluator.
///
/// # Errors
///
/// Forwards move-evaluation errors (none expected).
pub fn incremental_engine(report: &mut Report, quick: bool) -> Result<(), GameError> {
    let ns: Vec<usize> = if quick {
        vec![12, 16]
    } else {
        vec![12, 16, 24]
    };
    let section = report.section("Ablation: incremental GameState engine vs scratch recomputation");
    section.note("every single-edge candidate priced by both paths; agreement asserted; engine also shown with the parallel batch evaluator");
    let table = section.table([
        "n",
        "candidates",
        "engine (ms)",
        "engine ×4 threads (ms)",
        "scratch (ms)",
        "speedup",
    ]);
    let alpha = Alpha::integer(3).expect("α");
    for n in ns {
        let mut rng = bncg_graph::test_rng(0xEC0 + n as u64);
        let g = generators::random_connected(n, 0.2, &mut rng);
        let moves: Vec<Move> = g
            .non_edges()
            .map(|(u, v)| Move::BilateralAdd { u, v })
            .chain(g.edges().map(|(u, v)| Move::Remove {
                agent: u,
                target: v,
            }))
            .collect();
        let state = GameState::new(g.clone(), alpha);

        // Engine pass: cached matrix + consenting-agent evaluation.
        let t0 = Instant::now();
        let mut ev = state.evaluator();
        let engine_improving = moves
            .iter()
            .filter(|mv| ev.improves_all(mv).expect("valid candidate"))
            .count();
        let engine_ms = t0.elapsed().as_secs_f64() * 1e3;

        // Engine pass, batched over 4 worker threads.
        let t1 = Instant::now();
        let parallel_improving = state
            .evaluate_moves_parallel(&moves, 4)?
            .iter()
            .filter(|d| d.improving_all)
            .count();
        let parallel_ms = t1.elapsed().as_secs_f64() * 1e3;

        // Scratch pass: full matrix rebuild per candidate.
        let t2 = Instant::now();
        let mut scratch_improving = 0usize;
        for mv in &moves {
            let g2 = mv.apply(&g)?;
            let d = DistanceMatrix::new(&g2);
            if mv
                .consenting_agents()
                .iter()
                .all(|&a| agent_cost_from_matrix(&g2, &d, a).better_than(&state.cost(a), alpha))
            {
                scratch_improving += 1;
            }
        }
        let scratch_ms = t2.elapsed().as_secs_f64() * 1e3;

        assert_eq!(
            engine_improving, scratch_improving,
            "engines disagree at n = {n}"
        );
        assert_eq!(
            engine_improving, parallel_improving,
            "parallel batch disagrees at n = {n}"
        );
        table.row([
            n.to_string(),
            moves.len().to_string(),
            fnum(engine_ms),
            fnum(parallel_ms),
            fnum(scratch_ms),
            fnum(scratch_ms / engine_ms.max(1e-9)),
        ]);
    }
    Ok(())
}

/// Ablation 5: the candidate-space pruning layer vs. the raw engine-era
/// scans — verdict agreement asserted on every instance, with the skipped
/// fraction of the raw candidate space and the wall-clock effect per
/// exponential checker (the PR 2 pruning-stats section).
///
/// # Errors
///
/// Forwards checker guards (none expected at these sizes).
pub fn pruning(report: &mut Report, quick: bool) -> Result<(), GameError> {
    use bncg_core::CheckBudget;
    let n = if quick { 10 } else { 12 };
    let section = report.section("Ablation: candidate-space pruning vs raw enumeration");
    section.note("pruned checkers must return the raw scans' verdict; skipped = (pruned + deduplicated) / raw candidates; reference = the engine path without the candidates layer");
    let table = section.table([
        "instance",
        "concept",
        "stable",
        "raw candidates",
        "skipped",
        "pruned (ms)",
        "reference (ms)",
        "speedup",
    ]);
    let mut rng = bncg_graph::test_rng(0xAB1A);
    let instances: Vec<(String, bncg_graph::Graph, Alpha)> = vec![
        (
            format!("star{n}"),
            generators::star(n),
            Alpha::integer(2).expect("α"),
        ),
        (
            format!("cycle{n} (BSE window)"),
            generators::cycle(n),
            // Inside Lemma 2.4's window: n(n−2)/4 for even n.
            Alpha::from_ratio((n * (n - 2) / 4) as i64, 1).expect("α"),
        ),
        (
            format!("gnp{n}"),
            generators::random_connected(n, 0.3, &mut rng),
            Alpha::integer(1).expect("α"),
        ),
    ];
    let budget = CheckBudget::new(4_000_000_000);
    for (name, g, alpha) in instances {
        let state = GameState::new(g.clone(), alpha);
        // BNE row.
        let t0 = Instant::now();
        let (pruned, stats) = concepts::bne::find_violation_in_with_stats(&state, budget)?;
        let pruned_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let reference = concepts::bne::find_violation_in_reference(&state, budget)?;
        let reference_ms = t1.elapsed().as_secs_f64() * 1e3;
        assert_eq!(pruned, reference, "BNE pruning changed the witness");
        table.row([
            name.clone(),
            "BNE".into(),
            pruned.is_none().to_string(),
            stats.generated.to_string(),
            format!("{:.1}%", 100.0 * stats.skipped_fraction()),
            fnum(pruned_ms),
            fnum(reference_ms),
            fnum(reference_ms / pruned_ms.max(1e-9)),
        ]);
        // k-BSE row (k = 2 keeps the raw reference tractable here).
        let t2 = Instant::now();
        let (kp, kstats) = concepts::kbse::find_violation_in_with_stats(&state, 2, budget)?;
        let kp_ms = t2.elapsed().as_secs_f64() * 1e3;
        let t3 = Instant::now();
        let kr = concepts::kbse::find_violation_in_reference(&state, 2, budget)?;
        let kr_ms = t3.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            kp.is_some(),
            kr.is_some(),
            "2-BSE pruning changed the verdict"
        );
        table.row([
            name,
            "2-BSE".into(),
            kp.is_none().to_string(),
            kstats.generated.to_string(),
            format!("{:.1}%", 100.0 * kstats.skipped_fraction()),
            fnum(kp_ms),
            fnum(kr_ms),
            fnum(kr_ms / kp_ms.max(1e-9)),
        ]);
    }
    Ok(())
}

/// Ablation 6: the branch-and-bound candidate generator vs. the PR 2
/// dense mask loops — witness agreement asserted, with the fraction of
/// the raw mask space the generator actually touched (`visited`) and
/// the wall-clock effect. The last row runs a size the dense loop
/// cannot reasonably iterate (the enumeration-bound regime the
/// generator removed); its dense column is measured only when cheap.
///
/// # Errors
///
/// Forwards checker guards (none expected at these sizes).
pub fn generator(report: &mut Report, quick: bool) -> Result<(), GameError> {
    use bncg_core::CheckBudget;
    let n = if quick { 10 } else { 12 };
    let section = report.section("Ablation: branch-and-bound generator vs dense mask loops");
    section.note(
        "generated scans must return the dense loops' witness and price the identical \
         candidates; visited = generator steps (leaves emitted + subtrees skipped) / raw masks",
    );
    let table = section.table([
        "instance",
        "raw candidates",
        "evaluated",
        "visited",
        "generated (ms)",
        "dense (ms)",
        "speedup",
    ]);
    let mut rng = bncg_graph::test_rng(0xAB1B);
    let big = if quick { 24 } else { 34 };
    let instances: Vec<(String, bncg_graph::Graph, Alpha, bool)> = vec![
        (
            format!("star{n}"),
            generators::star(n),
            Alpha::integer(2).expect("α"),
            true,
        ),
        (
            format!("gnp{n}"),
            generators::random_connected(n, 0.3, &mut rng),
            Alpha::integer(1).expect("α"),
            true,
        ),
        (
            // The enumeration-bound regime: a star hub owns 2^{n−1}
            // pure-removal masks the dense loop iterates one by one and
            // the generator kills in one probe.
            format!("star{big}"),
            generators::star(big),
            Alpha::integer(2).expect("α"),
            quick,
        ),
    ];
    let budget = CheckBudget::new(u64::MAX);
    for (name, g, alpha, run_dense) in instances {
        let state = GameState::new(g.clone(), alpha);
        let t0 = Instant::now();
        let (generated, stats) = concepts::bne::find_violation_in_with_stats(&state, budget)?;
        let generated_ms = t0.elapsed().as_secs_f64() * 1e3;
        let (dense_cell, speedup_cell) = if run_dense {
            let t1 = Instant::now();
            let (dense, dstats) = concepts::bne::find_violation_in_dense(&state, budget)?;
            let dense_ms = t1.elapsed().as_secs_f64() * 1e3;
            assert_eq!(generated, dense, "generator changed the BNE witness");
            assert_eq!(
                stats.evaluated, dstats.evaluated,
                "generator priced different candidates than the dense loop"
            );
            (fnum(dense_ms), fnum(dense_ms / generated_ms.max(1e-9)))
        } else {
            ("not run".into(), "—".into())
        };
        table.row([
            name,
            stats.generated.to_string(),
            stats.evaluated.to_string(),
            format!(
                "{} ({:.4}%)",
                stats.visited,
                100.0 * stats.visited as f64 / stats.generated.max(1) as f64
            ),
            fnum(generated_ms),
            dense_cell,
            speedup_cell,
        ]);
    }
    Ok(())
}

/// Ablation 7: pruning work inside *trajectories*. Every round-robin
/// best-response activation is a generated scan, and since the metered
/// runner surfaces the verdicts' skip counters, whole dynamics runs
/// report the fraction of their scanned move space that was actually
/// visited — the per-scan numbers of Ablation 6, lifted to the
/// trajectory level.
///
/// # Errors
///
/// Forwards engine errors from the metered runner (none expected).
pub fn trajectory_pruning(report: &mut Report, quick: bool) -> Result<(), GameError> {
    use bncg_core::solver::ExecPolicy;
    use bncg_dynamics::round_robin;
    let ns: Vec<usize> = if quick { vec![10] } else { vec![10, 12] };
    let section = report.section("Ablation: pruning inside round-robin trajectories");
    section.note(
        "evals + skipped covers every best-response activation of the run; \
         visited = evals / (evals + skipped) — the scan-level fractions of \
         the generator ablation, lifted to whole trajectories",
    );
    let table = section.table(["start", "rounds", "moves", "evals", "skipped", "visited"]);
    let alpha = Alpha::integer(2).expect("α");
    let policy = ExecPolicy::default();
    for n in ns {
        let mut rng = bncg_graph::test_rng(0xAB1C + n as u64);
        let instances = [
            (format!("path{n}"), generators::path(n)),
            (format!("tree{n}"), generators::random_tree(n, &mut rng)),
        ];
        for (name, g) in instances {
            let out = round_robin::run_with_policy(&g, alpha, 200, &policy)?;
            assert!(
                !out.exhausted,
                "an unbounded policy must finish the {name} trajectory"
            );
            let scanned = out.evals + out.skipped;
            table.row([
                name,
                out.rounds.to_string(),
                out.moves.to_string(),
                out.evals.to_string(),
                out.skipped.to_string(),
                format!("{:.4}%", 100.0 * out.evals as f64 / scanned.max(1) as f64),
            ]);
        }
    }
    Ok(())
}

/// Ablation 8: the pluggable cost-model layer's soundness capability.
/// The same BNE scans run under every model; distance-linear models
/// (`sum_distances`, `generalized:id`) keep the proven candidate
/// filters and must agree verdict-for-verdict, while non-linear models
/// run filter-free (`pruned = 0`) — correct by construction, slower by
/// measurement.
///
/// # Errors
///
/// Forwards solver errors (none expected on these pinned instances).
pub fn cost_models(report: &mut Report, quick: bool) -> Result<(), GameError> {
    use bncg_core::solver::{ExecPolicy, Solver, StabilityQuery, Verdict};
    let n = if quick { 12 } else { 16 };
    let models: [CostModelSpec; 4] = [
        CostModelSpec::SumDistances,
        CostModelSpec::Generalized(bncg_core::Utility::Identity),
        CostModelSpec::Generalized(bncg_core::Utility::Capped(2)),
        CostModelSpec::AdversaryRobust,
    ];
    let instances = [
        ("star", generators::star(n)),
        ("path", generators::path(n)),
        ("cycle", generators::cycle(n)),
    ];
    let alpha = Alpha::integer(2).expect("α");
    let section = report.section(format!(
        "Ablation: cost models and filter soundness (BNE, n = {n})"
    ));
    section.note(
        "distance-linear models (sum_distances, generalized:id) keep the          proven pruning filters and must agree exactly; non-linear models          run the identical scan filter-free (pruned = 0)",
    );
    let table = section.table([
        "instance",
        "model",
        "verdict",
        "evals",
        "pruned",
        "time (ms)",
    ]);
    let solver = Solver::new(ExecPolicy::default().with_threads(1));
    for (name, g) in &instances {
        let mut default_stable: Option<bool> = None;
        for model in models {
            let t0 = Instant::now();
            let verdict = solver.check(
                &StabilityQuery::new(bncg_core::Concept::Bne, g, alpha).with_cost_model(model),
            )?;
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            let (stable, evals, pruned) = match &verdict {
                Verdict::Stable { evals, pruned, .. } => (true, *evals, *pruned),
                Verdict::Unstable { evals, .. } => (false, *evals, 0),
                Verdict::Exhausted { .. } => unreachable!("unbudgeted scan"),
            };
            match default_stable {
                None => default_stable = Some(stable),
                Some(base) => {
                    // generalized:id prices identically to the default
                    // model, so its verdict is pinned to it; the other
                    // models merely report theirs.
                    assert!(
                        model != CostModelSpec::Generalized(bncg_core::Utility::Identity)
                            || stable == base,
                        "generalized:id diverged from sum_distances on {name}"
                    );
                }
            }
            assert!(
                model.distance_linear() || pruned == 0,
                "a non-linear model must run filter-free on {name}"
            );
            table.row([
                (*name).to_string(),
                model.token(),
                if stable { "stable" } else { "unstable" }.to_string(),
                evals.to_string(),
                pruned.to_string(),
                fnum(ms),
            ]);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_pruning_ablation_runs() {
        let mut r = Report::new();
        trajectory_pruning(&mut r, true).unwrap();
        let text = r.render();
        assert!(text.contains("round-robin trajectories"));
        assert!(text.contains("path10"));
    }

    #[test]
    fn pruning_ablation_runs_and_agrees() {
        let mut r = Report::new();
        pruning(&mut r, true).unwrap();
        assert!(r.render().contains("candidate-space pruning"));
    }

    #[test]
    fn generator_ablation_runs_and_agrees() {
        let mut r = Report::new();
        generator(&mut r, true).unwrap();
        let text = r.render();
        assert!(text.contains("branch-and-bound generator"));
        assert!(text.contains("star24"), "quick mode runs the n = 24 row");
    }

    #[test]
    fn incremental_engine_ablation_runs_and_agrees() {
        let mut r = Report::new();
        incremental_engine(&mut r, true).unwrap();
        assert!(r.render().contains("incremental GameState engine"));
    }

    #[test]
    fn parallel_scan_ablation_runs() {
        let mut r = Report::new();
        parallel_scan(&mut r, true).unwrap();
        assert!(r.render().contains("parallel"));
    }

    #[test]
    fn delta_engine_ablation_runs_and_agrees() {
        let mut r = Report::new();
        delta_engines(&mut r, true).unwrap();
        assert!(r.render().contains("fast delta engines"));
    }

    #[test]
    fn cost_model_ablation_runs_and_agrees() {
        let mut r = Report::new();
        cost_models(&mut r, true).unwrap();
        let text = r.render();
        assert!(text.contains("cost models"));
        assert!(text.contains("adversary_robust"));
    }

    #[test]
    fn kbse_restriction_ablation_runs() {
        let mut r = Report::new();
        kbse_restriction(&mut r, true).unwrap();
        let text = r.render();
        assert!(text.contains("restricted k-BSE"));
    }
}
