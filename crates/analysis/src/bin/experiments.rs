//! The `experiments` binary: regenerate any table or figure of the paper,
//! or run a one-off stability query through the unified solver.
//!
//! ```text
//! experiments <command> [--quick] [--json]
//!             [--threads N] [--budget EVALS] [--deadline-ms MS]
//!             [--batch-budget EVALS]
//!
//! commands:
//!   all        every experiment (the EXPERIMENTS.md artifact)
//!   table1     all six Table 1 rows
//!   ps|bswe|bge|bne|3bse|bse   a single Table 1 row
//!   fig1a fig1b fig2 fig3 fig4 fig5 fig6 fig7 fig8
//!   cycles     Lemma 2.4 (cycle BSE windows)
//!   prop316    Proposition 3.16
//!   prop322    Proposition 3.22
//!   dynamics   the cooperation-ladder simulation; with any of the
//!              instance flags below it instead runs ONE anytime
//!              round-robin trajectory:
//!              --alpha A  --n N  --rounds R
//!              --family star|path|cycle|clique|tree|gnp [--p P] [--seed S]
//!              --graph6 G6 (exact start state, overrides --family)
//!              [--resume '<checkpoint json>'] continues an exhausted
//!              trajectory (pair it with the printed --graph6 token)
//!   roundrobin round-robin best-response census (converge/cycle/cap)
//!   treesvgraphs  tree vs general-graph equilibria at tiny n
//!   structure  BSwE tree-depth structure scan
//!   windows    named-family stability windows
//!   curve      exact stability-probability curve
//!   ablations  design-choice ablations (delta engines, pruning)
//!   check      one stability query through the solver:
//!              --concept re|bae|ps|bswe|bge|bne|kbse<k>|bse
//!              --alpha A (rational, e.g. 3/2)   --n N
//!              --family star|path|cycle|clique|tree|gnp [--p P] [--seed S]
//!              [--resume '<frontier json>'] to continue an exhausted scan
//!   serve      the stability-checking daemon (line-delimited JSON over
//!              TCP; see docs/PROTOCOL.md):
//!              --port P (default 7421; 0 = ephemeral)  --workers N
//!              --slice EVALS (per scheduling slice)
//!              --grant EVALS (default per-tenant budget; unmetered if
//!              omitted) — blocks until a `shutdown` request arrives
//!              --atlas DIR serves `atlas_lookup` hits from a
//!              precomputed corpus at zero solver cost
//!              --journal DIR persists tenant grants/weights to
//!              DIR/grants.jsonl and replays them on restart
//!   query      send request lines to a running daemon:
//!              --addr HOST:PORT (default 127.0.0.1:7421)
//!              --line '<json>' sends one request; without it, every
//!              stdin line is sent and its response printed
//!   atlas      the precomputed stability corpus (docs/ARCHITECTURE.md):
//!              atlas build --dir DIR [--max-n N] [--step-limit K]
//!                resumable canonical walk; --batch-budget pools one
//!                eval budget over the WHOLE atlas (resume included)
//!              atlas query --dir DIR --concept C --alpha A
//!                (--graph6 G6 | --family F --n N [--p P] [--seed S])
//!              atlas verify --dir DIR [--sample K] [--seed S]
//!                [--max-n N] — replays stored entries against a live
//!                solver and demands exact verdict/witness equality
//!
//! flags:
//!   --quick        reduced instance sizes/samples for every report
//!   --json         emit reports as JSON instead of plain text
//!   --threads N    solver worker threads per query batch (sweep commands
//!                  and check; round-robin runs are inherently sequential)
//!   --budget E     solver eval budget per query (anytime: exhaust, not
//!                  fail); for round-robin trajectories it is the
//!                  run-level pool every metered activation drains —
//!                  partial work survives in the checkpoint
//!   --deadline-ms M  solver wall-clock allowance per query (per run for
//!                  round-robin trajectories)
//!   --batch-budget E  one shared eval pool for a whole enumeration
//!                  sweep (Table 1 rows, `all`): instances past the
//!                  drained pool are load-shed into the exhausted count
//!   --atlas DIR    consult a precomputed stability corpus before the
//!                  solver (table1 rows, `all`): stored verdicts are
//!                  served at zero solver cost and never touch the
//!                  shared pool
//!   --cost-model M price agents under a non-default cost model:
//!                  sum_distances (default), generalized[:id|:cap<k>|:quad],
//!                  or adversary_robust. Applies to table1 and its sweep
//!                  rows (paper bounds become reference values), check,
//!                  single dynamics trajectories, and ablations; the
//!                  atlas serves default-model verdicts only, so
//!                  non-default sweeps always run live
//!
//! The solver flags apply to the commands that execute stability
//! queries: `check`, the Table 1 enumeration sweeps (via
//! `Solver::check_many`), `roundrobin`, and single `dynamics`
//! trajectories (metered best-response activations). Budgets and
//! deadlines only ever bite on the exponential concepts — the
//! polynomial ps/bswe rows complete eagerly, so for them `--threads`
//! is the only flag with any effect. The remaining reports certify
//! fixed constructions and ignore the solver flags entirely.
//! ```

use bncg_analysis::{
    dynamics_exp, figures, propositions, report::Report, run_all_with_atlas, table1,
};
use bncg_atlas::{Atlas, BuildSpec, Cursor, DiskBacking, DynAtlas, MemoryBacking};
use bncg_core::solver::{ExecPolicy, Frontier, Solver, StabilityQuery, Verdict};
use bncg_core::{Alpha, Concept, CostModelSpec, GameError};
use bncg_dynamics::round_robin;
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

/// Flags that consume the following argument (needed to tell the command
/// token apart from a flag value).
const VALUE_FLAGS: [&str; 26] = [
    "--threads",
    "--cost-model",
    "--budget",
    "--deadline-ms",
    "--batch-budget",
    "--concept",
    "--alpha",
    "--n",
    "--family",
    "--p",
    "--seed",
    "--resume",
    "--rounds",
    "--graph6",
    "--port",
    "--workers",
    "--slice",
    "--grant",
    "--journal",
    "--addr",
    "--line",
    "--atlas",
    "--dir",
    "--max-n",
    "--sample",
    "--step-limit",
];

/// `flag_value` with strict parsing: a present-but-unparsable or
/// present-but-valueless flag is an error, never a silent fallback to
/// defaults (a dropped `--budget` would otherwise run an unbounded scan
/// the user believes is capped).
fn parsed_flag<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, GameError> {
    match flag_value(args, name) {
        None if args.iter().any(|a| a == name) => Err(GameError::Unsupported {
            reason: format!("missing value for {name}"),
        }),
        None => Ok(None),
        Some(v) => v
            .parse::<T>()
            .map(Some)
            .map_err(|_| GameError::Unsupported {
                reason: format!("invalid value {v:?} for {name}"),
            }),
    }
}

/// Strict string-flag accessor: present-without-value is an error, same
/// contract as `parsed_flag` (a `--resume` whose token was eaten by
/// shell quoting must not silently restart the scan from zero).
fn string_flag(args: &[String], name: &str) -> Result<Option<String>, GameError> {
    match flag_value(args, name) {
        None if args.iter().any(|a| a == name) => Err(GameError::Unsupported {
            reason: format!("missing value for {name}"),
        }),
        v => Ok(v),
    }
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    let prefixed = format!("{name}=");
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&prefixed) {
            return Some(v.to_string());
        }
        if a == name {
            return args.get(i + 1).cloned();
        }
    }
    None
}

/// The `index`-th positional (non-flag) token: 0 is the command, 1 the
/// subcommand (`atlas build`).
fn positional_token(args: &[String], index: usize) -> Option<String> {
    let mut skip_next = false;
    let mut seen = 0;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a.starts_with("--") {
            skip_next = VALUE_FLAGS.contains(&a.as_str()) && !a.contains('=');
            continue;
        }
        if seen == index {
            return Some(a.clone());
        }
        seen += 1;
    }
    None
}

fn command_token(args: &[String]) -> Option<String> {
    positional_token(args, 0)
}

fn usage() -> &'static str {
    "try: all, table1, ps, bswe, bge, bne, 3bse, bse, fig1a..fig8, cycles, \
     prop316, prop322, dynamics, roundrobin, treesvgraphs, structure, \
     windows, curve, ablations, check, serve, query, atlas\n\
     flags: --quick, --json; --budget EVALS and --deadline-ms MS bound the \
     exponential-concept queries (check, the 3bse/bse rows of table1/all, \
     roundrobin, single dynamics trajectories); --batch-budget EVALS pools \
     one eval budget across a whole enumeration sweep; --threads N \
     parallelizes the sweeps (polynomial rows complete eagerly and cannot \
     exhaust); --atlas DIR serves sweep verdicts from a precomputed \
     corpus; --cost-model M prices agents under a non-default model \
     (table1/ps/bswe/3bse/bse, check, dynamics trajectories, ablations); \
     `check` adds --concept, --alpha, --n, --family, --p, \
     --seed, --resume; `dynamics` with --family/--graph6/--n/--rounds/\
     --resume runs one anytime round-robin trajectory; `serve` starts the \
     line-JSON daemon (--port, --workers, --slice, --grant, --atlas, \
     --journal) and \
     `query` talks to one (--addr, --line or stdin); `atlas \
     build|query|verify --dir DIR` maintains the corpus itself"
}

/// Builds the instance graph for the `check` command.
fn build_graph(family: &str, n: usize, p: f64, seed: u64) -> Result<bncg_graph::Graph, GameError> {
    use bncg_graph::generators;
    Ok(match family {
        "star" => generators::star(n),
        "path" => generators::path(n),
        "cycle" => generators::cycle(n),
        "clique" => generators::clique(n),
        "tree" => generators::random_tree(n, &mut bncg_graph::test_rng(seed)),
        "gnp" => generators::random_connected(n, p, &mut bncg_graph::test_rng(seed)),
        other => {
            return Err(GameError::Unsupported {
                reason: format!(
                    "unknown graph family {other:?}; expected star, path, \
                     cycle, clique, tree, or gnp"
                ),
            })
        }
    })
}

/// The `check` command: one solver query, printable end to end — the
/// service-shaped surface (budget in, verdict or resume token out).
fn run_check(
    args: &[String],
    policy: &ExecPolicy,
    model: CostModelSpec,
) -> Result<String, GameError> {
    let concept: Concept = string_flag(args, "--concept")?
        .unwrap_or_else(|| "bne".into())
        .parse()?;
    let alpha: Alpha = string_flag(args, "--alpha")?
        .unwrap_or_else(|| "2".into())
        .parse()?;
    let n: usize = parsed_flag(args, "--n")?.unwrap_or(16);
    let p: f64 = parsed_flag(args, "--p")?.unwrap_or(0.3);
    let seed: u64 = parsed_flag(args, "--seed")?.unwrap_or(0xB2C6);
    if !(0.0..=1.0).contains(&p) {
        return Err(GameError::Unsupported {
            reason: format!("--p must be a probability in [0, 1], got {p}"),
        });
    }
    let family = string_flag(args, "--family")?.unwrap_or_else(|| "gnp".into());
    let g = build_graph(&family, n, p, seed)?;

    let mut query = StabilityQuery::new(concept, &g, alpha).with_cost_model(model);
    if let Some(token) = string_flag(args, "--resume")? {
        let frontier: Frontier = token.parse()?;
        query = query.resume(frontier);
    }
    let verdict = Solver::new(policy.clone()).check(&query)?;
    let mut head = format!(
        "check {concept} on {family} (n = {n}, α = {alpha}, {} edges)",
        g.m()
    );
    if !model.is_default() {
        head.push_str(&format!(" under {}", model.token()));
    }
    Ok(match verdict {
        Verdict::Stable {
            evals,
            pruned,
            elapsed,
        } => format!(
            "{head}\nverdict: stable\nevals: {evals}\npruned: {pruned}\nelapsed: {elapsed:?}"
        ),
        Verdict::Unstable {
            witness,
            evals,
            elapsed,
        } => format!(
            "{head}\nverdict: unstable\nwitness: {witness}\nevals: {evals}\nelapsed: {elapsed:?}"
        ),
        Verdict::Exhausted { frontier, progress } => format!(
            "{head}\nverdict: exhausted ({}/{} units, {} evals, {:?})\n\
             frontier: {frontier}\nresume with: --resume '{frontier}'",
            progress.units_done, progress.units_total, progress.evals_total, progress.elapsed
        ),
    })
}

/// The single-trajectory `dynamics` mode: one anytime round-robin run —
/// budget in, partial trajectory plus a resumable checkpoint out. On
/// exhaustion the final state is printed as graph6 so the follow-up
/// `--resume` invocation can name the exact interrupted state (the
/// checkpoint's fingerprint validation rejects anything else).
fn run_trajectory(
    args: &[String],
    policy: &ExecPolicy,
    model: CostModelSpec,
) -> Result<String, GameError> {
    let alpha: Alpha = string_flag(args, "--alpha")?
        .unwrap_or_else(|| "2".into())
        .parse()?;
    let n: usize = parsed_flag(args, "--n")?.unwrap_or(12);
    let p: f64 = parsed_flag(args, "--p")?.unwrap_or(0.3);
    let seed: u64 = parsed_flag(args, "--seed")?.unwrap_or(0xB2C6);
    let rounds: usize = parsed_flag(args, "--rounds")?.unwrap_or(400);
    let (g, from) = match string_flag(args, "--graph6")? {
        Some(code) => {
            let g = bncg_graph::graph6::decode(&code).map_err(|e| GameError::Unsupported {
                reason: format!("invalid --graph6 token: {e}"),
            })?;
            (g, format!("graph6 {code}"))
        }
        None => {
            let family = string_flag(args, "--family")?.unwrap_or_else(|| "tree".into());
            (build_graph(&family, n, p, seed)?, family)
        }
    };
    let out = match string_flag(args, "--resume")? {
        Some(token) => {
            let checkpoint: round_robin::Checkpoint = token.parse()?;
            round_robin::resume_under(&g, alpha, model, rounds, policy, &checkpoint)?
        }
        None => round_robin::run_with_policy_under(&g, alpha, model, rounds, policy)?,
    };
    let status = if out.converged {
        "converged (BNE reached)"
    } else if out.cycled {
        "cycled (state revisited)"
    } else if out.exhausted {
        "exhausted (budget/deadline/cancel)"
    } else {
        "round cap reached"
    };
    let mut text = format!(
        "dynamics trajectory on {from} (n = {}, α = {alpha})\n\
         status: {status}\nrounds: {}\nmoves: {} ({} this slice)\nevals: {}",
        g.n(),
        out.rounds,
        out.moves,
        out.history.len(),
        out.evals
    );
    if let Some(checkpoint) = &out.checkpoint {
        let g6 = bncg_graph::graph6::encode(&out.final_graph).map_err(GameError::Graph)?;
        text.push_str(&format!(
            "\ncheckpoint: {checkpoint}\nresume with: dynamics --alpha {alpha} \
             --rounds {rounds} --graph6 '{g6}' --resume '{checkpoint}'"
        ));
    }
    Ok(text)
}

/// The `serve` command: start the stability-checking daemon and block
/// until a `shutdown` request arrives on the wire (docs/PROTOCOL.md has
/// the request schemas).
fn run_serve(args: &[String]) -> Result<String, GameError> {
    let port: u16 = parsed_flag(args, "--port")?.unwrap_or(7421);
    let mut scheduler = bncg_serve::SchedulerConfig::default();
    if let Some(workers) = parsed_flag::<usize>(args, "--workers")? {
        if workers == 0 {
            return Err(GameError::Unsupported {
                reason: "--workers must be at least 1".into(),
            });
        }
        scheduler.workers = workers;
    }
    if let Some(slice) = parsed_flag::<u64>(args, "--slice")? {
        scheduler.slice = slice.max(1);
    }
    if let Some(grant) = parsed_flag::<u64>(args, "--grant")? {
        scheduler.default_grant = grant;
    }
    if let Some(dir) = string_flag(args, "--journal")? {
        scheduler.journal = Some(std::path::PathBuf::from(dir));
    }
    let atlas = match load_atlas(args)? {
        Some(atlas) => {
            println!("atlas loaded: {} records", atlas.len());
            std::sync::Arc::new(bncg_serve::AtlasService::with_atlas(atlas))
        }
        None => std::sync::Arc::new(bncg_serve::AtlasService::empty()),
    };
    let server = bncg_serve::Server::start(bncg_serve::ServerConfig {
        addr: format!("127.0.0.1:{port}"),
        scheduler,
        atlas,
    })
    .map_err(|e| GameError::Unsupported {
        reason: format!("cannot bind 127.0.0.1:{port}: {e}"),
    })?;
    println!("serving on {} (send a shutdown op to stop)", server.addr());
    server.wait();
    Ok("daemon stopped".into())
}

/// Loads the corpus named by `--atlas DIR` (for the sweep commands and
/// the daemon), if the flag is present.
fn load_atlas(args: &[String]) -> Result<Option<DynAtlas>, GameError> {
    let Some(dir) = string_flag(args, "--atlas")? else {
        return Ok(None);
    };
    let backing = DiskBacking::open(Path::new(&dir))?;
    let boxed: Box<dyn MemoryBacking + Send + Sync> = Box::new(backing);
    Atlas::open(boxed).map(Some)
}

/// The `atlas` command: build, probe, or differentially verify the
/// disk-resident corpus behind `--atlas` / the daemon's `atlas_lookup`.
fn run_atlas(args: &[String], policy: &ExecPolicy) -> Result<String, GameError> {
    let dir = string_flag(args, "--dir")?.ok_or_else(|| GameError::Unsupported {
        reason: "atlas needs --dir DIR (the corpus directory)".into(),
    })?;
    let sub = positional_token(args, 1).unwrap_or_else(|| "build".into());
    match sub.as_str() {
        "build" => {
            let max_n: u32 = parsed_flag(args, "--max-n")?.unwrap_or(8);
            let step_limit: Option<u64> = parsed_flag(args, "--step-limit")?;
            let budget = policy.batch_budget.unwrap_or(u64::MAX);
            let spec = BuildSpec::standard(max_n);
            let backing = DiskBacking::open(Path::new(&dir))?;
            let mut atlas = Atlas::open(backing)?;
            let report = bncg_atlas::build(&mut atlas, &spec, budget, step_limit)?;
            let cursor = Cursor::of_atlas(&atlas, &spec);
            Ok(format!(
                "atlas build in {dir} (spec n ≤ {max_n})\n\
                 appended: {}\nskipped (resume prefix): {}\n\
                 evals charged: {} (pool at {})\nrederived torn tail: {}\n\
                 status: {}\ncursor: {cursor}",
                report.appended,
                report.skipped,
                report.evals_charged,
                report.pool_used,
                report.rederived_tail,
                if report.complete {
                    "complete".to_string()
                } else {
                    "interrupted (rerun the same command to resume)".to_string()
                },
            ))
        }
        "query" => {
            let concept: Concept = string_flag(args, "--concept")?
                .unwrap_or_else(|| "bne".into())
                .parse()?;
            let alpha: Alpha = string_flag(args, "--alpha")?
                .unwrap_or_else(|| "2".into())
                .parse()?;
            let g = match string_flag(args, "--graph6")? {
                Some(code) => {
                    bncg_graph::graph6::decode(&code).map_err(|e| GameError::Unsupported {
                        reason: format!("invalid --graph6 token: {e}"),
                    })?
                }
                None => {
                    let n: usize = parsed_flag(args, "--n")?.unwrap_or(6);
                    let p: f64 = parsed_flag(args, "--p")?.unwrap_or(0.3);
                    let seed: u64 = parsed_flag(args, "--seed")?.unwrap_or(0xB2C6);
                    let family = string_flag(args, "--family")?.unwrap_or_else(|| "path".into());
                    build_graph(&family, n, p, seed)?
                }
            };
            let backing = DiskBacking::open(Path::new(&dir))?;
            let atlas = Atlas::open(backing)?;
            let head = format!(
                "atlas query {concept} at α = {alpha} on n = {} ({} records in {dir})",
                g.n(),
                atlas.len()
            );
            Ok(match atlas.lookup(&g, concept, alpha)? {
                None => format!("{head}\nmiss: not in the corpus (fall back to `check`)"),
                Some(hit) => {
                    let mut text = format!("{head}\nhit: {}", hit.record);
                    if let Some(witness) = &hit.witness {
                        text.push_str(&format!("\nwitness (query labels): {witness}"));
                    }
                    text
                }
            })
        }
        "verify" => {
            let sample: u64 = parsed_flag(args, "--sample")?.unwrap_or(64);
            let seed: u64 = parsed_flag(args, "--seed")?.unwrap_or(0xA71A5);
            let max_n: u32 = parsed_flag(args, "--max-n")?.unwrap_or(8);
            let backing = DiskBacking::open(Path::new(&dir))?;
            let atlas = Atlas::open(backing)?;
            let report = bncg_atlas::verify_atlas(&atlas, sample, seed, max_n)?;
            Ok(format!(
                "atlas verify in {dir} (sample {sample}, seed {seed}, n ≤ {max_n})\n\
                 eligible: {}\nreplayed: {} (all matched the live solver exactly)\n\
                 skipped exhausted: {}",
                report.eligible, report.replayed, report.skipped_exhausted
            ))
        }
        other => Err(GameError::Unsupported {
            reason: format!("unknown atlas subcommand {other:?}; try build, query, or verify"),
        }),
    }
}

/// The `query` command: a line-oriented client for a running daemon.
/// One request per line in, one response line out, in order.
fn run_query(args: &[String]) -> Result<String, GameError> {
    use std::io::{BufRead, BufReader, Write};
    let addr = string_flag(args, "--addr")?.unwrap_or_else(|| "127.0.0.1:7421".into());
    let sock = std::net::TcpStream::connect(&addr).map_err(|e| GameError::Unsupported {
        reason: format!("cannot connect to {addr}: {e}"),
    })?;
    let mut reader = BufReader::new(sock.try_clone().map_err(|e| GameError::Unsupported {
        reason: format!("cannot clone connection: {e}"),
    })?);
    let mut sock = sock;
    let mut exchange = |line: &str| -> Result<String, GameError> {
        sock.write_all(line.as_bytes())
            .and_then(|()| sock.write_all(b"\n"))
            .map_err(|e| GameError::Unsupported {
                reason: format!("send failed: {e}"),
            })?;
        let mut response = String::new();
        reader
            .read_line(&mut response)
            .map_err(|e| GameError::Unsupported {
                reason: format!("receive failed: {e}"),
            })?;
        Ok(response.trim_end().to_string())
    };
    if let Some(line) = string_flag(args, "--line")? {
        return exchange(&line);
    }
    let stdin = std::io::stdin();
    let mut out = Vec::new();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| GameError::Unsupported {
            reason: format!("stdin read failed: {e}"),
        })?;
        if line.trim().is_empty() {
            continue;
        }
        out.push(exchange(&line)?);
    }
    Ok(out.join("\n"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let mut policy = ExecPolicy::default();
    match (
        parsed_flag::<usize>(&args, "--threads"),
        parsed_flag::<u64>(&args, "--budget"),
        parsed_flag::<u64>(&args, "--deadline-ms"),
        parsed_flag::<u64>(&args, "--batch-budget"),
    ) {
        (Ok(threads), Ok(budget), Ok(deadline_ms), Ok(batch)) => {
            if let Some(t) = threads {
                policy.threads = t;
            }
            policy.eval_budget = budget;
            policy.deadline = deadline_ms.map(Duration::from_millis);
            policy.batch_budget = batch;
        }
        (t, b, d, p) => {
            for e in [t.err(), b.err(), d.err(), p.err()].into_iter().flatten() {
                eprintln!("{e}");
            }
            return ExitCode::FAILURE;
        }
    }
    let command = command_token(&args).unwrap_or_else(|| "all".into());
    let model: CostModelSpec = match string_flag(&args, "--cost-model") {
        Ok(Some(token)) => match token.parse() {
            Ok(m) => m,
            Err(e) => {
                eprintln!("invalid --cost-model: {e}");
                return ExitCode::FAILURE;
            }
        },
        Ok(None) => CostModelSpec::SumDistances,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // The flag applies to the commands that price agents: a non-default
    // model on any other command is an error, never silently dropped.
    let model_aware = [
        "table1",
        "ps",
        "bswe",
        "3bse",
        "bse",
        "check",
        "dynamics",
        "ablations",
    ];
    if !model.is_default() && !model_aware.contains(&command.as_str()) {
        eprintln!(
            "--cost-model applies to: {}; `{command}` prices under the default model only",
            model_aware.join(", ")
        );
        return ExitCode::FAILURE;
    }

    // `dynamics` doubles as the single-trajectory anytime runner when
    // any instance-selecting flag is present; bare `dynamics` keeps its
    // ladder-report meaning.
    let trajectory_mode = ["--family", "--graph6", "--n", "--rounds", "--resume"]
        .iter()
        .any(|f| {
            let prefixed = format!("{f}=");
            args.iter().any(|a| a == f || a.starts_with(&prefixed))
        });

    // The sweep commands consult `--atlas DIR` when present; loading it
    // up front keeps one corpus open across all six Table 1 rows.
    let atlas = match load_atlas(&args) {
        Ok(atlas) => atlas,
        Err(e) => {
            eprintln!("cannot load --atlas corpus: {e}");
            return ExitCode::FAILURE;
        }
    };

    let render = |r: Report| if json { r.to_json() } else { r.render() };
    let result = match command.as_str() {
        "all" => run_all_with_atlas(quick, &policy, atlas.as_ref()).map(render),
        "table1" => table1::full_table_under(quick, &policy, atlas.as_ref(), model).map(render),
        "check" => run_check(&args, &policy, model),
        "serve" => run_serve(&args),
        "query" => run_query(&args),
        "atlas" => run_atlas(&args, &policy),
        "dynamics" if trajectory_mode => run_trajectory(&args, &policy, model),
        other => {
            let mut r = Report::new();
            let run = match other {
                "ps" => table1::row_ps_under(&mut r, quick, &policy, atlas.as_ref(), model),
                "bswe" => table1::row_bswe_under(&mut r, quick, &policy, atlas.as_ref(), model),
                "bge" => table1::row_bge(&mut r, quick),
                "bne" => table1::row_bne(&mut r, quick),
                "3bse" => table1::row_3bse_under(&mut r, quick, &policy, atlas.as_ref(), model),
                "bse" => table1::row_bse_under(&mut r, quick, &policy, atlas.as_ref(), model),
                "fig1a" => figures::fig1a(&mut r, quick),
                "fig1b" => figures::fig1b(&mut r, quick),
                "fig2" => figures::fig2(&mut r, quick),
                "fig3" => figures::fig3(&mut r, quick),
                "fig4" => figures::fig4(&mut r, quick),
                "fig5" => figures::fig5(&mut r, quick),
                "fig6" => figures::fig6(&mut r, quick),
                "fig7" => figures::fig7(&mut r, quick),
                "fig8" => figures::fig8(&mut r, quick),
                "cycles" => propositions::cycles_bse(&mut r, quick),
                "prop316" => propositions::prop_3_16(&mut r, quick),
                "prop322" => propositions::prop_3_22(&mut r, quick),
                "dynamics" => dynamics_exp::ladder(&mut r, quick),
                "structure" => bncg_analysis::structure::bswe_depth(&mut r, quick),
                "windows" => bncg_analysis::windows_exp::named_windows(&mut r, quick),
                "curve" => bncg_analysis::exact_curve::curve_report(&mut r, quick),
                "roundrobin" => dynamics_exp::round_robin_census(&mut r, quick, &policy),
                "treesvgraphs" => dynamics_exp::trees_vs_graphs(&mut r, quick),
                "ablations" => bncg_analysis::ablations::delta_engines(&mut r, quick)
                    .and_then(|()| bncg_analysis::ablations::kbse_restriction(&mut r, quick))
                    .and_then(|()| bncg_analysis::ablations::parallel_scan(&mut r, quick))
                    .and_then(|()| bncg_analysis::ablations::incremental_engine(&mut r, quick))
                    .and_then(|()| bncg_analysis::ablations::pruning(&mut r, quick))
                    .and_then(|()| bncg_analysis::ablations::generator(&mut r, quick))
                    .and_then(|()| bncg_analysis::ablations::trajectory_pruning(&mut r, quick))
                    .and_then(|()| bncg_analysis::ablations::cost_models(&mut r, quick)),
                _ => {
                    eprintln!("unknown command: {other}");
                    eprintln!("{}", usage());
                    return ExitCode::FAILURE;
                }
            };
            run.map(|()| render(r))
        }
    };

    match result {
        Ok(text) => {
            println!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            ExitCode::FAILURE
        }
    }
}
