//! The `experiments` binary: regenerate any table or figure of the paper.
//!
//! ```text
//! experiments <command> [--quick]
//!
//! commands:
//!   all        every experiment (the EXPERIMENTS.md artifact)
//!   table1     all six Table 1 rows
//!   ps|bswe|bge|bne|3bse|bse   a single Table 1 row
//!   fig1a fig1b fig2 fig3 fig4 fig5 fig6 fig7 fig8
//!   cycles     Lemma 2.4 (cycle BSE windows)
//!   prop316    Proposition 3.16
//!   prop322    Proposition 3.22
//!   dynamics   the cooperation-ladder simulation
//!   ablations  design-choice ablations (delta engines, pruning)
//! ```

use bncg_analysis::{dynamics_exp, figures, propositions, report::Report, run_all, table1};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let command = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map_or("all", String::as_str);

    let render = |r: Report| if json { r.to_json() } else { r.render() };
    let result = match command {
        "all" => run_all(quick).map(render),
        "table1" => table1::full_table(quick).map(render),
        other => {
            let mut r = Report::new();
            let run = match other {
                "ps" => table1::row_ps(&mut r, quick),
                "bswe" => table1::row_bswe(&mut r, quick),
                "bge" => table1::row_bge(&mut r, quick),
                "bne" => table1::row_bne(&mut r, quick),
                "3bse" => table1::row_3bse(&mut r, quick),
                "bse" => table1::row_bse(&mut r, quick),
                "fig1a" => figures::fig1a(&mut r, quick),
                "fig1b" => figures::fig1b(&mut r, quick),
                "fig2" => figures::fig2(&mut r, quick),
                "fig3" => figures::fig3(&mut r, quick),
                "fig4" => figures::fig4(&mut r, quick),
                "fig5" => figures::fig5(&mut r, quick),
                "fig6" => figures::fig6(&mut r, quick),
                "fig7" => figures::fig7(&mut r, quick),
                "fig8" => figures::fig8(&mut r, quick),
                "cycles" => propositions::cycles_bse(&mut r, quick),
                "prop316" => propositions::prop_3_16(&mut r, quick),
                "prop322" => propositions::prop_3_22(&mut r, quick),
                "dynamics" => dynamics_exp::ladder(&mut r, quick),
                "structure" => bncg_analysis::structure::bswe_depth(&mut r, quick),
                "windows" => bncg_analysis::windows_exp::named_windows(&mut r, quick),
                "curve" => bncg_analysis::exact_curve::curve_report(&mut r, quick),
                "roundrobin" => dynamics_exp::round_robin_census(&mut r, quick),
                "treesvgraphs" => dynamics_exp::trees_vs_graphs(&mut r, quick),
                "ablations" => bncg_analysis::ablations::delta_engines(&mut r, quick)
                    .and_then(|()| bncg_analysis::ablations::kbse_restriction(&mut r, quick))
                    .and_then(|()| bncg_analysis::ablations::parallel_scan(&mut r, quick))
                    .and_then(|()| bncg_analysis::ablations::incremental_engine(&mut r, quick))
                    .and_then(|()| bncg_analysis::ablations::pruning(&mut r, quick)),
                _ => {
                    eprintln!("unknown command: {other}");
                    eprintln!("try: all, table1, ps, bswe, bge, bne, 3bse, bse, fig1a..fig8, cycles, prop316, prop322, dynamics, roundrobin, treesvgraphs, structure, windows, curve, ablations");
                    return ExitCode::FAILURE;
                }
            };
            run.map(|()| render(r))
        }
    };

    match result {
        Ok(text) => {
            println!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            ExitCode::FAILURE
        }
    }
}
