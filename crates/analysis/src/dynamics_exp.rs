//! Simulation support for the paper's narrative: improving-move dynamics
//! from random trees, measuring how the quality of the *reached*
//! equilibria changes as the allowed cooperation grows. This is the
//! empirical cooperation ladder behind Table 1.

use crate::report::{fnum, Report};
use bncg_core::solver::ExecPolicy;
use bncg_core::{Alpha, Concept, GameError};
use bncg_dynamics::{convergence_experiment, SelectionRule};

/// Runs the cooperation-ladder dynamics experiment.
///
/// # Errors
///
/// Forwards checker guards.
pub fn ladder(report: &mut Report, quick: bool) -> Result<(), GameError> {
    let (n, runs) = if quick { (10usize, 10usize) } else { (14, 30) };
    let alphas: Vec<Alpha> = ["3/2", "3", "8"]
        .iter()
        .map(|s| s.parse().expect("grid α"))
        .collect();
    let concepts = [Concept::Ps, Concept::Bge, Concept::Bne];
    let section = report.section(format!(
        "Dynamics: cooperation ladder (random trees, n = {n}, {runs} runs each)"
    ));
    section.note(
        "random improving moves until the concept's checker is satisfied; ρ of reached equilibria",
    );
    let table = section.table(["concept", "α", "converged", "mean steps", "mean ρ", "max ρ"]);
    let mut rng = bncg_graph::test_rng(0xD15C0);
    for concept in concepts {
        // BNE checking is exponential; keep its instances smaller.
        let n_c = if concept == Concept::Bne {
            n.min(12)
        } else {
            n
        };
        for &alpha in &alphas {
            let rule = if concept == Concept::Bne {
                SelectionRule::First
            } else {
                SelectionRule::Random
            };
            let rep = convergence_experiment(n_c, alpha, concept, rule, runs, 20_000, &mut rng)?;
            table.row([
                concept.to_string(),
                alpha.to_string(),
                format!("{}/{}", rep.converged, rep.runs),
                fnum(rep.mean_steps),
                fnum(rep.mean_rho),
                fnum(rep.max_rho),
            ]);
        }
    }
    Ok(())
}

/// Round-robin best-response dynamics: convergence vs. cycling incidence.
///
/// Improving dynamics in network creation games are not potential games in
/// general (Kawald–Lenzner show unilateral cycling); this experiment
/// measures how often round-robin *bilateral* best responses converge,
/// cycle (exact state revisit), or time out, from random trees and random
/// connected graphs. Each run executes under the caller's [`ExecPolicy`]
/// (a run-level eval pool drained by metered activations, deadline and
/// cancel per run), so a bounded policy reports exhausted runs — with
/// their partial trajectories intact — instead of hanging the census.
///
/// # Errors
///
/// Forwards checker guards.
pub fn round_robin_census(
    report: &mut Report,
    quick: bool,
    policy: &ExecPolicy,
) -> Result<(), GameError> {
    let (n, runs) = if quick { (9usize, 12usize) } else { (11, 40) };
    let alphas: Vec<Alpha> = ["3/2", "3", "8"]
        .iter()
        .map(|s| s.parse().expect("grid α"))
        .collect();
    let section = report.section(format!(
        "Dynamics: round-robin best responses (n = {n}, {runs} starts per cell)"
    ));
    section.note("each agent in turn plays its best feasible neighborhood move; silent round = certified BNE");
    let table = section.table([
        "start family",
        "α",
        "converged",
        "cycled",
        "capped",
        "exhausted",
        "mean moves",
    ]);
    let mut rng = bncg_graph::test_rng(0xC1C1E);
    for family in ["random trees", "random graphs"] {
        for &alpha in &alphas {
            let mut converged = 0usize;
            let mut cycled = 0usize;
            let mut capped = 0usize;
            let mut exhausted = 0usize;
            let mut moves = 0usize;
            for _ in 0..runs {
                let start = if family == "random trees" {
                    bncg_graph::generators::random_tree(n, &mut rng)
                } else {
                    bncg_graph::generators::random_connected(n, 0.2, &mut rng)
                };
                let out = bncg_dynamics::round_robin::run_with_policy(&start, alpha, 400, policy)?;
                moves += out.moves;
                if out.converged {
                    converged += 1;
                } else if out.cycled {
                    cycled += 1;
                } else if out.exhausted {
                    exhausted += 1;
                } else {
                    capped += 1;
                }
            }
            table.row([
                family.to_string(),
                alpha.to_string(),
                format!("{converged}/{runs}"),
                cycled.to_string(),
                capped.to_string(),
                exhausted.to_string(),
                crate::report::fnum(moves as f64 / runs as f64),
            ]);
        }
    }
    Ok(())
}

/// Tree equilibria vs. general-graph equilibria at tiny n: the paper
/// restricts Table 1's upper section to trees — this experiment measures
/// how much worse general connected-graph equilibria are at exhaustive
/// scale.
///
/// # Errors
///
/// Forwards enumeration/checker guards.
pub fn trees_vs_graphs(report: &mut Report, quick: bool) -> Result<(), GameError> {
    let n = if quick { 5 } else { 6 };
    let alphas: Vec<Alpha> = ["1", "2", "4", "8"]
        .iter()
        .map(|s| s.parse().expect("grid α"))
        .collect();
    let section = report.section(format!(
        "Trees vs general graphs: exhaustive PoA at n = {n} (PS and BGE)"
    ));
    section.note("the paper's tree restriction is conservative: general-graph equilibria include cycles (Lemma 2.4) whose ρ exceeds the tree worst case at matching α");
    let table = section.table(["α", "PS trees", "PS graphs", "BGE trees", "BGE graphs"]);
    for &alpha in &alphas {
        let pt = crate::empirical::tree_poa(n, alpha, Concept::Ps)?;
        let pg = crate::empirical::graph_poa(n, alpha, Concept::Ps)?;
        let bt = crate::empirical::tree_poa(n, alpha, Concept::Bge)?;
        let bg = crate::empirical::graph_poa(n, alpha, Concept::Bge)?;
        let cell = |p: &crate::empirical::PoaPoint| {
            p.max_rho.map(crate::report::fnum).unwrap_or("–".into())
        };
        // Trees are a subset of connected graphs: graph PoA dominates.
        if let (Some(t), Some(g)) = (pt.max_rho, pg.max_rho) {
            assert!(g >= t - 1e-12);
        }
        table.row([
            alpha.to_string(),
            cell(&pt),
            cell(&pg),
            cell(&bt),
            cell(&bg),
        ]);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_runs_quick() {
        let mut r = Report::new();
        ladder(&mut r, true).unwrap();
        let text = r.render();
        assert!(text.contains("cooperation ladder"));
        assert!(text.contains("BGE"));
    }

    #[test]
    fn round_robin_census_runs_quick() {
        let mut r = Report::new();
        round_robin_census(&mut r, true, &ExecPolicy::default()).unwrap();
        assert!(r.render().contains("round-robin"));
    }

    #[test]
    fn trees_vs_graphs_runs_quick() {
        let mut r = Report::new();
        trees_vs_graphs(&mut r, true).unwrap();
        assert!(r.render().contains("general graphs"));
    }
}
