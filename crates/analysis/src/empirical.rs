//! Empirical Price of Anarchy by exhaustive enumeration: for a given
//! `(n, α)` and solution concept, the worst social cost ratio over *all*
//! trees (or all connected graphs) on `n` nodes that are stable under the
//! concept. This regenerates Table 1's rows at laptop scale — the shape of
//! the measured curves is what the reproduction compares against the
//! paper's asymptotic bounds.
//!
//! Every instance's stability check routes through one
//! [`Solver::check_many`] batch: with `threads > 1` in the
//! [`ExecPolicy`] the enumeration sweep itself parallelizes (one query
//! per instance on one scoped pool), and budgeted or deadlined policies
//! degrade per instance into an `exhausted` count instead of aborting
//! the whole sweep. A policy with a
//! [`batch_budget`](ExecPolicy::batch_budget) goes further: the **whole
//! sweep** drains one shared atomic eval pool (held across the chunked
//! `check_many` calls via [`Solver::check_many_pooled`]), so a sweep can
//! be given a global work bound and load-sheds the tail of its
//! enumeration into the `exhausted` count — the shape Table 1's partial
//! rows surface.

use bncg_core::solver::{ExecPolicy, Solver, StabilityQuery, Verdict};
use bncg_core::{Alpha, Concept, GameError, GameState};
use bncg_graph::{enumerate, Graph};
use std::sync::atomic::AtomicU64;

/// The outcome of one exhaustive PoA evaluation.
#[derive(Debug, Clone)]
pub struct PoaPoint {
    /// Number of agents.
    pub n: usize,
    /// Edge price.
    pub alpha: Alpha,
    /// The concept quantified over.
    pub concept: Concept,
    /// Worst ρ among stable instances (`None` if no instance is stable).
    pub max_rho: Option<f64>,
    /// A worst-case stable instance.
    pub worst: Option<Graph>,
    /// How many enumerated instances were stable.
    pub stable_count: usize,
    /// How many instances were enumerated.
    pub total: usize,
    /// Instances whose check exhausted the execution policy (excluded
    /// from `max_rho`; always 0 under an unbounded policy).
    pub exhausted: usize,
}

/// Exhaustive PoA over all free trees on `n` nodes.
///
/// # Errors
///
/// Forwards the enumeration guard and checker guards.
pub fn tree_poa(n: usize, alpha: Alpha, concept: Concept) -> Result<PoaPoint, GameError> {
    tree_poa_with(n, alpha, concept, &ExecPolicy::default())
}

/// [`tree_poa`] under an explicit [`ExecPolicy`].
///
/// # Errors
///
/// Forwards the enumeration guard and solver errors.
pub fn tree_poa_with(
    n: usize,
    alpha: Alpha,
    concept: Concept,
    policy: &ExecPolicy,
) -> Result<PoaPoint, GameError> {
    let trees = enumerate::free_trees(n).map_err(GameError::Graph)?;
    poa_over(trees, n, alpha, concept, policy)
}

/// Exhaustive PoA over all connected graphs on `n` nodes.
///
/// # Errors
///
/// Forwards the enumeration guard and checker guards.
pub fn graph_poa(n: usize, alpha: Alpha, concept: Concept) -> Result<PoaPoint, GameError> {
    graph_poa_with(n, alpha, concept, &ExecPolicy::default())
}

/// [`graph_poa`] under an explicit [`ExecPolicy`].
///
/// # Errors
///
/// Forwards the enumeration guard and solver errors.
pub fn graph_poa_with(
    n: usize,
    alpha: Alpha,
    concept: Concept,
    policy: &ExecPolicy,
) -> Result<PoaPoint, GameError> {
    let graphs = enumerate::connected_graphs(n).map_err(GameError::Graph)?;
    poa_over(graphs, n, alpha, concept, policy)
}

fn poa_over(
    instances: Vec<Graph>,
    n: usize,
    alpha: Alpha,
    concept: Concept,
    policy: &ExecPolicy,
) -> Result<PoaPoint, GameError> {
    let total = instances.len();
    // One engine state per instance serves the checker and the
    // social-cost evaluation alike; each batch shares one thread pool.
    // States are built per chunk, not for the whole enumeration —
    // connected_graphs(9) is ~261k instances, and an n² distance matrix
    // per instance held for the whole sweep would dwarf the enumeration
    // itself. Chunks of threads·16 keep every worker saturated while
    // bounding the resident set.
    let solver = Solver::new(policy.clone());
    let chunk_size = (policy.threads.max(1) * 16).max(64);
    // One eval pool for the *whole sweep*: chunking bounds resident
    // state, not the budget scope, so the pool outlives every
    // `check_many_pooled` call and the batch budget means "this much
    // work for the entire enumeration".
    let pool = AtomicU64::new(0);
    let mut stable_count = 0usize;
    let mut exhausted = 0usize;
    let mut best: Option<(f64, Graph)> = None;
    for chunk in instances.chunks(chunk_size) {
        let states: Vec<GameState> = chunk
            .iter()
            .map(|g| GameState::new(g.clone(), alpha))
            .collect();
        let queries: Vec<StabilityQuery> = states
            .iter()
            .map(|s| StabilityQuery::on(concept, s))
            .collect();
        let verdicts = solver.check_many_pooled(&queries, &pool);
        for (state, verdict) in states.iter().zip(verdicts) {
            match verdict? {
                Verdict::Unstable { .. } => continue,
                Verdict::Exhausted { .. } => {
                    exhausted += 1;
                    continue;
                }
                Verdict::Stable { .. } => {}
            }
            stable_count += 1;
            let rho = state.social_cost_ratio()?.as_f64();
            if best.as_ref().is_none_or(|(b, _)| rho > *b) {
                best = Some((rho, state.graph().clone()));
            }
        }
    }
    let (max_rho, worst) = match best {
        Some((r, g)) => (Some(r), Some(g)),
        None => (None, None),
    };
    Ok(PoaPoint {
        n,
        alpha,
        concept,
        max_rho,
        worst,
        stable_count,
        total,
        exhausted,
    })
}

/// A sweep of [`tree_poa`] over an α grid.
///
/// # Errors
///
/// Forwards the per-point errors.
pub fn tree_poa_sweep(
    n: usize,
    alphas: &[Alpha],
    concept: Concept,
) -> Result<Vec<PoaPoint>, GameError> {
    alphas
        .iter()
        .map(|&alpha| tree_poa(n, alpha, concept))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Alpha {
        s.parse().unwrap()
    }

    #[test]
    fn star_is_always_among_stable_trees() {
        // For α ≥ 1 the star is stable under every concept, so max_rho is
        // always defined and at least 1.
        for concept in [Concept::Ps, Concept::Bswe, Concept::Bge, Concept::Bne] {
            let point = tree_poa(7, a("2"), concept).unwrap();
            assert!(point.stable_count >= 1);
            assert!(point.max_rho.unwrap() >= 1.0 - 1e-12);
            assert_eq!(point.total, 11);
        }
    }

    #[test]
    fn poa_is_monotone_in_cooperation() {
        // More cooperation → fewer stable states → weakly smaller PoA.
        for alpha in ["3/2", "3", "6"] {
            let alpha = a(alpha);
            let ps = tree_poa(8, alpha, Concept::Ps).unwrap().max_rho.unwrap();
            let bge = tree_poa(8, alpha, Concept::Bge).unwrap().max_rho.unwrap();
            let bne = tree_poa(8, alpha, Concept::Bne).unwrap().max_rho.unwrap();
            let kbse = tree_poa(8, alpha, Concept::KBse(3))
                .unwrap()
                .max_rho
                .unwrap();
            assert!(bge <= ps + 1e-12);
            assert!(bne <= bge + 1e-12);
            assert!(kbse <= bge + 1e-12);
        }
    }

    #[test]
    fn theorem_3_6_bound_holds_empirically() {
        for n in 5..=9usize {
            for alpha in ["1", "2", "4", "8", "16"] {
                let alpha = a(alpha);
                let point = tree_poa(n, alpha, Concept::Bswe).unwrap();
                if let Some(rho) = point.max_rho {
                    let bound = bncg_core::bounds::theorem_3_6_bound(alpha);
                    assert!(
                        rho <= bound + 1e-9,
                        "Theorem 3.6 violated: ρ = {rho} > {bound} (n={n}, α={alpha})"
                    );
                }
            }
        }
    }

    #[test]
    fn theorem_3_15_bound_holds_empirically() {
        for n in 5..=8usize {
            for alpha in ["1", "3", "9", "27"] {
                let point = tree_poa(n, a(alpha), Concept::KBse(3)).unwrap();
                if let Some(rho) = point.max_rho {
                    assert!(rho <= 25.0, "Theorem 3.15 violated at n={n}, α={alpha}");
                }
            }
        }
    }

    #[test]
    fn threaded_sweep_matches_serial_point_exactly() {
        // check_many shards instances across the pool; verdicts, counts,
        // and the worst witness are deterministic regardless.
        let serial = tree_poa(8, a("2"), Concept::Bne).unwrap();
        let policy = ExecPolicy::default().with_threads(4);
        let pooled = tree_poa_with(8, a("2"), Concept::Bne, &policy).unwrap();
        assert_eq!(serial.max_rho, pooled.max_rho);
        assert_eq!(serial.stable_count, pooled.stable_count);
        assert_eq!(serial.worst, pooled.worst);
        assert_eq!(serial.exhausted, 0);
        assert_eq!(pooled.exhausted, 0);
    }

    #[test]
    fn exhausted_instances_are_counted_not_fatal() {
        // A zero deadline stops every scan large enough to reach its
        // first poll; small fully-pruned instances still complete, so
        // the sweep reports a mix instead of erroring out.
        let policy = ExecPolicy::default().with_deadline(std::time::Duration::ZERO);
        let point = tree_poa_with(10, a("2"), Concept::Bne, &policy).unwrap();
        assert!(point.exhausted > 0, "some scans must exhaust");
        assert_eq!(point.total, 106);
    }

    #[test]
    fn batch_budget_pool_sheds_the_sweep_tail() {
        // A tiny global pool spans the whole chunked sweep: once the
        // first instances drain it, the remaining exponential checks
        // load-shed into the exhausted count instead of running.
        let policy = ExecPolicy::default().with_batch_budget(5);
        let point = tree_poa_with(10, a("2"), Concept::Bne, &policy).unwrap();
        assert_eq!(point.total, 106);
        assert!(point.exhausted > 0, "a 5-eval pool must shed instances");
        assert!(point.stable_count + point.exhausted <= point.total);
        // The shed instances are a subset of the unbudgeted sweep's
        // work, so the certified-stable count can only shrink.
        let full = tree_poa(10, a("2"), Concept::Bne).unwrap();
        assert!(point.stable_count <= full.stable_count);
        assert_eq!(full.exhausted, 0);
    }

    #[test]
    fn graph_poa_runs_on_tiny_instances() {
        let point = graph_poa(5, a("1/2"), Concept::Bse).unwrap();
        // For α < 1 only the clique is BSE (Prop 3.16) and it is optimal.
        assert_eq!(point.stable_count, 1);
        assert!((point.max_rho.unwrap() - 1.0).abs() < 1e-12);
    }
}
