//! Empirical Price of Anarchy by exhaustive enumeration: for a given
//! `(n, α)` and solution concept, the worst social cost ratio over *all*
//! trees (or all connected graphs) on `n` nodes that are stable under the
//! concept. This regenerates Table 1's rows at laptop scale — the shape of
//! the measured curves is what the reproduction compares against the
//! paper's asymptotic bounds.
//!
//! Every instance's stability check routes through one
//! [`Solver::check_many`] batch: with `threads > 1` in the
//! [`ExecPolicy`] the enumeration sweep itself parallelizes (one query
//! per instance on one scoped pool), and budgeted or deadlined policies
//! degrade per instance into an `exhausted` count instead of aborting
//! the whole sweep. A policy with a
//! [`batch_budget`](ExecPolicy::batch_budget) goes further: the **whole
//! sweep** drains one shared atomic eval pool (held across the chunked
//! `check_many` calls via [`Solver::check_many_pooled`]), so a sweep can
//! be given a global work bound and load-sheds the tail of its
//! enumeration into the `exhausted` count — the shape Table 1's partial
//! rows surface.

use bncg_atlas::DynAtlas;
use bncg_core::solver::{ExecPolicy, Solver, StabilityQuery, Verdict};
use bncg_core::{social_cost_ratio, Alpha, Concept, CostModelSpec, GameError, GameState};
use bncg_graph::{enumerate, Graph};
use std::sync::atomic::AtomicU64;

/// The outcome of one exhaustive PoA evaluation.
#[derive(Debug, Clone)]
pub struct PoaPoint {
    /// Number of agents.
    pub n: usize,
    /// Edge price.
    pub alpha: Alpha,
    /// The concept quantified over.
    pub concept: Concept,
    /// Worst ρ among stable instances (`None` if no instance is stable).
    pub max_rho: Option<f64>,
    /// A worst-case stable instance.
    pub worst: Option<Graph>,
    /// How many enumerated instances were stable.
    pub stable_count: usize,
    /// How many instances were enumerated.
    pub total: usize,
    /// Instances whose check exhausted the execution policy (excluded
    /// from `max_rho`; always 0 under an unbounded policy).
    pub exhausted: usize,
    /// Instances whose verdict came from the precomputed atlas at zero
    /// solver cost (always 0 when no atlas was supplied).
    pub atlas_hits: usize,
    /// The cost model every stability check and social-cost evaluation
    /// priced under.
    pub model: CostModelSpec,
}

/// Exhaustive PoA over all free trees on `n` nodes.
///
/// # Errors
///
/// Forwards the enumeration guard and checker guards.
pub fn tree_poa(n: usize, alpha: Alpha, concept: Concept) -> Result<PoaPoint, GameError> {
    tree_poa_with(n, alpha, concept, &ExecPolicy::default())
}

/// [`tree_poa`] under an explicit [`ExecPolicy`].
///
/// # Errors
///
/// Forwards the enumeration guard and solver errors.
pub fn tree_poa_with(
    n: usize,
    alpha: Alpha,
    concept: Concept,
    policy: &ExecPolicy,
) -> Result<PoaPoint, GameError> {
    let trees = enumerate::free_trees(n).map_err(GameError::Graph)?;
    poa_over(
        &trees,
        n,
        alpha,
        concept,
        CostModelSpec::SumDistances,
        policy,
        None,
    )
}

/// Exhaustive PoA over all connected graphs on `n` nodes.
///
/// # Errors
///
/// Forwards the enumeration guard and checker guards.
pub fn graph_poa(n: usize, alpha: Alpha, concept: Concept) -> Result<PoaPoint, GameError> {
    graph_poa_with(n, alpha, concept, &ExecPolicy::default())
}

/// [`graph_poa`] under an explicit [`ExecPolicy`].
///
/// # Errors
///
/// Forwards the enumeration guard and solver errors.
pub fn graph_poa_with(
    n: usize,
    alpha: Alpha,
    concept: Concept,
    policy: &ExecPolicy,
) -> Result<PoaPoint, GameError> {
    let graphs = enumerate::connected_graphs(n).map_err(GameError::Graph)?;
    poa_over(
        &graphs,
        n,
        alpha,
        concept,
        CostModelSpec::SumDistances,
        policy,
        None,
    )
}

/// A conclusive per-instance verdict, whatever produced it.
enum Resolved {
    Stable,
    Unstable,
    Exhausted,
}

fn poa_over(
    instances: &[Graph],
    n: usize,
    alpha: Alpha,
    concept: Concept,
    model: CostModelSpec,
    policy: &ExecPolicy,
    atlas: Option<&DynAtlas>,
) -> Result<PoaPoint, GameError> {
    // One eval pool for the *whole sweep*: chunking bounds resident
    // state, not the budget scope, so the pool outlives every
    // `check_many_pooled` call and the batch budget means "this much
    // work for the entire enumeration".
    let pool = AtomicU64::new(0);
    poa_over_pooled(instances, n, alpha, concept, model, policy, &pool, atlas)
}

#[allow(clippy::too_many_arguments)]
fn poa_over_pooled(
    instances: &[Graph],
    n: usize,
    alpha: Alpha,
    concept: Concept,
    model: CostModelSpec,
    policy: &ExecPolicy,
    pool: &AtomicU64,
    atlas: Option<&DynAtlas>,
) -> Result<PoaPoint, GameError> {
    let total = instances.len();
    // One engine state per instance serves the checker and the
    // social-cost evaluation alike; each batch shares one thread pool.
    // States are built per chunk, not for the whole enumeration —
    // connected_graphs(9) is ~261k instances, and an n² distance matrix
    // per instance held for the whole sweep would dwarf the enumeration
    // itself. Chunks of threads·16 keep every worker saturated while
    // bounding the resident set.
    let solver = Solver::new(policy.clone());
    let chunk_size = (policy.threads.max(1) * 16).max(64);
    let mut stable_count = 0usize;
    let mut exhausted = 0usize;
    let mut atlas_hits = 0usize;
    let mut best: Option<(f64, Graph)> = None;
    for chunk in instances.chunks(chunk_size) {
        // First pass: conclusive stored verdicts answer at zero solver
        // cost — the shared eval pool is never touched for a hit.
        let mut resolved: Vec<Option<Resolved>> = Vec::with_capacity(chunk.len());
        let mut live: Vec<usize> = Vec::new();
        for (i, g) in chunk.iter().enumerate() {
            // The corpus stores default-model verdicts only, so any
            // other model goes straight to the live solver.
            let hit = atlas
                .filter(|_| model.is_default())
                .and_then(|a| a.lookup(g, concept, alpha).ok().flatten())
                .and_then(|h| h.record.verdict.is_stable());
            match hit {
                Some(true) => {
                    atlas_hits += 1;
                    resolved.push(Some(Resolved::Stable));
                }
                Some(false) => {
                    atlas_hits += 1;
                    resolved.push(Some(Resolved::Unstable));
                }
                None => {
                    live.push(i);
                    resolved.push(None);
                }
            }
        }
        // Second pass: the misses run through one pooled solver batch.
        if !live.is_empty() {
            let states: Vec<GameState> = live
                .iter()
                .map(|&i| GameState::with_cost_model(chunk[i].clone(), alpha, model))
                .collect();
            let queries: Vec<StabilityQuery> = states
                .iter()
                .map(|s| StabilityQuery::on(concept, s))
                .collect();
            let verdicts = solver.check_many_pooled(&queries, pool);
            for (&i, verdict) in live.iter().zip(verdicts) {
                resolved[i] = Some(match verdict? {
                    Verdict::Stable { .. } => Resolved::Stable,
                    Verdict::Unstable { .. } => Resolved::Unstable,
                    Verdict::Exhausted { .. } => Resolved::Exhausted,
                });
            }
        }
        // Merge in enumeration order so the worst-witness tie-break is
        // independent of where each verdict came from.
        for (g, outcome) in chunk.iter().zip(resolved) {
            match outcome.expect("every instance resolved") {
                Resolved::Unstable => continue,
                Resolved::Exhausted => {
                    exhausted += 1;
                    continue;
                }
                Resolved::Stable => {}
            }
            stable_count += 1;
            let rho = if model.is_default() {
                social_cost_ratio(g, alpha)?.as_f64()
            } else {
                // Model-aware ρ: the model's social cost against the
                // *default* optimum — a fixed positive scale at fixed
                // n, so comparisons over one instance set are sound.
                GameState::with_cost_model(g.clone(), alpha, model)
                    .social_cost_ratio()?
                    .as_f64()
            };
            if best.as_ref().is_none_or(|(b, _)| rho > *b) {
                best = Some((rho, g.clone()));
            }
        }
    }
    let (max_rho, worst) = match best {
        Some((r, g)) => (Some(r), Some(g)),
        None => (None, None),
    };
    Ok(PoaPoint {
        n,
        alpha,
        concept,
        max_rho,
        worst,
        stable_count,
        total,
        exhausted,
        atlas_hits,
        model,
    })
}

/// A sweep of [`tree_poa`] over an α grid (parallel across the grid,
/// see [`tree_poa_grid`]).
///
/// # Errors
///
/// Forwards the per-point errors.
pub fn tree_poa_sweep(
    n: usize,
    alphas: &[Alpha],
    concept: Concept,
) -> Result<Vec<PoaPoint>, GameError> {
    tree_poa_grid(n, alphas, concept, &ExecPolicy::default(), None)
}

/// Exhaustive tree PoA over a whole α grid at once: the instances are
/// enumerated a single time and each α point runs on its own scoped
/// thread. All points share **one** batch-budget pool (when the policy
/// carries one) — the budget bounds the entire grid's work, and which
/// points shed is a race between the sweeps, exactly like competing
/// tenants on one pool. Per-point results are otherwise deterministic
/// and identical to serial [`tree_poa_with`] calls. A supplied atlas
/// answers stored instances at zero solver cost ([`PoaPoint::atlas_hits`]).
///
/// # Errors
///
/// Forwards the enumeration guard and solver errors.
pub fn tree_poa_grid(
    n: usize,
    alphas: &[Alpha],
    concept: Concept,
    policy: &ExecPolicy,
    atlas: Option<&DynAtlas>,
) -> Result<Vec<PoaPoint>, GameError> {
    tree_poa_grid_under(
        n,
        alphas,
        concept,
        CostModelSpec::SumDistances,
        policy,
        atlas,
    )
}

/// [`tree_poa_grid`] pricing every stability check and social cost
/// under an explicit [`CostModelSpec`]. The default model reproduces
/// [`tree_poa_grid`] exactly; a non-default model bypasses the atlas
/// (the corpus stores default-model verdicts only).
///
/// # Errors
///
/// Forwards the enumeration guard and solver errors.
pub fn tree_poa_grid_under(
    n: usize,
    alphas: &[Alpha],
    concept: Concept,
    model: CostModelSpec,
    policy: &ExecPolicy,
    atlas: Option<&DynAtlas>,
) -> Result<Vec<PoaPoint>, GameError> {
    let trees = enumerate::free_trees(n).map_err(GameError::Graph)?;
    poa_grid(&trees, n, alphas, concept, model, policy, atlas)
}

/// [`tree_poa_grid`] over all connected graphs instead of trees.
///
/// # Errors
///
/// Forwards the enumeration guard and solver errors.
pub fn graph_poa_grid(
    n: usize,
    alphas: &[Alpha],
    concept: Concept,
    policy: &ExecPolicy,
    atlas: Option<&DynAtlas>,
) -> Result<Vec<PoaPoint>, GameError> {
    graph_poa_grid_under(
        n,
        alphas,
        concept,
        CostModelSpec::SumDistances,
        policy,
        atlas,
    )
}

/// [`graph_poa_grid`] under an explicit [`CostModelSpec`] (see
/// [`tree_poa_grid_under`]).
///
/// # Errors
///
/// Forwards the enumeration guard and solver errors.
pub fn graph_poa_grid_under(
    n: usize,
    alphas: &[Alpha],
    concept: Concept,
    model: CostModelSpec,
    policy: &ExecPolicy,
    atlas: Option<&DynAtlas>,
) -> Result<Vec<PoaPoint>, GameError> {
    let graphs = enumerate::connected_graphs(n).map_err(GameError::Graph)?;
    poa_grid(&graphs, n, alphas, concept, model, policy, atlas)
}

#[allow(clippy::too_many_arguments)]
fn poa_grid(
    instances: &[Graph],
    n: usize,
    alphas: &[Alpha],
    concept: Concept,
    model: CostModelSpec,
    policy: &ExecPolicy,
    atlas: Option<&DynAtlas>,
) -> Result<Vec<PoaPoint>, GameError> {
    // One pool spans every α point — a batch budget means "this much
    // work for the whole grid", matching the single-sweep semantics.
    let pool = AtomicU64::new(0);
    // The grid threads multiply against the solver's inner pool, so
    // split the configured worker count across the α points instead of
    // oversubscribing by |grid| × threads.
    let mut inner = policy.clone();
    inner.threads = (policy.threads.max(1) / alphas.len().max(1)).max(1);
    let (inner, pool) = (&inner, &pool);
    std::thread::scope(|s| {
        let handles: Vec<_> = alphas
            .iter()
            .map(|&alpha| {
                s.spawn(move || {
                    poa_over_pooled(instances, n, alpha, concept, model, inner, pool, atlas)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("α sweep thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Alpha {
        s.parse().unwrap()
    }

    #[test]
    fn star_is_always_among_stable_trees() {
        // For α ≥ 1 the star is stable under every concept, so max_rho is
        // always defined and at least 1.
        for concept in [Concept::Ps, Concept::Bswe, Concept::Bge, Concept::Bne] {
            let point = tree_poa(7, a("2"), concept).unwrap();
            assert!(point.stable_count >= 1);
            assert!(point.max_rho.unwrap() >= 1.0 - 1e-12);
            assert_eq!(point.total, 11);
        }
    }

    #[test]
    fn poa_is_monotone_in_cooperation() {
        // More cooperation → fewer stable states → weakly smaller PoA.
        for alpha in ["3/2", "3", "6"] {
            let alpha = a(alpha);
            let ps = tree_poa(8, alpha, Concept::Ps).unwrap().max_rho.unwrap();
            let bge = tree_poa(8, alpha, Concept::Bge).unwrap().max_rho.unwrap();
            let bne = tree_poa(8, alpha, Concept::Bne).unwrap().max_rho.unwrap();
            let kbse = tree_poa(8, alpha, Concept::KBse(3))
                .unwrap()
                .max_rho
                .unwrap();
            assert!(bge <= ps + 1e-12);
            assert!(bne <= bge + 1e-12);
            assert!(kbse <= bge + 1e-12);
        }
    }

    #[test]
    fn theorem_3_6_bound_holds_empirically() {
        for n in 5..=9usize {
            for alpha in ["1", "2", "4", "8", "16"] {
                let alpha = a(alpha);
                let point = tree_poa(n, alpha, Concept::Bswe).unwrap();
                if let Some(rho) = point.max_rho {
                    let bound = bncg_core::bounds::theorem_3_6_bound(alpha);
                    assert!(
                        rho <= bound + 1e-9,
                        "Theorem 3.6 violated: ρ = {rho} > {bound} (n={n}, α={alpha})"
                    );
                }
            }
        }
    }

    #[test]
    fn theorem_3_15_bound_holds_empirically() {
        for n in 5..=8usize {
            for alpha in ["1", "3", "9", "27"] {
                let point = tree_poa(n, a(alpha), Concept::KBse(3)).unwrap();
                if let Some(rho) = point.max_rho {
                    assert!(rho <= 25.0, "Theorem 3.15 violated at n={n}, α={alpha}");
                }
            }
        }
    }

    #[test]
    fn threaded_sweep_matches_serial_point_exactly() {
        // check_many shards instances across the pool; verdicts, counts,
        // and the worst witness are deterministic regardless.
        let serial = tree_poa(8, a("2"), Concept::Bne).unwrap();
        let policy = ExecPolicy::default().with_threads(4);
        let pooled = tree_poa_with(8, a("2"), Concept::Bne, &policy).unwrap();
        assert_eq!(serial.max_rho, pooled.max_rho);
        assert_eq!(serial.stable_count, pooled.stable_count);
        assert_eq!(serial.worst, pooled.worst);
        assert_eq!(serial.exhausted, 0);
        assert_eq!(pooled.exhausted, 0);
    }

    #[test]
    fn exhausted_instances_are_counted_not_fatal() {
        // A zero deadline stops every scan large enough to reach its
        // first poll; small fully-pruned instances still complete, so
        // the sweep reports a mix instead of erroring out.
        let policy = ExecPolicy::default().with_deadline(std::time::Duration::ZERO);
        let point = tree_poa_with(10, a("2"), Concept::Bne, &policy).unwrap();
        assert!(point.exhausted > 0, "some scans must exhaust");
        assert_eq!(point.total, 106);
    }

    #[test]
    fn batch_budget_pool_sheds_the_sweep_tail() {
        // A tiny global pool spans the whole chunked sweep: once the
        // first instances drain it, the remaining exponential checks
        // load-shed into the exhausted count instead of running.
        let policy = ExecPolicy::default().with_batch_budget(5);
        let point = tree_poa_with(10, a("2"), Concept::Bne, &policy).unwrap();
        assert_eq!(point.total, 106);
        assert!(point.exhausted > 0, "a 5-eval pool must shed instances");
        assert!(point.stable_count + point.exhausted <= point.total);
        // The shed instances are a subset of the unbudgeted sweep's
        // work, so the certified-stable count can only shrink.
        let full = tree_poa(10, a("2"), Concept::Bne).unwrap();
        assert!(point.stable_count <= full.stable_count);
        assert_eq!(full.exhausted, 0);
    }

    #[test]
    fn grid_sweep_matches_serial_points_exactly() {
        // One scoped thread per α, shared pool unbudgeted: every point
        // must equal its serial counterpart bit for bit.
        let alphas: Vec<Alpha> = ["1", "2", "8"].map(a).to_vec();
        let grid = tree_poa_grid(8, &alphas, Concept::Bne, &ExecPolicy::default(), None).unwrap();
        assert_eq!(grid.len(), alphas.len());
        for (point, &alpha) in grid.iter().zip(&alphas) {
            let serial = tree_poa(8, alpha, Concept::Bne).unwrap();
            assert_eq!(point.alpha, alpha);
            assert_eq!(point.max_rho, serial.max_rho);
            assert_eq!(point.stable_count, serial.stable_count);
            assert_eq!(point.worst, serial.worst);
            assert_eq!(point.exhausted, 0);
            assert_eq!(point.atlas_hits, 0);
        }
    }

    #[test]
    fn grid_shares_one_batch_budget_pool() {
        // A tiny pool spans the whole α grid: the three concurrent
        // sweeps drain it together, so shedding shows up across the
        // grid's total rather than per point.
        let alphas: Vec<Alpha> = ["2", "4", "8"].map(a).to_vec();
        let policy = ExecPolicy::default().with_batch_budget(5);
        let grid = tree_poa_grid(10, &alphas, Concept::Bne, &policy, None).unwrap();
        let exhausted: usize = grid.iter().map(|p| p.exhausted).sum();
        assert!(exhausted > 0, "a 5-eval pool must shed most of the grid");
        for point in &grid {
            assert_eq!(point.total, 106);
        }
    }

    #[test]
    fn atlas_hits_serve_sweeps_at_zero_solver_cost() {
        use bncg_atlas::{build, AlphaSpec, Atlas, BuildSpec, MemoryBacking, RamBacking};
        // A corpus covering every connected class at n ≤ 7 for BNE at
        // α = 2 — trees included.
        let spec = BuildSpec {
            max_n: 7,
            grid: vec![AlphaSpec::Fixed(a("2"))],
            concepts: vec![Concept::Bne],
        };
        let backing: Box<dyn MemoryBacking + Send + Sync> = Box::new(RamBacking::new());
        let mut atlas = Atlas::open(backing).unwrap();
        build(&mut atlas, &spec, 10_000_000, None).unwrap();

        // Under a 1-eval budget the unaided sweep sheds almost
        // everything; the atlas-backed sweep touches the pool for
        // nothing and completes conclusively.
        let policy = ExecPolicy::default().with_batch_budget(1);
        let starved = tree_poa_with(7, a("2"), Concept::Bne, &policy).unwrap();
        assert!(starved.exhausted > 0, "the starved sweep must shed");
        let served = poa_grid(
            &enumerate::free_trees(7).unwrap(),
            7,
            &[a("2")],
            Concept::Bne,
            CostModelSpec::SumDistances,
            &policy,
            Some(&atlas),
        )
        .unwrap()
        .remove(0);
        assert_eq!(served.atlas_hits, served.total);
        assert_eq!(served.exhausted, 0);
        let unbudgeted = tree_poa(7, a("2"), Concept::Bne).unwrap();
        assert_eq!(served.max_rho, unbudgeted.max_rho);
        assert_eq!(served.stable_count, unbudgeted.stable_count);
        assert_eq!(served.worst, unbudgeted.worst);
    }

    #[test]
    fn identity_generalized_model_reproduces_the_default_sweep() {
        // Generalized(Identity) prices distance exactly like the
        // default model, so verdicts, counts, and ρ must coincide even
        // though the scan runs through the generic pricing arm.
        let id = CostModelSpec::Generalized(bncg_core::Utility::Identity);
        let base = tree_poa_grid(8, &[a("2")], Concept::Bne, &ExecPolicy::default(), None).unwrap();
        let under =
            tree_poa_grid_under(8, &[a("2")], Concept::Bne, id, &ExecPolicy::default(), None)
                .unwrap();
        assert_eq!(base[0].stable_count, under[0].stable_count);
        assert_eq!(base[0].max_rho, under[0].max_rho);
        assert_eq!(base[0].worst, under[0].worst);
        assert_eq!(under[0].model, id);
    }

    #[test]
    fn non_default_model_sweeps_bypass_the_atlas() {
        use bncg_atlas::{build, AlphaSpec, Atlas, BuildSpec, MemoryBacking, RamBacking};
        let spec = BuildSpec {
            max_n: 6,
            grid: vec![AlphaSpec::Fixed(a("2"))],
            concepts: vec![Concept::Bne],
        };
        let backing: Box<dyn MemoryBacking + Send + Sync> = Box::new(RamBacking::new());
        let mut atlas = Atlas::open(backing).unwrap();
        build(&mut atlas, &spec, 10_000_000, None).unwrap();
        let capped = CostModelSpec::Generalized(bncg_core::Utility::Capped(2));
        let under = tree_poa_grid_under(
            6,
            &[a("2")],
            Concept::Bne,
            capped,
            &ExecPolicy::default(),
            Some(&atlas),
        )
        .unwrap();
        // Every verdict must come from the live solver: the corpus
        // stores default-model verdicts, which a capped model cannot
        // reuse.
        assert_eq!(under[0].atlas_hits, 0);
        assert_eq!(under[0].exhausted, 0);
        assert!(under[0].stable_count > 0, "the star is stable at α = 2");
    }

    #[test]
    fn graph_poa_runs_on_tiny_instances() {
        let point = graph_poa(5, a("1/2"), Concept::Bse).unwrap();
        // For α < 1 only the clique is BSE (Prop 3.16) and it is optimal.
        assert_eq!(point.stable_count, 1);
        assert!((point.max_rho.unwrap() - 1.0).abs() < 1e-12);
    }
}
