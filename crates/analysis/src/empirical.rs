//! Empirical Price of Anarchy by exhaustive enumeration: for a given
//! `(n, α)` and solution concept, the worst social cost ratio over *all*
//! trees (or all connected graphs) on `n` nodes that are stable under the
//! concept. This regenerates Table 1's rows at laptop scale — the shape of
//! the measured curves is what the reproduction compares against the
//! paper's asymptotic bounds.

use bncg_core::{Alpha, Concept, GameError, GameState};
use bncg_graph::{enumerate, Graph};

/// The outcome of one exhaustive PoA evaluation.
#[derive(Debug, Clone)]
pub struct PoaPoint {
    /// Number of agents.
    pub n: usize,
    /// Edge price.
    pub alpha: Alpha,
    /// The concept quantified over.
    pub concept: Concept,
    /// Worst ρ among stable instances (`None` if no instance is stable).
    pub max_rho: Option<f64>,
    /// A worst-case stable instance.
    pub worst: Option<Graph>,
    /// How many enumerated instances were stable.
    pub stable_count: usize,
    /// How many instances were enumerated.
    pub total: usize,
}

/// Exhaustive PoA over all free trees on `n` nodes.
///
/// # Errors
///
/// Forwards the enumeration guard and checker guards.
pub fn tree_poa(n: usize, alpha: Alpha, concept: Concept) -> Result<PoaPoint, GameError> {
    let trees = enumerate::free_trees(n).map_err(GameError::Graph)?;
    poa_over(trees, n, alpha, concept)
}

/// Exhaustive PoA over all connected graphs on `n` nodes.
///
/// # Errors
///
/// Forwards the enumeration guard and checker guards.
pub fn graph_poa(n: usize, alpha: Alpha, concept: Concept) -> Result<PoaPoint, GameError> {
    let graphs = enumerate::connected_graphs(n).map_err(GameError::Graph)?;
    poa_over(graphs, n, alpha, concept)
}

fn poa_over(
    instances: Vec<Graph>,
    n: usize,
    alpha: Alpha,
    concept: Concept,
) -> Result<PoaPoint, GameError> {
    let total = instances.len();
    let mut stable_count = 0usize;
    let mut best: Option<(f64, Graph)> = None;
    for g in instances {
        // One engine state per instance serves the (possibly composite)
        // checker and the social-cost evaluation alike.
        let state = GameState::new(g, alpha);
        if !concept.is_stable_in(&state)? {
            continue;
        }
        stable_count += 1;
        let rho = state.social_cost_ratio()?.as_f64();
        if best.as_ref().is_none_or(|(b, _)| rho > *b) {
            best = Some((rho, state.graph().clone()));
        }
    }
    let (max_rho, worst) = match best {
        Some((r, g)) => (Some(r), Some(g)),
        None => (None, None),
    };
    Ok(PoaPoint {
        n,
        alpha,
        concept,
        max_rho,
        worst,
        stable_count,
        total,
    })
}

/// A sweep of [`tree_poa`] over an α grid.
///
/// # Errors
///
/// Forwards the per-point errors.
pub fn tree_poa_sweep(
    n: usize,
    alphas: &[Alpha],
    concept: Concept,
) -> Result<Vec<PoaPoint>, GameError> {
    alphas
        .iter()
        .map(|&alpha| tree_poa(n, alpha, concept))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Alpha {
        s.parse().unwrap()
    }

    #[test]
    fn star_is_always_among_stable_trees() {
        // For α ≥ 1 the star is stable under every concept, so max_rho is
        // always defined and at least 1.
        for concept in [Concept::Ps, Concept::Bswe, Concept::Bge, Concept::Bne] {
            let point = tree_poa(7, a("2"), concept).unwrap();
            assert!(point.stable_count >= 1);
            assert!(point.max_rho.unwrap() >= 1.0 - 1e-12);
            assert_eq!(point.total, 11);
        }
    }

    #[test]
    fn poa_is_monotone_in_cooperation() {
        // More cooperation → fewer stable states → weakly smaller PoA.
        for alpha in ["3/2", "3", "6"] {
            let alpha = a(alpha);
            let ps = tree_poa(8, alpha, Concept::Ps).unwrap().max_rho.unwrap();
            let bge = tree_poa(8, alpha, Concept::Bge).unwrap().max_rho.unwrap();
            let bne = tree_poa(8, alpha, Concept::Bne).unwrap().max_rho.unwrap();
            let kbse = tree_poa(8, alpha, Concept::KBse(3))
                .unwrap()
                .max_rho
                .unwrap();
            assert!(bge <= ps + 1e-12);
            assert!(bne <= bge + 1e-12);
            assert!(kbse <= bge + 1e-12);
        }
    }

    #[test]
    fn theorem_3_6_bound_holds_empirically() {
        for n in 5..=9usize {
            for alpha in ["1", "2", "4", "8", "16"] {
                let alpha = a(alpha);
                let point = tree_poa(n, alpha, Concept::Bswe).unwrap();
                if let Some(rho) = point.max_rho {
                    let bound = bncg_core::bounds::theorem_3_6_bound(alpha);
                    assert!(
                        rho <= bound + 1e-9,
                        "Theorem 3.6 violated: ρ = {rho} > {bound} (n={n}, α={alpha})"
                    );
                }
            }
        }
    }

    #[test]
    fn theorem_3_15_bound_holds_empirically() {
        for n in 5..=8usize {
            for alpha in ["1", "3", "9", "27"] {
                let point = tree_poa(n, a(alpha), Concept::KBse(3)).unwrap();
                if let Some(rho) = point.max_rho {
                    assert!(rho <= 25.0, "Theorem 3.15 violated at n={n}, α={alpha}");
                }
            }
        }
    }

    #[test]
    fn graph_poa_runs_on_tiny_instances() {
        let point = graph_poa(5, a("1/2"), Concept::Bse).unwrap();
        // For α < 1 only the clique is BSE (Prop 3.16) and it is optimal.
        assert_eq!(point.stable_count, 1);
        assert!((point.max_rho.unwrap() - 1.0).abs() < 1e-12);
    }
}
