//! The exact Price-of-Anarchy **curve** over trees.
//!
//! For trees on a fixed `n` the social cost is `2(n−1)·α + D_T` with
//! `D_T` the tree's total distance, and the optimum is
//! `2(n−1)·(α + n − 1)` — the same denominator for every tree. Hence at
//! any price the worst stable tree is simply the stable tree with the
//! **largest total distance**, independent of α. Combining this with the
//! exact stability windows of `bncg_core::windows` turns the sampled
//! Table 1 rows into a closed-form piecewise curve: finitely many rational
//! breakpoints, and between consecutive breakpoints the PoA equals
//! `(2(n−1)α + D*) / (2(n−1)(α + n − 1))` for the segment's argmax tree.

use crate::report::{fnum, Report};
use bncg_core::windows::{stability_windows, windows_contain, StabilityWindow};
use bncg_core::{Alpha, Concept, GameError};
use bncg_graph::{enumerate, graph6, Graph, RootedTree};

/// One maximal α-interval on which the same tree attains the PoA.
#[derive(Debug, Clone)]
pub struct CurveSegment {
    /// Left endpoint (`None` = 0); segments are closed at breakpoints in
    /// the same semantics as stability windows.
    pub lo: Option<Alpha>,
    /// Right endpoint (`None` = ∞).
    pub hi: Option<Alpha>,
    /// Total distance of the worst stable tree (`None` if no tree is
    /// stable on this segment).
    pub worst_distance: Option<u64>,
    /// The worst stable tree itself.
    pub worst: Option<Graph>,
}

impl CurveSegment {
    /// Evaluates the segment's PoA at a price inside it.
    #[must_use]
    pub fn rho_at(&self, n: usize, alpha: Alpha) -> Option<f64> {
        let d = self.worst_distance? as f64;
        let a = alpha.as_f64();
        let n1 = (n - 1) as f64;
        Some((2.0 * n1 * a + d) / (2.0 * n1 * (a + n1)))
    }
}

/// Computes the exact PoA curve over all trees on `n` nodes for a
/// polynomial concept (RE, BAE, BSwE, PS, BGE).
///
/// # Errors
///
/// Forwards the enumeration guard and the windows module's
/// polynomial-concept restriction.
pub fn exact_tree_poa_curve(n: usize, concept: Concept) -> Result<Vec<CurveSegment>, GameError> {
    let trees = enumerate::free_trees(n).map_err(GameError::Graph)?;
    // Per tree: total distance + exact stability windows.
    let mut data: Vec<(Graph, u64, Vec<StabilityWindow>)> = Vec::with_capacity(trees.len());
    let mut breakpoints: Vec<(i128, i128)> = Vec::new();
    for tree in trees {
        let total: u64 = RootedTree::new(&tree, 0)
            .expect("enumerated trees are trees")
            .dist_sums()
            .iter()
            .sum();
        let windows = stability_windows(&tree, concept)?;
        for w in &windows {
            for bound in [w.lo, w.hi].into_iter().flatten() {
                if bound.num() > 0 {
                    breakpoints.push((bound.num(), bound.den()));
                }
            }
        }
        data.push((tree, total, windows));
    }
    breakpoints.sort_by(|a, b| (a.0 * b.1).cmp(&(b.0 * a.1)));
    breakpoints.dedup_by(|a, b| a.0 * b.1 == b.0 * a.1);

    let to_alpha = |p: (i128, i128)| -> Alpha {
        Alpha::from_ratio(p.0 as i64, p.1 as i64).expect("small positive rational")
    };
    // Elementary evaluation points: below, at, and between breakpoints.
    let mut eval_points: Vec<(Option<Alpha>, Option<Alpha>, Alpha)> = Vec::new();
    let mut prev: Option<(i128, i128)> = None;
    for (i, &p) in breakpoints.iter().enumerate() {
        let rep = match prev {
            None => (p.0, p.1 * 2),
            Some(q) => (p.0 * q.1 + q.0 * p.1, 2 * p.1 * q.1),
        };
        eval_points.push((prev.map(to_alpha), Some(to_alpha(p)), to_alpha(rep)));
        eval_points.push((Some(to_alpha(p)), Some(to_alpha(p)), to_alpha(p)));
        prev = Some(p);
        if i == breakpoints.len() - 1 {
            eval_points.push((Some(to_alpha(p)), None, to_alpha((p.0 + p.1, p.1))));
        }
    }
    if breakpoints.is_empty() {
        eval_points.push((None, None, Alpha::integer(1).expect("one")));
    }

    // Worst stable tree per piece, merged into maximal segments.
    let mut out: Vec<CurveSegment> = Vec::new();
    for (lo, hi, rep) in eval_points {
        let mut best: Option<(u64, &Graph)> = None;
        for (tree, total, windows) in &data {
            if windows_contain(windows, rep, true) && best.as_ref().is_none_or(|(b, _)| total > b) {
                best = Some((*total, tree));
            }
        }
        let (worst_distance, worst) = match best {
            Some((d, g)) => (Some(d), Some(g.clone())),
            None => (None, None),
        };
        match out.last_mut() {
            Some(last) if last.worst_distance == worst_distance => {
                last.hi = hi;
            }
            _ => out.push(CurveSegment {
                lo,
                hi,
                worst_distance,
                worst,
            }),
        }
    }
    Ok(out)
}

/// Report runner: the exact PS and BGE PoA curves over trees on `n`
/// nodes, one row per segment.
///
/// # Errors
///
/// Forwards [`exact_tree_poa_curve`] errors.
pub fn curve_report(report: &mut Report, quick: bool) -> Result<(), GameError> {
    let n = if quick { 8 } else { 9 };
    for concept in [Concept::Ps, Concept::Bge] {
        let segments = exact_tree_poa_curve(n, concept)?;
        let section = report.section(format!(
            "Exact PoA curve over trees (n = {n}, {concept}): {} segments",
            segments.len()
        ));
        section.note("on each segment the SAME tree is worst (PoA ordering on fixed-n trees is α-free); ρ evaluated at segment endpoints");
        let table = section.table([
            "segment",
            "worst D",
            "worst tree (graph6)",
            "ρ at left",
            "ρ slope",
        ]);
        for seg in &segments {
            let span = format!(
                "[{}, {}]",
                seg.lo.map_or("0".into(), |a| a.to_string()),
                seg.hi.map_or("∞".into(), |a| a.to_string())
            );
            let at_left = seg
                .lo
                .or(Some(Alpha::integer(1).expect("one")))
                .and_then(|a| seg.rho_at(n, a));
            let decreasing = seg
                .worst_distance
                .map(|d| d > 2 * (n as u64 - 1) * (n as u64 - 1));
            table.row([
                span,
                seg.worst_distance.map_or("–".into(), |d| d.to_string()),
                seg.worst
                    .as_ref()
                    .map_or(Ok("–".into()), graph6::encode)
                    .map_err(GameError::Graph)?,
                at_left.map_or("–".into(), fnum),
                decreasing.map_or("–".into(), |d| {
                    if d { "falling" } else { "rising" }.into()
                }),
            ]);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_matches_grid_empirical_poa() {
        // The closed-form curve must agree with the sampled empirical PoA
        // at every grid price.
        let n = 7;
        for concept in [Concept::Ps, Concept::Bge] {
            let segments = exact_tree_poa_curve(n, concept).unwrap();
            for alpha in ["1/2", "1", "2", "3", "9/2", "8", "16", "64"] {
                let alpha: Alpha = alpha.parse().unwrap();
                let grid = crate::empirical::tree_poa(n, alpha, concept).unwrap();
                // At a shared breakpoint two segments apply; instability
                // regions are open, so the stable set at the breakpoint is
                // the union of its neighbors' — take the max.
                let curve_rho = segments
                    .iter()
                    .filter(|seg| {
                        let above = seg.lo.is_none_or(|l| alpha >= l);
                        let below = seg.hi.is_none_or(|h| alpha <= h);
                        above && below
                    })
                    .filter_map(|seg| seg.rho_at(n, alpha))
                    .fold(None::<f64>, |acc, r| Some(acc.map_or(r, |a| a.max(r))));
                match (grid.max_rho, curve_rho) {
                    (Some(g), Some(c)) => {
                        assert!(
                            (g - c).abs() < 1e-9,
                            "curve ≠ grid at α = {alpha} ({concept})"
                        )
                    }
                    (None, None) => {}
                    other => panic!("stability disagreement at α = {alpha}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn segments_tile_the_positive_axis() {
        let segments = exact_tree_poa_curve(7, Concept::Ps).unwrap();
        assert!(segments.first().unwrap().lo.is_none());
        assert!(segments.last().unwrap().hi.is_none());
        for pair in segments.windows(2) {
            assert_eq!(pair[0].hi, pair[1].lo, "segments must abut");
        }
    }

    #[test]
    fn curve_report_renders() {
        let mut r = Report::new();
        curve_report(&mut r, true).unwrap();
        assert!(r.render().contains("Exact PoA curve"));
    }
}
