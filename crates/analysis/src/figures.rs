//! Regenerating the paper's **figures** as measured artifacts.
//!
//! Figures 1a/1b are relationship diagrams — reproduced as exhaustive
//! verification plus certified witnesses. Figures 2 and 4–8 are witness
//! graphs or proof illustrations — reproduced by building (or searching
//! for) the graph and machine-checking every claim the caption makes.
//! Figure 3 is the stretched-tree construction — reproduced together with
//! a *measured* stability frontier compared against Proposition 3.8's
//! sufficient `α ≥ 7kn`.

use crate::report::{fnum, Report};
use bncg_constructions::figures::{figure5, figure6, figure7, figure8_witness};
use bncg_constructions::stretched::StretchedBinaryTree;
use bncg_constructions::{conjecture, venn};
use bncg_core::unilateral::UnilateralState;
use bncg_core::{concepts, delta, Alpha, Concept, GameError};
use bncg_graph::{enumerate, graph6, Graph};

/// Figure 1a: the subset lattice of solution concepts, verified on an
/// exhaustive corpus, with properness witnesses.
///
/// # Errors
///
/// Forwards enumeration/checker guards.
pub fn fig1a(report: &mut Report, quick: bool) -> Result<(), GameError> {
    let max_n = if quick { 5 } else { 6 };
    let alphas: Vec<Alpha> = ["1/2", "1", "3/2", "2", "3", "5", "8"]
        .iter()
        .map(|s| s.parse().expect("grid α"))
        .collect();
    // The arrows of Figure 1a (subset → superset).
    let arrows: Vec<(Concept, Concept)> = vec![
        (Concept::Ps, Concept::Re),
        (Concept::Ps, Concept::Bae),
        (Concept::Bge, Concept::Ps),
        (Concept::Bge, Concept::Bswe),
        (Concept::Bne, Concept::Bge),
        (Concept::Bne, Concept::Bae),
        (Concept::KBse(2), Concept::Bge),
        (Concept::KBse(3), Concept::KBse(2)),
        (Concept::Bse, Concept::KBse(3)),
    ];
    let mut corpus: Vec<Graph> = Vec::new();
    for n in 2..=max_n {
        corpus.extend(enumerate::connected_graphs(n).map_err(GameError::Graph)?);
    }
    let section = report.section(format!(
        "Figure 1a: solution-concept lattice (corpus: all connected graphs n ≤ {max_n} × {} prices)",
        alphas.len()
    ));
    let table = section.table(["subset ⊆ superset", "counterexamples", "proper (witness)"]);
    for (sub, sup) in arrows {
        let mut counterexamples = 0usize;
        let mut proper = false;
        for g in &corpus {
            for &alpha in &alphas {
                let in_sub = sub.is_stable(g, alpha)?;
                let in_sup = sup.is_stable(g, alpha)?;
                if in_sub && !in_sup {
                    counterexamples += 1;
                }
                if in_sup && !in_sub {
                    proper = true;
                }
            }
        }
        assert_eq!(
            counterexamples, 0,
            "lattice arrow {sub} ⊆ {sup} violated on the corpus"
        );
        let mut witness_note = if proper {
            "corpus".to_string()
        } else {
            String::new()
        };
        if !proper {
            // Curated witnesses found by larger searches (see the probe
            // experiments): each is re-certified here.
            if let Some((g, alpha, not_in_sub)) = curated_properness(sub, sup)? {
                assert!(sup.is_stable(&g, alpha)?, "curated witness not in {sup}");
                assert!(not_in_sub, "curated witness unexpectedly in {sub}");
                proper = true;
                witness_note = format!("curated (n = {}, α = {alpha})", g.n());
            }
        }
        assert!(
            proper,
            "lattice arrow {sub} ⊂ {sup} lacks a properness witness"
        );
        table.row([
            format!("{sub} ⊆ {sup}"),
            counterexamples.to_string(),
            witness_note,
        ]);
    }
    // Incomparability of BNE and 2-BSE via the paper's Figures 6 and 7.
    let f6 = figure6();
    let f7 = figure7(6);
    section.note(format!(
        "BNE vs k-BSE incomparable: Figure 6 graph is BNE ∧ ¬2-BSE ({}), Figure 7 graph is ¬BNE ({})",
        concepts::bne::is_stable(&f6.graph, f6.alpha)?,
        delta::move_improves_all(&f7.graph, f7.alpha, f7.violation.as_ref().expect("move"))?
    ));
    Ok(())
}

/// Curated properness witnesses for arrows the tiny corpus cannot
/// separate, discovered by larger offline searches. Returns the witness
/// graph, its price, and the (already evaluated) fact that the graph is
/// *not* in the subset concept — evaluated here with the appropriate
/// sound substitute when the exact subset check is infeasible (for
/// `BSE ⊆ 3-BSE` the 4-BSE refutation implies ¬BSE since BSE ⊆ 4-BSE).
///
/// # Errors
///
/// Forwards checker guards.
fn curated_properness(
    sub: Concept,
    sup: Concept,
) -> Result<Option<(Graph, Alpha, bool)>, GameError> {
    let parse = |s: &str| -> Alpha { s.parse().expect("valid α") };
    Ok(match (sub, sup) {
        // PS-stable tree that admits an improving swap (8-node search hit).
        (Concept::Bge, Concept::Ps) => {
            let g = graph6::decode("GhCGOO").map_err(GameError::Graph)?;
            let alpha = parse("6");
            let not_in_sub = !concepts::bge::is_stable(&g, alpha);
            Some((g, alpha, not_in_sub))
        }
        // BGE-stable 6-node graph with an improving neighborhood move.
        (Concept::Bne, Concept::Bge) => {
            let g = graph6::decode("E]a?").map_err(GameError::Graph)?;
            let alpha = parse("2");
            let not_in_sub = !Concept::Bne.is_stable(&g, alpha)?;
            Some((g, alpha, not_in_sub))
        }
        // Figure 6: in BNE ⊆ BGE but not in 2-BSE.
        (Concept::KBse(2), Concept::Bge) => {
            let fig = figure6();
            let not_in_sub = !Concept::KBse(2).is_stable(&fig.graph, fig.alpha)?;
            Some((fig.graph, fig.alpha, not_in_sub))
        }
        // Spider(3 legs × 3): 2-BSE (= BGE on trees) at α = 9 but not 3-BSE.
        (Concept::KBse(3), Concept::KBse(2)) => {
            let g = bncg_graph::generators::spider(3, 3);
            let alpha = parse("9");
            let not_in_sub = !Concept::KBse(3).is_stable(&g, alpha)?;
            Some((g, alpha, not_in_sub))
        }
        // Spider(3 legs × 3) at α = 10: 3-BSE but not 4-BSE (⊇ BSE).
        (Concept::Bse, Concept::KBse(3)) => {
            let g = bncg_graph::generators::spider(3, 3);
            let alpha = parse("10");
            let not_in_sub = !Concept::KBse(4).is_stable(&g, alpha)?;
            Some((g, alpha, not_in_sub))
        }
        _ => None,
    })
}

/// Figure 1b: the RE/BAE/BSwE Venn diagram — a certified witness for each
/// of the eight regions.
///
/// # Errors
///
/// Forwards enumeration guards.
pub fn fig1b(report: &mut Report, quick: bool) -> Result<(), GameError> {
    let (max_graph_n, max_tree_n) = if quick { (5, 8) } else { (6, 9) };
    let grid = venn::default_alpha_grid();
    let witnesses = venn::find_all_witnesses(max_graph_n, max_tree_n, &grid)?;
    let section = report.section("Figure 1b: Venn diagram of RE, BAE, BSwE (Proposition A.1)");
    let table = section.table(["region", "witness (graph6)", "n", "α"]);
    for (region, w) in witnesses {
        match w {
            Some(w) => {
                table.row([
                    region.to_string(),
                    graph6::encode(&w.graph).map_err(GameError::Graph)?,
                    w.graph.n().to_string(),
                    w.alpha.to_string(),
                ]);
            }
            None => {
                table.row([
                    region.to_string(),
                    "NOT FOUND".into(),
                    "–".into(),
                    "–".into(),
                ]);
            }
        }
    }
    Ok(())
}

/// Figure 2 / Proposition 2.3: the Corbo–Parkes conjecture is false.
///
/// # Errors
///
/// Forwards guards; panics if no witness exists in the search space
/// (the proposition guarantees one).
pub fn fig2(report: &mut Report, _quick: bool) -> Result<(), GameError> {
    let alphas: Vec<Alpha> = ["4", "3", "2", "7/2", "5"]
        .iter()
        .map(|s| s.parse().expect("grid α"))
        .collect();
    let witness = conjecture::find_ne_not_ps(5, &alphas)?
        .expect("Proposition 2.3 witness must exist among n ≤ 5");
    let section =
        report.section("Figure 2 / Proposition 2.3: unilateral NE that is not pairwise stable");
    section.note(format!(
        "graph6 = {}, α = {}",
        graph6::encode(witness.state.graph()).map_err(GameError::Graph)?,
        witness.alpha
    ));
    section.note(format!("bilateral deviation: {}", witness.removal));
    section.note(format!(
        "certified: unilateral NE = {}, bilateral PS = {}",
        witness.state.is_ne(witness.alpha)?,
        concepts::ps::is_stable(witness.state.graph(), witness.alpha)
    ));
    let table = section.table(["edge", "owner"]);
    let g = witness.state.graph().clone();
    for (u, v) in g.edges() {
        table.row([
            format!("{{{u}, {v}}}"),
            witness.state.owner(u, v).to_string(),
        ]);
    }
    Ok(())
}

/// Figure 3: stretched binary trees and their measured BGE stability
/// frontier vs. Proposition 3.8's sufficient `α ≥ 7kn`.
///
/// # Errors
///
/// Forwards checker guards.
pub fn fig3(report: &mut Report, quick: bool) -> Result<(), GameError> {
    let shapes: Vec<(usize, usize)> = if quick {
        vec![(2, 1), (2, 2), (3, 1)]
    } else {
        vec![(2, 1), (2, 2), (2, 3), (3, 1), (3, 2), (4, 1)]
    };
    let section =
        report.section("Figure 3: stretched binary trees — measured BGE frontier vs Prop 3.8");
    section.note(
        "min integer α with the tree in BGE (monotone on trees: partner payments rise with α)",
    );
    let table = section.table([
        "d",
        "k",
        "n",
        "min α (measured)",
        "α*/(kn)",
        "paper sufficient 7kn",
    ]);
    for (d, k) in shapes {
        let tree = StretchedBinaryTree::build(d, k);
        let n = tree.graph.n();
        // Binary search the frontier on integers in [1, 7kn].
        let mut lo = 1i64;
        let mut hi = (7 * k * n) as i64;
        debug_assert!(concepts::bge::is_stable(
            &tree.graph,
            Alpha::integer(hi).expect("α"),
        ));
        while lo < hi {
            let mid = (lo + hi) / 2;
            if concepts::bge::is_stable(&tree.graph, Alpha::integer(mid).expect("α")) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        table.row([
            d.to_string(),
            k.to_string(),
            n.to_string(),
            lo.to_string(),
            fnum(lo as f64 / (k * n) as f64),
            (7 * k * n).to_string(),
        ]);
    }
    Ok(())
}

/// Figure 4 / Lemma 3.14: at most one deep child subtree in 3-BSE trees,
/// and the proof's coalition move materialized on a violating tree.
///
/// # Errors
///
/// Forwards enumeration/checker guards.
pub fn fig4(report: &mut Report, quick: bool) -> Result<(), GameError> {
    let max_n = if quick { 7 } else { 8 };
    let alphas: Vec<Alpha> = ["1", "2", "4", "9"]
        .iter()
        .map(|s| s.parse().expect("grid α"))
        .collect();
    let section = report.section("Figure 4 / Lemma 3.14: deep-child uniqueness in 3-BSE trees");
    let mut checked = 0usize;
    for n in 3..=max_n {
        for tree in enumerate::free_trees(n).map_err(GameError::Graph)? {
            for &alpha in &alphas {
                if concepts::kbse::find_violation(&tree, alpha, 3)?.is_none() {
                    assert!(
                        bncg_core::bounds::lemma_3_14_holds(&tree, alpha)?,
                        "Lemma 3.14 violated on a 3-BSE tree"
                    );
                    checked += 1;
                }
            }
        }
    }
    section.note(format!(
        "all {checked} (tree, α) pairs in 3-BSE over n ≤ {max_n} satisfy the at-most-one-deep-child property"
    ));
    // A two-deep-legs tree violates the property and indeed admits the
    // figure's coalition move.
    let spider = bncg_graph::generators::spider(2, 6);
    let alpha: Alpha = "2".parse().expect("α");
    assert!(!bncg_core::bounds::lemma_3_14_holds(&spider, alpha)?);
    let mv = concepts::kbse::find_violation_restricted(&spider, alpha, 3, 1)
        .expect("the deep spider must admit a size-3 coalition move");
    section.note(format!(
        "counterexample spider(2 legs × 6): violates the depth property and admits {mv}"
    ));
    assert!(delta::move_improves_all(&spider, alpha, &mv)?);
    Ok(())
}

/// Figure 5 / Proposition A.4: BAE ∩ BGE but not BNE.
///
/// # Errors
///
/// Forwards checker guards.
pub fn fig5(report: &mut Report, _quick: bool) -> Result<(), GameError> {
    let fig = figure5();
    let section =
        report.section("Figure 5 / Proposition A.4: in BAE ∩ BGE, not in BNE (α = 104.5)");
    let bae = concepts::bae::is_stable(&fig.graph, fig.alpha);
    let bge = concepts::bge::is_stable(&fig.graph, fig.alpha);
    let mv = fig.violation.as_ref().expect("figure move");
    let improving = delta::move_improves_all(&fig.graph, fig.alpha, mv)?;
    assert!(bae && bge && improving);
    section.note(format!(
        "n = {}, in BAE: {bae}, in BGE: {bge}",
        fig.graph.n()
    ));
    section.note(format!("improving neighborhood move (⇒ not BNE): {mv}"));
    Ok(())
}

/// Figure 6 / Proposition A.5: BNE but not 2-BSE.
///
/// # Errors
///
/// Forwards checker guards.
pub fn fig6(report: &mut Report, _quick: bool) -> Result<(), GameError> {
    let fig = figure6();
    let section =
        report.section("Figure 6 / Proposition A.5: in BNE, not in 2-BSE (α = 7, n = 10)");
    let bne = concepts::bne::is_stable(&fig.graph, fig.alpha)?;
    let two_bse_violation = concepts::kbse::find_violation(&fig.graph, fig.alpha, 2)?;
    assert!(bne && two_bse_violation.is_some());
    section.note(format!(
        "reconstructed topology (graph6 = {}): dist(a1) = 19, dist(b1) = 27, dist(c1) = 19 as stated",
        graph6::encode(&fig.graph).map_err(GameError::Graph)?
    ));
    section.note(format!(
        "in BNE: {bne}; 2-BSE violation: {}",
        two_bse_violation.expect("present")
    ));
    Ok(())
}

/// Figure 7 / Proposition A.7: k-BSE but not BNE.
///
/// # Errors
///
/// Forwards checker guards.
pub fn fig7(report: &mut Report, quick: bool) -> Result<(), GameError> {
    let i = if quick { 8 } else { 12 };
    let fig = figure7(i);
    let section = report.section(format!(
        "Figure 7 / Proposition A.7: k-BSE but not BNE (i = {i}, α = {})",
        fig.alpha
    ));
    let mv = fig.violation.as_ref().expect("figure move");
    assert!(delta::move_improves_all(&fig.graph, fig.alpha, mv)?);
    section.note(format!(
        "the center's full rewire improves it and every c_j (⇒ not BNE): {} agents move",
        mv.consenting_agents().len()
    ));
    let refuted =
        concepts::kbse::find_violation_restricted_parallel(&fig.graph, fig.alpha, 2, 2, 4);
    section.note(format!(
        "restricted 2-BSE refuter (≤ 2 removals): {}",
        refuted.map_or("no improving coalition move".to_string(), |m| m.to_string())
    ));
    for k in [2usize, 3] {
        let cert = bncg_constructions::figures::figure7_kbse_certificate(k);
        assert!(cert, "Figure 7 certificate must hold at k = {k}");
        section.note(format!(
            "paper-scale certificate (i = 20k = {}, α = {}): geometry + margin inequalities hold = {cert}",
            20 * k,
            4 * 20 * k - 4
        ));
    }
    Ok(())
}

/// Figure 8 / Proposition 2.1 (reverse): BAE but not unilateral Add
/// Equilibrium (compact substitution witness; see `bncg-constructions`).
///
/// # Errors
///
/// Forwards checker guards.
pub fn fig8(report: &mut Report, _quick: bool) -> Result<(), GameError> {
    let fig = figure8_witness();
    let section = report.section("Figure 8 / Proposition 2.1 reverse: BAE but not unilateral AE");
    let bae = concepts::bae::is_stable(&fig.graph, fig.alpha);
    let mut all_assignments_unstable = true;
    for state in UnilateralState::all_assignments(&fig.graph)? {
        if state.find_add_violation(fig.alpha).is_none() {
            all_assignments_unstable = false;
        }
    }
    assert!(bae && all_assignments_unstable);
    section.note(format!(
        "double star (n = {}, α = {}): in BAE = {bae}; unilateral add instability holds for all 2^m assignments = {all_assignments_unstable}",
        fig.graph.n(),
        fig.alpha
    ));
    section.note("substitution: the paper's 28-node drawing is not fully specified in the text; this 6-node graph certifies the same separation");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figures_run_quick() {
        let mut r = Report::new();
        fig1b(&mut r, true).unwrap();
        fig2(&mut r, true).unwrap();
        fig3(&mut r, true).unwrap();
        fig4(&mut r, true).unwrap();
        fig5(&mut r, true).unwrap();
        fig6(&mut r, true).unwrap();
        fig7(&mut r, true).unwrap();
        fig8(&mut r, true).unwrap();
        let text = r.render();
        assert!(text.contains("Figure 2"));
        assert!(text.contains("Figure 6"));
        assert!(!text.contains("NOT FOUND"));
    }

    #[test]
    fn lattice_verification_runs_quick() {
        let mut r = Report::new();
        fig1a(&mut r, true).unwrap();
        assert!(r.render().contains("lattice"));
    }
}
