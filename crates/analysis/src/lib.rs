//! # bncg-analysis
//!
//! The experiment harness: regenerates **every table and figure** of
//! *The Impact of Cooperation in Bilateral Network Creation* as measured,
//! machine-checked artifacts.
//!
//! * [`empirical`] — exhaustive Price-of-Anarchy over all small trees /
//!   connected graphs per solution concept;
//! * [`table1`] — one runner per row of the paper's Table 1;
//! * [`figures`] — runners for Figures 1a, 1b, 2–8;
//! * [`propositions`] — Lemma 2.4, Propositions 3.16 and 3.22;
//! * [`dynamics_exp`] — the cooperation-ladder simulation;
//! * [`report`] — the plain-text table builder all runners write into.
//!
//! The `experiments` binary exposes each runner as a subcommand; its
//! `all` mode produces the full reproduction report recorded in
//! `EXPERIMENTS.md`.
//!
//! # Examples
//!
//! ```
//! use bncg_analysis::{empirical, report::Report};
//! use bncg_core::{Alpha, Concept};
//!
//! // Worst pairwise-stable tree on 7 nodes at α = 4.
//! let point = empirical::tree_poa(7, Alpha::integer(4)?, Concept::Ps)?;
//! assert!(point.max_rho.unwrap() >= 1.0);
//! # Ok::<(), bncg_core::GameError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod ablations;
pub mod dynamics_exp;
pub mod empirical;
pub mod exact_curve;
pub mod figures;
pub mod propositions;
pub mod report;
pub mod structure;
pub mod table1;
pub mod windows_exp;

use bncg_atlas::DynAtlas;
use bncg_core::solver::ExecPolicy;
use bncg_core::GameError;
use report::Report;

/// Runs the complete experiment suite into one report (the artifact behind
/// `EXPERIMENTS.md`). The [`ExecPolicy`] governs every solver-routed
/// stability sweep (thread count per enumeration batch).
///
/// # Errors
///
/// Forwards the first failing runner's error.
pub fn run_all(quick: bool, policy: &ExecPolicy) -> Result<Report, GameError> {
    run_all_with_atlas(quick, policy, None)
}

/// [`run_all`] with an optional precomputed stability atlas: the
/// Table 1 enumeration sweeps consult it first and serve stored
/// verdicts at zero solver cost.
///
/// # Errors
///
/// Forwards the first failing runner's error.
pub fn run_all_with_atlas(
    quick: bool,
    policy: &ExecPolicy,
    atlas: Option<&DynAtlas>,
) -> Result<Report, GameError> {
    let mut r = Report::new();
    table1::row_ps(&mut r, quick, policy, atlas)?;
    table1::row_bswe(&mut r, quick, policy, atlas)?;
    table1::row_bge(&mut r, quick)?;
    table1::row_bne(&mut r, quick)?;
    table1::row_3bse(&mut r, quick, policy, atlas)?;
    table1::row_bse(&mut r, quick, policy, atlas)?;
    figures::fig1a(&mut r, quick)?;
    figures::fig1b(&mut r, quick)?;
    figures::fig2(&mut r, quick)?;
    figures::fig3(&mut r, quick)?;
    figures::fig4(&mut r, quick)?;
    figures::fig5(&mut r, quick)?;
    figures::fig6(&mut r, quick)?;
    figures::fig7(&mut r, quick)?;
    figures::fig8(&mut r, quick)?;
    propositions::cycles_bse(&mut r, quick)?;
    propositions::prop_3_16(&mut r, quick)?;
    propositions::prop_3_22(&mut r, quick)?;
    dynamics_exp::ladder(&mut r, quick)?;
    dynamics_exp::round_robin_census(&mut r, quick, policy)?;
    dynamics_exp::trees_vs_graphs(&mut r, quick)?;
    structure::bswe_depth(&mut r, quick)?;
    windows_exp::named_windows(&mut r, quick)?;
    exact_curve::curve_report(&mut r, quick)?;
    ablations::delta_engines(&mut r, quick)?;
    ablations::kbse_restriction(&mut r, quick)?;
    ablations::parallel_scan(&mut r, quick)?;
    ablations::incremental_engine(&mut r, quick)?;
    ablations::pruning(&mut r, quick)?;
    ablations::generator(&mut r, quick)?;
    ablations::trajectory_pruning(&mut r, quick)?;
    ablations::cost_models(&mut r, quick)?;
    Ok(r)
}
