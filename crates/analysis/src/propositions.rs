//! The remaining standalone results: Lemma 2.4 (cycles in BSE),
//! Proposition 3.16 (the BSE landscape across α), and Proposition 3.22
//! (no evenly-spread constant-cost family at α = n).

use crate::report::{fnum, Report};
use bncg_core::{concepts, Alpha, GameError};
use bncg_graph::{diameter, generators, RootedTree};

/// Lemma 2.4: cycles are in BSE inside a `Θ(n²)` window of α. The
/// measured exact window is compared against the worked-out formula
/// window (even n: `(n²/4 − (n−1), n(n−2)/4]`; odd n:
/// `((n+1)(n−1)/4 − (n−1), (n−1)²/4]`).
///
/// # Errors
///
/// Forwards checker guards.
pub fn cycles_bse(report: &mut Report, quick: bool) -> Result<(), GameError> {
    let ns: Vec<usize> = if quick {
        vec![4, 5, 6]
    } else {
        vec![4, 5, 6, 7]
    };
    let section = report.section("Lemma 2.4: cycles in BSE for α ∈ Θ(n²)");
    section.note("measured = exact BSE over a quarter-integer α grid; window = formula from the lemma's proof");
    let table = section.table(["n", "measured stable α range", "formula window", "agrees"]);
    for n in ns {
        let g = generators::cycle(n);
        // Formula window (lower exclusive, upper inclusive).
        let (lo4, hi4) = if n % 2 == 0 {
            ((n * n - 4 * (n - 1)) as i64, (n * (n - 2)) as i64)
        } else {
            (
                ((n + 1) * (n - 1) - 4 * (n - 1)) as i64,
                ((n - 1) * (n - 1)) as i64,
            )
        }; // both in quarter units (value·4)
        let mut first_stable: Option<i64> = None;
        let mut last_stable: Option<i64> = None;
        let mut contiguous = true;
        let mut prev_stable = false;
        for q in 1..=(hi4 + 8) {
            let alpha = Alpha::from_ratio(q, 4).expect("grid α");
            let stable = concepts::bse::is_stable(&g, alpha)?;
            if stable {
                if first_stable.is_none() {
                    first_stable = Some(q);
                } else if !prev_stable {
                    contiguous = false;
                }
                last_stable = Some(q);
            }
            prev_stable = stable;
        }
        let measured = match (first_stable, last_stable) {
            (Some(a), Some(b)) => format!("[{}/4, {}/4]", a, b),
            _ => "empty".to_string(),
        };
        // The formula window must be contained in the measured stable set.
        let mut contained = true;
        if let (Some(a), Some(b)) = (first_stable, last_stable) {
            if lo4 + 1 < a || hi4 > b {
                contained = false;
            }
        } else {
            contained = false;
        }
        assert!(
            contained,
            "Lemma 2.4 window not contained in the measured stable range for C{n}"
        );
        table.row([
            n.to_string(),
            format!("{measured}{}", if contiguous { "" } else { " (gaps)" }),
            format!("({}/4, {}/4]", lo4, hi4),
            contained.to_string(),
        ]);
    }
    Ok(())
}

/// Proposition 3.16: for α < 1 the clique is the only BSE; at α = 1
/// exactly the diameter ≤ 2 graphs; for α > 1 the star plus others (the
/// 4-path at α = 100).
///
/// # Errors
///
/// Forwards enumeration/checker guards.
pub fn prop_3_16(report: &mut Report, quick: bool) -> Result<(), GameError> {
    let n = if quick { 5 } else { 6 };
    let graphs = bncg_graph::enumerate::connected_graphs(n).map_err(GameError::Graph)?;
    let below: Alpha = "1/2".parse().expect("α");
    let at_one = Alpha::integer(1).expect("α");
    let mut clique_only = true;
    let mut diam2_exact = true;
    for g in &graphs {
        let is_clique = g.m() == n * (n - 1) / 2;
        if concepts::bse::is_stable(g, below)? != is_clique {
            clique_only = false;
        }
        let diam_ok = diameter(g).is_some_and(|d| d <= 2);
        if concepts::bse::is_stable(g, at_one)? != diam_ok {
            diam2_exact = false;
        }
    }
    assert!(clique_only && diam2_exact);
    let star_stable =
        concepts::bse::is_stable(&generators::star(n), Alpha::integer(2).expect("α"))?;
    let p4_stable =
        concepts::bse::is_stable(&generators::path(4), Alpha::integer(100).expect("α"))?;
    assert!(star_stable && p4_stable);
    let section = report.section(format!(
        "Proposition 3.16: the BSE landscape (exhaustive, n = {n})"
    ));
    let table = section.table(["claim", "verified"]);
    table
        .row(["α < 1: clique is the only BSE", &clique_only.to_string()])
        .row(["α = 1: BSE ⟺ diameter ≤ 2", &diam2_exact.to_string()])
        .row(["α > 1: star is in BSE", &star_stable.to_string()])
        .row(["α = 100: P4 is in BSE (non-star)", &p4_stable.to_string()]);
    Ok(())
}

/// Proposition 3.22: at α = n no graph family keeps every agent's
/// normalized cost bounded by a constant — the best known families' worst
/// agent grows like `log n`.
///
/// # Errors
///
/// Never fails; the signature matches the other runners.
pub fn prop_3_22(report: &mut Report, quick: bool) -> Result<(), GameError> {
    let ns: Vec<usize> = if quick {
        vec![64, 256, 1024]
    } else {
        vec![64, 256, 1024, 4096, 16384]
    };
    let section = report.section("Proposition 3.22: no evenly-spread constant cost at α = n");
    section.note(
        "minimum over candidate families of max-agent cost/(α+n−1); growth ⇒ no constant p exists",
    );
    let table = section.table([
        "n",
        "star",
        "binary tree",
        "8-ary tree",
        "min over families",
    ]);
    for n in ns {
        let alpha = Alpha::integer(n as i64).expect("α");
        let star = worst_normalized(&generators::star(n), alpha);
        let bin = worst_normalized(&generators::almost_complete_dary_tree(2, n), alpha);
        let oct = worst_normalized(&generators::almost_complete_dary_tree(8, n), alpha);
        let min = star.min(bin).min(oct);
        table.row([n.to_string(), fnum(star), fnum(bin), fnum(oct), fnum(min)]);
    }
    Ok(())
}

fn worst_normalized(g: &bncg_graph::Graph, alpha: Alpha) -> f64 {
    let n = g.n();
    let t = RootedTree::new(g, 0).expect("families are trees");
    let sums = t.dist_sums();
    let mut worst: f64 = 0.0;
    for u in 0..n as u32 {
        let cost = alpha.as_f64() * g.degree(u) as f64 + sums[u as usize] as f64;
        worst = worst.max(cost / (alpha.as_f64() + n as f64 - 1.0));
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_report_runs_quick() {
        let mut r = Report::new();
        cycles_bse(&mut r, true).unwrap();
        assert!(r.render().contains("Lemma 2.4"));
    }

    #[test]
    fn prop_3_16_runs_quick() {
        let mut r = Report::new();
        prop_3_16(&mut r, true).unwrap();
        assert!(r.render().contains("clique"));
    }

    #[test]
    fn prop_3_22_shows_growth() {
        let mut r = Report::new();
        prop_3_22(&mut r, true).unwrap();
        let text = r.render();
        assert!(text.contains("3.22"));
        // The binary-tree family's worst agent grows between n = 64 and 1024.
        let alpha64 = Alpha::integer(64).unwrap();
        let alpha1024 = Alpha::integer(1024).unwrap();
        let small = worst_normalized(&generators::almost_complete_dary_tree(2, 64), alpha64);
        let large = worst_normalized(&generators::almost_complete_dary_tree(2, 1024), alpha1024);
        assert!(large > small);
    }
}
