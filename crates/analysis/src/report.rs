//! Minimal plain-text report builder for the experiment harness: aligned
//! tables with a caption, rendered the way the paper's tables read.

use std::fmt::Write as _;

/// A text report consisting of titled sections with notes and tables.
#[derive(Debug, Default, Clone)]
pub struct Report {
    sections: Vec<Section>,
}

/// One titled block of a [`Report`].
#[derive(Debug, Clone)]
pub struct Section {
    title: String,
    notes: Vec<String>,
    tables: Vec<Table>,
}

/// An aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Creates an empty report.
    #[must_use]
    pub fn new() -> Self {
        Report::default()
    }

    /// Starts a new section and returns a handle to it.
    pub fn section(&mut self, title: impl Into<String>) -> &mut Section {
        self.sections.push(Section {
            title: title.into(),
            notes: Vec::new(),
            tables: Vec::new(),
        });
        self.sections.last_mut().expect("just pushed")
    }

    /// Serializes the report as pretty-printed JSON (the machine-readable
    /// twin of [`Report::render`], selected by `experiments --json`).
    ///
    /// Hand-rolled: the offline build cannot depend on `serde_json`, and
    /// the report structure is three fixed levels of strings.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"sections\": [");
        for (i, s) in self.sections.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n      \"title\": ");
            out.push_str(&json_string(&s.title));
            out.push_str(",\n      \"notes\": ");
            json_string_array(&mut out, &s.notes);
            out.push_str(",\n      \"tables\": [");
            for (j, t) in s.tables.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n        {\n          \"headers\": ");
                json_string_array(&mut out, &t.headers);
                out.push_str(",\n          \"rows\": [");
                for (k, r) in t.rows.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push_str("\n            ");
                    json_string_array(&mut out, r);
                }
                if !t.rows.is_empty() {
                    out.push_str("\n          ");
                }
                out.push_str("]\n        }");
            }
            if !s.tables.is_empty() {
                out.push_str("\n      ");
            }
            out.push_str("]\n    }");
        }
        if !self.sections.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        out
    }

    /// Renders the whole report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.sections {
            let _ = writeln!(out, "== {} ==", s.title);
            for n in &s.notes {
                let _ = writeln!(out, "   {n}");
            }
            for t in &s.tables {
                out.push_str(&t.render("   "));
            }
            out.push('\n');
        }
        out
    }
}

impl Section {
    /// Adds a free-text note line.
    pub fn note(&mut self, line: impl Into<String>) -> &mut Self {
        self.notes.push(line.into());
        self
    }

    /// Adds a table with the given headers; rows are appended via the
    /// returned handle.
    pub fn table<I, S>(&mut self, headers: I) -> &mut Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.tables.push(Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        });
        self.tables.last_mut().expect("just pushed")
    }
}

impl Table {
    /// Appends a row (stringified cells).
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    fn render(&self, indent: &str) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        let measure = |row: &[String], widths: &mut Vec<usize>| {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        };
        measure(&self.headers, &mut widths);
        for r in &self.rows {
            measure(r, &mut widths);
        }
        let fmt_row = |row: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map_or("", String::as_str);
                let pad = w - cell.chars().count();
                line.push_str(cell);
                line.push_str(&" ".repeat(pad + 2));
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        let _ = writeln!(out, "{indent}{}", fmt_row(&self.headers));
        let total: usize = widths.iter().map(|w| w + 2).sum();
        let _ = writeln!(out, "{indent}{}", "-".repeat(total.saturating_sub(2)));
        for r in &self.rows {
            let _ = writeln!(out, "{indent}{}", fmt_row(r));
        }
        out
    }
}

/// Escapes a string into a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Writes `["a", "b", …]` into `out`.
fn json_string_array(out: &mut String, items: &[String]) {
    out.push('[');
    for (i, s) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_string(s));
    }
    out.push(']');
}

/// Formats an `f64` compactly for report cells.
#[must_use]
pub fn fnum(x: f64) -> String {
    if x.is_nan() {
        "–".to_string()
    } else if (x - x.round()).abs() < 1e-9 && x.abs() < 1e15 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_tables() {
        let mut r = Report::new();
        let s = r.section("Demo");
        s.note("a note");
        s.table(["alpha", "rho"])
            .row(["1", "1.25"])
            .row(["128", "3"]);
        let text = r.render();
        assert!(text.contains("== Demo =="));
        assert!(text.contains("a note"));
        assert!(text.contains("alpha"));
        assert!(text.contains("128"));
        // Header and rows share column alignment.
        let lines: Vec<&str> = text.lines().collect();
        let header_idx = lines.iter().position(|l| l.contains("alpha")).unwrap();
        let rho_col = lines[header_idx].find("rho").unwrap();
        assert_eq!(&lines[header_idx + 2][rho_col..rho_col + 1], "1");
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(3.0), "3");
        assert_eq!(fnum(1.23456), "1.235");
        assert_eq!(fnum(f64::NAN), "–");
    }

    /// Minimal structural JSON validator: walks the text tracking string /
    /// escape state and bracket depth, rejecting unbalanced nesting or
    /// unescaped control characters. (The offline build has no serde_json
    /// to parse with, so the emitter's well-formedness is checked by hand.)
    fn assert_well_formed_json(s: &str) {
        let mut depth: i64 = 0;
        let mut in_string = false;
        let mut escaped = false;
        for c in s.chars() {
            if in_string {
                if escaped {
                    assert!(
                        matches!(c, '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' | 'u'),
                        "invalid escape \\{c}"
                    );
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_string = false;
                } else {
                    assert!((c as u32) >= 0x20, "unescaped control char {:#x}", c as u32);
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    depth -= 1;
                    assert!(depth >= 0, "unbalanced closing bracket");
                }
                _ => {}
            }
        }
        assert!(!in_string, "unterminated string");
        assert_eq!(depth, 0, "unbalanced brackets");
    }

    #[test]
    fn to_json_escapes_and_stays_well_formed() {
        let mut r = Report::new();
        assert_well_formed_json(&r.to_json()); // empty report

        let s = r.section("Quote \" backslash \\ and\nnewline");
        s.note("tab\there, control \u{1} char");
        s.table(["h \"1\"", "h2"])
            .row(["cell \"quoted\"", "back\\slash"])
            .row(["", "∆ unicode"]);
        r.section("Empty section");
        let json = r.to_json();
        assert_well_formed_json(&json);
        assert!(json.contains(r#""Quote \" backslash \\ and\nnewline""#));
        assert!(json.contains(r#""tab\there, control \u0001 char""#));
        assert!(json.contains(r#""cell \"quoted\"", "back\\slash""#));
        assert!(json.contains("\"sections\""));
        assert!(json.contains("∆ unicode"));
    }
}
