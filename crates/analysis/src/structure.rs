//! Structural consequences of the paper's lemmas, measured: Section 3.2's
//! proofs all flow through *depth control* — swap stability forces
//! equilibrium trees to be shallow (Lemmas 3.3–3.5), and coalition
//! stability caps the number of deep branches (Lemma 3.14). This
//! experiment measures the actual depth/diameter of equilibrium trees
//! against the lemma bounds.

use crate::report::{fnum, Report};
use bncg_core::{bounds, concepts, Alpha, GameError};
use bncg_graph::{enumerate, root_at_median};

/// Depth of BSwE trees vs. Lemma 3.4's `(1 + 2α/n)·log₂ n` and the
/// resulting diameter picture, exhaustively over all trees on `n` nodes.
///
/// # Errors
///
/// Forwards enumeration guards.
pub fn bswe_depth(report: &mut Report, quick: bool) -> Result<(), GameError> {
    let n = if quick { 9 } else { 10 };
    let alphas: Vec<i64> = vec![1, 2, 4, 8, 16, 32];
    let section = report.section(format!(
        "Structure: depth of BSwE trees vs Lemma 3.4 (exhaustive, n = {n})"
    ));
    section.note("median-rooted depth of every swap-stable tree; bound = (1 + 2α/n)·log₂ n");
    let table = section.table(["α", "max depth (BSwE)", "lemma bound", "max depth (PS)"]);
    for v in alphas {
        let alpha = Alpha::integer(v).expect("positive");
        let mut max_depth_bswe = 0u32;
        let mut max_depth_ps = 0u32;
        for tree in enumerate::free_trees(n).map_err(GameError::Graph)? {
            let depth = root_at_median(&tree).map_err(GameError::Graph)?.depth();
            if concepts::bswe::is_stable(&tree, alpha) {
                max_depth_bswe = max_depth_bswe.max(depth);
                assert!(
                    bounds::lemma_3_4_holds(&tree, alpha)?,
                    "Lemma 3.4 violated at α = {v}"
                );
            }
            if concepts::ps::is_stable(&tree, alpha) {
                max_depth_ps = max_depth_ps.max(depth);
            }
        }
        let bound = (1.0 + 2.0 * v as f64 / n as f64) * (n as f64).log2();
        table.row([
            v.to_string(),
            max_depth_bswe.to_string(),
            fnum(bound),
            max_depth_ps.to_string(),
        ]);
    }
    section.note("reading: swap stability caps depth strictly below the pairwise-stable worst case once α ≳ n");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_report_runs_quick() {
        let mut r = Report::new();
        bswe_depth(&mut r, true).unwrap();
        let text = r.render();
        assert!(text.contains("Lemma 3.4"));
    }
}
