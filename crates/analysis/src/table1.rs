//! Regenerating **Table 1** — the paper's asymptotic PoA bounds per
//! solution concept — as measured data.
//!
//! Each `row_*` function appends one section to a [`Report`]:
//!
//! | Row | Paper's bound | What is measured |
//! |---|---|---|
//! | PS | `Θ(min{√α, n/√α})` | exhaustive tree PoA over an α grid vs. the envelope |
//! | BSwE | `Θ(log α)` | exhaustive tree PoA; Theorem 3.6 upper bound asserted |
//! | BGE | `Θ(log α)` | Theorem 3.10 stretched-tree-star lower bound, exact BGE certification, ρ vs. `¼log α − 17/8` |
//! | BNE | `Θ(log α)` for large α, `Θ(1)` for `α ≤ √n` | Lemma 3.11-certified stars + sampled refutation; Theorem 3.13 spot check |
//! | 3-BSE | `Θ(1)` | exhaustive tree PoA under 3-BSE vs. the constant 25; 2-BSE inherits the BGE lower bound (Prop. 3.7) |
//! | BSE | `Θ(1)` for most α | exact tiny-n general-graph PoA + Lemma 3.18 d-ary regimes vs. Theorems 3.19–3.21 |

use crate::empirical;
use crate::report::{fnum, Report};
use bncg_atlas::DynAtlas;
use bncg_constructions::stretched::{
    lemma_3_11_certificate, theorem_3_10_instance, theorem_3_12_i_instance,
};
use bncg_core::concepts::bne::SplitMix;
use bncg_core::solver::{ExecPolicy, Solver, StabilityQuery, Verdict};
use bncg_core::{bounds, concepts, social_cost_ratio, Alpha, Concept, CostModelSpec, GameError};
use bncg_graph::{generators, Graph, RootedTree};

fn alpha_int(v: i64) -> Alpha {
    Alpha::integer(v).expect("positive α")
}

/// Notes a sweep section's shared batch budget, if the policy carries
/// one — the per-α exhausted counts in the `stable` column then read as
/// load shedding against this pool, not per-instance budget stops.
/// Attached only to the **exponential** rows (3-BSE, BSE): polynomial
/// checks complete eagerly before the pool logic and can never be shed,
/// so the note would be false on the PS/BSwE rows.
fn note_batch_budget(section: &mut crate::report::Section, policy: &ExecPolicy) {
    if let Some(b) = policy.batch_budget {
        section.note(format!(
            "batch budget: each α sweep drains one shared pool of {b} \
             candidate evaluations; instances past the pool are counted \
             as exhausted (load shedding), not checked"
        ));
    }
}

/// Notes how much of a sweep the precomputed atlas absorbed, when any
/// of it. Hits are served at zero solver cost — they never touch the
/// sweep's eval pool — so a partially-hit budgeted row sheds strictly
/// less than an unaided one.
fn note_atlas_hits(section: &mut crate::report::Section, points: &[empirical::PoaPoint]) {
    let hits: usize = points.iter().map(|p| p.atlas_hits).sum();
    if hits > 0 {
        let total: usize = points.iter().map(|p| p.total).sum();
        section.note(format!(
            "atlas: {hits}/{total} verdicts served from the precomputed \
             corpus at zero solver cost"
        ));
    }
}

/// A sweep section title, suffixed with the cost-model token when the
/// row runs under a non-default model (default rows keep their exact
/// historical titles).
fn title_under(prefix: &str, n: usize, model: CostModelSpec) -> String {
    if model.is_default() {
        format!("{prefix}, n = {n})")
    } else {
        format!("{prefix}, n = {n}) under {}", model.token())
    }
}

/// Notes the pricing model on non-default rows; paper bounds in the
/// section are reference values there, not assertions.
fn note_cost_model(section: &mut crate::report::Section, model: CostModelSpec) {
    if !model.is_default() {
        section.note(format!(
            "cost model: every stability check and ρ priced under              {}; the paper's bounds are sum-of-distances statements              and are shown for reference only",
            model.token()
        ));
    }
}

/// Renders a PoA point's stable-count cell, flagging instances whose
/// checks exhausted the execution policy — those verdicts are unknown,
/// so the row is explicitly partial rather than silently exact.
fn stable_cell(point: &empirical::PoaPoint) -> String {
    if point.exhausted > 0 {
        format!(
            "{}/{} ({} exhausted)",
            point.stable_count, point.total, point.exhausted
        )
    } else {
        format!("{}/{}", point.stable_count, point.total)
    }
}

/// Renders a PoA value cell, marking it partial when exhausted checks
/// were excluded (the true worst case can only be at least this, or is
/// entirely unknown when nothing certified as stable).
fn rho_cell(point: &empirical::PoaPoint) -> String {
    match (point.max_rho, point.exhausted) {
        (Some(rho), 0) => fnum(rho),
        (Some(rho), _) => format!("≥ {} (partial)", fnum(rho)),
        (None, 0) => "–".into(),
        (None, e) => format!("? ({e} exhausted)"),
    }
}

/// PS row: exhaustive tree PoA vs. the `min{√α, n/√α}` envelope.
///
/// # Errors
///
/// Forwards enumeration/checker guards.
pub fn row_ps(
    report: &mut Report,
    quick: bool,
    policy: &ExecPolicy,
    atlas: Option<&DynAtlas>,
) -> Result<(), GameError> {
    row_ps_under(report, quick, policy, atlas, CostModelSpec::SumDistances)
}

/// [`row_ps`] pricing the sweep under an explicit [`CostModelSpec`].
/// The paper's envelope is a default-model statement, so a non-default
/// row shows it for reference without asserting against it.
///
/// # Errors
///
/// Forwards enumeration/checker guards.
pub fn row_ps_under(
    report: &mut Report,
    quick: bool,
    policy: &ExecPolicy,
    atlas: Option<&DynAtlas>,
    model: CostModelSpec,
) -> Result<(), GameError> {
    let n = if quick { 9 } else { 10 };
    let alphas: Vec<Alpha> = [1, 2, 4, 8, 16, 32, 64, 128].map(alpha_int).to_vec();
    let points = empirical::tree_poa_grid_under(n, &alphas, Concept::Ps, model, policy, atlas)?;
    let section = report.section(title_under("Table 1 / PS on trees (exhaustive", n, model));
    section.note("paper: PoA = Θ(min{√α, n/√α}); the measured curve should rise then fall with the crossover near α ≈ n²ish scale");
    note_cost_model(section, model);
    note_atlas_hits(section, &points);
    let table = section.table([
        "α",
        "PoA(PS)",
        "envelope",
        "stable trees",
        "worst tree (graph6)",
    ]);
    for point in &points {
        let alpha = point.alpha;
        let witness = point
            .worst
            .as_ref()
            .map(|g| bncg_graph::graph6::encode(g).expect("small graph"))
            .unwrap_or("–".into());
        table.row([
            alpha.to_string(),
            rho_cell(point),
            fnum(bounds::ps_poa_envelope(alpha, n)),
            stable_cell(point),
            witness,
        ]);
    }
    Ok(())
}

/// BSwE row: exhaustive tree PoA with Theorem 3.6's `2 + 2log α` asserted.
///
/// # Errors
///
/// Forwards enumeration/checker guards; fails loudly if the theorem's
/// bound were violated.
pub fn row_bswe(
    report: &mut Report,
    quick: bool,
    policy: &ExecPolicy,
    atlas: Option<&DynAtlas>,
) -> Result<(), GameError> {
    row_bswe_under(report, quick, policy, atlas, CostModelSpec::SumDistances)
}

/// [`row_bswe`] under an explicit [`CostModelSpec`]; Theorem 3.6 is
/// asserted only on the default model, where it is a theorem.
///
/// # Errors
///
/// Forwards enumeration/checker guards.
pub fn row_bswe_under(
    report: &mut Report,
    quick: bool,
    policy: &ExecPolicy,
    atlas: Option<&DynAtlas>,
    model: CostModelSpec,
) -> Result<(), GameError> {
    let n = if quick { 9 } else { 10 };
    let alphas: Vec<Alpha> = [1, 2, 4, 8, 16, 32, 64, 128].map(alpha_int).to_vec();
    let points = empirical::tree_poa_grid_under(n, &alphas, Concept::Bswe, model, policy, atlas)?;
    let section = report.section(title_under("Table 1 / BSwE on trees (exhaustive", n, model));
    section
        .note("paper: PoA = Θ(log α); Theorem 3.6 upper bound 2 + 2·log₂ α checked on every point");
    note_cost_model(section, model);
    note_atlas_hits(section, &points);
    let table = section.table(["α", "PoA(BSwE)", "2 + 2log₂α", "stable trees"]);
    for point in &points {
        let alpha = point.alpha;
        let bound = bounds::theorem_3_6_bound(alpha);
        if let Some(rho) = point.max_rho {
            // The theorem is a default-model statement; other models
            // show the bound for reference only.
            assert!(
                !model.is_default() || rho <= bound + 1e-9,
                "Theorem 3.6 violated at α = {alpha}"
            );
        }
        table.row([
            alpha.to_string(),
            rho_cell(point),
            fnum(bound),
            stable_cell(point),
        ]);
    }
    Ok(())
}

/// BGE row: the Theorem 3.10 lower-bound family, exactly certified.
///
/// # Errors
///
/// Forwards checker guards.
pub fn row_bge(report: &mut Report, quick: bool) -> Result<(), GameError> {
    let alphas: Vec<i64> = if quick {
        vec![240, 480]
    } else {
        vec![240, 480, 960]
    };
    let section = report.section("Table 1 / BGE on trees (Theorem 3.10 lower bound family)");
    section.note(
        "stretched tree star with k = 1, t = α/15, η = α; BGE certified by the exact checkers",
    );
    section
        .note("paper: ρ ≥ ¼·log₂ α − 17/8 for sufficiently large α (the constant is asymptotic)");
    let table = section.table(["α", "n", "ρ(G)", "¼log₂α − 17/8", "BGE certified"]);
    for v in alphas {
        let alpha = alpha_int(v);
        let star = theorem_3_10_instance(v as usize, v as usize);
        let certified = concepts::bge::is_stable(&star.graph, alpha);
        assert!(certified, "Theorem 3.10 instance must be BGE at α = {v}");
        let rho = social_cost_ratio(&star.graph, alpha)?.as_f64();
        table.row([
            alpha.to_string(),
            star.graph.n().to_string(),
            fnum(rho),
            fnum(bounds::theorem_3_10_lower(alpha)),
            certified.to_string(),
        ]);
    }
    Ok(())
}

/// BNE row: certified `Ω(log α)` instances for large α and the
/// Theorem 3.13 constant-PoA regime for `α ≤ √n`.
///
/// # Errors
///
/// Forwards checker guards.
pub fn row_bne(report: &mut Report, quick: bool) -> Result<(), GameError> {
    // Part (a): Theorem 3.12(i) stretched tree stars, certified by the
    // exact Lemma 3.11 inequality plus a sampled refutation search.
    let etas: Vec<usize> = if quick {
        vec![1 << 12, 1 << 14]
    } else {
        vec![1 << 12, 1 << 14, 1 << 16]
    };
    let section = report.section("Table 1 / BNE on trees, α ≥ n^{1/2+ε} (Theorem 3.12(i) family)");
    section.note(
        "stretched tree star with α = 9η, ε = 1; BNE certified via the exact Lemma 3.11 inequality",
    );
    section.note("sampled neighborhood-move refuter additionally found no improving move (evidence, not proof)");
    let table = section.table([
        "η",
        "α",
        "n",
        "ρ(G)",
        "(ε/168)log₂α − 3/28",
        "Lemma 3.11",
        "sampled refuter",
    ]);
    for eta in etas {
        let alpha_v = 9 * eta as i64;
        let alpha = alpha_int(alpha_v);
        let star = theorem_3_12_i_instance(alpha_v as usize, eta, 1.0);
        let cert = lemma_3_11_certificate(&star, alpha);
        assert!(cert, "Lemma 3.11 must certify the Theorem 3.12(i) instance");
        let samples = if quick { 2_000 } else { 20_000 };
        let refuted = concepts::bne::find_violation_sampled(
            &star.graph,
            alpha,
            &mut SplitMix(0xBEEF),
            samples,
        );
        assert!(
            refuted.is_none(),
            "sampled refuter contradicts the Lemma 3.11 certificate"
        );
        let rho = social_cost_ratio(&star.graph, alpha)?.as_f64();
        table.row([
            eta.to_string(),
            alpha.to_string(),
            star.graph.n().to_string(),
            fnum(rho),
            fnum(bounds::theorem_3_12_i_lower(1.0, alpha)),
            "holds".to_string(),
            "none found".to_string(),
        ]);
    }

    // Part (b): Theorem 3.13 — trees in BNE at α ≤ √n have ρ ≤ 4.
    let n = 16usize;
    let samples = if quick { 15 } else { 60 };
    let section =
        report.section("Table 1 / BNE on trees, α ≤ √n (Theorem 3.13 spot check, n = 16)");
    section.note(
        "sampled trees plus named shapes; exact BNE check; every stable tree must satisfy ρ ≤ 4",
    );
    let table = section.table(["α", "trees checked", "in BNE", "max ρ among BNE", "bound"]);
    for alpha_v in [2i64, 3, 4] {
        let alpha = alpha_int(alpha_v);
        let mut corpus: Vec<Graph> = vec![
            generators::star(n),
            generators::double_star(7, 7),
            generators::spider(5, 3),
            generators::broom(4, 11),
            generators::path(n),
        ];
        let mut rng = bncg_graph::test_rng(1234 + alpha_v as u64);
        for _ in 0..samples {
            corpus.push(generators::random_tree(n, &mut rng));
        }
        let mut stable = 0usize;
        let mut max_rho = f64::NAN;
        for tree in &corpus {
            if concepts::bne::is_stable(tree, alpha)? {
                stable += 1;
                let rho = social_cost_ratio(tree, alpha)?.as_f64();
                if max_rho.is_nan() || rho > max_rho {
                    max_rho = rho;
                }
            }
        }
        assert!(
            max_rho.is_nan() || max_rho <= bounds::theorem_3_13_bound() + 1e-9,
            "Theorem 3.13 violated at α = {alpha_v}"
        );
        table.row([
            alpha.to_string(),
            corpus.len().to_string(),
            stable.to_string(),
            fnum(max_rho),
            fnum(bounds::theorem_3_13_bound()),
        ]);
    }

    // Part (c): the branch-and-bound generator's new scale — *exact*
    // BNE verdicts at n = 24, a size the legacy n ≤ 21 raw-space guard
    // refused outright and the dense mask loops could not iterate. The
    // solver runs each pinned instance under a finite eval budget; the
    // verdicts are conclusive, with the evaluation counts showing how
    // little of the 24·2²³ raw space is ever priced.
    let section = report
        .section("Table 1 / BNE at n = 24 (exact verdicts via the branch-and-bound generator)");
    section.note(
        "pinned instances, 2·10⁶-eval budget; the n ≤ 21 guard previously refused all of these",
    );
    let table = section.table(["instance", "α", "in BNE", "evals", "pruned"]);
    let solver = Solver::new(ExecPolicy::default().with_eval_budget(2_000_000));
    for (name, g, alpha, expect_stable) in &bne_n24_instances() {
        let (stable, evals, pruned) =
            match solver.check(&StabilityQuery::new(Concept::Bne, g, *alpha))? {
                Verdict::Stable { evals, pruned, .. } => (true, evals, Some(pruned)),
                // Early-exit scans stop counting skips at the witness,
                // so an honest cell shows "no total" rather than 0.
                Verdict::Unstable { evals, .. } => (false, evals, None),
                Verdict::Exhausted { .. } => {
                    unreachable!("the pinned n = 24 instances complete under the budget")
                }
            };
        assert_eq!(stable, *expect_stable, "{name} verdict drifted");
        table.row([
            (*name).to_string(),
            alpha.to_string(),
            stable.to_string(),
            evals.to_string(),
            pruned.map_or("—".to_string(), |p| p.to_string()),
        ]);
    }
    Ok(())
}

/// The pinned n = 24 BNE kernel instances — one definition shared by
/// the Table 1 n = 24 section, the `tests/generator.rs` acceptance
/// test, and the `ci_gate` generator kernels, so the table, the tests,
/// and the perf gate always speak about the same instances:
/// `(name, graph, α, stable)`. All four complete *exactly* under a
/// 2·10⁶-eval budget; the legacy n ≤ 21 raw-space guard refused every
/// one of them.
///
/// # Panics
///
/// Panics if the pinned G(24, 0.4) seed stops yielding a diameter-2
/// draw — Proposition 3.16 is what makes that instance BNE-stable at
/// α = 1.
#[must_use]
pub fn bne_n24_instances() -> Vec<(&'static str, Graph, Alpha, bool)> {
    let mut rng = bncg_graph::test_rng(0x24BE);
    let gnp24 = generators::random_connected(24, 0.4, &mut rng);
    assert!(
        bncg_graph::diameter(&gnp24).expect("connected") <= 2,
        "the pinned seed must give a diameter-2 instance"
    );
    vec![
        ("star24", generators::star(24), alpha_int(2), true),
        // Inside C24's Lemma 2.4 BSE stability window ((121, 132]).
        ("cycle24", generators::cycle(24), alpha_int(126), true),
        ("gnp24 (diam 2)", gnp24, alpha_int(1), true),
        ("path24", generators::path(24), alpha_int(2), false),
    ]
}

/// 3-BSE row: exhaustive tree PoA under 3-BSE (constant), with the 2-BSE
/// `Ω(log α)` contrast inherited from BGE via Proposition 3.7.
///
/// # Errors
///
/// Forwards enumeration/checker guards.
pub fn row_3bse(
    report: &mut Report,
    quick: bool,
    policy: &ExecPolicy,
    atlas: Option<&DynAtlas>,
) -> Result<(), GameError> {
    row_3bse_under(report, quick, policy, atlas, CostModelSpec::SumDistances)
}

/// [`row_3bse`] under an explicit [`CostModelSpec`]; Theorem 3.15 is
/// asserted only on the default model.
///
/// # Errors
///
/// Forwards enumeration/checker guards.
pub fn row_3bse_under(
    report: &mut Report,
    quick: bool,
    policy: &ExecPolicy,
    atlas: Option<&DynAtlas>,
    model: CostModelSpec,
) -> Result<(), GameError> {
    let n = if quick { 8 } else { 9 };
    let alphas: Vec<Alpha> = [1, 2, 4, 8, 16, 32].map(alpha_int).to_vec();
    let threes =
        empirical::tree_poa_grid_under(n, &alphas, Concept::KBse(3), model, policy, atlas)?;
    let twos = empirical::tree_poa_grid_under(n, &alphas, Concept::KBse(2), model, policy, atlas)?;
    let section = report.section(title_under(
        "Table 1 / 3-BSE on trees (exhaustive",
        n,
        model,
    ));
    note_cost_model(section, model);
    section.note("paper: PoA ≤ 25 (Theorem 3.15); 2-BSE column shows the strictly weaker concept (Ω(log α) via Prop 3.7 + Theorem 3.10)");
    note_batch_budget(section, policy);
    note_atlas_hits(section, &threes);
    let table = section.table(["α", "PoA(3-BSE)", "PoA(2-BSE)", "bound(3-BSE)"]);
    for (three, two) in threes.iter().zip(&twos) {
        if let Some(rho) = three.max_rho {
            assert!(
                !model.is_default() || rho <= 25.0 + 1e-9,
                "Theorem 3.15 violated at α = {}",
                three.alpha
            );
        }
        table.row([
            three.alpha.to_string(),
            rho_cell(three),
            rho_cell(two),
            fnum(bounds::theorem_3_15_bound()),
        ]);
    }
    Ok(())
}

/// BSE row: exact tiny-n general-graph PoA plus the Lemma 3.18 d-ary
/// regimes against Theorems 3.19–3.21.
///
/// # Errors
///
/// Forwards enumeration/checker guards.
pub fn row_bse(
    report: &mut Report,
    quick: bool,
    policy: &ExecPolicy,
    atlas: Option<&DynAtlas>,
) -> Result<(), GameError> {
    row_bse_under(report, quick, policy, atlas, CostModelSpec::SumDistances)
}

/// [`row_bse`] under an explicit [`CostModelSpec`]. The Lemma 3.18
/// d-ary regimes are default-model machinery (worst-agent cost against
/// the default optimum), so a non-default row renders only the exact
/// tiny-n sweep.
///
/// # Errors
///
/// Forwards enumeration/checker guards.
pub fn row_bse_under(
    report: &mut Report,
    quick: bool,
    policy: &ExecPolicy,
    atlas: Option<&DynAtlas>,
    model: CostModelSpec,
) -> Result<(), GameError> {
    // (a) Exact general-graph BSE PoA at tiny n.
    let n = if quick { 5 } else { 6 };
    let alphas: Vec<Alpha> = ["1/2", "1", "3/2", "2", "4", "8", "16"]
        .map(|s| s.parse().expect("grid α"))
        .to_vec();
    let points = empirical::graph_poa_grid_under(n, &alphas, Concept::Bse, model, policy, atlas)?;
    let section = report.section(title_under(
        "Table 1 / BSE on general graphs (exact",
        n,
        model,
    ));
    note_cost_model(section, model);
    section.note("paper: Θ(1) for α ≤ n^{1−ε} and α ≥ n·log n; the exact tiny-n PoA stays near 1 across the grid");
    note_batch_budget(section, policy);
    note_atlas_hits(section, &points);
    let table = section.table(["α", "PoA(BSE)", "stable graphs"]);
    for point in &points {
        table.row([point.alpha.to_string(), rho_cell(point), stable_cell(point)]);
    }

    if !model.is_default() {
        return Ok(());
    }
    // (b) Lemma 3.18 regimes: worst-agent normalized cost of almost
    // complete d-ary trees vs. the theorems' constants.
    let ns: Vec<usize> = if quick {
        vec![1 << 10, 1 << 12]
    } else {
        vec![1 << 10, 1 << 12, 1 << 14]
    };
    let section = report.section("Table 1 / BSE regimes via Lemma 3.18 (d-ary trees)");
    section.note("max-agent cost divided by α + n − 1 upper bounds ρ of ANY BSE (Lemma 3.17)");
    let table = section.table([
        "n",
        "regime",
        "d",
        "α",
        "max agent cost/(α+n−1)",
        "theorem bound",
    ]);
    for &n in &ns {
        let log2n = (n as f64).log2();
        // Regime 1: α = n·log₂ n, d = 2 (Theorem 3.19: ρ ≤ 5).
        let alpha1 = alpha_int((n as f64 * log2n) as i64);
        push_dary_row(
            table,
            n,
            "α = n·log n",
            2,
            alpha1,
            bounds::theorem_3_19_bound(),
        );
        // Regime 2: α = n^{1−ε} with ε = 1/2, d = ⌈n^ε⌉ (Thm 3.20: 3 + 2/ε).
        let alpha2 = alpha_int((n as f64).sqrt() as i64);
        let d2 = (n as f64).sqrt().ceil() as usize;
        push_dary_row(
            table,
            n,
            "α = √n",
            d2,
            alpha2,
            bounds::theorem_3_20_bound(0.5),
        );
        // Regime 3: α = n, d = ⌈log₂ log₂ n⌉ (Theorem 3.21 envelope).
        let alpha3 = alpha_int(n as i64);
        let d3 = (log2n.log2().ceil() as usize).max(2);
        push_dary_row(table, n, "α = n", d3, alpha3, bounds::theorem_3_21_bound(n));
    }
    Ok(())
}

fn push_dary_row(
    table: &mut crate::report::Table,
    n: usize,
    regime: &str,
    d: usize,
    alpha: Alpha,
    bound: f64,
) {
    let g = generators::almost_complete_dary_tree(d, n);
    let t = RootedTree::new(&g, 0).expect("d-ary tree is a tree");
    let sums = t.dist_sums();
    let mut worst = 0.0f64;
    for u in 0..n as u32 {
        let cost = alpha.as_f64() * g.degree(u) as f64 + sums[u as usize] as f64;
        let normalized = cost / (alpha.as_f64() + n as f64 - 1.0);
        worst = worst.max(normalized);
    }
    assert!(
        worst <= bound + 1e-6,
        "Lemma 3.18 regime bound violated (n={n}, d={d})"
    );
    table.row([
        n.to_string(),
        regime.to_string(),
        d.to_string(),
        alpha.to_string(),
        fnum(worst),
        fnum(bound),
    ]);
}

/// Runs every Table 1 row into a fresh report.
///
/// # Errors
///
/// Forwards the per-row errors.
pub fn full_table(quick: bool, policy: &ExecPolicy) -> Result<Report, GameError> {
    full_table_with_atlas(quick, policy, None)
}

/// [`full_table`] with an optional precomputed atlas: enumeration
/// sweeps consult it first and serve stored verdicts at zero solver
/// cost, noting the hit share per section.
///
/// # Errors
///
/// Forwards the per-row errors.
pub fn full_table_with_atlas(
    quick: bool,
    policy: &ExecPolicy,
    atlas: Option<&DynAtlas>,
) -> Result<Report, GameError> {
    full_table_under(quick, policy, atlas, CostModelSpec::SumDistances)
}

/// [`full_table_with_atlas`] pricing the enumeration sweeps under an
/// explicit [`CostModelSpec`]. The construction-certifying rows (BGE,
/// BNE) are default-model proofs and render only on the default model;
/// the sweep rows run under the requested model with the paper's
/// bounds downgraded to reference values.
///
/// # Errors
///
/// Forwards the per-row errors.
pub fn full_table_under(
    quick: bool,
    policy: &ExecPolicy,
    atlas: Option<&DynAtlas>,
    model: CostModelSpec,
) -> Result<Report, GameError> {
    let mut report = Report::new();
    row_ps_under(&mut report, quick, policy, atlas, model)?;
    row_bswe_under(&mut report, quick, policy, atlas, model)?;
    if model.is_default() {
        row_bge(&mut report, quick)?;
        row_bne(&mut report, quick)?;
    }
    row_3bse_under(&mut report, quick, policy, atlas, model)?;
    row_bse_under(&mut report, quick, policy, atlas, model)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ps_and_bswe_rows_render() {
        let mut r = Report::new();
        let policy = ExecPolicy::default().with_threads(2);
        row_ps(&mut r, true, &policy, None).unwrap();
        row_bswe(&mut r, true, &policy, None).unwrap();
        let text = r.render();
        assert!(text.contains("PS on trees"));
        assert!(text.contains("BSwE on trees"));
        assert!(!text.contains("atlas:"), "no atlas, no hit note");
    }

    #[test]
    fn batch_budget_note_renders_on_exponential_rows_only() {
        // A pooled policy flags the exponential sweep sections so
        // partial rows read as load shedding; the polynomial PS row
        // completes eagerly before the pool logic, so it must NOT carry
        // the (false-there) note.
        let mut r = Report::new();
        let policy = ExecPolicy::default().with_batch_budget(100_000);
        row_3bse(&mut r, true, &policy, None).unwrap();
        assert!(r.render().contains("batch budget"));
        let mut r = Report::new();
        row_ps(&mut r, true, &policy, None).unwrap();
        assert!(!r.render().contains("batch budget"));
    }

    #[test]
    fn bse_row_consumes_an_atlas_when_present() {
        use bncg_atlas::{build, AlphaSpec, Atlas, BuildSpec, MemoryBacking, RamBacking};
        // Cover exactly the BSE row's tiny-n sweep (n = 5 in quick
        // mode) for two of its grid α values; the row must serve those
        // from the corpus and note the hit share.
        let spec = BuildSpec {
            max_n: 5,
            grid: vec![
                AlphaSpec::Fixed(Alpha::from_ratio(1, 2).unwrap()),
                AlphaSpec::Fixed(Alpha::integer(2).unwrap()),
            ],
            concepts: vec![Concept::Bse],
        };
        let backing: Box<dyn MemoryBacking + Send + Sync> = Box::new(RamBacking::new());
        let mut atlas = Atlas::open(backing).unwrap();
        build(&mut atlas, &spec, 10_000_000, None).unwrap();

        let mut with = Report::new();
        row_bse(&mut with, true, &ExecPolicy::default(), Some(&atlas)).unwrap();
        let text = with.render();
        assert!(text.contains("atlas:"), "hit note must render: {text}");

        let mut without = Report::new();
        row_bse(&mut without, true, &ExecPolicy::default(), None).unwrap();
        // Served verdicts change provenance, never the table itself.
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("atlas:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            strip(&text),
            strip(&without.render()),
            "atlas-backed row must render the identical table"
        );
    }

    #[test]
    fn bge_row_certifies_lower_bound_instance() {
        let mut r = Report::new();
        row_bge(&mut r, true).unwrap();
        assert!(r.render().contains("Theorem 3.10"));
    }

    #[test]
    fn bse_regime_rows_respect_bounds() {
        let mut r = Report::new();
        row_bse(&mut r, true, &ExecPolicy::default(), None).unwrap();
        let text = r.render();
        assert!(text.contains("Lemma 3.18"));
        assert!(text.contains("α = n·log n"));
    }
}
