//! Exact stability windows for named topologies — the α-range statements
//! scattered through the paper ("C_n is stable for this range of α", "the
//! star is stable for α ≥ 1", …) computed with exact rational endpoints
//! instead of grids.

use crate::report::Report;
use bncg_core::windows::stability_windows;
use bncg_core::{Concept, GameError};
use bncg_graph::{generators, Graph};

fn format_windows(w: &[bncg_core::windows::StabilityWindow]) -> String {
    let fmt_bound = |b: &Option<bncg_core::windows::Threshold>, inf: &str| -> String {
        b.map_or(inf.to_string(), |t| t.to_string())
    };
    w.iter()
        .filter(|win| win.stable)
        .map(|win| format!("[{}, {}]", fmt_bound(&win.lo, "0"), fmt_bound(&win.hi, "∞")))
        .collect::<Vec<_>>()
        .join(" ∪ ")
}

/// Prints the exact stable-α regions of named graphs for the polynomial
/// concepts.
///
/// # Errors
///
/// Forwards checker guards.
pub fn named_windows(report: &mut Report, quick: bool) -> Result<(), GameError> {
    let mut shapes: Vec<(String, Graph)> = vec![
        ("star(8)".into(), generators::star(8)),
        ("path(8)".into(), generators::path(8)),
        ("cycle(6)".into(), generators::cycle(6)),
        ("cycle(7)".into(), generators::cycle(7)),
        ("spider(3,3)".into(), generators::spider(3, 3)),
        ("broom(4,3)".into(), generators::broom(4, 3)),
    ];
    if !quick {
        shapes.push(("cycle(10)".into(), generators::cycle(10)));
        shapes.push(("wheel(7)".into(), generators::wheel(7)));
        shapes.push((
            "complete_bipartite(3,3)".into(),
            generators::complete_bipartite(3, 3),
        ));
    }
    let section = report.section("Exact stability windows in α (polynomial concepts)");
    section.note("closed rational intervals where the graph is stable; open complements are instability regions");
    let table = section.table(["graph", "RE", "PS", "BGE"]);
    for (name, g) in &shapes {
        let re = stability_windows(g, Concept::Re)?;
        let ps = stability_windows(g, Concept::Ps)?;
        let bge = stability_windows(g, Concept::Bge)?;
        table.row([
            name.clone(),
            format_windows(&re),
            format_windows(&ps),
            format_windows(&bge),
        ]);
    }
    section.note(
        "cycle RE endpoints are exactly Lemma 2.4's thresholds (even n: n(n−2)/4, odd n: (n−1)²/4)",
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_windows_runs_quick() {
        let mut r = Report::new();
        named_windows(&mut r, true).unwrap();
        let text = r.render();
        assert!(text.contains("stability windows"));
        // The C6 RE window ends exactly at 6.
        assert!(text.contains("[0, 6]"));
    }
}
