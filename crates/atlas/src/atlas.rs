//! The atlas proper: an in-memory composite index over a line backing,
//! plus canonical-key lookup with witness relabeling.
//!
//! Everything here is derived from the backing's line sequence at open
//! time — the index, the eval total, the entry count. The atlas never
//! stores derived state on disk, which is what lets an interrupted
//! build resume from nothing but the store itself.

use crate::backing::MemoryBacking;
use crate::key;
use crate::record::{index_key, AtlasRecord, StoredVerdict};
use bncg_core::{Alpha, Concept, GameError, Move};
use bncg_graph::Graph;
use std::collections::HashMap;

/// A successful atlas lookup.
#[derive(Debug, Clone)]
pub struct Hit {
    /// The stored record (witness still in canonical labels).
    pub record: AtlasRecord,
    /// The stored witness relabeled into the **query's** vertex labels,
    /// if the verdict is unstable.
    pub witness: Option<Move>,
}

/// A stability corpus over a pluggable [`MemoryBacking`].
#[derive(Debug)]
pub struct Atlas<B: MemoryBacking> {
    backing: B,
    /// Composite `"{key}|{token}|{alpha}"` → line index. Later entries
    /// win, so a resumed build that re-derives a torn tail line simply
    /// re-points the index.
    index: HashMap<String, u64>,
    /// Σ of the `evals` column — the builder's budget-pool position.
    evals_total: u64,
}

impl<B: MemoryBacking> Atlas<B> {
    /// Opens an atlas over `backing`, replaying every stored line into
    /// the index.
    ///
    /// # Errors
    ///
    /// [`GameError::Unsupported`] if the backing fails or any line is
    /// not a parsable [`AtlasRecord`] (the backing's torn-tail repair
    /// runs before this, so a parse failure here is real corruption).
    pub fn open(backing: B) -> Result<Self, GameError> {
        let mut index = HashMap::new();
        let mut evals_total = 0u64;
        let mut parse_error: Option<GameError> = None;
        backing.for_each_line(&mut |i, line| {
            if parse_error.is_some() {
                return;
            }
            match line.parse::<AtlasRecord>() {
                Ok(rec) => {
                    evals_total += rec.evals;
                    index.insert(rec.index_key(), i);
                }
                Err(e) => parse_error = Some(e),
            }
        })?;
        if let Some(e) = parse_error {
            return Err(e);
        }
        Ok(Atlas {
            backing,
            index,
            evals_total,
        })
    }

    /// Number of stored records.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.backing.len()
    }

    /// Whether the atlas holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.backing.is_empty()
    }

    /// Σ of the stored `evals` column: the exact budget-pool position
    /// the builder had after producing these records.
    #[must_use]
    pub fn evals_total(&self) -> u64 {
        self.evals_total
    }

    /// Torn tail lines the backing dropped at open time (see
    /// [`MemoryBacking::dropped_tail`]).
    #[must_use]
    pub fn dropped_tail(&self) -> u64 {
        self.backing.dropped_tail()
    }

    /// The record at line `index`.
    ///
    /// # Errors
    ///
    /// [`GameError::Unsupported`] if out of range or unparsable.
    pub fn record(&self, index: u64) -> Result<AtlasRecord, GameError> {
        self.backing.read_line(index)?.parse()
    }

    /// Streams every record in append order.
    ///
    /// # Errors
    ///
    /// [`GameError::Unsupported`] on backing failure or a corrupt line.
    pub fn for_each_record(
        &self,
        visit: &mut dyn FnMut(u64, &AtlasRecord),
    ) -> Result<(), GameError> {
        let mut parse_error: Option<GameError> = None;
        self.backing.for_each_line(&mut |i, line| {
            if parse_error.is_some() {
                return;
            }
            match line.parse::<AtlasRecord>() {
                Ok(rec) => visit(i, &rec),
                Err(e) => parse_error = Some(e),
            }
        })?;
        match parse_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Appends a record and indexes it.
    ///
    /// # Errors
    ///
    /// Propagates backing failures.
    pub fn append(&mut self, record: &AtlasRecord) -> Result<(), GameError> {
        let at = self.backing.len();
        self.backing.append_line(&record.to_string())?;
        self.evals_total += record.evals;
        self.index.insert(record.index_key(), at);
        Ok(())
    }

    /// Exact-triple fetch by safe key (no canonicalization — the caller
    /// asserts the key is already canonical).
    ///
    /// # Errors
    ///
    /// [`GameError::Unsupported`] if an indexed line fails to re-read.
    pub fn get(
        &self,
        safe_key: &str,
        concept: Concept,
        alpha: Alpha,
    ) -> Result<Option<AtlasRecord>, GameError> {
        match self.index.get(&index_key(safe_key, concept, alpha)) {
            Some(&at) => Ok(Some(self.record(at)?)),
            None => Ok(None),
        }
    }

    /// Looks up the stability of `g` under `concept` at price `alpha`:
    /// canonicalizes `g`, probes the index, and — on an unstable hit —
    /// relabels the stored witness back into `g`'s own vertex labels so
    /// it is directly replayable on the query graph.
    ///
    /// Returns `Ok(None)` on a miss. An `Exhausted` record is returned
    /// as a hit (`witness: None`); callers that need a conclusive answer
    /// treat it as a miss and fall through to a live check.
    ///
    /// # Errors
    ///
    /// [`GameError::Unsupported`] if the graph cannot be keyed or an
    /// indexed line fails to re-read.
    pub fn lookup(
        &self,
        g: &Graph,
        concept: Concept,
        alpha: Alpha,
    ) -> Result<Option<Hit>, GameError> {
        let (safe, _canon, to_canon) = key::instance_key(g)?;
        let Some(record) = self.get(&safe, concept, alpha)? else {
            return Ok(None);
        };
        let witness = match &record.verdict {
            StoredVerdict::Unstable(w) => {
                // `to_canon[u]` is u's canonical label; the stored
                // witness speaks canonical labels, so map through the
                // inverse to recover the query's labels.
                let mut from_canon = vec![0u32; to_canon.len()];
                for (u, &c) in to_canon.iter().enumerate() {
                    from_canon[c as usize] = u as u32;
                }
                Some(w.relabeled(&from_canon))
            }
            _ => None,
        };
        Ok(Some(Hit { record, witness }))
    }

    /// Flushes the backing.
    ///
    /// # Errors
    ///
    /// Propagates backing failures.
    pub fn flush(&mut self) -> Result<(), GameError> {
        self.backing.flush()
    }

    /// Read access to the backing (tests inspect segment geometry).
    #[must_use]
    pub fn backing(&self) -> &B {
        &self.backing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backing::RamBacking;
    use bncg_core::delta::move_improves_all;
    use bncg_graph::generators;

    fn alpha(s: &str) -> Alpha {
        s.parse().unwrap()
    }

    #[test]
    fn lookup_canonicalizes_and_relabels_witnesses() {
        // Path P5 at α = 1/2: the endpoints profitably add an edge —
        // every relabeling of the path must hit the same stored record
        // and get a witness valid in its own labels.
        let g = generators::path(5);
        let concept = Concept::Bae;
        let a = alpha("1/2");
        let live = concept.find_violation(&g, a).unwrap().unwrap();
        let (safe, _canon, to_canon) = key::instance_key(&g).unwrap();
        let canon_witness = live.relabeled(&to_canon);

        let mut atlas = Atlas::open(RamBacking::new()).unwrap();
        atlas
            .append(&AtlasRecord {
                key: safe,
                n: 5,
                concept,
                alpha: a,
                model: bncg_core::CostModelSpec::SumDistances,
                verdict: StoredVerdict::Unstable(canon_witness),
                evals: 0,
            })
            .unwrap();

        let mut rng = bncg_graph::test_rng(41);
        for _ in 0..6 {
            let perm = generators::random_permutation(5, &mut rng);
            let h = g.relabeled(&perm);
            let hit = atlas.lookup(&h, concept, a).unwrap().unwrap();
            assert_eq!(hit.record.verdict.is_stable(), Some(false));
            let w = hit.witness.unwrap();
            // The relabeled witness must be a strict improvement on the
            // *query* graph: replay it and check every mover improves.
            assert!(
                move_improves_all(&h, a, &w).unwrap(),
                "witness {w:?} does not improve on the relabeled path"
            );
        }
    }

    #[test]
    fn misses_and_exhausted_records_do_not_fabricate_witnesses() {
        let g = generators::cycle(5);
        let (safe, _, _) = key::instance_key(&g).unwrap();
        let mut atlas = Atlas::open(RamBacking::new()).unwrap();
        assert!(atlas.lookup(&g, Concept::Re, alpha("2")).unwrap().is_none());
        atlas
            .append(&AtlasRecord {
                key: safe,
                n: 5,
                concept: Concept::Bne,
                alpha: alpha("2"),
                model: bncg_core::CostModelSpec::SumDistances,
                verdict: StoredVerdict::Exhausted(
                    "{\"concept\":\"bne\",\"unit\":0,\"mask\":0,\"evals\":9}".to_string(),
                ),
                evals: 9,
            })
            .unwrap();
        let hit = atlas.lookup(&g, Concept::Bne, alpha("2")).unwrap().unwrap();
        assert_eq!(hit.record.verdict.is_stable(), None);
        assert!(hit.witness.is_none());
        // Different α or concept is still a miss.
        assert!(atlas
            .lookup(&g, Concept::Bne, alpha("3"))
            .unwrap()
            .is_none());
        assert!(atlas
            .lookup(&g, Concept::Bse, alpha("2"))
            .unwrap()
            .is_none());
    }

    #[test]
    fn open_rederives_index_and_eval_totals() {
        let mut backing = RamBacking::new();
        let g = generators::star(6);
        let (safe, _, _) = key::instance_key(&g).unwrap();
        for (i, c) in [Concept::Re, Concept::Bae, Concept::Bne]
            .into_iter()
            .enumerate()
        {
            backing
                .append_line(
                    &AtlasRecord {
                        key: safe.clone(),
                        n: 6,
                        concept: c,
                        alpha: alpha("3"),
                        model: bncg_core::CostModelSpec::SumDistances,
                        verdict: StoredVerdict::Stable,
                        evals: 10 * (i as u64 + 1),
                    }
                    .to_string(),
                )
                .unwrap();
        }
        let atlas = Atlas::open(backing).unwrap();
        assert_eq!(atlas.len(), 3);
        assert_eq!(atlas.evals_total(), 60);
        let hit = atlas.lookup(&g, Concept::Bne, alpha("3")).unwrap().unwrap();
        assert_eq!(hit.record.evals, 30);
    }

    #[test]
    fn open_rejects_corrupt_lines() {
        let mut backing = RamBacking::new();
        backing.append_line("{\"not\":\"a record\"}").unwrap();
        assert!(Atlas::open(backing).is_err());
    }
}
