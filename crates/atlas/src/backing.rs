//! Pluggable storage behind the atlas: a RAM vector for tests and
//! short-lived builds, and an append-only segment-file store for the
//! disk-resident corpus.
//!
//! The contract is deliberately line-oriented: a backing stores opaque
//! newline-free lines in append order and can replay or randomly access
//! them. Everything the atlas knows — the index, eval totals, the build
//! cursor — is *derived* from the line sequence, so two backings holding
//! the same lines are the same atlas. That derivability is what makes
//! interrupted builds resumable: the cursor is a function of the store,
//! not a sidecar that can drift from it.
//!
//! ## Disk layout
//!
//! ```text
//! atlas-dir/
//!   MANIFEST            {"format":1,"segments":2,"segment_records":100000}
//!   seg-00000.jsonl     one record per line, '\n'-terminated
//!   seg-00001.jsonl     … open (tail) segment
//! ```
//!
//! Segments are append-only and rotated at `segment_records` lines. A
//! crash can tear at most the final line of the final segment; on open,
//! [`DiskBacking`] drops an unterminated or unparsable tail line and
//! truncates the file so the next append lands cleanly ([torn-tail
//! rule]). A malformed line anywhere *else* is hard corruption and
//! refuses to load — serving garbage silently is the one failure mode
//! the atlas must not have.
//!
//! [torn-tail rule]: DiskBacking#torn-tail-recovery

use bncg_core::{jsonio, GameError};
use std::fs::{self, File, OpenOptions};
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Line-oriented append store behind an [`crate::Atlas`].
///
/// Lines are opaque to the backing (no JSON awareness below the
/// torn-tail probe); ordering is append order; indices are dense from
/// zero. Implementations must make a flushed append durable and must
/// never reorder or rewrite lines other than dropping a torn tail at
/// open time.
pub trait MemoryBacking {
    /// Appends one line (without trailing newline; must not contain one).
    ///
    /// # Errors
    ///
    /// Propagates storage failures as [`GameError::Unsupported`].
    fn append_line(&mut self, line: &str) -> Result<(), GameError>;

    /// Streams every stored line, in append order, to `visit` as
    /// `(index, line)`. Callback-based so a disk-resident corpus is
    /// replayed without materializing it.
    ///
    /// # Errors
    ///
    /// Propagates storage failures as [`GameError::Unsupported`].
    fn for_each_line(&self, visit: &mut dyn FnMut(u64, &str)) -> Result<(), GameError>;

    /// Random access to the line at `index`.
    ///
    /// # Errors
    ///
    /// [`GameError::Unsupported`] if `index` is out of range or the
    /// storage fails.
    fn read_line(&self, index: u64) -> Result<String, GameError>;

    /// Number of stored lines.
    fn len(&self) -> u64;

    /// Whether the backing holds no lines.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many torn tail lines were dropped when the backing was
    /// opened (0 for fresh or clean stores). The builder uses this to
    /// report that it re-derived work rather than silently serving a
    /// truncated corpus.
    fn dropped_tail(&self) -> u64 {
        0
    }

    /// Forces buffered appends to durable storage.
    ///
    /// # Errors
    ///
    /// Propagates storage failures as [`GameError::Unsupported`].
    fn flush(&mut self) -> Result<(), GameError>;
}

impl MemoryBacking for Box<dyn MemoryBacking + Send + Sync> {
    fn append_line(&mut self, line: &str) -> Result<(), GameError> {
        (**self).append_line(line)
    }

    fn for_each_line(&self, visit: &mut dyn FnMut(u64, &str)) -> Result<(), GameError> {
        (**self).for_each_line(visit)
    }

    fn read_line(&self, index: u64) -> Result<String, GameError> {
        (**self).read_line(index)
    }

    fn len(&self) -> u64 {
        (**self).len()
    }

    fn dropped_tail(&self) -> u64 {
        (**self).dropped_tail()
    }

    fn flush(&mut self) -> Result<(), GameError> {
        (**self).flush()
    }
}

fn io_err(context: &str, e: &std::io::Error) -> GameError {
    GameError::Unsupported {
        reason: format!("atlas backing: {context}: {e}"),
    }
}

/// In-memory backing: a plain `Vec<String>`. The reference
/// implementation for tests and for builds whose corpus will be
/// consumed immediately (e.g. the CI gate's n ≤ 8 grid).
#[derive(Debug, Default, Clone)]
pub struct RamBacking {
    lines: Vec<String>,
}

impl RamBacking {
    /// An empty RAM backing.
    #[must_use]
    pub fn new() -> Self {
        RamBacking::default()
    }
}

impl MemoryBacking for RamBacking {
    fn append_line(&mut self, line: &str) -> Result<(), GameError> {
        debug_assert!(!line.contains('\n'), "backing lines must be newline-free");
        self.lines.push(line.to_string());
        Ok(())
    }

    fn for_each_line(&self, visit: &mut dyn FnMut(u64, &str)) -> Result<(), GameError> {
        for (i, line) in self.lines.iter().enumerate() {
            visit(i as u64, line);
        }
        Ok(())
    }

    fn read_line(&self, index: u64) -> Result<String, GameError> {
        usize::try_from(index)
            .ok()
            .and_then(|i| self.lines.get(i))
            .cloned()
            .ok_or_else(|| GameError::Unsupported {
                reason: format!("atlas backing: line {index} out of range"),
            })
    }

    fn len(&self) -> u64 {
        self.lines.len() as u64
    }

    fn flush(&mut self) -> Result<(), GameError> {
        Ok(())
    }
}

/// Default segment rotation threshold: lines per `seg-*.jsonl` file.
pub const DEFAULT_SEGMENT_RECORDS: u64 = 100_000;

/// On-disk format version stamped into the `MANIFEST`.
const FORMAT_VERSION: u64 = 1;

/// One entry in the in-memory line index: where a line lives on disk.
#[derive(Debug, Clone, Copy)]
struct LineLoc {
    segment: u32,
    /// Byte offset of the line start within its segment file.
    offset: u64,
    /// Line length in bytes, excluding the trailing newline.
    len: u32,
}

/// Append-only segment-file backing.
///
/// # Torn-tail recovery
///
/// On open, only the **final** line of the **final** segment may be
/// damaged (appends are single-writer and `'\n'`-terminated). If that
/// line lacks its newline or is not a parsable flat-JSON object, it is
/// dropped and the file truncated to the last clean boundary; the
/// opener can observe this via [`MemoryBacking::dropped_tail`] and
/// re-derive the lost record. Damage anywhere else fails the open with
/// [`GameError::Unsupported`] — a mid-file tear cannot happen under the
/// append-only discipline, so it means external corruption.
#[derive(Debug)]
pub struct DiskBacking {
    dir: PathBuf,
    segment_records: u64,
    index: Vec<LineLoc>,
    /// Open append handle for the tail segment.
    tail: Option<File>,
    tail_segment: u32,
    dropped: u64,
}

impl DiskBacking {
    /// Opens (or creates) an atlas directory, replaying existing
    /// segments into the line index and applying torn-tail recovery.
    ///
    /// # Errors
    ///
    /// [`GameError::Unsupported`] on I/O failure, manifest mismatch, or
    /// mid-file corruption.
    pub fn open(dir: &Path) -> Result<Self, GameError> {
        DiskBacking::open_with_segment_records(dir, DEFAULT_SEGMENT_RECORDS)
    }

    /// [`DiskBacking::open`] with an explicit rotation threshold (tests
    /// use small segments to exercise rotation). An existing manifest's
    /// threshold wins over the argument.
    ///
    /// # Errors
    ///
    /// Same as [`DiskBacking::open`].
    pub fn open_with_segment_records(dir: &Path, segment_records: u64) -> Result<Self, GameError> {
        assert!(
            segment_records > 0,
            "segment rotation threshold must be positive"
        );
        fs::create_dir_all(dir).map_err(|e| io_err("create directory", &e))?;
        let manifest = dir.join("MANIFEST");
        let (segments, segment_records) = if manifest.exists() {
            let text = fs::read_to_string(&manifest).map_err(|e| io_err("read MANIFEST", &e))?;
            let format = jsonio::u64_field(&text, "format");
            if format != Some(FORMAT_VERSION) {
                return Err(GameError::Unsupported {
                    reason: format!(
                        "atlas backing: MANIFEST format {format:?} is not {FORMAT_VERSION}"
                    ),
                });
            }
            let segments =
                jsonio::u64_field(&text, "segments").ok_or_else(|| GameError::Unsupported {
                    reason: "atlas backing: MANIFEST is missing \"segments\"".to_string(),
                })?;
            let per = jsonio::u64_field(&text, "segment_records").ok_or_else(|| {
                GameError::Unsupported {
                    reason: "atlas backing: MANIFEST is missing \"segment_records\"".to_string(),
                }
            })?;
            (segments, per)
        } else {
            (0, segment_records)
        };

        let mut backing = DiskBacking {
            dir: dir.to_path_buf(),
            segment_records,
            index: Vec::new(),
            tail: None,
            tail_segment: 0,
            dropped: 0,
        };
        for seg in 0..segments {
            let seg = u32::try_from(seg).map_err(|_| GameError::Unsupported {
                reason: "atlas backing: segment count overflows u32".to_string(),
            })?;
            backing.load_segment(seg, seg + 1 == segments as u32)?;
        }
        backing.tail_segment = segments.saturating_sub(1) as u32;
        if segments == 0 {
            backing.write_manifest(1)?;
            backing.tail_segment = 0;
        }
        Ok(backing)
    }

    fn segment_path(&self, segment: u32) -> PathBuf {
        self.dir.join(format!("seg-{segment:05}.jsonl"))
    }

    fn write_manifest(&self, segments: u64) -> Result<(), GameError> {
        let tmp = self.dir.join("MANIFEST.tmp");
        let body = format!(
            "{{\"format\":{FORMAT_VERSION},\"segments\":{segments},\"segment_records\":{}}}\n",
            self.segment_records
        );
        fs::write(&tmp, body).map_err(|e| io_err("write MANIFEST.tmp", &e))?;
        fs::rename(&tmp, self.dir.join("MANIFEST")).map_err(|e| io_err("commit MANIFEST", &e))
    }

    /// Replays one segment file into the index. Only the tail segment is
    /// allowed (and repaired for) a torn final line.
    fn load_segment(&mut self, segment: u32, is_tail: bool) -> Result<(), GameError> {
        let path = self.segment_path(segment);
        if is_tail && !path.exists() {
            // A rotation (or fresh open) commits the manifest before the
            // first append creates the tail file; a missing tail is an
            // empty tail, not corruption.
            return Ok(());
        }
        let mut file =
            File::open(&path).map_err(|e| io_err(&format!("open {}", path.display()), &e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| io_err(&format!("read {}", path.display()), &e))?;

        let mut offset = 0u64;
        let mut clean_end = 0u64;
        while (offset as usize) < bytes.len() {
            let rest = &bytes[offset as usize..];
            let nl = rest.iter().position(|&b| b == b'\n');
            let (line_bytes, terminated) = match nl {
                Some(i) => (&rest[..i], true),
                None => (rest, false),
            };
            let line = std::str::from_utf8(line_bytes).ok();
            let parses = line.is_some_and(|l| {
                let l = l.trim();
                l.starts_with('{') && l.ends_with('}')
            });
            if !terminated || !parses {
                if is_tail {
                    // Torn tail: drop the damaged line, truncate to the
                    // last clean boundary, and report the repair.
                    drop(file);
                    let f = OpenOptions::new()
                        .write(true)
                        .open(&path)
                        .map_err(|e| io_err("reopen tail for truncate", &e))?;
                    f.set_len(clean_end)
                        .map_err(|e| io_err("truncate torn tail", &e))?;
                    f.sync_all()
                        .map_err(|e| io_err("sync truncated tail", &e))?;
                    self.dropped += 1;
                    return Ok(());
                }
                return Err(GameError::Unsupported {
                    reason: format!(
                        "atlas backing: {} is corrupt at byte {offset} (mid-file \
                         damage cannot be repaired)",
                        path.display()
                    ),
                });
            }
            let len = u32::try_from(line_bytes.len()).map_err(|_| GameError::Unsupported {
                reason: "atlas backing: line exceeds u32 bytes".to_string(),
            })?;
            self.index.push(LineLoc {
                segment,
                offset,
                len,
            });
            offset += u64::from(len) + 1;
            clean_end = offset;
        }
        Ok(())
    }

    /// Lines currently in the tail segment.
    fn tail_lines(&self) -> u64 {
        self.index
            .iter()
            .rev()
            .take_while(|loc| loc.segment == self.tail_segment)
            .count() as u64
    }

    fn open_tail(&mut self) -> Result<(), GameError> {
        if self.tail.is_none() {
            let path = self.segment_path(self.tail_segment);
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| io_err(&format!("open tail {}", path.display()), &e))?;
            self.tail = Some(file);
        }
        Ok(())
    }
}

impl MemoryBacking for DiskBacking {
    fn append_line(&mut self, line: &str) -> Result<(), GameError> {
        debug_assert!(!line.contains('\n'), "backing lines must be newline-free");
        if self.tail_lines() >= self.segment_records {
            self.flush()?;
            self.tail = None;
            self.tail_segment += 1;
            self.write_manifest(u64::from(self.tail_segment) + 1)?;
        }
        self.open_tail()?;
        let offset = self
            .tail
            .as_mut()
            .expect("tail opened above")
            .seek(SeekFrom::End(0))
            .map_err(|e| io_err("seek tail", &e))?;
        let file = self.tail.as_mut().expect("tail opened above");
        file.write_all(line.as_bytes())
            .and_then(|()| file.write_all(b"\n"))
            .map_err(|e| io_err("append line", &e))?;
        self.index.push(LineLoc {
            segment: self.tail_segment,
            offset,
            len: u32::try_from(line.len()).map_err(|_| GameError::Unsupported {
                reason: "atlas backing: line exceeds u32 bytes".to_string(),
            })?,
        });
        Ok(())
    }

    fn for_each_line(&self, visit: &mut dyn FnMut(u64, &str)) -> Result<(), GameError> {
        let mut idx = 0u64;
        let mut segment = 0u32;
        loop {
            let path = self.segment_path(segment);
            if !path.exists() {
                break;
            }
            let file =
                File::open(&path).map_err(|e| io_err(&format!("open {}", path.display()), &e))?;
            for line in BufReader::new(file).lines() {
                let line = line.map_err(|e| io_err("read line", &e))?;
                if idx >= self.len() {
                    break;
                }
                visit(idx, &line);
                idx += 1;
            }
            segment += 1;
        }
        Ok(())
    }

    fn read_line(&self, index: u64) -> Result<String, GameError> {
        let loc = usize::try_from(index)
            .ok()
            .and_then(|i| self.index.get(i))
            .ok_or_else(|| GameError::Unsupported {
                reason: format!("atlas backing: line {index} out of range"),
            })?;
        let path = self.segment_path(loc.segment);
        let mut file =
            File::open(&path).map_err(|e| io_err(&format!("open {}", path.display()), &e))?;
        file.seek(SeekFrom::Start(loc.offset))
            .map_err(|e| io_err("seek line", &e))?;
        let mut buf = vec![0u8; loc.len as usize];
        file.read_exact(&mut buf)
            .map_err(|e| io_err("read line bytes", &e))?;
        String::from_utf8(buf).map_err(|_| GameError::Unsupported {
            reason: format!("atlas backing: line {index} is not UTF-8"),
        })
    }

    fn len(&self) -> u64 {
        self.index.len() as u64
    }

    fn dropped_tail(&self) -> u64 {
        self.dropped
    }

    fn flush(&mut self) -> Result<(), GameError> {
        if let Some(file) = self.tail.as_mut() {
            file.sync_all().map_err(|e| io_err("sync tail", &e))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bncg-atlas-backing-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_lines(count: usize) -> Vec<String> {
        (0..count)
            .map(|i| format!("{{\"key\":\"L{i}\",\"n\":{i},\"evals\":{}}}", i * 7))
            .collect()
    }

    fn collect(b: &dyn MemoryBacking) -> Vec<String> {
        let mut out = Vec::new();
        b.for_each_line(&mut |_, line| out.push(line.to_string()))
            .unwrap();
        out
    }

    #[test]
    fn ram_backing_stores_and_replays_in_order() {
        let mut b = RamBacking::new();
        let lines = sample_lines(5);
        for l in &lines {
            b.append_line(l).unwrap();
        }
        assert_eq!(b.len(), 5);
        assert_eq!(collect(&b), lines);
        assert_eq!(b.read_line(3).unwrap(), lines[3]);
        assert!(b.read_line(5).is_err());
    }

    #[test]
    fn disk_backing_round_trips_across_reopen_and_rotation() {
        let dir = temp_dir("rotate");
        let lines = sample_lines(11);
        {
            let mut b = DiskBacking::open_with_segment_records(&dir, 4).unwrap();
            for l in &lines {
                b.append_line(l).unwrap();
            }
            b.flush().unwrap();
            assert_eq!(b.len(), 11);
        }
        // 11 lines at 4 per segment → segments 0..=2 on disk.
        assert!(dir.join("seg-00002.jsonl").exists());
        let b = DiskBacking::open(&dir).unwrap();
        assert_eq!(b.len(), 11);
        assert_eq!(b.dropped_tail(), 0);
        assert_eq!(collect(&b), lines);
        for (i, l) in lines.iter().enumerate() {
            assert_eq!(&b.read_line(i as u64).unwrap(), l);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_backing_drops_and_truncates_a_torn_tail() {
        let dir = temp_dir("torn");
        let lines = sample_lines(6);
        {
            let mut b = DiskBacking::open_with_segment_records(&dir, 4).unwrap();
            for l in &lines {
                b.append_line(l).unwrap();
            }
            b.flush().unwrap();
        }
        // Tear the last line of the tail segment mid-way.
        let tail = dir.join("seg-00001.jsonl");
        let text = fs::read_to_string(&tail).unwrap();
        fs::write(&tail, &text[..text.len() - 4]).unwrap();

        let mut b = DiskBacking::open(&dir).unwrap();
        assert_eq!(b.dropped_tail(), 1);
        assert_eq!(b.len(), 5);
        assert_eq!(collect(&b), lines[..5]);
        // The store accepts appends again and the re-derived line lands
        // exactly where the torn one was.
        b.append_line(&lines[5]).unwrap();
        b.flush().unwrap();
        drop(b);
        let b = DiskBacking::open(&dir).unwrap();
        assert_eq!(b.dropped_tail(), 0);
        assert_eq!(collect(&b), lines);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_backing_refuses_mid_file_corruption() {
        let dir = temp_dir("midfile");
        {
            let mut b = DiskBacking::open_with_segment_records(&dir, 4).unwrap();
            for l in sample_lines(6) {
                b.append_line(&l).unwrap();
            }
            b.flush().unwrap();
        }
        // Damage the *first* (non-tail) segment: cut the closing brace
        // of its first line, so the line terminates but is not an object.
        let seg0 = dir.join("seg-00000.jsonl");
        let text = fs::read_to_string(&seg0).unwrap();
        fs::write(&seg0, text.replacen("}\n", "\n", 1)).unwrap();
        assert!(DiskBacking::open(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_survives_and_pins_the_rotation_threshold() {
        let dir = temp_dir("manifest");
        {
            let mut b = DiskBacking::open_with_segment_records(&dir, 3).unwrap();
            for l in sample_lines(4) {
                b.append_line(&l).unwrap();
            }
            b.flush().unwrap();
        }
        // Reopening with a different requested threshold keeps the
        // manifest's value — segment geometry is a property of the store.
        let mut b = DiskBacking::open_with_segment_records(&dir, 1000).unwrap();
        assert_eq!(b.segment_records, 3);
        for l in sample_lines(4) {
            b.append_line(&l).unwrap();
        }
        b.flush().unwrap();
        assert_eq!(b.len(), 8);
        assert!(dir.join("seg-00002.jsonl").exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
