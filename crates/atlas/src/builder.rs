//! The resumable atlas builder: a deterministic walk over canonical
//! connected classes × concepts × a pinned α grid, metered by one
//! shared eval budget.
//!
//! ## Determinism contract
//!
//! The build order is a pure function of the [`BuildSpec`]: node counts
//! ascending, classes in [`bncg_graph::enumerate::connected_graph_classes`]
//! order (edge count, then canonical key), concepts in spec order, then
//! the per-instance resolved α grid ascending. Queries run strictly
//! sequentially (one worker) against a budget pool whose position is
//! `Σ` of the stored `evals` column — so a build interrupted at *any*
//! record boundary and resumed (even across process restarts, even
//! after a torn-tail repair re-derives the last record) appends exactly
//! the lines the uninterrupted build would have, byte for byte. The
//! root `tests/atlas.rs` suite property-tests this.
//!
//! Running dry is not an error: once the pool drains, remaining
//! exponential checks are stored as first-class `exhausted` records
//! (polynomial concepts complete eagerly and are never metered).

use crate::atlas::Atlas;
use crate::backing::MemoryBacking;
use crate::key;
use crate::record::{AtlasRecord, StoredVerdict};
use bncg_core::{
    jsonio, Alpha, Concept, CostModelSpec, ExecPolicy, GameError, Solver, StabilityQuery,
};
use bncg_graph::{enumerate, graph6};
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::AtomicU64;
use std::sync::atomic::Ordering;

/// One α grid entry: either a pinned price or the instance-dependent
/// price `α = n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlphaSpec {
    /// A fixed price, identical for every instance.
    Fixed(Alpha),
    /// The price `α = n` (the paper's large-α regime scales with the
    /// instance).
    N,
}

impl AlphaSpec {
    /// Resolves the entry for an `n`-node instance.
    ///
    /// # Errors
    ///
    /// [`GameError::InvalidAlpha`] if `n = 0` (no such instance).
    pub fn resolve(&self, n: u32) -> Result<Alpha, GameError> {
        match self {
            AlphaSpec::Fixed(a) => Ok(*a),
            AlphaSpec::N => Alpha::integer(i64::from(n)),
        }
    }
}

impl fmt::Display for AlphaSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlphaSpec::Fixed(a) => write!(f, "{a}"),
            AlphaSpec::N => f.write_str("n"),
        }
    }
}

impl FromStr for AlphaSpec {
    type Err = GameError;

    fn from_str(s: &str) -> Result<Self, GameError> {
        if s.trim().eq_ignore_ascii_case("n") {
            Ok(AlphaSpec::N)
        } else {
            Ok(AlphaSpec::Fixed(s.parse()?))
        }
    }
}

/// What to build: the instance ceiling, the α grid, and the concepts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildSpec {
    /// Largest node count to enumerate (1..=`max_n`), capped by
    /// [`enumerate::MAX_GRAPH_CLASS_NODES`].
    pub max_n: u32,
    /// The α grid, resolved per instance and deduplicated after
    /// resolution (at `n = 1` the entries `1` and `n` coincide).
    pub grid: Vec<AlphaSpec>,
    /// Concepts to check, in build order.
    pub concepts: Vec<Concept>,
}

impl BuildSpec {
    /// The pinned standard spec: α ∈ {1/2, 1, 2, n} over every concept
    /// of Table 1.
    ///
    /// # Panics
    ///
    /// Never — the grid constants are valid prices.
    #[must_use]
    pub fn standard(max_n: u32) -> BuildSpec {
        BuildSpec {
            max_n,
            grid: vec![
                AlphaSpec::Fixed(Alpha::from_ratio(1, 2).expect("1/2 is a valid price")),
                AlphaSpec::Fixed(Alpha::integer(1).expect("1 is a valid price")),
                AlphaSpec::Fixed(Alpha::integer(2).expect("2 is a valid price")),
                AlphaSpec::N,
            ],
            concepts: Concept::ALL.to_vec(),
        }
    }

    /// A stable textual fingerprint of the spec, embedded in the
    /// [`Cursor`] so a resume against a different spec is rejected
    /// instead of silently interleaving two walks.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let grid: Vec<String> = self.grid.iter().map(ToString::to_string).collect();
        let concepts: Vec<String> = self.concepts.iter().map(Concept::token).collect();
        format!(
            "v1;max_n={};grid={};concepts={}",
            self.max_n,
            grid.join(","),
            concepts.join(",")
        )
    }

    /// The per-instance α grid: resolved, ascending, deduplicated.
    ///
    /// # Errors
    ///
    /// Propagates [`AlphaSpec::resolve`] failures.
    pub fn resolved_grid(&self, n: u32) -> Result<Vec<Alpha>, GameError> {
        let mut grid = self
            .grid
            .iter()
            .map(|s| s.resolve(n))
            .collect::<Result<Vec<_>, _>>()?;
        grid.sort();
        grid.dedup();
        Ok(grid)
    }

    /// The per-class work items `(concept, α)` in build order.
    fn class_items(&self, n: u32) -> Result<Vec<(Concept, Alpha)>, GameError> {
        let grid = self.resolved_grid(n)?;
        Ok(self
            .concepts
            .iter()
            .flat_map(|c| grid.iter().map(move |a| (*c, *a)))
            .collect())
    }
}

/// A serializable build position: how many records exist and how much
/// of the shared budget they consumed. Derived from the atlas itself
/// ([`Cursor::of_atlas`]), never stored beside it — the store cannot
/// drift from its own cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cursor {
    /// Fingerprint of the spec the records follow.
    pub spec: String,
    /// Records present.
    pub records: u64,
    /// Σ of the stored `evals` column (the budget-pool position).
    pub pool_used: u64,
}

impl Cursor {
    /// Derives the cursor of an atlas under `spec`.
    #[must_use]
    pub fn of_atlas<B: MemoryBacking>(atlas: &Atlas<B>, spec: &BuildSpec) -> Cursor {
        Cursor {
            spec: spec.fingerprint(),
            records: atlas.len(),
            pool_used: atlas.evals_total(),
        }
    }
}

impl fmt::Display for Cursor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{\"spec\":\"{}\",\"records\":{},\"pool_used\":{}}}",
            self.spec, self.records, self.pool_used
        )
    }
}

impl FromStr for Cursor {
    type Err = GameError;

    fn from_str(s: &str) -> Result<Self, GameError> {
        let missing = |field: &str| GameError::Unsupported {
            reason: format!("atlas cursor is missing \"{field}\": {s}"),
        };
        Ok(Cursor {
            spec: jsonio::str_field(s, "spec")
                .ok_or_else(|| missing("spec"))?
                .to_string(),
            records: jsonio::u64_field(s, "records").ok_or_else(|| missing("records"))?,
            pool_used: jsonio::u64_field(s, "pool_used").ok_or_else(|| missing("pool_used"))?,
        })
    }
}

/// What one [`build`] call did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildReport {
    /// Records appended by this call.
    pub appended: u64,
    /// Records already present and skipped (the resume prefix).
    pub skipped: u64,
    /// Evaluations charged to the pool by this call.
    pub evals_charged: u64,
    /// The pool position after this call (Σ stored evals).
    pub pool_used: u64,
    /// Whether the walk reached the end of the spec (false when a
    /// `step_limit` interrupted it; an exhausted *budget* still runs to
    /// completion, storing `exhausted` records).
    pub complete: bool,
    /// Torn tail lines the backing repaired at open; the records were
    /// re-derived by this walk, not lost.
    pub rederived_tail: u64,
}

/// Runs (or resumes) the build walk on `atlas`.
///
/// `budget` is the **total** eval budget of the whole atlas, not of
/// this call: the pool is seeded with `Σ` of the already-stored `evals`
/// column, so interrupt/resume chains and one-shot builds consume the
/// budget identically. `step_limit` caps the records appended by this
/// call (the interruption primitive; `None` runs to the end).
///
/// # Errors
///
/// [`GameError::Unsupported`] if the stored prefix does not match the
/// spec's walk (resuming against the wrong spec), plus any storage or
/// solver error.
pub fn build<B: MemoryBacking>(
    atlas: &mut Atlas<B>,
    spec: &BuildSpec,
    budget: u64,
    step_limit: Option<u64>,
) -> Result<BuildReport, GameError> {
    let done = atlas.len();
    let rederived_tail = atlas.dropped_tail();
    let pool = AtomicU64::new(atlas.evals_total());
    let evals_at_start = atlas.evals_total();
    // One worker, strictly in input order: the determinism basis for
    // byte-identical interrupt/resume chains.
    let solver = Solver::new(
        ExecPolicy::default()
            .with_threads(1)
            .with_batch_budget(budget),
    );

    let mut idx = 0u64; // global work-item index
    let mut appended = 0u64;
    let mut complete = true;

    'walk: for n in 1..=spec.max_n {
        let classes = enumerate::connected_graph_classes(n as usize)?;
        let items = spec.class_items(n)?;
        let per_class = items.len() as u64;
        for g in &classes {
            if idx + per_class <= done {
                // Fully stored class; spot-check the newest record if it
                // falls here, then skip without touching the solver.
                if done - idx <= per_class {
                    let at = usize::try_from(done - 1 - idx).expect("per-class count is small");
                    spot_check(atlas, done - 1, g, n, items[at])?;
                }
                idx += per_class;
                continue;
            }
            let start = usize::try_from(done.saturating_sub(idx)).expect("within one class");
            if start > 0 {
                spot_check(atlas, done - 1, g, n, items[start - 1])?;
            }
            let mut take = items.len() - start;
            if let Some(limit) = step_limit {
                let left = usize::try_from(limit - appended).unwrap_or(usize::MAX);
                take = take.min(left);
            }
            if take < items.len() - start {
                complete = false;
            }
            if take > 0 {
                let safe = class_key(g)?;
                let slice = &items[start..start + take];
                let queries: Vec<StabilityQuery> = slice
                    .iter()
                    .map(|(c, a)| StabilityQuery::new(*c, g, *a))
                    .collect();
                for ((concept, alpha), verdict) in
                    slice.iter().zip(solver.check_many_pooled(&queries, &pool))
                {
                    let (stored, evals) = StoredVerdict::of_verdict(&verdict?);
                    atlas.append(&AtlasRecord {
                        key: safe.clone(),
                        n,
                        concept: *concept,
                        alpha: *alpha,
                        model: CostModelSpec::SumDistances,
                        verdict: stored,
                        evals,
                    })?;
                    appended += 1;
                }
            }
            if !complete {
                break 'walk;
            }
            idx += per_class;
        }
    }

    if complete && done > idx {
        return Err(GameError::Unsupported {
            reason: format!(
                "atlas holds {done} records but the spec's walk has only {idx} \
                 work items — it was built under a different spec"
            ),
        });
    }
    atlas.flush()?;
    debug_assert_eq!(pool.load(Ordering::Relaxed), atlas.evals_total());
    Ok(BuildReport {
        appended,
        skipped: done,
        evals_charged: atlas.evals_total() - evals_at_start,
        pool_used: atlas.evals_total(),
        complete,
        rederived_tail,
    })
}

/// The safe key of an (already canonical) class representative.
fn class_key(g: &bncg_graph::Graph) -> Result<String, GameError> {
    let g6 = graph6::encode(g).map_err(|e| GameError::Unsupported {
        reason: format!("class representative does not encode as graph6: {e}"),
    })?;
    key::safe_key(&g6)
}

/// Confirms the stored record at `at` is the one the walk would have
/// produced there — the cheap guard against resuming a store built
/// under a different spec.
fn spot_check<B: MemoryBacking>(
    atlas: &Atlas<B>,
    at: u64,
    g: &bncg_graph::Graph,
    n: u32,
    (concept, alpha): (Concept, Alpha),
) -> Result<(), GameError> {
    let rec = atlas.record(at)?;
    let expected = class_key(g)?;
    if rec.key != expected || rec.n != n || rec.concept != concept || rec.alpha != alpha {
        return Err(GameError::Unsupported {
            reason: format!(
                "atlas record {at} is ({}, n={}, {}, α={}) but the spec's walk \
                 expects ({expected}, n={n}, {}, α={alpha}) — resume against the \
                 spec the store was built with",
                rec.key,
                rec.n,
                rec.concept.token(),
                rec.alpha,
                concept.token(),
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backing::RamBacking;

    fn small_spec() -> BuildSpec {
        BuildSpec {
            max_n: 4,
            grid: vec![
                AlphaSpec::Fixed(Alpha::from_ratio(1, 2).unwrap()),
                AlphaSpec::Fixed(Alpha::integer(2).unwrap()),
                AlphaSpec::N,
            ],
            concepts: vec![Concept::Re, Concept::Bae, Concept::Bne],
        }
    }

    fn atlas_lines(atlas: &Atlas<RamBacking>) -> Vec<String> {
        let mut out = Vec::new();
        atlas
            .backing()
            .for_each_line(&mut |_, l| out.push(l.to_string()))
            .unwrap();
        out
    }

    #[test]
    fn alpha_specs_parse_and_resolve() {
        assert_eq!("n".parse::<AlphaSpec>().unwrap(), AlphaSpec::N);
        assert_eq!(
            "3/2".parse::<AlphaSpec>().unwrap(),
            AlphaSpec::Fixed(Alpha::from_ratio(3, 2).unwrap())
        );
        assert_eq!(AlphaSpec::N.resolve(7).unwrap(), Alpha::integer(7).unwrap());
        assert_eq!(AlphaSpec::N.to_string(), "n");
    }

    #[test]
    fn resolved_grid_dedups_after_resolution() {
        let spec = BuildSpec::standard(6);
        // At n = 1 and n = 2 the `n` entry collides with a fixed one.
        assert_eq!(spec.resolved_grid(1).unwrap().len(), 3);
        assert_eq!(spec.resolved_grid(2).unwrap().len(), 3);
        assert_eq!(spec.resolved_grid(6).unwrap().len(), 4);
    }

    #[test]
    fn cursor_round_trips_and_derives_from_the_store() {
        let spec = small_spec();
        let mut atlas = Atlas::open(RamBacking::new()).unwrap();
        build(&mut atlas, &spec, 100_000, None).unwrap();
        let cursor = Cursor::of_atlas(&atlas, &spec);
        assert_eq!(cursor.records, atlas.len());
        assert_eq!(cursor.pool_used, atlas.evals_total());
        assert_eq!(cursor.to_string().parse::<Cursor>().unwrap(), cursor);
    }

    #[test]
    fn interrupted_chains_reproduce_the_one_shot_build() {
        let spec = small_spec();
        let budget = 5_000u64;
        let mut oneshot = Atlas::open(RamBacking::new()).unwrap();
        let report = build(&mut oneshot, &spec, budget, None).unwrap();
        assert!(report.complete);
        assert!(report.appended > 0);

        // Resume in steps of 7 records until complete.
        let mut chained = Atlas::open(RamBacking::new()).unwrap();
        let mut rounds = 0;
        loop {
            let r = build(&mut chained, &spec, budget, Some(7)).unwrap();
            rounds += 1;
            assert!(rounds < 10_000, "chain failed to converge");
            if r.complete {
                break;
            }
            assert_eq!(r.appended, 7);
        }
        assert_eq!(atlas_lines(&oneshot), atlas_lines(&chained));
        assert_eq!(oneshot.evals_total(), chained.evals_total());
    }

    #[test]
    fn a_drained_budget_stores_exhausted_records_and_still_completes() {
        let spec = BuildSpec {
            max_n: 4,
            grid: vec![AlphaSpec::Fixed(Alpha::integer(3).unwrap())],
            concepts: vec![Concept::Bne],
        };
        let mut atlas = Atlas::open(RamBacking::new()).unwrap();
        let report = build(&mut atlas, &spec, 5, None).unwrap();
        assert!(report.complete);
        assert!(report.pool_used <= 5 + 64, "pool overrun: {report:?}");
        let mut exhausted = 0;
        atlas
            .for_each_record(&mut |_, r| {
                if matches!(r.verdict, StoredVerdict::Exhausted(_)) {
                    exhausted += 1;
                }
            })
            .unwrap();
        assert!(exhausted > 0, "a 5-eval budget cannot finish n ≤ 4 BNE");
    }

    #[test]
    fn resuming_under_a_different_spec_is_rejected() {
        let mut atlas = Atlas::open(RamBacking::new()).unwrap();
        build(&mut atlas, &small_spec(), 100_000, None).unwrap();
        let mut other = small_spec();
        other.concepts = vec![Concept::Bse, Concept::Re, Concept::Bae];
        assert!(build(&mut atlas, &other, 100_000, None).is_err());
    }

    #[test]
    fn the_walk_covers_every_class_concept_alpha_triple_exactly_once() {
        let spec = small_spec();
        let mut atlas = Atlas::open(RamBacking::new()).unwrap();
        build(&mut atlas, &spec, 100_000, None).unwrap();
        // Connected classes at n = 1..4: 1 + 1 + 2 + 6. Work per class:
        // 3 concepts × (3 α at n ≥ 3 — the grid is {1/2, 2, n}, which
        // collides at n = 2 only).
        let expected: u64 = [1u64, 1, 2, 6]
            .iter()
            .zip([3u64, 2, 3, 3])
            .map(|(classes, alphas)| classes * 3 * alphas)
            .sum();
        assert_eq!(atlas.len(), expected);
        let mut keys = std::collections::HashSet::new();
        atlas
            .for_each_record(&mut |_, r| {
                assert!(keys.insert(r.index_key()), "duplicate {}", r.index_key());
            })
            .unwrap();
    }
}
