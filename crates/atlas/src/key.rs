//! Atlas keys: canonical graph6 strings transliterated into the
//! record dialect's safe alphabet.
//!
//! The atlas keys every instance by the graph6 encoding of its
//! **canonical representative** ([`bncg_graph::iso::canonical_form`]),
//! so isomorphic queries collapse onto one entry. Raw graph6 bytes span
//! `63..=126`, which includes `\`, `{`, `}`, `[` and `]` — characters
//! the repo's escape-free flat-JSON dialect ([`bncg_core::jsonio`])
//! cannot carry inside a string. Stored keys therefore use a bijective
//! transliteration onto the base64url alphabet: graph6 byte `b` maps to
//! `SAFE[b - 63]`. The graph6 string stays the logical, CLI-facing key;
//! the safe form is what travels in records and requests.

use bncg_core::GameError;
use bncg_graph::{graph6, iso, Graph};

/// The 64-character target alphabet: index `i` encodes graph6 byte
/// `63 + i`. Every character is safe inside the escape-free dialect.
const SAFE: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

/// Transliterates a graph6 string into the safe record alphabet.
///
/// # Errors
///
/// Returns [`GameError::Unsupported`] if `graph6` contains a byte
/// outside the graph6 range `63..=126`.
pub fn safe_key(graph6: &str) -> Result<String, GameError> {
    graph6
        .bytes()
        .map(|b| {
            if (63..=126).contains(&b) {
                Ok(char::from(SAFE[(b - 63) as usize]))
            } else {
                Err(GameError::Unsupported {
                    reason: format!("byte {b} is outside the graph6 alphabet"),
                })
            }
        })
        .collect()
}

/// Inverse of [`safe_key`]: recovers the graph6 string.
///
/// # Errors
///
/// Returns [`GameError::Unsupported`] if `key` contains a character
/// outside the safe alphabet.
pub fn graph6_of_key(key: &str) -> Result<String, GameError> {
    key.bytes()
        .map(|b| {
            SAFE.iter()
                .position(|&s| s == b)
                .map(|i| char::from(63 + i as u8))
                .ok_or_else(|| GameError::Unsupported {
                    reason: format!("'{}' is not a safe-key character", char::from(b)),
                })
        })
        .collect()
}

/// The canonical atlas identity of an instance: its safe key, its
/// canonical representative, and the permutation mapping the instance's
/// labels onto the representative's (`perm[u]` is `u`'s canonical
/// label). The permutation is what translates a stored witness back to
/// the query's labels.
///
/// # Errors
///
/// Returns [`GameError::Unsupported`] if the graph exceeds the graph6
/// encoder's size limit (far beyond atlas sizes).
pub fn instance_key(g: &Graph) -> Result<(String, Graph, Vec<u32>), GameError> {
    let (canon, perm) = iso::canonical_form(g);
    let g6 = graph6::encode(&canon).map_err(|e| GameError::Unsupported {
        reason: format!("graph does not encode as graph6: {e}"),
    })?;
    Ok((safe_key(&g6)?, canon, perm))
}

/// Decodes a safe key back to its canonical representative graph.
///
/// # Errors
///
/// Returns [`GameError::Unsupported`] if the key is not a transliterated
/// graph6 string.
pub fn graph_of_key(key: &str) -> Result<Graph, GameError> {
    let g6 = graph6_of_key(key)?;
    graph6::decode(&g6).map_err(|e| GameError::Unsupported {
        reason: format!("key does not decode as graph6: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bncg_graph::generators;

    #[test]
    fn transliteration_round_trips_every_graph6_byte() {
        let all: String = (63u8..=126).map(char::from).collect();
        let safe = safe_key(&all).unwrap();
        assert!(safe.bytes().all(|b| SAFE.contains(&b)));
        assert_eq!(graph6_of_key(&safe).unwrap(), all);
    }

    #[test]
    fn transliteration_rejects_foreign_bytes() {
        assert!(safe_key(" ").is_err());
        assert!(graph6_of_key("*").is_err());
    }

    #[test]
    fn instance_keys_are_isomorphism_invariant_and_decodable() {
        let mut rng = bncg_graph::test_rng(67);
        for _ in 0..10 {
            let g = generators::random_connected(7, 0.4, &mut rng);
            let perm = generators::random_permutation(7, &mut rng);
            let (key_a, canon, to_canon) = instance_key(&g).unwrap();
            let (key_b, _, _) = instance_key(&g.relabeled(&perm)).unwrap();
            assert_eq!(key_a, key_b);
            assert_eq!(g.relabeled(&to_canon), canon);
            assert_eq!(graph_of_key(&key_a).unwrap(), canon);
        }
    }
}
