//! # bncg-atlas — the precomputed stability corpus
//!
//! A disk-resident (or in-memory) atlas of exact stability verdicts
//! for **every** connected graph class up to a node ceiling, across
//! the solution-concept ladder and a pinned α grid. Built once under a
//! shared eval budget, the atlas answers stability queries at zero
//! solver cost: the serving layer's `atlas_lookup` op canonicalizes
//! the query graph, probes the corpus, and returns the stored verdict
//! (witnesses relabeled back into the query's own vertex labels).
//!
//! ## Layers
//!
//! - [`backing`] — the [`MemoryBacking`] storage trait with
//!   [`RamBacking`] and the append-only segment-file [`DiskBacking`]
//!   (torn-tail repair, manifest-pinned geometry).
//! - [`record`] — the one-line flat-JSON [`AtlasRecord`] and its
//!   [`StoredVerdict`].
//! - [`key`] — canonical graph6 keys, transliterated into an
//!   escape-free alphabet.
//! - [`atlas`] — the [`Atlas`] index: open/replay, append, and
//!   canonical-key [`Atlas::lookup`] with witness relabeling.
//! - [`builder`] — the deterministic, resumable, budget-pooled
//!   [`build`] walk and its serializable [`Cursor`].
//! - [`verify`] — seeded differential replay of stored entries against
//!   the live solver ([`verify::verify`]).
//!
//! ## Determinism
//!
//! The corpus is a pure function of the [`BuildSpec`] and the budget:
//! build order is pinned, queries run sequentially, and the budget
//! pool's position is recoverable as `Σ` of the stored `evals` column.
//! Interrupting and resuming a build — at any record boundary, across
//! process restarts, even after a torn-tail repair — yields the
//! byte-identical atlas (property-tested in the root `tests/atlas.rs`).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod atlas;
pub mod backing;
pub mod builder;
pub mod key;
pub mod record;
pub mod verify;

pub use atlas::{Atlas, Hit};
pub use backing::{DiskBacking, MemoryBacking, RamBacking, DEFAULT_SEGMENT_RECORDS};
pub use builder::{build, AlphaSpec, BuildReport, BuildSpec, Cursor};
pub use record::{AtlasRecord, StoredVerdict};
pub use verify::{verify as verify_atlas, VerifyReport};

/// An atlas over a type-erased backing — what long-lived embedders (the
/// daemon) hold so RAM- and disk-resident corpora share one type.
pub type DynAtlas = Atlas<Box<dyn MemoryBacking + Send + Sync>>;
