//! The atlas record: one stability verdict for one (canonical graph,
//! concept, α) triple, as a single flat-JSON line.
//!
//! Wire shape (escape-free dialect, [`bncg_core::jsonio`]):
//!
//! ```text
//! {"key":"EFz_","n":6,"concept":"bne","alpha":"3/2","verdict":"stable","evals":118}
//! {"key":"EFz_","n":6,"concept":"bse","alpha":"2","verdict":"unstable","evals":7,"witness":{"kind":"add","u":0,"v":3}}
//! {"key":"EFz_","n":6,"concept":"bne","alpha":"5","verdict":"exhausted","evals":2048,"frontier":{...}}
//! ```
//!
//! Field order is fixed and the nested `witness`/`frontier` object comes
//! last, so the flat extractors never confuse an outer field with one
//! inside the nested object (none of the outer names — `key`, `n`,
//! `concept`, `alpha`, `verdict`, `evals` — occur inside witness or
//! frontier tokens). Witness moves are stored in **canonical labels**;
//! [`crate::Atlas::lookup`] relabels them back to the query's labels.

use bncg_core::solver::Frontier;
use bncg_core::{jsonio, Alpha, Concept, CostModelSpec, GameError, Move, Verdict};
use std::fmt;
use std::str::FromStr;

/// The stored outcome of a stability check, stripped of run-local
/// accounting (timings, per-run prune counters) so that a rebuilt atlas
/// is byte-identical regardless of wall clock or thread scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoredVerdict {
    /// Certified stable.
    Stable,
    /// Certified unstable, with the violating move in canonical labels.
    Unstable(Move),
    /// The build budget ran out mid-scan; the frontier token resumes it.
    Exhausted(String),
}

impl StoredVerdict {
    /// Collapses a live solver [`Verdict`] to its storable core, plus
    /// the eval count charged for it.
    #[must_use]
    pub fn of_verdict(v: &Verdict) -> (StoredVerdict, u64) {
        match v {
            Verdict::Stable { evals, .. } => (StoredVerdict::Stable, *evals),
            Verdict::Unstable { witness, evals, .. } => {
                (StoredVerdict::Unstable(witness.clone()), *evals)
            }
            Verdict::Exhausted { frontier, progress } => (
                StoredVerdict::Exhausted(frontier.to_json()),
                progress.evals_total,
            ),
        }
    }

    /// `Some(true)`/`Some(false)` for conclusive verdicts, `None` when
    /// exhausted — mirrors [`Verdict::is_stable`].
    #[must_use]
    pub fn is_stable(&self) -> Option<bool> {
        match self {
            StoredVerdict::Stable => Some(true),
            StoredVerdict::Unstable(_) => Some(false),
            StoredVerdict::Exhausted(_) => None,
        }
    }
}

/// One atlas entry: the verdict for `concept` on the canonical graph
/// named by `key` at price `alpha`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtlasRecord {
    /// Safe-alphabet canonical key ([`crate::key`]).
    pub key: String,
    /// Node count of the instance (denormalized for range scans).
    pub n: u32,
    /// The solution concept checked.
    pub concept: Concept,
    /// The exact edge price.
    pub alpha: Alpha,
    /// The cost model the verdict was priced under. Elided on the wire
    /// and in index keys when it is the default, so every pre-existing
    /// corpus line (all default-model) parses and indexes unchanged.
    pub model: CostModelSpec,
    /// The stored outcome.
    pub verdict: StoredVerdict,
    /// Candidate evaluations the build charged for this entry (0 for
    /// polynomial concepts). Summing this column reconstructs the
    /// builder's budget-pool position exactly.
    pub evals: u64,
}

impl fmt::Display for AtlasRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{\"key\":\"{}\",\"n\":{},\"concept\":\"{}\",\"alpha\":\"{}\",",
            self.key,
            self.n,
            self.concept.token(),
            self.alpha
        )?;
        if !self.model.is_default() {
            write!(f, "\"cost_model\":\"{}\",", self.model.token())?;
        }
        match &self.verdict {
            StoredVerdict::Stable => {
                write!(f, "\"verdict\":\"stable\",\"evals\":{}}}", self.evals)
            }
            StoredVerdict::Unstable(witness) => write!(
                f,
                "\"verdict\":\"unstable\",\"evals\":{},\"witness\":{}}}",
                self.evals,
                witness.render_json()
            ),
            StoredVerdict::Exhausted(frontier) => write!(
                f,
                "\"verdict\":\"exhausted\",\"evals\":{},\"frontier\":{frontier}}}",
                self.evals
            ),
        }
    }
}

impl FromStr for AtlasRecord {
    type Err = GameError;

    fn from_str(line: &str) -> Result<Self, GameError> {
        let missing = |field: &str| GameError::Unsupported {
            reason: format!("atlas record is missing \"{field}\": {line}"),
        };
        let key = jsonio::str_field(line, "key").ok_or_else(|| missing("key"))?;
        let n = jsonio::u64_field(line, "n").ok_or_else(|| missing("n"))?;
        let concept: Concept = jsonio::str_field(line, "concept")
            .ok_or_else(|| missing("concept"))?
            .parse()?;
        let alpha: Alpha = jsonio::str_field(line, "alpha")
            .ok_or_else(|| missing("alpha"))?
            .parse()?;
        let model = match jsonio::str_field(line, "cost_model") {
            None => CostModelSpec::SumDistances,
            Some(t) => t.parse()?,
        };
        let evals = jsonio::u64_field(line, "evals").ok_or_else(|| missing("evals"))?;
        let verdict = match jsonio::str_field(line, "verdict").ok_or_else(|| missing("verdict"))? {
            "stable" => StoredVerdict::Stable,
            "unstable" => StoredVerdict::Unstable(Move::parse_json(
                jsonio::object_field(line, "witness").ok_or_else(|| missing("witness"))?,
            )?),
            "exhausted" => StoredVerdict::Exhausted(
                jsonio::object_field(line, "frontier")
                    .ok_or_else(|| missing("frontier"))?
                    .to_string(),
            ),
            other => {
                return Err(GameError::Unsupported {
                    reason: format!("unknown atlas verdict \"{other}\""),
                })
            }
        };
        Ok(AtlasRecord {
            key: key.to_string(),
            n: u32::try_from(n).map_err(|_| missing("n"))?,
            concept,
            alpha,
            model,
            verdict,
            evals,
        })
    }
}

impl AtlasRecord {
    /// The composite index key identifying this entry within the atlas:
    /// `"{key}|{concept token}|{alpha}"`, with `|{cost model token}`
    /// appended only for non-default models — default-model keys are
    /// byte-identical to every pre-existing corpus index. `|` cannot
    /// occur in any component, so the composite is collision-free.
    #[must_use]
    pub fn index_key(&self) -> String {
        let mut key = index_key(&self.key, self.concept, self.alpha);
        if !self.model.is_default() {
            key.push('|');
            key.push_str(&self.model.token());
        }
        key
    }

    /// Reconstructs the frontier token of an exhausted entry.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::Unsupported`] if the verdict is not
    /// `Exhausted` or the stored token fails to parse.
    pub fn frontier(&self) -> Result<Frontier, GameError> {
        match &self.verdict {
            StoredVerdict::Exhausted(token) => token.parse(),
            _ => Err(GameError::Unsupported {
                reason: "record is not exhausted; it has no frontier".to_string(),
            }),
        }
    }
}

/// Builds the composite in-memory index key for a (safe key, concept, α)
/// triple. See [`AtlasRecord::index_key`].
#[must_use]
pub fn index_key(safe_key: &str, concept: Concept, alpha: Alpha) -> String {
    format!("{safe_key}|{}|{alpha}", concept.token())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<AtlasRecord> {
        vec![
            AtlasRecord {
                key: "EFz-".to_string(),
                n: 6,
                concept: Concept::Bswe,
                alpha: Alpha::from_ratio(3, 2).unwrap(),
                model: CostModelSpec::SumDistances,
                verdict: StoredVerdict::Stable,
                evals: 0,
            },
            AtlasRecord {
                key: "EFz-".to_string(),
                n: 6,
                concept: Concept::Bne,
                alpha: Alpha::integer(2).unwrap(),
                model: CostModelSpec::Generalized(bncg_core::Utility::Capped(2)),
                verdict: StoredVerdict::Unstable(Move::Neighborhood {
                    center: 1,
                    remove: vec![0],
                    add: vec![3, 4],
                }),
                evals: 37,
            },
        ]
    }

    #[test]
    fn records_round_trip_through_their_line_form() {
        for rec in samples() {
            let line = rec.to_string();
            assert_eq!(line.parse::<AtlasRecord>().unwrap(), rec, "{line}");
        }
    }

    #[test]
    fn exhausted_records_round_trip_with_live_frontier_tokens() {
        use bncg_core::{ExecPolicy, Solver, StabilityQuery};
        // A BSE scan over 9-node target graphs cannot finish inside one
        // poll quantum, so a 5-eval budget reliably exhausts.
        let g = bncg_graph::generators::star(9);
        let query = StabilityQuery::new(Concept::Bse, &g, Alpha::integer(3).unwrap());
        let verdict = Solver::new(ExecPolicy::default().with_eval_budget(5))
            .check(&query)
            .unwrap();
        let (stored, evals) = StoredVerdict::of_verdict(&verdict);
        assert!(matches!(stored, StoredVerdict::Exhausted(_)));
        let rec = AtlasRecord {
            key: "H".to_string(),
            n: 9,
            concept: Concept::Bse,
            alpha: Alpha::integer(3).unwrap(),
            model: CostModelSpec::SumDistances,
            verdict: stored,
            evals,
        };
        let parsed: AtlasRecord = rec.to_string().parse().unwrap();
        assert_eq!(parsed, rec);
        assert_eq!(
            parsed.frontier().unwrap().evals(),
            verdict.frontier().unwrap().evals()
        );
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!("{\"n\":6}".parse::<AtlasRecord>().is_err());
        assert!(
            "{\"key\":\"E\",\"n\":6,\"concept\":\"bne\",\"alpha\":\"2\",\"verdict\":\"odd\",\"evals\":0}"
                .parse::<AtlasRecord>()
                .is_err()
        );
        // An unstable verdict without its witness object is torn, not valid.
        assert!(
            "{\"key\":\"E\",\"n\":6,\"concept\":\"bne\",\"alpha\":\"2\",\"verdict\":\"unstable\",\"evals\":3}"
                .parse::<AtlasRecord>()
                .is_err()
        );
    }

    #[test]
    fn index_keys_are_distinct_across_triples() {
        let recs = samples();
        assert_ne!(recs[0].index_key(), recs[1].index_key());
        assert_eq!(recs[0].index_key(), "EFz-|bswe|3/2");
        assert_eq!(recs[1].index_key(), "EFz-|bne|2|generalized:cap2");
    }

    #[test]
    fn default_model_lines_stay_byte_identical_and_legacy_lines_parse() {
        let rec = &samples()[0];
        assert!(
            !rec.to_string().contains("cost_model"),
            "default-model records must serialize without the field"
        );
        // A corpus line written before the field existed.
        let legacy = "{\"key\":\"E\",\"n\":6,\"concept\":\"bne\",\"alpha\":\"2\",\
                      \"verdict\":\"stable\",\"evals\":4}";
        let parsed: AtlasRecord = legacy.parse().unwrap();
        assert_eq!(parsed.model, CostModelSpec::SumDistances);
        // Non-default records round-trip through their line form.
        let rec = &samples()[1];
        assert!(rec
            .to_string()
            .contains("\"cost_model\":\"generalized:cap2\""));
        assert_eq!(rec.to_string().parse::<AtlasRecord>().unwrap(), *rec);
    }
}
