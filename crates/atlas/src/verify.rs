//! Differential verification: replay a seeded sample of stored entries
//! against the live [`Solver`] and demand exact agreement.
//!
//! Every conclusive atlas record is a claim ("this canonical graph is
//! (un)stable under this concept at this α, with this witness"). The
//! verifier decodes the stored key back to its representative graph,
//! re-runs the identical sequential check, and compares verdict,
//! witness, and eval count byte-for-byte. `exhausted` records make no
//! stability claim and are skipped (counted, so a fully-exhausted
//! corpus cannot masquerade as verified).
//!
//! Sampling uses an inline LCG so the suite is reproducible from a
//! seed without a `rand` dependency in the library.

use crate::atlas::Atlas;
use crate::backing::MemoryBacking;
use crate::key;
use crate::record::{AtlasRecord, StoredVerdict};
use bncg_core::{ExecPolicy, GameError, Solver, StabilityQuery, Verdict};

/// What a verification pass covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyReport {
    /// Conclusive records eligible for replay (after the `max_n` cut).
    pub eligible: u64,
    /// Records actually replayed (`min(sample, eligible)` distinct).
    pub replayed: u64,
    /// Exhausted records within the `max_n` cut, skipped by design.
    pub skipped_exhausted: u64,
}

/// Replays up to `sample` distinct stored entries with `n ≤ max_n`
/// against a live sequential solver, seeded by `seed`.
///
/// # Errors
///
/// [`GameError::Unsupported`] describing the first divergence found
/// (stored verdict, witness, or eval count differing from the live
/// check), or any storage/solver error. `Ok` means every replayed
/// entry matched exactly.
pub fn verify<B: MemoryBacking>(
    atlas: &Atlas<B>,
    sample: u64,
    seed: u64,
    max_n: u32,
) -> Result<VerifyReport, GameError> {
    let mut eligible: Vec<u64> = Vec::new();
    let mut skipped_exhausted = 0u64;
    atlas.for_each_record(&mut |i, rec| {
        if rec.n > max_n {
            return;
        }
        if matches!(rec.verdict, StoredVerdict::Exhausted(_)) {
            skipped_exhausted += 1;
        } else {
            eligible.push(i);
        }
    })?;

    // Seeded partial Fisher–Yates over the eligible indices: the first
    // `sample` positions form a uniform distinct sample.
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        state >> 11
    };
    let take = usize::try_from(sample.min(eligible.len() as u64)).unwrap_or(usize::MAX);
    for pos in 0..take {
        let j = pos + (next() as usize) % (eligible.len() - pos);
        eligible.swap(pos, j);
    }

    let solver = Solver::new(ExecPolicy::default().with_threads(1));
    for &at in &eligible[..take] {
        let rec = atlas.record(at)?;
        replay(&solver, at, &rec)?;
    }
    Ok(VerifyReport {
        eligible: eligible.len() as u64,
        replayed: take as u64,
        skipped_exhausted,
    })
}

/// Re-checks one record and demands exact agreement.
fn replay(solver: &Solver, at: u64, rec: &AtlasRecord) -> Result<(), GameError> {
    let g = key::graph_of_key(&rec.key)?;
    let verdict = solver.check(&StabilityQuery::new(rec.concept, &g, rec.alpha))?;
    let diverged = |what: &str| {
        Err(GameError::Unsupported {
            reason: format!(
                "atlas record {at} diverges from the live check ({what}): \
                 key {}, {}, α={}, stored {:?} vs live {verdict:?}",
                rec.key,
                rec.concept.token(),
                rec.alpha,
                rec.verdict
            ),
        })
    };
    match (&rec.verdict, &verdict) {
        (StoredVerdict::Stable, Verdict::Stable { evals, .. }) => {
            if *evals != rec.evals {
                return diverged("eval count");
            }
        }
        (StoredVerdict::Unstable(stored), Verdict::Unstable { witness, evals, .. }) => {
            if stored != witness {
                return diverged("witness");
            }
            if *evals != rec.evals {
                return diverged("eval count");
            }
        }
        (StoredVerdict::Exhausted(_), _) => {
            return Err(GameError::Unsupported {
                reason: format!("atlas record {at} is exhausted; it cannot be replayed"),
            })
        }
        _ => return diverged("verdict"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backing::RamBacking;
    use crate::builder::{build, AlphaSpec, BuildSpec};
    use bncg_core::{Alpha, Concept, Move};

    fn built_atlas() -> Atlas<RamBacking> {
        let spec = BuildSpec {
            max_n: 4,
            grid: vec![AlphaSpec::Fixed(Alpha::integer(2).unwrap()), AlphaSpec::N],
            concepts: vec![Concept::Re, Concept::Bswe, Concept::Bne],
        };
        let mut atlas = Atlas::open(RamBacking::new()).unwrap();
        build(&mut atlas, &spec, 100_000, None).unwrap();
        atlas
    }

    #[test]
    fn a_faithful_corpus_verifies_clean() {
        let atlas = built_atlas();
        let report = verify(&atlas, u64::MAX, 7, 4).unwrap();
        assert_eq!(report.replayed, report.eligible);
        assert_eq!(report.skipped_exhausted, 0);
        assert!(report.eligible > 0);
    }

    #[test]
    fn sampling_is_seed_stable_and_bounded() {
        let atlas = built_atlas();
        let r1 = verify(&atlas, 5, 99, 4).unwrap();
        let r2 = verify(&atlas, 5, 99, 4).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(r1.replayed, 5);
        // The n cut excludes everything above it.
        let r3 = verify(&atlas, u64::MAX, 99, 3).unwrap();
        assert!(r3.eligible < r1.eligible);
    }

    #[test]
    fn a_tampered_record_is_caught() {
        let atlas = built_atlas();
        // Copy the corpus but swap one stored witness for a move the
        // builder's concepts never produce — the replay must notice.
        let mut witness_tampered = RamBacking::new();
        let mut changed = false;
        atlas
            .backing()
            .for_each_line(&mut |_, line| {
                let line = if !changed && line.contains("\"verdict\":\"unstable\"") {
                    changed = true;
                    let rec: AtlasRecord = line.parse().unwrap();
                    AtlasRecord {
                        verdict: StoredVerdict::Unstable(Move::Coalition {
                            members: vec![0, 1],
                            remove_edges: vec![],
                            add_edges: vec![],
                        }),
                        ..rec
                    }
                    .to_string()
                } else {
                    line.to_string()
                };
                witness_tampered.append_line(&line).unwrap();
            })
            .unwrap();
        assert!(changed, "the built corpus should contain unstable entries");
        let bad = Atlas::open(witness_tampered).unwrap();
        assert!(verify(&bad, u64::MAX, 7, 4).is_err());
    }
}
