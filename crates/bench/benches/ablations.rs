//! Benchmarks for the reproduction's design-choice ablations: the same
//! kernels the `experiments ablations` subcommand measures, here under
//! criterion's statistics.

use bncg_constructions::figures::figure7;
use bncg_core::{agent_cost, concepts, delta, Alpha, Move};
use bncg_graph::{generators, DistanceMatrix};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn alpha(v: i64) -> Alpha {
    Alpha::integer(v).expect("positive")
}

/// Fast distance-matrix adds vs. generic apply+BFS, full scan on one tree.
fn bench_delta_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/delta_engines");
    let mut rng = bncg_graph::test_rng(21);
    let tree = generators::random_tree(80, &mut rng);
    let d = DistanceMatrix::new(&tree);
    let a = alpha(50);
    let old: Vec<_> = (0..80u32).map(|u| agent_cost(&tree, u)).collect();
    let adds: Vec<(u32, u32)> = tree.non_edges().collect();
    group.bench_function("fast_add_scan", |b| {
        b.iter(|| {
            adds.iter()
                .filter(|&&(u, v)| {
                    delta::cost_after_add(&tree, &d, u, v).better_than(&old[u as usize], a)
                })
                .count()
        });
    });
    group.bench_function("generic_add_scan", |b| {
        b.iter(|| {
            adds.iter()
                .filter(|&&(u, v)| {
                    let g2 = Move::BilateralAdd { u, v }.apply(&tree).unwrap();
                    agent_cost(&g2, u).better_than(&old[u as usize], a)
                })
                .count()
        });
    });
    let _ = black_box(&old);
    group.finish();
}

/// Serial vs parallel restricted coalition scans on the Figure 7 family.
fn bench_coalition_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/coalition_scan");
    group.sample_size(10);
    let fig = figure7(12);
    group.bench_function("serial_i12", |b| {
        b.iter(|| {
            assert!(concepts::kbse::find_violation_restricted(
                black_box(&fig.graph),
                fig.alpha,
                2,
                2
            )
            .is_none());
        });
    });
    group.bench_function("parallel4_i12", |b| {
        b.iter(|| {
            assert!(concepts::kbse::find_violation_restricted_parallel(
                black_box(&fig.graph),
                fig.alpha,
                2,
                2,
                4
            )
            .is_none());
        });
    });
    group.finish();
}

criterion_group!(ablations, bench_delta_engines, bench_coalition_scan);
criterion_main!(ablations);
