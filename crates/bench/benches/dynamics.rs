//! Benchmarks for the improving-move dynamics and the checker throughput
//! they depend on (the simulation layer behind the cooperation-ladder
//! experiment).

use bncg_core::{concepts, Alpha, Concept};
use bncg_dynamics::{run, SelectionRule};
use bncg_graph::generators;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn alpha(v: i64) -> Alpha {
    Alpha::integer(v).expect("positive")
}

fn bench_checker_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamics/checkers");
    for n in [50usize, 150] {
        let mut rng = bncg_graph::test_rng(7);
        let tree = generators::random_tree(n, &mut rng);
        group.bench_with_input(BenchmarkId::new("bae_scan", n), &tree, |b, g| {
            b.iter(|| black_box(concepts::bae::find_violation(g, alpha(50))));
        });
        group.bench_with_input(BenchmarkId::new("bswe_scan", n), &tree, |b, g| {
            b.iter(|| black_box(concepts::bswe::find_violation(g, alpha(50))));
        });
    }
    group.finish();
}

fn bench_full_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamics/runs");
    group.sample_size(10);
    for n in [15usize, 25] {
        let mut rng = bncg_graph::test_rng(11);
        let start = generators::random_tree(n, &mut rng);
        group.bench_with_input(BenchmarkId::new("bge_first", n), &start, |b, g| {
            b.iter(|| {
                let t = run(
                    black_box(g),
                    alpha(3),
                    Concept::Bge,
                    SelectionRule::First,
                    50_000,
                )
                .unwrap();
                assert!(t.converged);
            });
        });
    }
    group.finish();
}

fn bench_move_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamics/enumerate");
    let mut rng = bncg_graph::test_rng(13);
    let g = generators::random_tree(30, &mut rng);
    group.bench_function("all_bge_violations_n30", |b| {
        b.iter(|| {
            bncg_dynamics::enumerate_violations(black_box(&g), alpha(4), Concept::Bge).unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    dynamics,
    bench_checker_throughput,
    bench_full_runs,
    bench_move_enumeration
);
criterion_main!(dynamics);
