//! The headline benchmark for the incremental `GameState` engine: the
//! exact BNE check and round-robin best-response dynamics, engine vs. the
//! naive scratch path that rebuilds a full `DistanceMatrix` per candidate
//! move (what every checker effectively paid before the engine landed).
//!
//! Run with `cargo bench -p bncg-bench --bench engine_vs_naive`; the
//! recorded speedups live in CHANGES.md.

use bncg_core::{agent_cost_from_matrix, concepts, Alpha, CheckBudget, Concept, GameState, Move};
use bncg_graph::{generators, DistanceMatrix, Graph};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn alpha() -> Alpha {
    Alpha::integer(2).expect("positive")
}

fn instances() -> Vec<(&'static str, Graph)> {
    let mut rng = bncg_graph::test_rng(0xE16);
    vec![
        ("path16", generators::path(16)),
        ("star16", generators::star(16)),
        ("gnp16", generators::random_connected(16, 0.2, &mut rng)),
    ]
}

/// The scratch path: the same BNE candidate space, but every candidate is
/// priced by rebuilding the full all-pairs matrix of the mutated graph.
fn naive_bne_find_violation(g: &Graph, alpha: Alpha) -> Option<Move> {
    let n = g.n();
    let base = DistanceMatrix::new(g);
    let old: Vec<_> = (0..n as u32)
        .map(|u| agent_cost_from_matrix(g, &base, u))
        .collect();
    let mut scratch = g.clone();
    for center in 0..n as u32 {
        let neighbors: Vec<u32> = g.neighbors(center).to_vec();
        let others: Vec<u32> = (0..n as u32)
            .filter(|&v| v != center && !g.has_edge(center, v))
            .collect();
        for rem_mask in 0u64..1u64 << neighbors.len() {
            for add_mask in 0u64..1u64 << others.len() {
                if rem_mask == 0 && add_mask == 0 {
                    continue;
                }
                let mut removed = Vec::new();
                let mut added = Vec::new();
                for (i, &v) in neighbors.iter().enumerate() {
                    if rem_mask >> i & 1 == 1 {
                        scratch.remove_edge(center, v).expect("neighbor edge");
                        removed.push(v);
                    }
                }
                for (i, &v) in others.iter().enumerate() {
                    if add_mask >> i & 1 == 1 {
                        scratch.add_edge(center, v).expect("non-neighbor");
                        added.push(v);
                    }
                }
                // Full rebuild per candidate — the pre-engine cost model.
                let d = DistanceMatrix::new(&scratch);
                let improving = agent_cost_from_matrix(&scratch, &d, center)
                    .better_than(&old[center as usize], alpha)
                    && added.iter().all(|&a| {
                        agent_cost_from_matrix(&scratch, &d, a).better_than(&old[a as usize], alpha)
                    });
                for &v in &removed {
                    scratch.add_edge(center, v).expect("restore");
                }
                for &v in &added {
                    scratch.remove_edge(center, v).expect("restore");
                }
                if improving {
                    return Some(Move::Neighborhood {
                        center,
                        remove: removed,
                        add: added,
                    });
                }
            }
        }
    }
    None
}

/// The scratch path for round-robin: every activation recomputes all old
/// costs from a fresh matrix and every candidate rebuilds the matrix.
fn naive_round_robin(start: &Graph, alpha: Alpha, max_rounds: usize) -> (usize, Graph) {
    let mut g = start.clone();
    let n = g.n() as u32;
    let mut moves = 0usize;
    for _ in 0..max_rounds {
        let mut moved = false;
        for u in 0..n {
            let base = DistanceMatrix::new(&g);
            let old: Vec<_> = (0..n)
                .map(|w| agent_cost_from_matrix(&g, &base, w))
                .collect();
            let neighbors: Vec<u32> = g.neighbors(u).to_vec();
            let others: Vec<u32> = (0..n).filter(|&v| v != u && !g.has_edge(u, v)).collect();
            let mut scratch = g.clone();
            let mut best_cost = old[u as usize];
            let mut best: Option<Move> = None;
            for rem_mask in 0u64..1u64 << neighbors.len() {
                for add_mask in 0u64..1u64 << others.len() {
                    if rem_mask == 0 && add_mask == 0 {
                        continue;
                    }
                    let mut removed = Vec::new();
                    let mut added = Vec::new();
                    for (i, &v) in neighbors.iter().enumerate() {
                        if rem_mask >> i & 1 == 1 {
                            scratch.remove_edge(u, v).expect("neighbor edge");
                            removed.push(v);
                        }
                    }
                    for (i, &v) in others.iter().enumerate() {
                        if add_mask >> i & 1 == 1 {
                            scratch.add_edge(u, v).expect("non-neighbor");
                            added.push(v);
                        }
                    }
                    let d = DistanceMatrix::new(&scratch);
                    let mine = agent_cost_from_matrix(&scratch, &d, u);
                    let feasible = mine.better_than(&best_cost, alpha)
                        && added.iter().all(|&a| {
                            agent_cost_from_matrix(&scratch, &d, a)
                                .better_than(&old[a as usize], alpha)
                        });
                    for &v in &removed {
                        scratch.add_edge(u, v).expect("restore");
                    }
                    for &v in &added {
                        scratch.remove_edge(u, v).expect("restore");
                    }
                    if feasible {
                        best_cost = mine;
                        best = Some(Move::Neighborhood {
                            center: u,
                            remove: removed,
                            add: added,
                        });
                    }
                }
            }
            if let Some(mv) = best {
                g = mv.apply(&g).expect("feasible move");
                moves += 1;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    (moves, g)
}

fn bench_bne_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_vs_naive/bne_check");
    group.sample_size(10);
    let a = alpha();
    for (name, g) in instances() {
        // Both paths must agree on the verdict before timing anything.
        let engine_verdict = Concept::Bne.is_stable(&g, a).unwrap();
        let naive_verdict = naive_bne_find_violation(&g, a).is_none();
        assert_eq!(engine_verdict, naive_verdict, "paths disagree on {name}");
        group.bench_with_input(BenchmarkId::new("engine", name), &g, |b, g| {
            b.iter(|| {
                let state = GameState::new(black_box(g).clone(), a);
                concepts::bne::find_violation_in_with_stats(&state, CheckBudget::default()).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("naive", name), &g, |b, g| {
            b.iter(|| naive_bne_find_violation(black_box(g), a));
        });
    }
    group.finish();
}

fn bench_round_robin(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_vs_naive/round_robin50");
    group.sample_size(10);
    let a = alpha();
    for (name, g) in instances() {
        let engine = bncg_dynamics::round_robin::run(&g, a, 50).unwrap();
        let (_, naive_final) = naive_round_robin(&g, a, 50);
        assert_eq!(
            engine.final_graph, naive_final,
            "dynamics paths diverge on {name}"
        );
        group.bench_with_input(BenchmarkId::new("engine", name), &g, |b, g| {
            b.iter(|| bncg_dynamics::round_robin::run(black_box(g), a, 50).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("naive", name), &g, |b, g| {
            b.iter(|| naive_round_robin(black_box(g), a, 50));
        });
    }
    group.finish();
}

criterion_group!(engine_vs_naive, bench_bne_check, bench_round_robin);
criterion_main!(engine_vs_naive);
