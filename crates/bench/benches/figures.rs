//! Benchmarks for the figure kernels: each group measures the
//! verification or search behind one figure (or appendix lemma) of the
//! paper.

use bncg_constructions::figures::{figure5, figure6, figure7};
use bncg_constructions::{conjecture, venn};
use bncg_core::{concepts, delta, Alpha};
use bncg_graph::generators;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn alpha(s: &str) -> Alpha {
    s.parse().expect("valid α")
}

/// Figure 1b: the Venn-region witness search over small graphs.
fn bench_fig1b(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/fig1b");
    group.sample_size(10);
    let grid = venn::default_alpha_grid();
    group.bench_function("venn_search_n5", |b| {
        b.iter(|| venn::find_all_witnesses(black_box(5), 8, &grid).unwrap());
    });
    group.finish();
}

/// Figure 2: the Corbo–Parkes counterexample search.
fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/fig2");
    group.sample_size(10);
    let alphas = [alpha("4"), alpha("3"), alpha("2")];
    group.bench_function("conjecture_search_n5", |b| {
        b.iter(|| {
            conjecture::find_ne_not_ps(black_box(5), &alphas)
                .unwrap()
                .expect("witness exists")
        });
    });
    group.finish();
}

/// Figure 3: BGE certification of a stretched binary tree.
fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/fig3");
    group.sample_size(10);
    let tree = bncg_constructions::stretched::StretchedBinaryTree::build(3, 2);
    let a = Alpha::integer((7 * 2 * tree.graph.n()) as i64).unwrap();
    group.bench_function("bge_certify_d3_k2", |b| {
        b.iter(|| assert!(concepts::bge::is_stable(black_box(&tree.graph), a)));
    });
    group.finish();
}

/// Figure 4 / Lemma 3.14: the deep-child predicate over a tree corpus.
fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/fig4");
    group.sample_size(10);
    let trees = bncg_graph::enumerate::free_trees(8).unwrap();
    let a2 = alpha("2");
    group.bench_function("lemma_3_14_over_trees_n8", |b| {
        b.iter(|| {
            trees
                .iter()
                .filter(|t| bncg_core::bounds::lemma_3_14_holds(t, a2).unwrap())
                .count()
        });
    });
    group.finish();
}

/// Figures 5–7: verifying the explicit witness graphs.
fn bench_fig5_6_7(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/witnesses");
    group.sample_size(10);
    let f5 = figure5();
    group.bench_function("fig5_bge_certify_n107", |b| {
        b.iter(|| assert!(concepts::bge::is_stable(black_box(&f5.graph), f5.alpha)));
    });
    let f6 = figure6();
    group.bench_function("fig6_exact_bne_n10", |b| {
        b.iter(|| assert!(concepts::bne::is_stable(black_box(&f6.graph), f6.alpha).unwrap()));
    });
    let f7 = figure7(10);
    let mv = f7.violation.clone().expect("move");
    group.bench_function("fig7_replay_center_rewire", |b| {
        b.iter(|| assert!(delta::move_improves_all(black_box(&f7.graph), f7.alpha, &mv).unwrap()));
    });
    group.finish();
}

/// Lemma 2.4: exact BSE certification of a cycle inside its window.
fn bench_cycles(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/lemma_2_4");
    group.sample_size(10);
    let c6 = generators::cycle(6);
    let a5 = alpha("5");
    group.bench_function("bse_certify_c6", |b| {
        b.iter(|| assert!(concepts::bse::is_stable(black_box(&c6), a5).unwrap()));
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_fig1b,
    bench_fig2,
    bench_fig3,
    bench_fig4,
    bench_fig5_6_7,
    bench_cycles
);
criterion_main!(figures);
