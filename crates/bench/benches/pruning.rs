//! The headline benchmark for the candidate-pruning layer (PR 2) and
//! the branch-and-bound generator (PR 5): exact BNE and k-BSE **full
//! scans** at n = 16 — the generated scans vs. the PR 2 dense mask
//! loop retained as `bne::find_violation_in_dense` vs. the PR 1 engine
//! path retained as `*_reference`. Instances are chosen so the scans
//! certify stability (no early exit): the star at α = 2, and a
//! pinned-seed diameter-2 G(n, p) at α = 1, which Proposition 3.16 makes
//! BSE-stable (hence BNE- and k-BSE-stable).
//!
//! Candidates-skipped fractions per instance are printed once before the
//! timings; the recorded numbers live in CHANGES.md, and the `ci_gate`
//! binary reruns the same kernels as a regression gate.

use bncg_bench::pruning_kernels::{budget, instances};
use bncg_core::{concepts, GameState};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_bne_full_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("pruning/bne_full_scan");
    group.sample_size(10);
    for (name, g, alpha) in instances() {
        let state = GameState::new(g.clone(), alpha);
        let (pruned, stats) =
            concepts::bne::find_violation_in_with_stats(&state, budget()).unwrap();
        let reference = concepts::bne::find_violation_in_reference(&state, budget()).unwrap();
        let (dense, dense_stats) =
            concepts::bne::find_violation_in_dense(&state, budget()).unwrap();
        assert_eq!(
            pruned, reference,
            "pruning changed the BNE witness on {name}"
        );
        assert_eq!(
            (pruned.clone(), stats.evaluated),
            (dense, dense_stats.evaluated),
            "the generator diverged from the dense loop on {name}"
        );
        assert!(pruned.is_none(), "{name} must be a full (stable) scan");
        println!(
            "pruning/bne_full_scan/{name}: {} raw candidates, {:.2}% skipped, \
             {} generator steps ({:.4}% of the space)",
            stats.generated,
            100.0 * stats.skipped_fraction(),
            stats.visited,
            100.0 * stats.visited as f64 / stats.generated.max(1) as f64
        );
        group.bench_with_input(BenchmarkId::new("generated", name), &state, |b, s| {
            b.iter(|| concepts::bne::find_violation_in_with_stats(black_box(s), budget()).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("dense_pr2", name), &state, |b, s| {
            b.iter(|| concepts::bne::find_violation_in_dense(black_box(s), budget()).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("reference", name), &state, |b, s| {
            b.iter(|| concepts::bne::find_violation_in_reference(black_box(s), budget()).unwrap());
        });
    }
    group.finish();
}

fn bench_kbse_full_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("pruning/kbse_full_scan");
    group.sample_size(3);
    for (name, g, alpha) in instances() {
        // k = 3 on the star stays tractable for the raw reference; the
        // dense diameter-2 instance uses k = 2 (its raw k = 3 space is
        // ~1.2·10⁹ candidates — the pruned scan still handles it, shown
        // as a pruned-only extra measurement below).
        let k = if name == "star16" { 3 } else { 2 };
        let state = GameState::new(g.clone(), alpha);
        let (pruned, stats) =
            concepts::kbse::find_violation_in_with_stats(&state, k, budget()).unwrap();
        let reference = concepts::kbse::find_violation_in_reference(&state, k, budget()).unwrap();
        assert_eq!(
            pruned.is_some(),
            reference.is_some(),
            "pruning changed the {k}-BSE verdict on {name}"
        );
        assert!(pruned.is_none(), "{name} must be a full (stable) scan");
        println!(
            "pruning/kbse_full_scan/{name} (k={k}): {} raw candidates, {:.2}% skipped",
            stats.generated,
            100.0 * stats.skipped_fraction()
        );
        group.bench_with_input(
            BenchmarkId::new(format!("pruned_k{k}"), name),
            &state,
            |b, s| {
                b.iter(|| {
                    concepts::kbse::find_violation_in_with_stats(black_box(s), k, budget()).unwrap()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("reference_k{k}"), name),
            &state,
            |b, s| {
                b.iter(|| {
                    concepts::kbse::find_violation_in_reference(black_box(s), k, budget()).unwrap()
                });
            },
        );
    }
    // Pruned-only: the 3-BSE scan of the dense diameter-2 instance, whose
    // raw space no unpruned checker can touch.
    let (name, g, alpha) = instances().pop().expect("two instances");
    let state = GameState::new(g, alpha);
    let (mv, stats) = concepts::kbse::find_violation_in_with_stats(&state, 3, budget()).unwrap();
    assert!(mv.is_none());
    println!(
        "pruning/kbse_full_scan/{name} (k=3, pruned only): {} raw candidates, {:.4}% skipped",
        stats.generated,
        100.0 * stats.skipped_fraction()
    );
    group.bench_with_input(BenchmarkId::new("pruned_k3", name), &state, |b, s| {
        b.iter(|| concepts::kbse::find_violation_in_with_stats(black_box(s), 3, budget()).unwrap());
    });
    group.finish();
}

// Parallel sharding of the pruned scans is measured where real work
// survives pruning — the restricted-refuter workloads in
// `bncg_analysis::ablations::parallel_scan`; at n = 16 the pruning layer
// leaves these exact scans too little work for threads to matter.

criterion_group!(pruning, bench_bne_full_scan, bench_kbse_full_scan);
criterion_main!(pruning);
