//! Benchmarks for the graph substrate: the primitives every checker and
//! experiment kernel is built from.

use bncg_graph::{bfs_distances, enumerate, generators, graph6, iso, DistanceMatrix, RootedTree};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_traversal(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/traversal");
    for n in [100usize, 1000] {
        let mut rng = bncg_graph::test_rng(1);
        let g = generators::random_connected(n, 0.01, &mut rng);
        group.bench_with_input(BenchmarkId::new("bfs", n), &g, |b, g| {
            let mut out = Vec::new();
            b.iter(|| bfs_distances(black_box(g), 0, &mut out));
        });
        group.bench_with_input(BenchmarkId::new("distance_matrix", n), &g, |b, g| {
            b.iter(|| DistanceMatrix::new(black_box(g)));
        });
    }
    group.finish();
}

fn bench_tree_machinery(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/tree");
    for n in [1000usize, 10_000] {
        let mut rng = bncg_graph::test_rng(2);
        let g = generators::random_tree(n, &mut rng);
        group.bench_with_input(BenchmarkId::new("root_and_dist_sums", n), &g, |b, g| {
            b.iter(|| {
                let t = RootedTree::new(black_box(g), 0).unwrap();
                black_box(t.dist_sums())
            });
        });
        group.bench_with_input(BenchmarkId::new("medians", n), &g, |b, g| {
            b.iter(|| bncg_graph::tree_medians(black_box(g)).unwrap());
        });
    }
    group.finish();
}

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/enumeration");
    group.sample_size(10);
    group.bench_function("free_trees_11", |b| {
        b.iter(|| enumerate::free_trees(black_box(11)).unwrap());
    });
    group.bench_function("connected_graphs_6", |b| {
        b.iter(|| enumerate::connected_graphs(black_box(6)).unwrap());
    });
    group.finish();
}

fn bench_isomorphism(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/iso");
    let mut rng = bncg_graph::test_rng(3);
    let g = generators::random_connected(12, 0.3, &mut rng);
    let perm = generators::random_permutation(12, &mut rng);
    let h = g.relabeled(&perm);
    group.bench_function("are_isomorphic_12", |b| {
        b.iter(|| assert!(iso::are_isomorphic(black_box(&g), black_box(&h))));
    });
    let tree = generators::random_tree(100, &mut rng);
    group.bench_function("canonical_tree_encoding_100", |b| {
        b.iter(|| iso::canonical_tree_encoding(black_box(&tree)));
    });
    group.finish();
}

fn bench_graph6(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/graph6");
    let mut rng = bncg_graph::test_rng(4);
    let g = generators::random_connected(60, 0.2, &mut rng);
    let enc = graph6::encode(&g).unwrap();
    group.bench_function("encode_60", |b| {
        b.iter(|| graph6::encode(black_box(&g)).unwrap());
    });
    group.bench_function("decode_60", |b| {
        b.iter(|| graph6::decode(black_box(&enc)).unwrap());
    });
    group.finish();
}

criterion_group!(
    substrate,
    bench_traversal,
    bench_tree_machinery,
    bench_enumeration,
    bench_isomorphism,
    bench_graph6
);
criterion_main!(substrate);
