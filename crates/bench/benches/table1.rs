//! Benchmarks for the Table 1 kernels: one group per row of the paper's
//! table, measuring the work needed to regenerate that row's data point.

use bncg_analysis::empirical;
use bncg_constructions::stretched::{
    lemma_3_11_certificate, theorem_3_10_instance, theorem_3_12_i_instance,
};
use bncg_core::{concepts, social_cost_ratio, Alpha, Concept};
use bncg_graph::{generators, RootedTree};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn alpha(v: i64) -> Alpha {
    Alpha::integer(v).expect("positive")
}

/// Row PS: exhaustive pairwise-stability PoA over all trees on n nodes.
fn bench_row_ps(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/ps");
    group.sample_size(10);
    for n in [8usize, 9] {
        group.bench_with_input(BenchmarkId::new("tree_poa", n), &n, |b, &n| {
            b.iter(|| empirical::tree_poa(black_box(n), alpha(8), Concept::Ps).unwrap());
        });
    }
    group.finish();
}

/// Row BSwE: exhaustive swap-equilibrium PoA (Theorem 3.6 regime).
fn bench_row_bswe(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/bswe");
    group.sample_size(10);
    for n in [8usize, 9] {
        group.bench_with_input(BenchmarkId::new("tree_poa", n), &n, |b, &n| {
            b.iter(|| empirical::tree_poa(black_box(n), alpha(8), Concept::Bswe).unwrap());
        });
    }
    group.finish();
}

/// Row BGE: certifying the Theorem 3.10 stretched-tree-star lower bound.
fn bench_row_bge(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/bge");
    group.sample_size(10);
    for av in [240usize, 480] {
        let star = theorem_3_10_instance(av, av);
        group.bench_with_input(
            BenchmarkId::new("certify_thm_3_10", av),
            &star.graph,
            |b, g| {
                b.iter(|| {
                    assert!(concepts::bge::is_stable(black_box(g), alpha(av as i64)));
                });
            },
        );
    }
    group.finish();
}

/// Row BNE: the Lemma 3.11 certificate plus an exact small-n BNE check.
fn bench_row_bne(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/bne");
    group.sample_size(10);
    let eta = 1usize << 12;
    let star = theorem_3_12_i_instance(9 * eta, eta, 1.0);
    let a9 = alpha(9 * eta as i64);
    group.bench_function("lemma_3_11_certificate", |b| {
        b.iter(|| assert!(lemma_3_11_certificate(black_box(&star), a9)));
    });
    group.bench_function("exact_bne_n16_star", |b| {
        let g = generators::star(16);
        b.iter(|| assert!(concepts::bne::is_stable(black_box(&g), alpha(4)).unwrap()));
    });
    group.bench_function("rho_of_instance", |b| {
        b.iter(|| social_cost_ratio(black_box(&star.graph), a9).unwrap());
    });
    group.finish();
}

/// Row 3-BSE: exhaustive coalition-of-three PoA on trees.
fn bench_row_3bse(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/3bse");
    group.sample_size(10);
    for n in [7usize, 8] {
        group.bench_with_input(BenchmarkId::new("tree_poa", n), &n, |b, &n| {
            b.iter(|| empirical::tree_poa(black_box(n), alpha(8), Concept::KBse(3)).unwrap());
        });
    }
    group.finish();
}

/// Row BSE: exact tiny-n general-graph PoA and the d-ary regime kernel.
fn bench_row_bse(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/bse");
    group.sample_size(10);
    group.bench_function("graph_poa_n5", |b| {
        b.iter(|| empirical::graph_poa(5, alpha(2), Concept::Bse).unwrap());
    });
    group.bench_function("dary_regime_n4096", |b| {
        b.iter(|| {
            let g = generators::almost_complete_dary_tree(2, 4096);
            let t = RootedTree::new(&g, 0).unwrap();
            let sums = t.dist_sums();
            let a = alpha(4096);
            let worst = (0..4096u32)
                .map(|u| a.as_f64() * g.degree(u) as f64 + sums[u as usize] as f64)
                .fold(0.0f64, f64::max);
            black_box(worst)
        });
    });
    group.finish();
}

criterion_group!(
    table1,
    bench_row_ps,
    bench_row_bswe,
    bench_row_bge,
    bench_row_bne,
    bench_row_3bse,
    bench_row_bse
);
criterion_main!(table1);
