//! The CI perf-regression gate (the `perf-gate` job in
//! `.github/workflows/ci.yml`).
//!
//! Runs pinned-seed kernels from the `engine_vs_naive` and `pruning`
//! bench suites at n = 16, writes the measurements to `BENCH_ci.json`
//! (uploaded as a workflow artifact), and fails when
//!
//! * a pruned checker disagrees with its raw reference (exactness),
//! * the `u64`-bitset distance substrate disagrees with the scalar BFS
//!   reference on the pinned G(64, 0.1) — per-source distances and
//!   materialization-free cost sums alike — or the all-pairs bitset
//!   build fails to beat the scalar path by the 5× floor
//!   (`bitset_speedup/allpairs_g64`); the batched bitset leaf
//!   evaluation is tracked by `batched_leaf_eval/bne_cycle12`, an
//!   evaluation-bound pinned scan exactness-asserted against both
//!   retained scalar scans and budgeted against the baseline like
//!   every wall-clock kernel,
//! * the branch-and-bound generator disagrees with the retained PR 2
//!   dense loop (witness or evaluated stream), touches more than 1% of
//!   a pinned stable instance's raw mask space, fails to beat the dense
//!   loop by the 3× floor (`generator_vs_dense/bne_star16`), or a
//!   4-slice resume chain on the pinned n = 24 cycle costs more than
//!   the per-slice setup budget (`generator_resume_overhead/bne_cycle24`
//!   — exactness-asserted first, including that the n = 24 scan
//!   *completes* under a finite eval budget),
//! * a pruning speedup drops below the 3× floor the PR 2 acceptance
//!   criteria demand (machine-independent: both sides run on the same
//!   host),
//! * the unified `Solver` facade adds more than 5% overhead over the
//!   direct pruned scans it drives (machine-independent ratio, batched
//!   so each sample is tens of milliseconds; the µs-scale star16 kernel
//!   carries a looser 20% ceiling because the bitset substrate left it
//!   too fast to amortize the facade's fixed per-query setup),
//! * the metered anytime best-response scan adds more than 5% overhead
//!   over the direct `best_response_in` path it wraps, or a sliced
//!   checkpoint-resume round-robin chain costs more than 10% wall clock
//!   over the uninterrupted run (both exactness-checked first: the
//!   metered scan must return the identical response, the chain the
//!   identical final state),
//! * the stability atlas is dishonest or pointless: a 128-record seeded
//!   sample of the real builder's n ≤ 8 corpus must replay exactly
//!   against a live solver, the pinned K4,4 BSE record's relabeled
//!   witness must improve every deviator on the query-labeled graph,
//!   and the hit path (canonicalize + probe + relabel) must beat the
//!   live coalition scan by the 100× floor
//!   (`atlas_lookup_vs_live/n8_grid`),
//! * the serving layer's time-slicing scheduler costs more than 25%
//!   wall clock over running the same pinned mixed batch — an
//!   evaluation-bound BNE check, a round-robin trajectory, and a
//!   best-response scan — as direct one-shot calls
//!   (`sched_slicing_overhead/mixed_batch`; every scheduler verdict is
//!   exactness-asserted against its direct counterpart first, and the
//!   check is forced through multiple slices),
//! * weighted round-robin dispatch fails to bound a light tenant's
//!   delay behind a 100-query heavy flood (asserted machine-independent;
//!   the light query's latency is also budgeted as
//!   `sched_fairness/mixed_tenants`), or 500 idle connections parked on
//!   the readiness-loop front end push the wire cost of the pinned
//!   mixed batch past the scheduler ceiling
//!   (`idle_conns_overhead/mixed_batch_500`; exactness-asserted through
//!   the wire first),
//! * the documented [`CheckBudget::default`] wall-clock meaning drifts
//!   outside sanity (the gate derives `budget_default_seconds` from the
//!   measured raw-reference evaluation rate — this is the calibration
//!   the `CheckBudget` rustdoc cites), or
//! * a kernel's wall-clock regresses more than `BENCH_CI_TOLERANCE`
//!   (default 0.25 = 25%) against the checked-in
//!   `crates/bench/BENCH_baseline.json`, after scaling the baseline by a
//!   substrate **calibration kernel** (pure BFS distance-matrix builds,
//!   untouched by checker changes) so a slower or faster CI host moves
//!   every budget proportionally instead of failing spuriously.
//!
//! When running under GitHub Actions the gate also appends a markdown
//! kernel table (baseline, measured, ratio, pass/fail) to
//! `$GITHUB_STEP_SUMMARY`, so a regression is readable from the PR
//! checks page without downloading the `BENCH_ci` artifact.
//!
//! Regenerate the baseline on a quiet machine with
//! `cargo run --release -p bncg-bench --bin ci_gate -- --write-baseline`.

use bncg_bench::pruning_kernels::{budget, instances};
use bncg_core::solver::{ExecPolicy, Solver, StabilityQuery, Verdict};
use bncg_core::{
    best_response_in, best_response_with_policy, concepts, Alpha, BestResponseVerdict, CheckBudget,
    Concept, CostModelSpec, GameState, Utility,
};
use bncg_dynamics::round_robin;
use bncg_graph::{bfs_distances, generators, BitsetGraph, DistanceMatrix, UNREACHABLE};
use bncg_serve::{QuerySpec, Scheduler, SchedulerConfig, Work};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const SPEEDUP_FLOOR: f64 = 3.0;
/// The word-parallel bitset substrate must beat the scalar BFS path by
/// at least this factor on the pinned all-pairs kernel.
const BITSET_SPEEDUP_FLOOR: f64 = 5.0;
/// The solver facade may cost at most this factor over the direct scan.
const SOLVER_OVERHEAD_CEILING: f64 = 1.05;
/// The facade ceiling for the µs-scale star16 kernel. The bitset
/// substrate cut the direct pruned scan to ~4 µs, so the facade's fixed
/// per-query setup (query validation, policy plumbing, verdict
/// assembly) is no longer amortizable there (measured 1.02–1.11×); the
/// ms-scale kbse3 kernel keeps guarding the amortized regime at the
/// strict 5%.
const SOLVER_SETUP_OVERHEAD_CEILING: f64 = 1.20;
/// The metered best-response scan may cost at most this factor over the
/// direct unmetered path.
const METERED_BR_OVERHEAD_CEILING: f64 = 1.05;
/// A sliced checkpoint-resume round-robin chain may cost at most this
/// factor over the uninterrupted policy run.
const RR_RESUME_OVERHEAD_CEILING: f64 = 1.10;
/// Draining a mixed batch through the serving layer's time-slicing
/// scheduler may cost at most this factor over the same batch as
/// one-shot calls. The scheduler genuinely pays queue round-trips,
/// frontier/checkpoint serialization at every slice boundary, and
/// per-slice query setup, so the ceiling sits above the in-process
/// resume kernels'.
const SCHED_SLICING_OVERHEAD_CEILING: f64 = 1.25;
/// A 4-slice generator resume chain may cost at most this factor over
/// the uninterrupted scan. The chain genuinely pays per-slice query
/// setup (pruner rebuild, O(n²)) that the µs-scale cycle24 scan cannot
/// amortize, so the ceiling sits above the metered kernels' ~1.0
/// (measured: ~1.09).
const GENERATOR_RESUME_OVERHEAD_CEILING: f64 = 1.30;
/// Serving a stored atlas verdict (canonicalize + probe + relabel) must
/// beat recomputing the pinned expensive live check by this factor.
const ATLAS_HIT_SPEEDUP_FLOOR: f64 = 100.0;
/// The trait-dispatched `generalized:id` model — the identical
/// objective through the generic `CostModel` arm instead of the default
/// model's monomorphic fast paths — may cost at most this factor on the
/// hot scan path (ISSUE 9's acceptance ceiling). Both sides share the
/// solver facade and the same pruning decisions, so the ratio isolates
/// pure dispatch.
const COST_MODEL_DISPATCH_CEILING: f64 = 1.05;
const CALIBRATION_KEY: &str = "calibration/substrate_bfs";

/// The machine-speed yardstick: ~100 ms of all-pairs BFS matrix builds on
/// a pinned G(64, 0.1). Deliberately substrate-only — it shares no code
/// with the checkers under test, so a checker regression cannot inflate
/// the calibration and mask itself. Long enough (and preceded by a
/// warm-up run in `main`) that turbo/cache state cannot swing it.
fn calibration_kernel() {
    let mut rng = bncg_graph::test_rng(0xCA11B);
    let g = generators::random_connected(64, 0.1, &mut rng);
    for _ in 0..8_000 {
        black_box(DistanceMatrix::new(black_box(&g)));
    }
}

/// Median wall-clock of `samples` runs of `f`.
fn median_secs(samples: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

/// Median of per-pair `other/reference` wall-clock ratios across 7
/// samples of `iters` iterations each. Both sides are timed back to
/// back inside every sample, so slow frequency drift across the
/// measurement window cancels out of the ratio instead of landing
/// entirely on one side of a ~1.00 value judged against a tight
/// ceiling — the shared methodology of every overhead kernel.
fn paired_overhead(iters: usize, reference: &dyn Fn(), other: &dyn Fn()) -> f64 {
    let mut ratios: Vec<f64> = (0..7)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                reference();
            }
            let reference_batch = t.elapsed().as_secs_f64();
            let t = Instant::now();
            for _ in 0..iters {
                other();
            }
            t.elapsed().as_secs_f64() / reference_batch.max(1e-12)
        })
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    ratios[ratios.len() / 2]
}

struct Gate {
    results: Vec<(String, f64)>,
    failures: Vec<String>,
}

impl Gate {
    fn record(&mut self, name: &str, secs: f64) {
        println!("{name}: {:.4} s", secs);
        self.results.push((name.to_string(), secs));
    }

    fn check_speedup(&mut self, name: &str, reference: f64, pruned: f64) {
        self.check_speedup_floor(name, reference / pruned.max(1e-12), SPEEDUP_FLOOR);
    }

    /// [`Gate::check_speedup`] against an explicit floor (the bitset
    /// substrate kernels carry a higher one than the pruning kernels).
    fn check_speedup_floor(&mut self, name: &str, speedup: f64, floor: f64) {
        println!("{name}: {speedup:.1}x");
        self.results.push((name.to_string(), speedup));
        if speedup < floor {
            self.failures.push(format!(
                "{name}: speedup {speedup:.2}x is below the {floor}x floor"
            ));
        }
    }

    /// Records a paired-sampling overhead ratio and fails the gate when
    /// it exceeds its ceiling — the one record/check/report path every
    /// overhead kernel shares.
    fn check_overhead(&mut self, name: &str, overhead: f64, ceiling: f64) {
        println!("{name}: {overhead:.3}x (median of paired samples)");
        self.results.push((name.to_string(), overhead));
        if overhead > ceiling {
            self.failures.push(format!(
                "{name}: overhead {overhead:.3}x exceeds the {ceiling}x ceiling"
            ));
        }
    }
}

fn main() -> std::process::ExitCode {
    let write_baseline = std::env::args().any(|a| a == "--write-baseline");
    let tolerance: f64 = std::env::var("BENCH_CI_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let mut gate = Gate {
        results: Vec::new(),
        failures: Vec::new(),
    };

    // Machine yardstick first; one discarded warm-up run settles CPU
    // frequency and caches before the timed samples.
    calibration_kernel();
    let calibration = median_secs(5, calibration_kernel);
    gate.record(CALIBRATION_KEY, calibration);

    // Bitset substrate vs scalar BFS: exactness before timing, on the
    // pinned G(64, 0.1) at the substrate's n = 64 capacity — per-source
    // distance rows, reachable counts, and the materialization-free
    // `cost_from` sums must all agree with the scalar adjacency-list
    // BFS. Then the full all-pairs build (including the one-off
    // `from_graph` conversion a fresh `DistanceMatrix` pays) must clear
    // the 5× floor.
    let g64 = generators::random_connected(64, 0.1, &mut bncg_graph::test_rng(0xB175E7));
    let bits64 = BitsetGraph::from_graph(&g64).expect("n = 64 fits the bitset substrate");
    let mut scalar_row = Vec::new();
    let mut bitset_row = vec![0u32; 64];
    for u in 0..64u32 {
        let scalar_reached = bfs_distances(&g64, u, &mut scalar_row);
        let bitset_reached = bits64.write_distances(u, &mut bitset_row);
        assert_eq!(
            bitset_row, scalar_row,
            "bitset distances diverged from scalar BFS at source {u}"
        );
        assert_eq!(
            bitset_reached, scalar_reached,
            "bitset reachable count diverged at source {u}"
        );
        let (unreachable, sum) = bits64.cost_from(u);
        assert_eq!(
            unreachable as usize,
            64 - scalar_reached,
            "cost_from unreachable count diverged at source {u}"
        );
        let scalar_sum: u64 = scalar_row
            .iter()
            .filter(|&&d| d != UNREACHABLE)
            .map(|&d| u64::from(d))
            .sum();
        assert_eq!(
            sum, scalar_sum,
            "cost_from distance sum diverged at source {u}"
        );
    }
    let bitset_buf = std::cell::RefCell::new(vec![0u32; 64]);
    let scalar_buf = std::cell::RefCell::new(Vec::new());
    let bitset_speedup = paired_overhead(
        512,
        &|| {
            let bits = BitsetGraph::from_graph(black_box(&g64)).expect("n = 64");
            let buf = &mut *bitset_buf.borrow_mut();
            for u in 0..64u32 {
                black_box(bits.write_distances(u, buf));
            }
        },
        &|| {
            let buf = &mut *scalar_buf.borrow_mut();
            for u in 0..64u32 {
                black_box(bfs_distances(black_box(&g64), u, buf));
            }
        },
    );
    gate.check_speedup_floor(
        "bitset_speedup/allpairs_g64",
        bitset_speedup,
        BITSET_SPEEDUP_FLOOR,
    );

    // The pruning-suite instances (stable ⇒ full scans), shared with
    // `benches/pruning.rs` via `pruning_kernels::instances()`.
    let states: Vec<(&'static str, GameState)> = instances()
        .into_iter()
        .map(|(name, g, alpha)| (name, GameState::new(g, alpha)))
        .collect();
    let gnp = &states.last().expect("two instances").1;

    let mut bne_reference_star16 = f64::NAN;
    for (name, state) in states.iter().map(|(n, s)| (*n, s)) {
        // Exactness before any timing: generator ≡ raw reference ≡ the
        // retained PR 2 dense loop, witness and evaluated stream alike.
        let (pruned_mv, stats) =
            concepts::bne::find_violation_in_with_stats(state, budget()).unwrap();
        let reference_mv = concepts::bne::find_violation_in_reference(state, budget()).unwrap();
        let (dense_mv, dense_stats) =
            concepts::bne::find_violation_in_dense(state, budget()).unwrap();
        assert_eq!(pruned_mv, reference_mv, "BNE witness diverged on {name}");
        assert_eq!(pruned_mv, dense_mv, "generator witness diverged on {name}");
        assert_eq!(
            stats.evaluated, dense_stats.evaluated,
            "generator priced different candidates than the dense loop on {name}"
        );
        assert!(pruned_mv.is_none(), "{name} must scan to completion");
        // The ISSUE 5 acceptance bound: on the pinned stable instances
        // the generator touches ≤ 1% of the raw mask space.
        assert!(
            stats.visited * 100 <= stats.generated,
            "{name}: generator visited {} steps of a {}-mask space (> 1%)",
            stats.visited,
            stats.generated
        );
        let pruned = median_secs(5, || {
            concepts::bne::find_violation_in_with_stats(state, budget()).unwrap();
        });
        let reference = median_secs(3, || {
            concepts::bne::find_violation_in_reference(state, budget()).unwrap();
        });
        gate.record(&format!("bne_pruned/{name}"), pruned);
        gate.record(&format!("bne_reference/{name}"), reference);
        gate.check_speedup(&format!("bne_speedup/{name}"), reference, pruned);
        if name == "star16" {
            bne_reference_star16 = reference;
        }

        let kp = concepts::kbse::find_violation_in_with_stats(state, 2, budget())
            .unwrap()
            .0;
        let kr = concepts::kbse::find_violation_in_reference(state, 2, budget()).unwrap();
        assert_eq!(
            kp.is_some(),
            kr.is_some(),
            "2-BSE verdict diverged on {name}"
        );
        let pruned = median_secs(5, || {
            concepts::kbse::find_violation_in_with_stats(state, 2, budget()).unwrap();
        });
        let reference = median_secs(3, || {
            concepts::kbse::find_violation_in_reference(state, 2, budget()).unwrap();
        });
        gate.record(&format!("kbse2_pruned/{name}"), pruned);
        gate.record(&format!("kbse2_reference/{name}"), reference);
        gate.check_speedup(&format!("kbse2_speedup/{name}"), reference, pruned);
    }

    // The 3-BSE scan only the pruned checker can afford (raw space ~1.2e9).
    let pruned_k3 = median_secs(5, || {
        concepts::kbse::find_violation_in_with_stats(gnp, 3, budget()).unwrap();
    });
    gate.record("kbse3_pruned/gnp16_diam2", pruned_k3);

    // Generator vs the PR 2 dense mask loop it replaced (ISSUE 5): on
    // the star16 kernel the dense scan iterates the hub's 2¹⁵
    // pure-removal masks one by one; the generator kills them in a
    // handful of probes. Exactness was asserted above (witness and
    // evaluated stream); the paired ratio must clear the 3× floor — the
    // measured value is an order of magnitude above it.
    let star16_state = &states[0].1;
    let generator_speedup = paired_overhead(
        256,
        &|| {
            concepts::bne::find_violation_in_with_stats(black_box(star16_state), budget()).unwrap();
        },
        &|| {
            concepts::bne::find_violation_in_dense(black_box(star16_state), budget()).unwrap();
        },
    );
    gate.check_speedup("generator_vs_dense/bne_star16", generator_speedup, 1.0);

    // Batched bitset leaf evaluation: the pinned cycle12 at α = 16 sits
    // in the cycle stability window yet survives pruning with ~900
    // priced leaves per scan, so its wall clock tracks the batched
    // bitset pricing path rather than the pruning layer — the one
    // baseline-budgeted kernel that is evaluation-bound. Exactness
    // first: witness and evaluated stream must match both retained
    // scalar scans.
    let cycle12 = GameState::new(generators::cycle(12), Alpha::integer(16).expect("α"));
    let (batched_mv, batched_stats) =
        concepts::bne::find_violation_in_with_stats(&cycle12, budget()).unwrap();
    let (dense12_mv, dense12_stats) =
        concepts::bne::find_violation_in_dense(&cycle12, budget()).unwrap();
    let reference12_mv = concepts::bne::find_violation_in_reference(&cycle12, budget()).unwrap();
    assert_eq!(
        batched_mv, dense12_mv,
        "batched witness diverged from the dense scan on cycle12"
    );
    assert_eq!(
        batched_mv, reference12_mv,
        "batched witness diverged from the raw reference on cycle12"
    );
    assert_eq!(
        batched_stats.evaluated, dense12_stats.evaluated,
        "batched scan priced different candidates than the dense loop on cycle12"
    );
    assert!(batched_mv.is_none(), "cycle12 at α = 16 must be stable");
    assert!(
        batched_stats.evaluated >= 500,
        "cycle12 must stay evaluation-bound (only {} priced leaves)",
        batched_stats.evaluated
    );
    let batched = median_secs(5, || {
        concepts::bne::find_violation_in_with_stats(&cycle12, budget()).unwrap();
    });
    gate.record("batched_leaf_eval/bne_cycle12", batched);

    // Generator resume overhead (ISSUE 5): draining the pinned n = 24
    // cycle — a size the legacy guard refused outright — through a
    // chain of budgeted slices must stay within a small factor of the
    // uninterrupted scan: resuming re-derives one branch path, it does
    // not re-scan. Exactness first: the chain must reach the identical
    // (stable) verdict, and the uninterrupted run must *complete* under
    // a finite eval budget — the ISSUE 5 acceptance criterion.
    let (_, cycle24_g, cycle24_alpha, _) = bncg_analysis::table1::bne_n24_instances()
        .into_iter()
        .find(|(name, ..)| *name == "cycle24")
        .expect("the shared n = 24 kernel set names cycle24");
    let cycle24 = GameState::new(cycle24_g, cycle24_alpha);
    let uninterrupted = Solver::new(ExecPolicy::default().with_eval_budget(1 << 20));
    let v = uninterrupted
        .check(&StabilityQuery::on(Concept::Bne, &cycle24))
        .unwrap();
    let Verdict::Stable { evals, .. } = v else {
        panic!("cycle24 must complete exactly under a finite eval budget, got {v:?}");
    };
    assert!(evals > 0, "cycle24's pure removals are genuinely priced");
    let sliced = Solver::new(ExecPolicy::default().with_eval_budget((evals / 4).max(1)));
    let drain = |solver: &Solver| {
        let mut query = StabilityQuery::on(Concept::Bne, &cycle24);
        loop {
            match solver.check(&query).unwrap() {
                Verdict::Stable { .. } => return true,
                Verdict::Unstable { .. } => return false,
                Verdict::Exhausted { frontier, .. } => {
                    query = StabilityQuery::on(Concept::Bne, &cycle24).resume(frontier);
                }
            }
        }
    };
    assert!(
        drain(&sliced),
        "sliced chain diverged from the uninterrupted verdict"
    );
    let resume_overhead = paired_overhead(
        64,
        &|| {
            assert!(matches!(
                uninterrupted
                    .check(&StabilityQuery::on(Concept::Bne, black_box(&cycle24)))
                    .unwrap(),
                Verdict::Stable { .. }
            ));
        },
        &|| {
            assert!(drain(black_box(&sliced)));
        },
    );
    gate.check_overhead(
        "generator_resume_overhead/bne_cycle24",
        resume_overhead,
        GENERATOR_RESUME_OVERHEAD_CEILING,
    );

    // CheckBudget::default() calibration: the rustdoc's wall-clock claim
    // is derived here, not assumed. The star16 raw BNE reference prices
    // exactly 16·(2^15 − 1) candidates; the measured rate converts the
    // default guard into seconds of raw scanning on this host.
    let star16_raw_evals = 16.0 * ((1u64 << 15) - 1) as f64;
    let eval_rate = star16_raw_evals / bne_reference_star16.max(1e-12);
    let budget_default_secs = CheckBudget::DEFAULT_MAX_EVALS as f64 / eval_rate;
    gate.record("budget_default_seconds", budget_default_secs);
    if !(0.5..=500.0).contains(&budget_default_secs) {
        gate.failures.push(format!(
            "budget_default_seconds = {budget_default_secs:.1}s drifted outside \
             [0.5, 500] — update the CheckBudget::default() rustdoc and the \
             default guard"
        ));
    }

    // Solver-facade overhead: the unified query surface must stay within
    // 5% of the direct pruned scans it drives. Batched so each sample is
    // tens of milliseconds (the pruned kernels alone are µs-scale).
    let star16 = &states[0].1;
    let solver = Solver::default();
    for (key, iters, ceiling, direct, facade) in [
        (
            "solver_overhead/bne_star16",
            256usize,
            SOLVER_SETUP_OVERHEAD_CEILING,
            &(|| {
                concepts::bne::find_violation_in_with_stats(black_box(star16), budget()).unwrap();
            }) as &dyn Fn(),
            &(|| {
                let v = solver
                    .check(&StabilityQuery::on(Concept::Bne, black_box(star16)))
                    .unwrap();
                assert!(matches!(v, Verdict::Stable { .. }));
            }) as &dyn Fn(),
        ),
        (
            "solver_overhead/kbse3_gnp16",
            16usize,
            SOLVER_OVERHEAD_CEILING,
            &(|| {
                concepts::kbse::find_violation_in_with_stats(black_box(gnp), 3, budget()).unwrap();
            }) as &dyn Fn(),
            &(|| {
                let v = solver
                    .check(&StabilityQuery::on(Concept::KBse(3), black_box(gnp)))
                    .unwrap();
                assert!(matches!(v, Verdict::Stable { .. }));
            }) as &dyn Fn(),
        ),
    ] {
        let overhead = paired_overhead(iters, direct, facade);
        gate.check_overhead(key, overhead, ceiling);
    }

    // Cost-model dispatch overhead (ISSUE 9): `generalized:id` is the
    // paper's objective routed through the generic `CostModel` arm
    // instead of the default model's monomorphic fast paths, so pairing
    // it against the default on the same facade isolates what a
    // pluggable model pays per scan. Exactness first: identity utility
    // is distance-linear, so verdict, priced stream, and pruning
    // decisions must all coincide — only then is the ratio a dispatch
    // measurement rather than a work difference.
    let star16_id = GameState::with_cost_model(
        generators::star(16),
        Alpha::integer(2).expect("α"),
        CostModelSpec::Generalized(Utility::Identity),
    );
    let mono_v = solver
        .check(&StabilityQuery::on(Concept::Bne, star16))
        .unwrap();
    let dispatched_v = solver
        .check(&StabilityQuery::on(Concept::Bne, &star16_id))
        .unwrap();
    match (&mono_v, &dispatched_v) {
        (
            Verdict::Stable {
                evals: e1,
                pruned: p1,
                ..
            },
            Verdict::Stable {
                evals: e2,
                pruned: p2,
                ..
            },
        ) => {
            assert_eq!(e1, e2, "generalized:id priced a different candidate stream");
            assert_eq!(p1, p2, "generalized:id pruned differently than the default");
        }
        other => panic!("star16 at α = 2 must be BNE-stable under both models: {other:?}"),
    }
    let dispatch_overhead = paired_overhead(
        256,
        &|| {
            let v = solver
                .check(&StabilityQuery::on(Concept::Bne, black_box(star16)))
                .unwrap();
            assert!(matches!(v, Verdict::Stable { .. }));
        },
        &|| {
            let v = solver
                .check(&StabilityQuery::on(Concept::Bne, black_box(&star16_id)))
                .unwrap();
            assert!(matches!(v, Verdict::Stable { .. }));
        },
    );
    gate.check_overhead(
        "cost_model_dispatch/bne_star16",
        dispatch_overhead,
        COST_MODEL_DISPATCH_CEILING,
    );

    // Generalized-utility smoke kernel: a genuinely non-linear model on
    // the wall-clock ledger. `generalized:cap2` on the pinned path12 at
    // α = 2 runs filter-free (the proven bounds are sum-of-distances
    // theorems — `pruned` must be exactly 0) and flips the instance's
    // verdict to stable: capping the per-hop utility at 2 removes the
    // incentive to shorten long distances, which is the whole point of
    // the pluggable layer. The pinned eval count keeps the kernel's
    // workload honest across refactors.
    let path12_cap = GameState::with_cost_model(
        generators::path(12),
        Alpha::integer(2).expect("α"),
        CostModelSpec::Generalized(Utility::Capped(2)),
    );
    let cap_v = solver
        .check(&StabilityQuery::on(Concept::Bne, &path12_cap))
        .unwrap();
    let Verdict::Stable { pruned, evals, .. } = cap_v else {
        panic!("path12 at α = 2 must be BNE-stable under generalized:cap2, got {cap_v:?}");
    };
    assert_eq!(pruned, 0, "a non-linear model must run filter-free");
    assert!(
        evals > 10_000,
        "the filter-free scan must price the full candidate stream (got {evals})"
    );
    let generalized_smoke = median_secs(5, || {
        let v = solver
            .check(&StabilityQuery::on(Concept::Bne, &path12_cap))
            .unwrap();
        assert!(matches!(v, Verdict::Stable { .. }));
    });
    gate.record("cost_model_generalized/bne_path12", generalized_smoke);

    // The engine_vs_naive representative: 50 rounds of engine-backed
    // round-robin dynamics on path16 (the PR 1 headline kernel).
    let path = generators::path(16);
    let alpha2 = Alpha::integer(2).expect("α");
    let rr = median_secs(3, || {
        round_robin::run(&path, alpha2, 50).unwrap();
    });
    gate.record("round_robin50/path16", rr);

    // Metered best-response overhead: the ScanCtl-driven anytime scan
    // must stay within 5% of the direct unmetered path (it is now the
    // activation engine of every policy-driven round-robin run). The
    // path16 endpoint has a genuinely evaluated candidate space, so the
    // per-candidate poll is exercised, and the metering is *active* (a
    // finite budget, never reached) rather than the inert unbounded
    // control.
    let path_state = GameState::new(path.clone(), alpha2);
    let metered_policy = ExecPolicy::default().with_eval_budget(1 << 40);
    let direct_br = best_response_in(&path_state, 0, budget()).unwrap();
    match best_response_with_policy(&path_state, 0, &metered_policy).unwrap() {
        BestResponseVerdict::Optimal { response, .. } => {
            assert_eq!(response, direct_br, "metered best response diverged");
        }
        v => panic!("an unreachable budget must complete the scan, got {v:?}"),
    }
    let overhead = paired_overhead(
        8,
        &|| {
            best_response_in(black_box(&path_state), 0, budget()).unwrap();
        },
        &|| {
            best_response_with_policy(black_box(&path_state), 0, &metered_policy).unwrap();
        },
    );
    gate.check_overhead(
        "metered_br_overhead/path16",
        overhead,
        METERED_BR_OVERHEAD_CEILING,
    );

    // Anytime resume-chain overhead: slicing the same 50-round run into
    // ~20 budgeted checkpoint→resume slices must stay within 10% of the
    // uninterrupted policy run — the cost of true anytime trajectories
    // is bounded re-hydration, not re-scanning. Exactness first: the
    // chain must land on the identical final state.
    let unbounded = ExecPolicy::default();
    let reference_run = round_robin::run_with_policy(&path, alpha2, 50, &unbounded).unwrap();
    let slice_budget = (reference_run.evals / 20).max(1_000);
    let slice_policy = ExecPolicy::default().with_eval_budget(slice_budget);
    let chain = |policy: &ExecPolicy| {
        let mut out = round_robin::run_with_policy(&path, alpha2, 50, policy).unwrap();
        while let Some(checkpoint) = out.checkpoint.take() {
            out = round_robin::resume(&out.final_graph, alpha2, 50, policy, &checkpoint).unwrap();
        }
        out
    };
    let chained = chain(&slice_policy);
    assert_eq!(
        chained.final_graph.fingerprint(),
        reference_run.final_graph.fingerprint(),
        "checkpoint-resume chain diverged from the uninterrupted run"
    );
    assert_eq!(chained.moves, reference_run.moves, "move counts diverged");
    let overhead = paired_overhead(
        1,
        &|| {
            round_robin::run_with_policy(&path, alpha2, 50, &unbounded).unwrap();
        },
        &|| {
            chain(&slice_policy);
        },
    );
    println!("rr_resume chain: {slice_budget}-eval slices");
    gate.check_overhead(
        "rr_resume_overhead/path16",
        overhead,
        RR_RESUME_OVERHEAD_CEILING,
    );

    // Scheduler slicing overhead (ISSUE 7): draining a pinned mixed
    // batch — the evaluation-bound cycle40 BNE check at α = 370 (the
    // Lemma 2.4 stability window, 120 genuinely priced candidates), a
    // 50-round path9 trajectory, and a path12 best-response scan —
    // through a 1-worker time-slicing scheduler must stay within 25%
    // of the same batch as direct one-shot calls. Exactness first:
    // every scheduler verdict must match its direct counterpart, and
    // the slice size is pinned small enough that the check provably
    // runs as a multi-slice requeue chain rather than one shot.
    let c40 = generators::cycle(40);
    let a370 = Alpha::integer(370).expect("α");
    let path9 = generators::path(9);
    let path12 = generators::path(12);
    let one_shot = Solver::new(ExecPolicy::default().with_threads(1));
    let direct_check = one_shot
        .check(&StabilityQuery::new(Concept::Bne, &c40, a370))
        .unwrap();
    let Verdict::Stable {
        evals: c40_evals, ..
    } = direct_check
    else {
        panic!("cycle40 at α = 370 must be BNE-stable, got {direct_check:?}");
    };
    assert!(c40_evals > 64, "cycle40 must out-price one 48-eval slice");
    let direct_rr = round_robin::run(&path9, alpha2, 50).unwrap();
    assert!(direct_rr.converged, "path9 round robin must converge");
    let direct_br = best_response_in(&GameState::new(path12.clone(), alpha2), 0, budget()).unwrap();
    assert!(
        direct_br.best.is_some(),
        "path12 agent 0 must have an improving response"
    );
    let next_id = std::cell::Cell::new(0u64);
    let submit_to = |sched: &Scheduler, work: Work| {
        next_id.set(next_id.get() + 1);
        sched.submit_blocking(QuerySpec {
            id: next_id.get(),
            tenant: "gate".into(),
            work,
            resume: None,
            deadline_ms: None,
        })
    };
    let sched_batch = |sched: &Scheduler| {
        [
            submit_to(
                sched,
                Work::Check {
                    concept: Concept::Bne,
                    graph: c40.clone(),
                    alpha: a370,
                    cost_model: bncg_core::CostModelSpec::SumDistances,
                },
            ),
            submit_to(
                sched,
                Work::Trajectory {
                    graph: path9.clone(),
                    alpha: alpha2,
                    rounds: 50,
                    cost_model: bncg_core::CostModelSpec::SumDistances,
                },
            ),
            submit_to(
                sched,
                Work::BestResponse {
                    agent: 0,
                    graph: path12.clone(),
                    alpha: alpha2,
                    cost_model: bncg_core::CostModelSpec::SumDistances,
                },
            ),
        ]
    };
    let assert_batch_exact = |[check_line, traj_line, br_line]: &[String; 3]| {
        assert!(
            check_line.contains("\"verdict\":\"stable\"")
                && check_line.contains(&format!("\"evals\":{c40_evals}")),
            "scheduler check diverged from the direct solver: {check_line}"
        );
        assert!(
            traj_line.contains("\"converged\":1")
                && traj_line.contains(&format!("\"moves\":{}", direct_rr.moves)),
            "scheduler trajectory diverged from the direct run: {traj_line}"
        );
        assert!(
            br_line.contains("\"improving\":1"),
            "scheduler best response diverged from the direct scan: {br_line}"
        );
    };
    // Multi-slice proof on a fresh fine-grained scheduler: a 48-eval
    // slice forces the 120-eval check through a requeue chain, and the
    // chain's verdicts must still match the direct runs exactly.
    let fine = Scheduler::start(SchedulerConfig {
        workers: 1,
        slice: 48,
        default_grant: u64::MAX,
        journal: None,
    })
    .expect("ungated scheduler start");
    let proof = sched_batch(&fine);
    assert!(
        parse_json_number(&proof[0], "slices").is_some_and(|s| s >= 2.0),
        "the 48-eval slice must requeue the 120-eval check: {}",
        proof[0]
    );
    assert_batch_exact(&proof);
    fine.stop();
    // The timed scheduler runs production-sized slices (the best-response
    // scan still requeues several times; µs-scale slices would measure
    // the per-slice state rebuild, not the scheduling layer).
    let timed = Scheduler::start(SchedulerConfig {
        workers: 1,
        slice: 512,
        default_grant: u64::MAX,
        journal: None,
    })
    .expect("ungated scheduler start");
    assert_batch_exact(&sched_batch(&timed));
    let sched_overhead = paired_overhead(
        8,
        &|| {
            assert!(matches!(
                one_shot
                    .check(&StabilityQuery::new(Concept::Bne, black_box(&c40), a370))
                    .unwrap(),
                Verdict::Stable { .. }
            ));
            black_box(round_robin::run(black_box(&path9), alpha2, 50).unwrap());
            black_box(
                best_response_in(&GameState::new(path12.clone(), alpha2), 0, budget()).unwrap(),
            );
        },
        &|| {
            black_box(sched_batch(&timed));
        },
    );
    timed.stop();
    gate.check_overhead(
        "sched_slicing_overhead/mixed_batch",
        sched_overhead,
        SCHED_SLICING_OVERHEAD_CEILING,
    );

    // Weighted fairness (PR 10): a heavy tenant flooding a 1-worker
    // scheduler with 100 multi-slice scans must not be able to delay a
    // light tenant's single cheap query behind the flood. The
    // machine-independent bound is asserted directly (the light query
    // completes after a bounded number of heavy completions — FIFO
    // would put all 100 first); the light query's wall-clock latency is
    // also recorded as a budgeted kernel so scheduling-layer latency
    // regressions show against the baseline.
    {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let fair = Scheduler::start(SchedulerConfig {
            workers: 1,
            slice: 48,
            default_grant: u64::MAX,
            journal: None,
        })
        .expect("ungated scheduler start");
        let p5 = generators::path(5);
        let heavy_done = Arc::new(AtomicU64::new(0));
        let mut light_lats = Vec::new();
        let mut worst_heavy_before_light = 0u64;
        for trial in 0..5u64 {
            for k in 0..100u64 {
                let done = Arc::clone(&heavy_done);
                fair.submit(
                    QuerySpec {
                        id: trial * 1000 + k + 1,
                        tenant: "heavy".into(),
                        work: Work::Check {
                            concept: Concept::Bne,
                            graph: c40.clone(),
                            alpha: a370,
                            cost_model: CostModelSpec::SumDistances,
                        },
                        resume: None,
                        deadline_ms: None,
                    },
                    Box::new(move |_| {
                        done.fetch_add(1, Ordering::SeqCst);
                    }),
                );
            }
            let before = heavy_done.load(Ordering::SeqCst);
            // Snapshot the heavy count inside the response callback:
            // reading it after a blocking recv() would also count jobs
            // the worker drained during this thread's wakeup latency.
            let at_light = Arc::new(AtomicU64::new(0));
            let (tx, rx) = std::sync::mpsc::channel::<String>();
            let t = Instant::now();
            {
                let done = Arc::clone(&heavy_done);
                let at_light = Arc::clone(&at_light);
                fair.submit(
                    QuerySpec {
                        id: trial * 1000 + 999,
                        tenant: "light".into(),
                        work: Work::Check {
                            concept: Concept::Ps,
                            graph: p5.clone(),
                            alpha: alpha2,
                            cost_model: CostModelSpec::SumDistances,
                        },
                        resume: None,
                        deadline_ms: None,
                    },
                    Box::new(move |line| {
                        at_light.store(done.load(Ordering::SeqCst), Ordering::SeqCst);
                        let _ = tx.send(line);
                    }),
                );
            }
            let light = rx.recv().expect("light response");
            light_lats.push(t.elapsed().as_secs_f64());
            assert!(
                light.contains("\"verdict\":\"unstable\""),
                "light P5 check diverged: {light}"
            );
            worst_heavy_before_light =
                worst_heavy_before_light.max(at_light.load(Ordering::SeqCst) - before);
            // Drain the flood before the next trial so trials measure
            // the same contention shape.
            while heavy_done.load(Ordering::SeqCst) < (trial + 1) * 100 {
                std::thread::yield_now();
            }
        }
        fair.stop();
        assert!(
            worst_heavy_before_light <= 8,
            "light tenant waited behind {worst_heavy_before_light} heavy \
             completions — round-robin dispatch is not bounding its delay"
        );
        println!("sched_fairness: worst heavy-before-light = {worst_heavy_before_light}");
        light_lats.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        gate.record(
            "sched_fairness/mixed_tenants",
            light_lats[light_lats.len() / 2],
        );
    }

    // Idle-connection overhead (PR 10): the readiness-loop front end
    // claims an idle connection costs buffers, not threads. Draining
    // the pinned mixed batch (×4) over the wire of a daemon with 500
    // idle sockets parked on it must stay within the scheduler ceiling
    // of the same wire batch on an otherwise-identical unloaded daemon
    // — the poll-set scan over the idle fds must be noise against real
    // solver work. (The wire + scheduler cost itself is gated above by
    // `sched_slicing_overhead/mixed_batch`.)
    {
        use bncg_serve::protocol::render_edges;
        use bncg_serve::server::{Server, ServerConfig};
        use std::cell::RefCell;
        use std::io::{BufRead, BufReader, Write};
        use std::net::TcpStream;
        let daemon = || {
            Server::start(ServerConfig {
                addr: "127.0.0.1:0".into(),
                scheduler: SchedulerConfig {
                    workers: 1,
                    slice: 512,
                    default_grant: u64::MAX,
                    journal: None,
                },
                ..ServerConfig::default()
            })
            .expect("daemon start")
        };
        let bare_server = daemon();
        let idle_server = daemon();
        let idle: Vec<TcpStream> = (0..500)
            .map(|_| TcpStream::connect(idle_server.addr()).expect("idle connect"))
            .collect();
        let client = |server: &Server| {
            let sock = TcpStream::connect(server.addr()).expect("active connect");
            sock.set_nodelay(true).expect("nodelay");
            let reader = BufReader::new(sock.try_clone().expect("clone"));
            RefCell::new((sock, reader))
        };
        let mut batch = String::new();
        for rep in 0..4u64 {
            let base = rep * 10;
            batch.push_str(&format!(
                "{{\"id\":{},\"op\":\"check\",\"concept\":\"bne\",\"alpha\":\"370\",\
                 \"n\":40,\"edges\":{}}}\n",
                base + 1,
                render_edges(&c40)
            ));
            batch.push_str(&format!(
                "{{\"id\":{},\"op\":\"trajectory\",\"alpha\":\"2\",\"n\":9,\
                 \"edges\":{},\"rounds\":50}}\n",
                base + 2,
                render_edges(&path9)
            ));
            batch.push_str(&format!(
                "{{\"id\":{},\"op\":\"best_response\",\"agent\":0,\"alpha\":\"2\",\
                 \"n\":12,\"edges\":{}}}\n",
                base + 3,
                render_edges(&path12)
            ));
        }
        let bare = client(&bare_server);
        let loaded = client(&idle_server);
        let run_batch = |wire: &RefCell<(TcpStream, BufReader<TcpStream>)>| {
            let (sock, reader) = &mut *wire.borrow_mut();
            sock.write_all(batch.as_bytes()).expect("send batch");
            let mut line = String::new();
            for _ in 0..12 {
                line.clear();
                reader.read_line(&mut line).expect("recv");
                assert!(line.contains("\"ok\":1"), "wire batch failed: {line}");
            }
        };
        // Exactness through the wire first: the loaded daemon's
        // verdicts on one batch must match the direct runs.
        {
            let (sock, reader) = &mut *loaded.borrow_mut();
            sock.write_all(batch.as_bytes()).expect("send batch");
            let mut line = String::new();
            for _ in 0..12 {
                line.clear();
                reader.read_line(&mut line).expect("recv");
                let id = parse_json_number(&line, "id").expect("id") as u64 % 10;
                match id {
                    1 => assert!(
                        line.contains("\"verdict\":\"stable\"")
                            && line.contains(&format!("\"evals\":{c40_evals}")),
                        "wire check diverged: {line}"
                    ),
                    2 => assert!(
                        line.contains("\"converged\":1")
                            && line.contains(&format!("\"moves\":{}", direct_rr.moves)),
                        "wire trajectory diverged: {line}"
                    ),
                    _ => assert!(line.contains("\"improving\":1"), "wire BR diverged: {line}"),
                }
            }
        }
        // Warm both wire paths (connection buffers, scheduler caches)
        // before timing, and use enough iterations per paired sample
        // that one scheduling hiccup cannot dominate a ~10ms batch.
        run_batch(&bare);
        run_batch(&loaded);
        let idle_overhead = paired_overhead(4, &|| run_batch(&bare), &|| run_batch(&loaded));
        drop(idle);
        bare_server.stop();
        idle_server.stop();
        gate.check_overhead(
            "idle_conns_overhead/mixed_batch_500",
            idle_overhead,
            SCHED_SLICING_OVERHEAD_CEILING,
        );
    }

    // Atlas lookup vs live (ISSUE 8): the precomputed corpus must (a) be
    // honest — a seeded sample of stored verdicts replays exactly against
    // a live solver — and (b) earn its disk: serving a stored verdict
    // (canonicalize, probe, relabel the witness) must beat recomputing it
    // live by the 100× floor. The corpus is the real builder's n ≤ 8 walk
    // over the polynomial-and-BNE concepts; the latency instance is the
    // pinned K4,4 under full-coalition BSE at α = 1/2 — a dense class
    // whose live scan runs ~10⁵ candidate coalitions before finding its
    // witness, stored via the same canonical-derivation path the builder
    // uses (check the canonical representative, key by safe graph6).
    {
        use bncg_atlas::{
            build as build_atlas, key::instance_key, verify_atlas, AlphaSpec, Atlas, AtlasRecord,
            BuildSpec, RamBacking, StoredVerdict,
        };
        let half = Alpha::from_ratio(1, 2).expect("α");
        let spec = BuildSpec {
            max_n: 8,
            grid: vec![
                AlphaSpec::Fixed(half),
                AlphaSpec::Fixed(Alpha::integer(2).expect("α")),
                AlphaSpec::N,
            ],
            concepts: vec![Concept::Ps, Concept::Bne],
        };
        let mut atlas = Atlas::open(RamBacking::new()).expect("RAM atlas");
        let report = build_atlas(&mut atlas, &spec, u64::MAX, None).expect("corpus build");
        assert!(report.complete, "the n ≤ 8 corpus walk must complete");
        let verified = verify_atlas(&atlas, 128, 0xA71A5, 8).expect("stored verdicts must replay");
        assert_eq!(verified.replayed, 128, "differential sample came up short");

        let mut k44 = bncg_graph::Graph::new(8);
        for u in 0..4u32 {
            for v in 4..8u32 {
                k44.add_edge(u, v).expect("simple edge");
            }
        }
        let (safe, canon, _) = instance_key(&k44).expect("keyable instance");
        let one_shot = Solver::new(ExecPolicy::default().with_threads(1));
        let live_check = || {
            one_shot
                .check(&StabilityQuery::new(Concept::Bse, &canon, half))
                .expect("live BSE check")
        };
        let live_verdict = live_check();
        let (stored, evals) = StoredVerdict::of_verdict(&live_verdict);
        assert!(
            matches!(stored, StoredVerdict::Unstable(_)),
            "K4,4 at α = 1/2 must be BSE-unstable, got {live_verdict:?}"
        );
        atlas
            .append(&AtlasRecord {
                key: safe,
                n: 8,
                concept: Concept::Bse,
                alpha: half,
                model: bncg_core::CostModelSpec::SumDistances,
                verdict: stored,
                evals,
            })
            .expect("append the pinned record");
        // End-to-end exactness through the hit path: the lookup must
        // surface the stored verdict with the witness relabeled into the
        // *query's* labels, and that witness must genuinely improve
        // every deviator on the query graph.
        let hit = atlas
            .lookup(&k44, Concept::Bse, half)
            .expect("lookup")
            .expect("the just-stored record must hit");
        let witness = hit.witness.expect("unstable hit carries a witness");
        assert!(
            bncg_core::delta::move_improves_all(&k44, half, &witness).expect("replayable witness"),
            "relabeled witness does not improve all deviators on the query graph"
        );
        let hit_lat = median_secs(5, || {
            let hit = atlas
                .lookup(black_box(&k44), Concept::Bse, half)
                .expect("lookup")
                .expect("hit");
            black_box(hit);
        });
        let live_lat = median_secs(3, || {
            black_box(live_check());
        });
        gate.record("atlas_hit/k44_bse", hit_lat);
        gate.check_speedup_floor(
            "atlas_lookup_vs_live/n8_grid",
            live_lat / hit_lat.max(1e-12),
            ATLAS_HIT_SPEEDUP_FLOOR,
        );
    }

    // Serialize BENCH_ci.json.
    let mut json = String::from("{\n");
    for (i, (name, value)) in gate.results.iter().enumerate() {
        let comma = if i + 1 == gate.results.len() { "" } else { "," };
        writeln!(json, "  \"{name}\": {value:.6}{comma}").expect("string write");
    }
    json.push_str("}\n");
    std::fs::write("BENCH_ci.json", &json).expect("write BENCH_ci.json");
    println!("wrote BENCH_ci.json");

    let baseline_path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_baseline.json");
    if write_baseline {
        std::fs::write(baseline_path, &json).expect("write baseline");
        println!("wrote {baseline_path}");
        return std::process::ExitCode::SUCCESS;
    }

    // Compare wall-clock kernels (not speedups) against the baseline,
    // rescaled by the calibration ratio so a slower/faster host shifts
    // every budget proportionally instead of failing the gate outright.
    // Every kernel — compared or limit-checked — also becomes a row of
    // the step-summary markdown table.
    let mut summary: Vec<[String; 5]> = Vec::new();
    let status = |ok: bool| if ok { "pass" } else { "**FAIL**" }.to_string();
    match std::fs::read_to_string(baseline_path) {
        Ok(baseline) => {
            // Clamped at 1: a slower host inflates every budget
            // proportionally, but an apparently-faster one never
            // *shrinks* them (that direction is where calibration noise
            // would turn into spurious failures).
            let machine_factor = parse_json_number(&baseline, CALIBRATION_KEY)
                .map_or(1.0, |base_cal| (calibration / base_cal.max(1e-12)).max(1.0));
            println!("machine calibration factor vs baseline: {machine_factor:.2}x");
            for (name, value) in &gate.results {
                // Ratios and derived values were asserted directly above
                // (machine-independent); only wall-clock kernels budget
                // against the baseline. Everything gets a summary row.
                let row = if name.starts_with("bitset_speedup/") {
                    [
                        name.clone(),
                        format!("≥ {BITSET_SPEEDUP_FLOOR:.0}x floor"),
                        format!("{value:.1}x"),
                        format!("{:.2}", value / BITSET_SPEEDUP_FLOOR),
                        status(*value >= BITSET_SPEEDUP_FLOOR),
                    ]
                } else if name.starts_with("atlas_lookup_vs_live/") {
                    [
                        name.clone(),
                        format!("≥ {ATLAS_HIT_SPEEDUP_FLOOR:.0}x floor"),
                        format!("{value:.0}x"),
                        format!("{:.2}", value / ATLAS_HIT_SPEEDUP_FLOOR),
                        status(*value >= ATLAS_HIT_SPEEDUP_FLOOR),
                    ]
                } else if name.contains("_speedup/") || name.starts_with("generator_vs_dense/") {
                    [
                        name.clone(),
                        format!("≥ {SPEEDUP_FLOOR:.0}x floor"),
                        format!("{value:.1}x"),
                        format!("{:.2}", value / SPEEDUP_FLOOR),
                        status(*value >= SPEEDUP_FLOOR),
                    ]
                } else if name.starts_with("cost_model_dispatch/") {
                    [
                        name.clone(),
                        format!("≤ {COST_MODEL_DISPATCH_CEILING:.2}x ceiling"),
                        format!("{value:.3}x"),
                        format!("{:.2}", value / COST_MODEL_DISPATCH_CEILING),
                        status(*value <= COST_MODEL_DISPATCH_CEILING),
                    ]
                } else if name.contains("_overhead/") {
                    let ceiling = if name.starts_with("rr_resume_overhead/") {
                        RR_RESUME_OVERHEAD_CEILING
                    } else if name.starts_with("sched_slicing_overhead/")
                        || name.starts_with("idle_conns_overhead/")
                    {
                        SCHED_SLICING_OVERHEAD_CEILING
                    } else if name.starts_with("generator_resume_overhead/") {
                        GENERATOR_RESUME_OVERHEAD_CEILING
                    } else if name.starts_with("metered_br_overhead/") {
                        METERED_BR_OVERHEAD_CEILING
                    } else if name == "solver_overhead/bne_star16" {
                        SOLVER_SETUP_OVERHEAD_CEILING
                    } else {
                        SOLVER_OVERHEAD_CEILING
                    };
                    [
                        name.clone(),
                        format!("≤ {ceiling:.2}x ceiling"),
                        format!("{value:.3}x"),
                        format!("{:.2}", value / ceiling),
                        status(*value <= ceiling),
                    ]
                } else if name == "budget_default_seconds" {
                    [
                        name.clone(),
                        "[0.5, 500] s".into(),
                        format!("{value:.1} s"),
                        "–".into(),
                        status((0.5..=500.0).contains(value)),
                    ]
                } else if name == CALIBRATION_KEY {
                    [
                        name.clone(),
                        parse_json_number(&baseline, name)
                            .map_or("n/a".into(), |b| format!("{b:.4} s")),
                        format!("{value:.4} s"),
                        format!("{machine_factor:.2}x host"),
                        "info".into(),
                    ]
                } else {
                    match parse_json_number(&baseline, name) {
                        None => {
                            println!("note: kernel {name} missing from baseline (skipped)");
                            [
                                name.clone(),
                                "n/a (new kernel)".into(),
                                format!("{value:.4} s"),
                                "–".into(),
                                "info".into(),
                            ]
                        }
                        Some(base) => {
                            // 1 ms of absolute slack on top of the
                            // relative budget: the microsecond-scale
                            // pruned kernels sit inside
                            // scheduler/allocator noise that no relative
                            // tolerance can absorb, and a genuine
                            // algorithmic regression on them dwarfs a
                            // millisecond anyway.
                            let scaled = base * machine_factor;
                            let limit = scaled * (1.0 + tolerance) + 1e-3;
                            if *value > limit {
                                gate.failures.push(format!(
                                    "{name}: {value:.4}s regressed >{:.0}% over scaled baseline {scaled:.4}s",
                                    tolerance * 100.0,
                                ));
                            } else {
                                println!("{name}: {value:.4}s within {limit:.4}s budget");
                            }
                            [
                                name.clone(),
                                format!("{scaled:.4} s"),
                                format!("{value:.4} s"),
                                format!("{:.2}", value / scaled.max(1e-12)),
                                status(*value <= limit),
                            ]
                        }
                    }
                };
                summary.push(row);
            }
        }
        Err(e) => {
            gate.failures
                .push(format!("cannot read baseline {baseline_path}: {e}"));
        }
    }
    write_step_summary(&summary, &gate.failures);

    if gate.failures.is_empty() {
        println!("perf gate: PASS");
        std::process::ExitCode::SUCCESS
    } else {
        for f in &gate.failures {
            eprintln!("perf gate FAILURE: {f}");
        }
        std::process::ExitCode::FAILURE
    }
}

/// Appends the kernel table to `$GITHUB_STEP_SUMMARY` (markdown shown on
/// the PR checks page) when running under GitHub Actions; does nothing
/// elsewhere. Written best-effort — a summary write failure must never
/// flip the gate's verdict.
fn write_step_summary(rows: &[[String; 5]], failures: &[String]) {
    let Some(path) = std::env::var_os("GITHUB_STEP_SUMMARY") else {
        return;
    };
    let mut md = String::from(
        "## Perf-regression gate\n\n\
         | kernel | baseline / limit | measured | ratio | status |\n\
         |---|---|---|---|---|\n",
    );
    for row in rows {
        writeln!(
            md,
            "| `{}` | {} | {} | {} | {} |",
            row[0], row[1], row[2], row[3], row[4]
        )
        .expect("string write");
    }
    md.push('\n');
    if failures.is_empty() {
        md.push_str("**Perf gate: PASS**\n");
    } else {
        md.push_str("**Perf gate: FAIL**\n\n");
        for f in failures {
            writeln!(md, "- {f}").expect("string write");
        }
    }
    use std::io::Write as _;
    match std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(&path)
    {
        Ok(mut file) => {
            if let Err(e) = file.write_all(md.as_bytes()) {
                eprintln!("cannot write step summary: {e}");
            }
        }
        Err(e) => eprintln!("cannot open step summary {path:?}: {e}"),
    }
}

/// Minimal `"key": number` extractor for the gate's flat JSON files (the
/// workspace is offline — no serde).
fn parse_json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
