//! The CI perf-regression gate (the `perf-gate` job in
//! `.github/workflows/ci.yml`).
//!
//! Runs pinned-seed kernels from the `engine_vs_naive` and `pruning`
//! bench suites at n = 16, writes the measurements to `BENCH_ci.json`
//! (uploaded as a workflow artifact), and fails when
//!
//! * a pruned checker disagrees with its raw reference (exactness),
//! * a pruning speedup drops below the 3× floor the PR 2 acceptance
//!   criteria demand (machine-independent: both sides run on the same
//!   host),
//! * the unified `Solver` facade adds more than 5% overhead over the
//!   direct pruned scans it drives (machine-independent ratio, batched
//!   so each sample is tens of milliseconds),
//! * the documented [`CheckBudget::default`] wall-clock meaning drifts
//!   outside sanity (the gate derives `budget_default_seconds` from the
//!   measured raw-reference evaluation rate — this is the calibration
//!   the `CheckBudget` rustdoc cites), or
//! * a kernel's wall-clock regresses more than `BENCH_CI_TOLERANCE`
//!   (default 0.25 = 25%) against the checked-in
//!   `crates/bench/BENCH_baseline.json`, after scaling the baseline by a
//!   substrate **calibration kernel** (pure BFS distance-matrix builds,
//!   untouched by checker changes) so a slower or faster CI host moves
//!   every budget proportionally instead of failing spuriously.
//!
//! Regenerate the baseline on a quiet machine with
//! `cargo run --release -p bncg-bench --bin ci_gate -- --write-baseline`.

use bncg_bench::pruning_kernels::{budget, instances};
use bncg_core::solver::{Solver, StabilityQuery, Verdict};
use bncg_core::{concepts, Alpha, CheckBudget, Concept, GameState};
use bncg_graph::{generators, DistanceMatrix};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const SPEEDUP_FLOOR: f64 = 3.0;
/// The solver facade may cost at most this factor over the direct scan.
const SOLVER_OVERHEAD_CEILING: f64 = 1.05;
const CALIBRATION_KEY: &str = "calibration/substrate_bfs";

/// The machine-speed yardstick: ~100 ms of all-pairs BFS matrix builds on
/// a pinned G(64, 0.1). Deliberately substrate-only — it shares no code
/// with the checkers under test, so a checker regression cannot inflate
/// the calibration and mask itself. Long enough (and preceded by a
/// warm-up run in `main`) that turbo/cache state cannot swing it.
fn calibration_kernel() {
    let mut rng = bncg_graph::test_rng(0xCA11B);
    let g = generators::random_connected(64, 0.1, &mut rng);
    for _ in 0..8_000 {
        black_box(DistanceMatrix::new(black_box(&g)));
    }
}

/// Median wall-clock of `samples` runs of `f`.
fn median_secs(samples: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

struct Gate {
    results: Vec<(String, f64)>,
    failures: Vec<String>,
}

impl Gate {
    fn record(&mut self, name: &str, secs: f64) {
        println!("{name}: {:.4} s", secs);
        self.results.push((name.to_string(), secs));
    }

    fn check_speedup(&mut self, name: &str, reference: f64, pruned: f64) {
        let speedup = reference / pruned.max(1e-12);
        println!("{name}: {speedup:.1}x");
        self.results.push((name.to_string(), speedup));
        if speedup < SPEEDUP_FLOOR {
            self.failures.push(format!(
                "{name}: speedup {speedup:.2}x is below the {SPEEDUP_FLOOR}x floor"
            ));
        }
    }
}

fn main() -> std::process::ExitCode {
    let write_baseline = std::env::args().any(|a| a == "--write-baseline");
    let tolerance: f64 = std::env::var("BENCH_CI_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let mut gate = Gate {
        results: Vec::new(),
        failures: Vec::new(),
    };

    // Machine yardstick first; one discarded warm-up run settles CPU
    // frequency and caches before the timed samples.
    calibration_kernel();
    let calibration = median_secs(5, calibration_kernel);
    gate.record(CALIBRATION_KEY, calibration);

    // The pruning-suite instances (stable ⇒ full scans), shared with
    // `benches/pruning.rs` via `pruning_kernels::instances()`.
    let states: Vec<(&'static str, GameState)> = instances()
        .into_iter()
        .map(|(name, g, alpha)| (name, GameState::new(g, alpha)))
        .collect();
    let gnp = &states.last().expect("two instances").1;

    let mut bne_reference_star16 = f64::NAN;
    for (name, state) in states.iter().map(|(n, s)| (*n, s)) {
        // Exactness before any timing.
        let pruned_mv = concepts::bne::find_violation_in_with_stats(state, budget())
            .unwrap()
            .0;
        let reference_mv = concepts::bne::find_violation_in_reference(state, budget()).unwrap();
        assert_eq!(pruned_mv, reference_mv, "BNE witness diverged on {name}");
        assert!(pruned_mv.is_none(), "{name} must scan to completion");
        let pruned = median_secs(5, || {
            concepts::bne::find_violation_in_with_stats(state, budget()).unwrap();
        });
        let reference = median_secs(3, || {
            concepts::bne::find_violation_in_reference(state, budget()).unwrap();
        });
        gate.record(&format!("bne_pruned/{name}"), pruned);
        gate.record(&format!("bne_reference/{name}"), reference);
        gate.check_speedup(&format!("bne_speedup/{name}"), reference, pruned);
        if name == "star16" {
            bne_reference_star16 = reference;
        }

        let kp = concepts::kbse::find_violation_in_with_stats(state, 2, budget())
            .unwrap()
            .0;
        let kr = concepts::kbse::find_violation_in_reference(state, 2, budget()).unwrap();
        assert_eq!(
            kp.is_some(),
            kr.is_some(),
            "2-BSE verdict diverged on {name}"
        );
        let pruned = median_secs(5, || {
            concepts::kbse::find_violation_in_with_stats(state, 2, budget()).unwrap();
        });
        let reference = median_secs(3, || {
            concepts::kbse::find_violation_in_reference(state, 2, budget()).unwrap();
        });
        gate.record(&format!("kbse2_pruned/{name}"), pruned);
        gate.record(&format!("kbse2_reference/{name}"), reference);
        gate.check_speedup(&format!("kbse2_speedup/{name}"), reference, pruned);
    }

    // The 3-BSE scan only the pruned checker can afford (raw space ~1.2e9).
    let pruned_k3 = median_secs(5, || {
        concepts::kbse::find_violation_in_with_stats(gnp, 3, budget()).unwrap();
    });
    gate.record("kbse3_pruned/gnp16_diam2", pruned_k3);

    // CheckBudget::default() calibration: the rustdoc's wall-clock claim
    // is derived here, not assumed. The star16 raw BNE reference prices
    // exactly 16·(2^15 − 1) candidates; the measured rate converts the
    // default guard into seconds of raw scanning on this host.
    let star16_raw_evals = 16.0 * ((1u64 << 15) - 1) as f64;
    let eval_rate = star16_raw_evals / bne_reference_star16.max(1e-12);
    let budget_default_secs = CheckBudget::DEFAULT_MAX_EVALS as f64 / eval_rate;
    gate.record("budget_default_seconds", budget_default_secs);
    if !(0.5..=500.0).contains(&budget_default_secs) {
        gate.failures.push(format!(
            "budget_default_seconds = {budget_default_secs:.1}s drifted outside \
             [0.5, 500] — update the CheckBudget::default() rustdoc and the \
             default guard"
        ));
    }

    // Solver-facade overhead: the unified query surface must stay within
    // 5% of the direct pruned scans it drives. Batched so each sample is
    // tens of milliseconds (the pruned kernels alone are µs-scale).
    let star16 = &states[0].1;
    let solver = Solver::default();
    for (key, iters, direct, facade) in [
        (
            "solver_overhead/bne_star16",
            256usize,
            &(|| {
                concepts::bne::find_violation_in_with_stats(black_box(star16), budget()).unwrap();
            }) as &dyn Fn(),
            &(|| {
                let v = solver
                    .check(&StabilityQuery::on(Concept::Bne, black_box(star16)))
                    .unwrap();
                assert!(matches!(v, Verdict::Stable { .. }));
            }) as &dyn Fn(),
        ),
        (
            "solver_overhead/kbse3_gnp16",
            16usize,
            &(|| {
                concepts::kbse::find_violation_in_with_stats(black_box(gnp), 3, budget()).unwrap();
            }) as &dyn Fn(),
            &(|| {
                let v = solver
                    .check(&StabilityQuery::on(Concept::KBse(3), black_box(gnp)))
                    .unwrap();
                assert!(matches!(v, Verdict::Stable { .. }));
            }) as &dyn Fn(),
        ),
    ] {
        let direct_batch = median_secs(5, || {
            for _ in 0..iters {
                direct();
            }
        });
        let facade_batch = median_secs(5, || {
            for _ in 0..iters {
                facade();
            }
        });
        let overhead = facade_batch / direct_batch.max(1e-12);
        println!("{key}: {overhead:.3}x (direct {direct_batch:.4}s, facade {facade_batch:.4}s)");
        gate.results.push((key.to_string(), overhead));
        if overhead > SOLVER_OVERHEAD_CEILING {
            gate.failures.push(format!(
                "{key}: solver facade overhead {overhead:.3}x exceeds the \
                 {SOLVER_OVERHEAD_CEILING}x ceiling"
            ));
        }
    }

    // The engine_vs_naive representative: 50 rounds of engine-backed
    // round-robin dynamics on path16 (the PR 1 headline kernel).
    let path = generators::path(16);
    let alpha2 = Alpha::integer(2).expect("α");
    let rr = median_secs(3, || {
        bncg_dynamics::round_robin::run(&path, alpha2, 50).unwrap();
    });
    gate.record("round_robin50/path16", rr);

    // Serialize BENCH_ci.json.
    let mut json = String::from("{\n");
    for (i, (name, value)) in gate.results.iter().enumerate() {
        let comma = if i + 1 == gate.results.len() { "" } else { "," };
        writeln!(json, "  \"{name}\": {value:.6}{comma}").expect("string write");
    }
    json.push_str("}\n");
    std::fs::write("BENCH_ci.json", &json).expect("write BENCH_ci.json");
    println!("wrote BENCH_ci.json");

    let baseline_path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_baseline.json");
    if write_baseline {
        std::fs::write(baseline_path, &json).expect("write baseline");
        println!("wrote {baseline_path}");
        return std::process::ExitCode::SUCCESS;
    }

    // Compare wall-clock kernels (not speedups) against the baseline,
    // rescaled by the calibration ratio so a slower/faster host shifts
    // every budget proportionally instead of failing the gate outright.
    match std::fs::read_to_string(baseline_path) {
        Ok(baseline) => {
            // Clamped at 1: a slower host inflates every budget
            // proportionally, but an apparently-faster one never
            // *shrinks* them (that direction is where calibration noise
            // would turn into spurious failures).
            let machine_factor = parse_json_number(&baseline, CALIBRATION_KEY)
                .map_or(1.0, |base_cal| (calibration / base_cal.max(1e-12)).max(1.0));
            println!("machine calibration factor vs baseline: {machine_factor:.2}x");
            for (name, value) in &gate.results {
                // Ratios and derived values are asserted directly above
                // (machine-independent); only wall-clock kernels budget
                // against the baseline.
                if name.contains("_speedup/")
                    || name.starts_with("solver_overhead/")
                    || name == "budget_default_seconds"
                    || name == CALIBRATION_KEY
                {
                    continue;
                }
                let Some(base) = parse_json_number(&baseline, name) else {
                    println!("note: kernel {name} missing from baseline (skipped)");
                    continue;
                };
                // 1 ms of absolute slack on top of the relative budget:
                // the microsecond-scale pruned kernels sit inside
                // scheduler/allocator noise that no relative tolerance
                // can absorb, and a genuine algorithmic regression on
                // them dwarfs a millisecond anyway.
                let limit = base * machine_factor * (1.0 + tolerance) + 1e-3;
                if *value > limit {
                    gate.failures.push(format!(
                        "{name}: {value:.4}s regressed >{:.0}% over scaled baseline {:.4}s",
                        tolerance * 100.0,
                        base * machine_factor
                    ));
                } else {
                    println!("{name}: {value:.4}s within {limit:.4}s budget");
                }
            }
        }
        Err(e) => {
            gate.failures
                .push(format!("cannot read baseline {baseline_path}: {e}"));
        }
    }

    if gate.failures.is_empty() {
        println!("perf gate: PASS");
        std::process::ExitCode::SUCCESS
    } else {
        for f in &gate.failures {
            eprintln!("perf gate FAILURE: {f}");
        }
        std::process::ExitCode::FAILURE
    }
}

/// Minimal `"key": number` extractor for the gate's flat JSON files (the
/// workspace is offline — no serde).
fn parse_json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
