//! # bncg-bench
//!
//! Criterion benchmarks for the BNCG reproduction, organized one bench
//! target per paper artifact:
//!
//! * `table1` — the verification kernel behind each Table 1 row
//!   (exhaustive tree PoA per concept, lower-bound family certification,
//!   d-ary regime evaluation);
//! * `figures` — the kernels behind Figures 1b–8 (witness searches and
//!   certifications) and Lemma 2.4's cycle windows;
//! * `substrate` — the graph layer (BFS, distance matrices, rerooted
//!   sums, enumeration, isomorphism, graph6);
//! * `dynamics` — improving-move dynamics throughput.
//!
//! Run with `cargo bench --workspace`; each group uses reduced sample
//! counts so a full sweep stays in CI-friendly time.

/// Shared α grid used across bench groups, mirroring the experiments.
#[must_use]
pub fn alpha_grid() -> Vec<bncg_core::Alpha> {
    [1i64, 4, 16, 64]
        .iter()
        .map(|&v| bncg_core::Alpha::integer(v).expect("positive"))
        .collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn grid_is_nonempty() {
        assert_eq!(super::alpha_grid().len(), 4);
    }
}
