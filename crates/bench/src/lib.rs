//! # bncg-bench
//!
//! Criterion benchmarks for the BNCG reproduction, organized one bench
//! target per paper artifact:
//!
//! * `table1` — the verification kernel behind each Table 1 row
//!   (exhaustive tree PoA per concept, lower-bound family certification,
//!   d-ary regime evaluation);
//! * `figures` — the kernels behind Figures 1b–8 (witness searches and
//!   certifications) and Lemma 2.4's cycle windows;
//! * `substrate` — the graph layer (BFS, distance matrices, rerooted
//!   sums, enumeration, isomorphism, graph6);
//! * `dynamics` — improving-move dynamics throughput.
//!
//! Run with `cargo bench --workspace`; each group uses reduced sample
//! counts so a full sweep stays in CI-friendly time.

/// Shared α grid used across bench groups, mirroring the experiments.
#[must_use]
pub fn alpha_grid() -> Vec<bncg_core::Alpha> {
    [1i64, 4, 16, 64]
        .iter()
        .map(|&v| bncg_core::Alpha::integer(v).expect("positive"))
        .collect()
}

/// The pinned kernels shared by the `pruning` bench and the `ci_gate`
/// perf-regression binary — one definition so the gate always measures
/// exactly the instances the recorded numbers describe.
pub mod pruning_kernels {
    use bncg_core::{Alpha, CheckBudget};
    use bncg_graph::{generators, Graph};

    /// A large explicit budget: the diameter-2 instance's raw 3-BSE space
    /// is ~1.2·10⁹ candidates, beyond the default guard — the pruned scan
    /// prices almost none of them, which is the point of the measurement.
    #[must_use]
    pub fn budget() -> CheckBudget {
        CheckBudget::new(8_000_000_000)
    }

    /// `(name, graph, α)` instances whose full scans are stable: the star
    /// at α = 2, and a pinned-seed G(16, 0.35) draw verified to have
    /// diameter 2, which Proposition 3.16 makes BSE-stable (hence BNE-
    /// and k-BSE-stable) at α = 1.
    #[must_use]
    pub fn instances() -> Vec<(&'static str, Graph, Alpha)> {
        let mut rng = bncg_graph::test_rng(0xE16 ^ (9 * 0x9E37));
        vec![
            (
                "star16",
                generators::star(16),
                Alpha::integer(2).expect("α"),
            ),
            (
                "gnp16_diam2",
                generators::random_connected(16, 0.35, &mut rng),
                Alpha::integer(1).expect("α"),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn grid_is_nonempty() {
        assert_eq!(super::alpha_grid().len(), 4);
    }
}
