//! Disproving the Corbo–Parkes conjecture (Proposition 2.3, Figure 2).
//!
//! The conjecture claimed every unilateral-NE graph is pairwise stable in
//! the bilateral game. The paper refutes it with a small graph that is in
//! NE under a suitable edge assignment while some agent profits from
//! *bilaterally* dropping an edge she does not own (in the bilateral game
//! she pays for it too, so dropping refunds her α).
//!
//! This module finds such witnesses by exhaustive search over small
//! connected graphs and edge assignments, with two sound prunings:
//!
//! 1. NE implies unilateral add stability, which implies BAE
//!    (Proposition 2.1) — and add stability does not depend on the
//!    assignment; graphs failing it are skipped.
//! 2. In a NE no owner wants to drop an owned edge, so only assignments
//!    giving every edge a "content" owner are enumerated.

use bncg_core::unilateral::UnilateralState;
use bncg_core::{agent_cost, concepts, Alpha, GameError, Move};
use bncg_graph::{enumerate, Graph};

/// A certified counterexample to the Corbo–Parkes conjecture.
#[derive(Debug, Clone)]
pub struct ConjectureWitness {
    /// The unilateral state (graph + edge assignment) in NE.
    pub state: UnilateralState,
    /// The edge price.
    pub alpha: Alpha,
    /// The bilateral removal that breaks pairwise stability.
    pub removal: Move,
}

/// Searches all connected graphs with up to `max_n` nodes (up to
/// isomorphism) and all compatible edge assignments for a unilateral NE
/// that is not pairwise stable in the BNCG.
///
/// # Errors
///
/// Forwards [`GameError::CheckTooLarge`] if `max_n` exceeds the exhaustive
/// enumeration guard.
///
/// # Examples
///
/// ```no_run
/// use bncg_constructions::conjecture::find_ne_not_ps;
/// use bncg_core::Alpha;
///
/// let witness = find_ne_not_ps(5, &[Alpha::integer(4)?])?.expect("exists");
/// println!("found: {}", witness.removal);
/// # Ok::<(), bncg_core::GameError>(())
/// ```
pub fn find_ne_not_ps(
    max_n: usize,
    alphas: &[Alpha],
) -> Result<Option<ConjectureWitness>, GameError> {
    for n in 3..=max_n {
        let graphs = enumerate::connected_graphs(n).map_err(GameError::Graph)?;
        for g in graphs {
            if g.is_tree() {
                // Trees are always in bilateral RE, and NE ⟹ BAE, so a
                // tree can never witness ¬PS.
                continue;
            }
            for &alpha in alphas {
                if let Some(w) = check_graph(&g, alpha)? {
                    return Ok(Some(w));
                }
            }
        }
    }
    Ok(None)
}

/// Checks a single graph across all NE-compatible assignments.
fn check_graph(g: &Graph, alpha: Alpha) -> Result<Option<ConjectureWitness>, GameError> {
    // Who would profit from a bilateral removal? (Also: which owners are
    // content keeping their edge?)
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let old: Vec<_> = (0..g.n() as u32).map(|u| agent_cost(g, u)).collect();
    let mut scratch = g.clone();
    let mut wants_drop = Vec::with_capacity(edges.len());
    for &(u, v) in &edges {
        scratch.remove_edge(u, v).expect("edge exists");
        let u_wants = agent_cost(&scratch, u).better_than(&old[u as usize], alpha);
        let v_wants = agent_cost(&scratch, v).better_than(&old[v as usize], alpha);
        scratch.add_edge(u, v).expect("restore");
        wants_drop.push((u_wants, v_wants));
    }
    // Pairwise stability must fail; with BAE enforced below this means a
    // bilateral removal must be profitable.
    let Some(removal) = wants_drop
        .iter()
        .zip(&edges)
        .find_map(|(&(uw, vw), &(u, v))| {
            if uw {
                Some(Move::Remove {
                    agent: u,
                    target: v,
                })
            } else if vw {
                Some(Move::Remove {
                    agent: v,
                    target: u,
                })
            } else {
                None
            }
        })
    else {
        return Ok(None);
    };
    // NE ⟹ BAE (Prop. 2.1): skip graphs that fail BAE.
    if !concepts::bae::is_stable(g, alpha) {
        return Ok(None);
    }
    // Valid owners per edge: endpoints that do NOT want to drop.
    let mut allowed: Vec<Vec<u32>> = Vec::with_capacity(edges.len());
    for (&(u, v), &(uw, vw)) in edges.iter().zip(&wants_drop) {
        let mut owners = Vec::new();
        if !uw {
            owners.push(u);
        }
        if !vw {
            owners.push(v);
        }
        if owners.is_empty() {
            return Ok(None); // no NE-compatible assignment
        }
        allowed.push(owners);
    }
    // Enumerate the product of allowed owners.
    let mut choice = vec![0usize; edges.len()];
    loop {
        let owners = edges
            .iter()
            .zip(&choice)
            .map(|(&(u, v), &c)| ((u, v), allowed_owner(&allowed, &edges, u, v, c)));
        let state = UnilateralState::new(g.clone(), owners).expect("endpoint owners");
        if state.is_ne(alpha)? {
            return Ok(Some(ConjectureWitness {
                state,
                alpha,
                removal,
            }));
        }
        // Next choice vector.
        let mut i = 0;
        loop {
            if i == edges.len() {
                return Ok(None);
            }
            choice[i] += 1;
            if choice[i] < allowed[i].len() {
                break;
            }
            choice[i] = 0;
            i += 1;
        }
    }
}

fn allowed_owner(allowed: &[Vec<u32>], edges: &[(u32, u32)], u: u32, v: u32, c: usize) -> u32 {
    let idx = edges
        .iter()
        .position(|&(a, b)| (a, b) == (u, v))
        .expect("edge present");
    allowed[idx][c]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjecture_is_disproved_on_small_graphs() {
        // Proposition 2.3: a unilateral NE that is not pairwise stable.
        let alphas: Vec<Alpha> = ["4", "3", "2", "7/2", "5"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let witness = find_ne_not_ps(5, &alphas)
            .unwrap()
            .expect("a witness must exist among graphs with ≤ 5 nodes");
        // Certify both sides end to end.
        assert!(witness.state.is_ne(witness.alpha).unwrap());
        assert!(bncg_core::delta::move_improves_all(
            witness.state.graph(),
            witness.alpha,
            &witness.removal
        )
        .unwrap());
        assert!(!concepts::ps::is_stable(
            witness.state.graph(),
            witness.alpha
        ));
    }

    #[test]
    fn no_tree_is_ever_reported() {
        let alphas = [Alpha::integer(4).unwrap()];
        if let Some(w) = find_ne_not_ps(4, &alphas).unwrap() {
            assert!(!w.state.graph().is_tree());
        }
    }
}
