//! Explicit witness graphs from the paper's figures.
//!
//! * [`figure5`] — in BAE ∩ BGE but not BNE (Proposition A.4, α = 104.5);
//! * [`figure6`] — in BNE but not 2-BSE (Proposition A.5, α = 7);
//! * [`figure7`] — in k-BSE but not BNE (Proposition A.7, α = 4i − 4);
//! * [`figure8_witness`] — in BAE but not in unilateral Add Equilibrium
//!   (Proposition 2.1's reverse direction). The paper's 28-node drawing is
//!   not fully specified in the text; a 6-node double star certifies the
//!   same separation and is used instead (documented substitution).
//!
//! Figure 6's edge list is likewise reconstructed: the text pins down the
//! distance costs (`dist(a1) = 19`, `dist(b1) = 27`, `dist(c1) = 19`), the
//! group symmetry, and the violating coalition `{a1, a3}`; the unique
//! topology satisfying all of these is two matched `a`-pairs cross-linked
//! by the `c`-agents with one pendant `b` per `a`. The tests verify every
//! stated quantity.

use bncg_core::{Alpha, Move};
use bncg_graph::Graph;

/// A figure instance: the graph, its price, and the move the figure is
/// about (the violation it exhibits, if it exhibits one).
#[derive(Debug, Clone)]
pub struct FigureInstance {
    /// The witness graph.
    pub graph: Graph,
    /// The edge price used in the figure.
    pub alpha: Alpha,
    /// The deviating move the figure illustrates, if any.
    pub violation: Option<Move>,
}

/// Figure 5 (Proposition A.4): a 107-node tree in BAE and BGE but not in
/// BNE at `α = 104.5`.
///
/// Center `a` (node 0) is adjacent to `b1`, `b2` and one hundred leaves
/// `e_i`; two paths `b_i − c_i − d_i` hang off the `b`s. Agent `a` cannot
/// profit from any *single* greedy change, but the simultaneous double
/// swap — drop both `b`s, connect to both `c`s — helps `a` by 2 and each
/// `c_i` by 105 > α.
///
/// # Examples
///
/// ```
/// use bncg_constructions::figures::figure5;
///
/// let fig = figure5();
/// assert_eq!(fig.graph.n(), 107);
/// assert!(fig.graph.is_tree());
/// ```
#[must_use]
pub fn figure5() -> FigureInstance {
    // Layout: a = 0, b1 = 1, b2 = 2, c1 = 3, c2 = 4, d1 = 5, d2 = 6,
    // e1..e100 = 7..106.
    let mut edges = vec![(0u32, 1u32), (0, 2), (1, 3), (2, 4), (3, 5), (4, 6)];
    for e in 7..107u32 {
        edges.push((0, e));
    }
    let graph = Graph::from_edges(107, edges).expect("figure 5 edge list is simple");
    FigureInstance {
        graph,
        alpha: Alpha::from_ratio(209, 2).expect("α = 104.5"),
        violation: Some(Move::Neighborhood {
            center: 0,
            remove: vec![1, 2],
            add: vec![3, 4],
        }),
    }
}

/// Figure 6 (Proposition A.5): a 10-node graph in BNE but not in 2-BSE at
/// `α = 7`.
///
/// Nodes: `a1..a4 = 0..3`, `b1..b4 = 4..7`, `c1 = 8`, `c2 = 9`. The `a`s
/// form two matched pairs (`a1a2`, `a3a4`), the `c`s cross-link the pairs
/// (`c1 ∼ {a1, a4}`, `c2 ∼ {a2, a3}`), and each `a_i` carries the pendant
/// `b_i`. The coalition `{a1, a3}` improves by dropping `a1c1` and `a3c2`
/// while adding `a1a3` — a move no single-agent neighborhood change can
/// imitate.
#[must_use]
pub fn figure6() -> FigureInstance {
    let edges = [
        (0u32, 1u32), // a1–a2
        (2, 3),       // a3–a4
        (8, 0),       // c1–a1
        (8, 3),       // c1–a4
        (9, 1),       // c2–a2
        (9, 2),       // c2–a3
        (0, 4),       // a1–b1
        (1, 5),       // a2–b2
        (2, 6),       // a3–b3
        (3, 7),       // a4–b4
    ];
    let graph = Graph::from_edges(10, edges).expect("figure 6 edge list is simple");
    FigureInstance {
        graph,
        alpha: Alpha::integer(7).expect("α = 7"),
        violation: Some(Move::Coalition {
            members: vec![0, 2],
            remove_edges: vec![(0, 8), (2, 9)],
            add_edges: vec![(0, 2)],
        }),
    }
}

/// Figure 7 (Proposition A.7): for `i` rows, the spider-of-paths with
/// center `a` and rows `a − b_j − c_j − d_j` at `α = 4i − 4`. With
/// `i = 20k` the paper proves it is in k-BSE but not in BNE: the center
/// swaps *all* `b`-edges for `c`-edges at once, which helps it and every
/// `c_j` but is far beyond any size-k coalition.
///
/// # Panics
///
/// Panics if `i < 2` (the price `4i − 4` must be positive).
#[must_use]
pub fn figure7(i: usize) -> FigureInstance {
    assert!(i >= 2, "figure 7 needs at least two rows");
    let n = 3 * i + 1;
    let mut edges = Vec::with_capacity(3 * i);
    for j in 0..i as u32 {
        let (b, c, d) = (1 + 3 * j, 2 + 3 * j, 3 + 3 * j);
        edges.push((0, b));
        edges.push((b, c));
        edges.push((c, d));
    }
    let graph = Graph::from_edges(n, edges).expect("figure 7 edge list is simple");
    FigureInstance {
        graph,
        alpha: Alpha::integer(4 * i as i64 - 4).expect("α = 4i − 4 > 0"),
        violation: Some(Move::Neighborhood {
            center: 0,
            remove: (0..i as u32).map(|j| 1 + 3 * j).collect(),
            add: (0..i as u32).map(|j| 2 + 3 * j).collect(),
        }),
    }
}

/// The number of rows Figure 7 uses for a given coalition bound `k`
/// (`i = 20k`).
#[must_use]
pub fn figure7_rows_for_k(k: usize) -> usize {
    20 * k
}

/// The executable certificate behind Proposition A.7's k-BSE claim at the
/// paper's scale (`i = 20k`, `α = 4i − 4`), checking the proof's
/// distance-accounting inequalities on the *actual graph*:
///
/// 1. every agent's summed distance to any row `R_j = {b_j, c_j, d_j}` is
///    at most 15, and at least 3 after any rewiring, so membership of a
///    row in the coalition is worth at most 12 — hence at most `12k`
///    total;
/// 2. `12k < α` — no `b`-agent will ever pay for an extra edge;
/// 3. `n + 12k < α` — no `c`-agent will either, even counting a full hop
///    towards the center.
///
/// These are the exact inequalities from which the proof's degree-counting
/// argument concludes stability; the function evaluates them in integer
/// arithmetic for the given `k` and returns whether all hold.
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn figure7_kbse_certificate(k: usize) -> bool {
    assert!(k >= 1, "coalition bound must be positive");
    let i = figure7_rows_for_k(k);
    let fig = figure7(i);
    let g = &fig.graph;
    let n = g.n() as i64;
    let alpha = 4 * i as i64 - 4;
    debug_assert_eq!(fig.alpha, Alpha::integer(alpha).expect("positive"));
    // Geometric facts, measured rather than assumed.
    let mut dist = Vec::new();
    let mut max_row_sum = 0i64;
    for u in 0..g.n() as u32 {
        bncg_graph::bfs_distances(g, u, &mut dist);
        for j in 0..i as u32 {
            let row_sum = i64::from(dist[(1 + 3 * j) as usize])
                + i64::from(dist[(2 + 3 * j) as usize])
                + i64::from(dist[(3 + 3 * j) as usize]);
            max_row_sum = max_row_sum.max(row_sum);
        }
    }
    // (1) geometry: row sums within [3, 15], so per-row value ≤ 12.
    let per_row_reduction = max_row_sum - 3;
    let geometric = max_row_sum <= 15 && per_row_reduction <= 12;
    // (2) b-agents: 12k < α. (3) c-agents: n + 12k < α.
    let b_inequality = 12 * (k as i64) < alpha;
    let c_inequality = n + 12 * (k as i64) < alpha;
    geometric && b_inequality && c_inequality
}

/// Figure 8's role (Proposition 2.1, reverse direction): a graph in BAE
/// that is **not** in unilateral Add Equilibrium for any edge assignment.
///
/// Substitution note: the paper's 28-node drawing is not fully specified
/// in the text, so the smallest graph we found with the same property is
/// used — the double star with two leaves per center at `α = 5/2`. A leaf
/// gains `3 > α` from unilaterally buying an edge to the far center, but
/// the far center itself gains only `1 < α`, so it never consents
/// bilaterally; no other pair profits mutually either. Unilateral add
/// stability is assignment-independent (the buyer pays regardless of who
/// owns the existing edges), so the single graph suffices.
#[must_use]
pub fn figure8_witness() -> FigureInstance {
    let graph = bncg_graph::generators::double_star(2, 2);
    FigureInstance {
        graph,
        alpha: Alpha::from_ratio(5, 2).expect("α = 5/2"),
        violation: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bncg_core::{agent_cost, concepts, delta, unilateral::UnilateralState};

    #[test]
    fn figure5_is_in_bae_and_bge_but_not_bne() {
        let fig = figure5();
        let (g, alpha) = (&fig.graph, fig.alpha);
        assert!(
            concepts::bae::is_stable(g, alpha),
            "Figure 5 must be in BAE"
        );
        assert!(
            concepts::bge::is_stable(g, alpha),
            "Figure 5 must be in BGE"
        );
        let mv = fig.violation.as_ref().unwrap();
        assert!(
            delta::move_improves_all(g, alpha, mv).unwrap(),
            "the double swap around a must improve a, c1, and c2"
        );
    }

    #[test]
    fn figure5_gains_match_the_papers_arithmetic() {
        // The single swap a: b1 → c1 helps a but gives c1 only 104 < α.
        let fig = figure5();
        let g = &fig.graph;
        let single = Move::Swap {
            agent: 0,
            old: 1,
            new: 3,
        };
        let g2 = single.apply(g).unwrap();
        let c1_gain = agent_cost(g, 3).dist - agent_cost(&g2, 3).dist;
        assert_eq!(c1_gain, 104);
        // The full neighborhood change gives c1 105 > α = 104.5 and a 2.
        let mv = fig.violation.as_ref().unwrap();
        let g3 = mv.apply(g).unwrap();
        assert_eq!(agent_cost(g, 3).dist - agent_cost(&g3, 3).dist, 105);
        assert_eq!(agent_cost(g, 0).dist - agent_cost(&g3, 0).dist, 2);
    }

    #[test]
    fn figure6_distance_costs_match_the_paper() {
        let fig = figure6();
        let g = &fig.graph;
        assert_eq!(g.n(), 10);
        assert_eq!(agent_cost(g, 0).dist, 19, "dist(a1) = 19");
        assert_eq!(agent_cost(g, 4).dist, 27, "dist(b1) = 27");
        assert_eq!(agent_cost(g, 8).dist, 19, "dist(c1) = 19");
        // Group symmetry: all a's, all b's, all c's share their cost.
        for i in 0..4u32 {
            assert_eq!(agent_cost(g, i).dist, 19);
            assert_eq!(agent_cost(g, 4 + i).dist, 27);
        }
        assert_eq!(agent_cost(g, 9).dist, 19);
    }

    #[test]
    fn figure6_is_in_bne_but_not_2bse() {
        let fig = figure6();
        let (g, alpha) = (&fig.graph, fig.alpha);
        assert!(
            concepts::bne::is_stable(g, alpha).unwrap(),
            "Figure 6 must be in BNE at α = 7"
        );
        let mv = fig.violation.as_ref().unwrap();
        assert!(
            delta::move_improves_all(g, alpha, mv).unwrap(),
            "the {{a1, a3}} coalition move must improve both members"
        );
        // And the exact 2-BSE checker agrees.
        let found = concepts::kbse::find_violation(g, alpha, 2).unwrap();
        assert!(found.is_some(), "2-BSE checker must find a violation");
    }

    #[test]
    fn figure7_violating_move_matches_the_papers_arithmetic() {
        for i in [4usize, 10, 40] {
            let fig = figure7(i);
            let g = &fig.graph;
            let mv = fig.violation.as_ref().unwrap();
            let g2 = mv.apply(g).unwrap();
            // c_j: from 4 + 12(i−1) to 3 + 8(i−1).
            let c0 = 2u32;
            assert_eq!(agent_cost(g, c0).dist, (4 + 12 * (i as u64 - 1)));
            assert_eq!(agent_cost(&g2, c0).dist, (3 + 8 * (i as u64 - 1)));
            // The move improves the center and every c_j at α = 4i − 4.
            assert!(delta::move_improves_all(g, fig.alpha, mv).unwrap());
        }
    }

    #[test]
    fn figure7_certificate_holds_at_paper_scale() {
        // Proposition A.7's inequalities verified on the real graphs at
        // i = 20k for k = 2, 3, 4.
        for k in [2usize, 3, 4] {
            assert!(
                figure7_kbse_certificate(k),
                "Figure 7 certificate must hold at k = {k}"
            );
        }
    }

    #[test]
    fn figure7_certificate_margins_are_tight_in_k() {
        // The c-inequality n + 12k < α reads 72k + 1 < 80k − 4: it holds
        // for every k ≥ 1 at the paper's i = 20k, but would fail if the
        // instance were scaled down to i = 10k (32k + 1 + 12k ≥ 40k − 4
        // for k ≤ 5/4... verify the failure numerically at k = 1, i = 10).
        let i = 10;
        let fig = figure7(i);
        let n = fig.graph.n() as i64;
        let alpha = 4 * i as i64 - 4;
        assert!(n + 12 >= alpha, "scaled-down instance must lose the margin");
    }

    #[test]
    fn figure7_small_coalitions_cannot_imitate() {
        // Restricted 2-BSE refutation on a mid-sized instance: no improving
        // coalition move with at most 2 members and ≤ 2 removals.
        let fig = figure7(10);
        assert!(
            concepts::kbse::find_violation_restricted(&fig.graph, fig.alpha, 2, 2).is_none(),
            "no small coalition move should exist at i = 10"
        );
    }

    #[test]
    fn figure8_separates_bae_from_unilateral_add() {
        let fig = figure8_witness();
        let (g, alpha) = (&fig.graph, fig.alpha);
        assert!(
            concepts::bae::is_stable(g, alpha),
            "double star must be in BAE"
        );
        // Unilateral add instability holds for every assignment; check all.
        for state in UnilateralState::all_assignments(g).unwrap() {
            assert!(
                state.find_add_violation(alpha).is_some(),
                "some agent must profit from a unilateral purchase"
            );
        }
    }

    #[test]
    fn figure_instances_are_valid_moves() {
        for fig in [figure5(), figure6(), figure7(5)] {
            let mv = fig.violation.as_ref().unwrap();
            assert!(mv.apply(&fig.graph).is_ok(), "figure move must type-check");
        }
    }
}
