//! # bncg-constructions
//!
//! Executable versions of every construction the paper's proofs rely on:
//!
//! * [`stretched`] — stretched binary trees and stretched tree stars
//!   (Figure 3), with the parameterizations of Theorems 3.10 and 3.12 and
//!   the exact Lemma 3.11 BNE certificate;
//! * [`figures`] — the witness graphs of Figures 5, 6, 7, and 8;
//! * [`conjecture`] — the exhaustive search refuting the Corbo–Parkes
//!   conjecture (Proposition 2.3, Figure 2);
//! * [`venn`] — witnesses for all eight regions of Figure 1b
//!   (Proposition A.1).
//!
//! # Examples
//!
//! ```
//! use bncg_constructions::figures::figure7;
//! use bncg_core::delta;
//!
//! // The paper's k-BSE-but-not-BNE family at i = 6 rows.
//! let fig = figure7(6);
//! let mv = fig.violation.as_ref().expect("figure 7 carries its move");
//! assert!(delta::move_improves_all(&fig.graph, fig.alpha, mv)?);
//! # Ok::<(), bncg_core::GameError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod conjecture;
pub mod figures;
pub mod stretched;
pub mod venn;
