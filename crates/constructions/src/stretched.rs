//! Stretched binary trees and stretched tree stars — the lower-bound
//! machinery of Sections 3.2.2 and 3.2.3 (Figure 3).
//!
//! A *k-stretched binary tree* replaces every edge of a complete binary
//! tree of depth `d` by a path of `k` edges; a *stretched tree star* glues
//! `⌈(η−1)/|T|⌉` copies of a stretched tree to a shared root. The paper
//! instantiates these to prove `Ω(log α)` PoA lower bounds for BGE
//! (Theorem 3.10) and BNE (Theorem 3.12).

use bncg_core::Alpha;
use bncg_graph::Graph;

/// A k-stretched binary tree together with the bookkeeping the proofs use.
///
/// Node 0 is the root `r`. The nodes of the underlying binary tree `B`
/// (the "joints") are recorded in [`StretchedBinaryTree::b_nodes`].
///
/// # Examples
///
/// ```
/// use bncg_constructions::stretched::StretchedBinaryTree;
///
/// // Figure 3: d = 2, k = 3 has (2^{d+1} − 2)·k + 1 = 19 nodes.
/// let t = StretchedBinaryTree::build(2, 3);
/// assert_eq!(t.graph.n(), 19);
/// assert!(t.graph.is_tree());
/// assert_eq!(t.depth(), 6); // k · d
/// ```
#[derive(Debug, Clone)]
pub struct StretchedBinaryTree {
    /// The tree itself.
    pub graph: Graph,
    /// Depth of the underlying binary tree.
    pub d: usize,
    /// Stretch factor.
    pub k: usize,
    /// Nodes corresponding to the underlying binary tree (including the
    /// root), in BFS order of `B`.
    pub b_nodes: Vec<u32>,
}

impl StretchedBinaryTree {
    /// Builds the k-stretched binary tree of depth `d` (of the underlying
    /// binary tree `B`).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn build(d: usize, k: usize) -> Self {
        assert!(k >= 1, "stretch factor must be at least 1");
        // |B| = 2^{d+1} − 1; nodes of T: (|B| − 1)·k + 1.
        let b_count = (1usize << (d + 1)) - 1;
        let n = (b_count - 1) * k + 1;
        let mut graph = Graph::new(n);
        let mut b_nodes = vec![0u32; b_count];
        let mut next = 1u32;
        // BFS over B: b-index i has children 2i+1, 2i+2.
        for i in 0..b_count {
            for child in [2 * i + 1, 2 * i + 2] {
                if child >= b_count {
                    continue;
                }
                // Path of k edges from b_nodes[i] to the new joint.
                let mut prev = b_nodes[i];
                for _ in 0..k {
                    graph
                        .add_edge(prev, next)
                        .expect("stretched layout is simple");
                    prev = next;
                    next += 1;
                }
                b_nodes[child] = prev;
            }
        }
        debug_assert_eq!(next as usize, n);
        StretchedBinaryTree {
            graph,
            d,
            k,
            b_nodes,
        }
    }

    /// Largest stretched tree with parameter `k` and at most `t` nodes
    /// (`d` maximal subject to `n ≤ t`), per the stretched-tree-star
    /// definition. Returns `d = 0` (a single node) if even depth 1 exceeds
    /// `t`.
    #[must_use]
    pub fn with_target_size(k: usize, t: usize) -> Self {
        let mut d = 0usize;
        loop {
            let next_n = ((1usize << (d + 2)) - 2) * k + 1;
            if next_n > t {
                break;
            }
            d += 1;
        }
        StretchedBinaryTree::build(d, k)
    }

    /// Depth of the stretched tree: `k · d`.
    #[must_use]
    pub fn depth(&self) -> u32 {
        (self.k * self.d) as u32
    }
}

/// A stretched tree star (Section 3.2.2): a root with
/// `⌈(η−1)/|T|⌉` stretched-tree children.
#[derive(Debug, Clone)]
pub struct StretchedTreeStar {
    /// The tree itself; node 0 is the shared root.
    pub graph: Graph,
    /// The stretched subtree that was replicated.
    pub subtree: StretchedBinaryTree,
    /// Number of copies attached to the root.
    pub copies: usize,
}

impl StretchedTreeStar {
    /// Builds a stretched tree star with stretch factor `k`, target subtree
    /// size `t`, and target total size `eta`.
    ///
    /// The definition requires `t ≥ 2k + 1` and `η ≥ 2t + 1`; the
    /// constructor clamps `t` up to `2k + 1` and panics on an inconsistent
    /// `eta`.
    ///
    /// # Panics
    ///
    /// Panics if `eta < 2t + 1` after clamping, or `k == 0`.
    #[must_use]
    pub fn build(k: usize, t: usize, eta: usize) -> Self {
        let t = t.max(2 * k + 1);
        assert!(eta > 2 * t, "target size must be at least 2t + 1");
        let subtree = StretchedBinaryTree::with_target_size(k, t);
        let sub_n = subtree.graph.n();
        let copies = (eta - 1).div_ceil(sub_n);
        let n = copies * sub_n + 1;
        let mut graph = Graph::new(n);
        for c in 0..copies {
            let offset = (1 + c * sub_n) as u32;
            graph
                .add_edge(0, offset)
                .expect("root-to-copy edge is simple");
            for (u, v) in subtree.graph.edges() {
                graph
                    .add_edge(offset + u, offset + v)
                    .expect("copy edges are simple");
            }
        }
        StretchedTreeStar {
            graph,
            subtree,
            copies,
        }
    }

    /// Depth of the star: `1 + depth(T)`.
    #[must_use]
    pub fn depth(&self) -> u32 {
        1 + self.subtree.depth()
    }
}

/// The executable inequality of Lemma 3.11: a stretched tree star with
/// parameter `k` (where `k = 1` or `α ≥ 6kn`) is in BNE if
/// `3n·depth(G)/α + 1 ≤ α / (3|T|·depth(G))`.
///
/// Evaluated exactly in integer arithmetic after clearing denominators.
#[must_use]
pub fn lemma_3_11_certificate(star: &StretchedTreeStar, alpha: Alpha) -> bool {
    lemma_3_11_certificate_params(
        star.graph.n(),
        star.depth(),
        star.subtree.graph.n(),
        star.subtree.k,
        alpha,
    )
}

/// Parameter-level form of [`lemma_3_11_certificate`], for instances too
/// large to materialize (the inequality only needs `n`, `depth(G)`, `|T|`,
/// and `k`).
#[must_use]
pub fn lemma_3_11_certificate_params(
    n: usize,
    depth: u32,
    t_size: usize,
    k: usize,
    alpha: Alpha,
) -> bool {
    let n = n as i128;
    let depth = i128::from(depth);
    let t_size = t_size as i128;
    let num = i128::from(alpha.num());
    let den = i128::from(alpha.den());
    // Precondition: k = 1 or α ≥ 6kn.
    let precondition = k == 1 || num >= 6 * k as i128 * n * den;
    if !precondition {
        return false;
    }
    // 3n·depth/α + 1 ≤ α/(3|T|·depth), with α = num/den:
    // LHS = (3n·depth·den + num)/num, RHS = num/(3|T|·depth·den), so
    // cross-multiplying the positive denominators gives
    // (3n·depth·den + num)·(3|T|·depth·den) ≤ num².
    let lhs = (3 * n * depth * den + num) * (3 * t_size * depth * den);
    let rhs = num * num;
    lhs <= rhs
}

/// Parameters for Theorem 3.10's BGE lower-bound instance: `k = 1`,
/// `t = α/15`, target size `η`. Requires `α ≥ 15·(2k+1)` so the subtree is
/// nontrivial, and `η ≥ α` as in the theorem statement.
#[must_use]
pub fn theorem_3_10_instance(alpha_int: usize, eta: usize) -> StretchedTreeStar {
    let t = (alpha_int / 15).max(3);
    StretchedTreeStar::build(1, t, eta.max(2 * t + 1))
}

/// Parameters for Theorem 3.12(i): `k = ⌊α/(9η)⌋`, `t = η^{1−ε/2}`.
#[must_use]
pub fn theorem_3_12_i_instance(alpha_int: usize, eta: usize, eps: f64) -> StretchedTreeStar {
    let k = (alpha_int / (9 * eta)).max(1);
    let t = (eta as f64).powf(1.0 - eps / 2.0).round() as usize;
    StretchedTreeStar::build(k, t.max(2 * k + 1), eta.max(2 * t.max(2 * k + 1) + 1))
}

/// Parameters for Theorem 3.12(ii): `k = 1`, `t = η^ε`.
#[must_use]
pub fn theorem_3_12_ii_instance(eta: usize, eps: f64) -> StretchedTreeStar {
    let t = (eta as f64).powf(eps).round() as usize;
    StretchedTreeStar::build(1, t.max(3), eta.max(2 * t.max(3) + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bncg_core::concepts;
    use bncg_graph::{root_at_median, DistanceMatrix};

    fn a(v: i64) -> Alpha {
        Alpha::integer(v).unwrap()
    }

    #[test]
    fn figure_3_shape() {
        // Figure 3: complete binary tree d = 2 and 3-stretched version.
        let plain = StretchedBinaryTree::build(2, 1);
        assert_eq!(plain.graph.n(), 7);
        assert_eq!(plain.depth(), 2);
        let stretched = StretchedBinaryTree::build(2, 3);
        assert_eq!(stretched.graph.n(), 19);
        assert_eq!(stretched.depth(), 6);
        assert!(stretched.graph.is_tree());
        // Joint distances scale by k (dist_T(u,v) = k·dist_B(u,v)).
        let d = DistanceMatrix::new(&stretched.graph);
        let b = &stretched.b_nodes;
        assert_eq!(d.dist(b[0], b[1]), 3);
        assert_eq!(d.dist(b[1], b[2]), 6);
        assert_eq!(d.dist(b[3], b[6]), 12);
    }

    #[test]
    fn root_is_median_of_stretched_tree() {
        let t = StretchedBinaryTree::build(3, 2);
        let rooted = root_at_median(&t.graph).unwrap();
        assert_eq!(rooted.root(), 0);
    }

    #[test]
    fn with_target_size_is_maximal() {
        for k in 1..4usize {
            for t in (2 * k + 1)..60 {
                let tree = StretchedBinaryTree::with_target_size(k, t);
                assert!(tree.graph.n() <= t.max(1));
                let bigger = StretchedBinaryTree::build(tree.d + 1, k);
                assert!(bigger.graph.n() > t, "d should be maximal (k={k}, t={t})");
            }
        }
    }

    #[test]
    fn star_size_bounds_match_lemma_d9() {
        // Lemma D.9: η ≤ n ≤ 3η/2 and depth(G) ≤ 2k·log₂ t.
        for (k, t, eta) in [(1usize, 7usize, 40usize), (2, 11, 60), (3, 31, 200)] {
            let star = StretchedTreeStar::build(k, t, eta);
            let n = star.graph.n();
            assert!(n >= eta, "n ≥ η violated: n = {n}, η = {eta}");
            assert!(
                n <= 3 * eta / 2 + 1,
                "n ≤ 3η/2 violated: n = {n}, η = {eta}"
            );
            let depth_bound = 2.0 * k as f64 * (t as f64).log2();
            assert!(f64::from(star.depth()) <= depth_bound + 1.0);
            assert!(star.graph.is_tree());
        }
    }

    #[test]
    fn proposition_3_8_stretched_tree_is_bge_for_large_alpha() {
        // α ≥ 7kn suffices for BGE (trees are automatically in RE).
        for (d, k) in [(2usize, 1usize), (2, 2), (3, 1)] {
            let t = StretchedBinaryTree::build(d, k);
            let n = t.graph.n();
            let alpha = a((7 * k * n) as i64);
            assert!(
                concepts::bge::is_stable(&t.graph, alpha),
                "stretched tree (d={d}, k={k}) must be BGE at α = 7kn"
            );
        }
    }

    #[test]
    fn small_alpha_destabilizes_stretched_trees() {
        // Far below the threshold the deep leaves rewire.
        let t = StretchedBinaryTree::build(3, 2);
        assert!(concepts::bge::find_violation(&t.graph, a(2)).is_some());
    }

    #[test]
    fn theorem_3_10_instance_is_bge_and_costly() {
        // α = 600, η = 600: k = 1, t = 40.
        let star = theorem_3_10_instance(600, 600);
        let alpha = a(600);
        assert!(star.graph.is_tree());
        assert!(
            concepts::bge::is_stable(&star.graph, alpha),
            "Theorem 3.10 instance must be in BGE"
        );
        // Its ρ must exceed 1 (it is a bad equilibrium, though the
        // asymptotic ¼log α − 17/8 only binds for large α).
        let rho = bncg_core::social_cost_ratio(&star.graph, alpha).unwrap();
        assert!(rho.as_f64() > 1.0);
    }

    #[test]
    fn lemma_3_11_certificate_matches_direct_inequality() {
        let star = theorem_3_12_ii_instance(400, 0.5);
        // t = 20, |T| small, depth small: scan α values and compare the
        // exact certificate against a float evaluation with slack.
        for alpha_v in [50i64, 100, 200, 400, 1000] {
            let alpha = a(alpha_v);
            let exact = lemma_3_11_certificate(&star, alpha);
            let n = star.graph.n() as f64;
            let depth = f64::from(star.depth());
            let t_size = star.subtree.graph.n() as f64;
            let av = alpha.as_f64();
            let float = 3.0 * n * depth / av + 1.0 <= av / (3.0 * t_size * depth);
            assert_eq!(exact, float, "certificate mismatch at α = {alpha_v}");
        }
    }

    #[test]
    fn theorem_3_12_instances_certified_bne_at_paper_parameters() {
        // Theorem 3.12(i) with ε = 1, η = 2^14, α = 9η: k = 1, t = √η.
        // The certificate binds: 3n·depth/α + 1 ≈ 3.3 ≤ α/(3|T|·depth) ≈ 55.
        let eta = 1usize << 14;
        let alpha_v = 9 * eta;
        let star = theorem_3_12_i_instance(alpha_v, eta, 1.0);
        let alpha = a(alpha_v as i64);
        assert!(
            lemma_3_11_certificate(&star, alpha),
            "Lemma 3.11 certificate must hold at Theorem 3.12(i) parameters"
        );
        // Theorem 3.12(ii) needs astronomically large η before the
        // certificate margin opens (ε = 1/4, η = 2^64): check at the
        // parameter level without materializing the graph. There
        // t = η^ε = 2^16, |T| ≤ t, depth ≤ 2·log₂ t = 32,
        // n ≤ 3η/2, α = η^{1/2+ε} = 2^48.
        let n = 3u128 << 63; // 3η/2 as upper bound, fits usize? use u64 math
        let _ = n;
        let ok = lemma_3_11_certificate_params(
            usize::MAX / 8, // stand-in for 3η/2 ≈ 2.76e19 — clipped below
            33,
            1 << 16,
            1,
            Alpha::integer(1 << 48).unwrap(),
        );
        // With n ≈ 2.3e18, depth 33, |T| = 65536, α = 2^48:
        // LHS ≈ 3·2.3e18·33/2.8e14 ≈ 8.1e5; RHS ≈ 2.8e14/(3·65536·33) ≈ 4.3e7.
        assert!(
            ok,
            "Lemma 3.11 certificate must hold at Theorem 3.12(ii) scale"
        );
    }
}
