//! Witnesses for the Venn diagram of Figure 1b (Proposition A.1): RE, BAE,
//! and BSwE are pairwise incomparable — every one of the 2³ membership
//! combinations is realized by some graph and price.
//!
//! The paper lists eight example graphs `G1..G8` with prices
//! `α ∈ {5, 3, ½, 2, 2, ½, 3, 2}` but does not spell out their edge sets;
//! this module *finds* a certified witness for each region by exhaustive
//! search over small connected graphs and an α grid containing the
//! figure's values.

use bncg_core::{concepts, Alpha, GameError};
use bncg_graph::{enumerate, Graph};

/// One of the eight regions of the RE/BAE/BSwE Venn diagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VennRegion {
    /// In Remove Equilibrium.
    pub re: bool,
    /// In Bilateral Add Equilibrium.
    pub bae: bool,
    /// In Bilateral Swap Equilibrium.
    pub bswe: bool,
}

impl VennRegion {
    /// All eight regions, ordered like a 3-bit counter (RE, BAE, BSwE).
    #[must_use]
    pub fn all() -> [VennRegion; 8] {
        let mut out = [VennRegion {
            re: false,
            bae: false,
            bswe: false,
        }; 8];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = VennRegion {
                re: i & 4 != 0,
                bae: i & 2 != 0,
                bswe: i & 1 != 0,
            };
        }
        out
    }
}

impl std::fmt::Display for VennRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mark = |b: bool| if b { "∈" } else { "∉" };
        write!(
            f,
            "{} RE, {} BAE, {} BSwE",
            mark(self.re),
            mark(self.bae),
            mark(self.bswe)
        )
    }
}

/// A certified region witness.
#[derive(Debug, Clone)]
pub struct VennWitness {
    /// The region realized.
    pub region: VennRegion,
    /// The witness graph.
    pub graph: Graph,
    /// The price at which the memberships hold.
    pub alpha: Alpha,
}

/// The default α grid: the figure's prices plus a few fillers (the
/// RE ∩ BAE ∩ ¬BSwE region first appears on an 8-node tree at α = 6).
///
/// # Panics
///
/// Never — all constants are valid prices.
#[must_use]
pub fn default_alpha_grid() -> Vec<Alpha> {
    [
        "1/2", "1", "3/2", "2", "5/2", "3", "4", "5", "6", "7", "9", "12",
    ]
    .iter()
    .map(|s| s.parse().expect("valid grid entry"))
    .collect()
}

/// Finds one witness per realized region by scanning all connected graphs
/// with up to `max_graph_n` nodes plus all free trees with up to
/// `max_tree_n` nodes against the α grid (trees extend the reach cheaply:
/// they are always in RE, and the region `RE ∩ BAE ∩ ¬BSwE` needs eight
/// nodes). Regions come back in the order of [`VennRegion::all`];
/// unrealized regions yield `None`.
///
/// # Errors
///
/// Forwards the enumeration size guards.
pub fn find_all_witnesses(
    max_graph_n: usize,
    max_tree_n: usize,
    alphas: &[Alpha],
) -> Result<Vec<(VennRegion, Option<VennWitness>)>, GameError> {
    let mut found: Vec<(VennRegion, Option<VennWitness>)> =
        VennRegion::all().iter().map(|&r| (r, None)).collect();
    let mut remaining = found.len();
    let mut corpus: Vec<Graph> = Vec::new();
    for n in 2..=max_graph_n {
        corpus.extend(enumerate::connected_graphs(n).map_err(GameError::Graph)?);
    }
    for n in (max_graph_n + 1)..=max_tree_n {
        corpus.extend(enumerate::free_trees(n).map_err(GameError::Graph)?);
    }
    for g in &corpus {
        for &alpha in alphas {
            let region = VennRegion {
                re: concepts::re::is_stable(g, alpha),
                bae: concepts::bae::is_stable(g, alpha),
                bswe: concepts::bswe::is_stable(g, alpha),
            };
            let slot = found
                .iter_mut()
                .find(|(r, _)| *r == region)
                .expect("all regions enumerated");
            if slot.1.is_none() {
                slot.1 = Some(VennWitness {
                    region,
                    graph: g.clone(),
                    alpha,
                });
                remaining -= 1;
                if remaining == 0 {
                    return Ok(found);
                }
            }
        }
    }
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eight_regions_are_realized() {
        // Proposition A.1: every RE/BAE/BSwE combination has a witness.
        let grid = default_alpha_grid();
        let witnesses = find_all_witnesses(6, 8, &grid).unwrap();
        for (region, w) in &witnesses {
            let w = w
                .as_ref()
                .unwrap_or_else(|| panic!("region {region} must be realized by the corpus"));
            // Re-certify the membership pattern.
            assert_eq!(concepts::re::is_stable(&w.graph, w.alpha), region.re);
            assert_eq!(concepts::bae::is_stable(&w.graph, w.alpha), region.bae);
            assert_eq!(concepts::bswe::is_stable(&w.graph, w.alpha), region.bswe);
        }
    }

    #[test]
    fn regions_enumerate_all_combinations() {
        let regions = VennRegion::all();
        assert_eq!(regions.len(), 8);
        let mut set: Vec<_> = regions.iter().map(|r| (r.re, r.bae, r.bswe)).collect();
        set.sort();
        set.dedup();
        assert_eq!(set.len(), 8);
    }

    #[test]
    fn display_is_readable() {
        let r = VennRegion {
            re: true,
            bae: false,
            bswe: true,
        };
        let s = r.to_string();
        assert!(s.contains("RE") && s.contains("BAE") && s.contains("BSwE"));
    }
}
