//! The edge price `α` as an exact rational.
//!
//! Equilibria are defined by *strict* cost improvement, and the paper uses
//! fractional prices such as `1/2`, `4.5`, and `104.5` in its witness
//! graphs. Floating point cannot certify a strict inequality at those
//! boundaries, so `α = num/den` is stored exactly and every cost comparison
//! is carried out in `i128` after multiplying through the denominator.

use crate::error::GameError;
use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// The edge price `α > 0` as a reduced exact rational.
///
/// # Examples
///
/// ```
/// use bncg_core::Alpha;
///
/// let a = Alpha::from_ratio(209, 2)?; // 104.5
/// assert_eq!(a.to_string(), "209/2");
/// assert_eq!(a.as_f64(), 104.5);
/// assert!(a > Alpha::integer(104)?);
/// assert!(a < Alpha::integer(105)?);
/// # Ok::<(), bncg_core::GameError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Alpha {
    num: i64,
    den: i64,
}

const fn gcd(mut a: i64, mut b: i64) -> i64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Alpha {
    /// Creates `α = num/den`, reduced.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidAlpha`] unless `num > 0` and `den > 0`.
    pub fn from_ratio(num: i64, den: i64) -> Result<Self, GameError> {
        if num <= 0 || den <= 0 {
            return Err(GameError::InvalidAlpha);
        }
        let g = gcd(num, den);
        Ok(Alpha {
            num: num / g,
            den: den / g,
        })
    }

    /// Creates an integer `α = k`.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidAlpha`] unless `k > 0`.
    pub fn integer(k: i64) -> Result<Self, GameError> {
        Alpha::from_ratio(k, 1)
    }

    /// Numerator of the reduced fraction.
    #[must_use]
    pub fn num(&self) -> i64 {
        self.num
    }

    /// Denominator of the reduced fraction.
    #[must_use]
    pub fn den(&self) -> i64 {
        self.den
    }

    /// Approximate value as `f64` (for reporting only — never used in
    /// equilibrium decisions).
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// The exact scaled cost key `den·dist + num·edges` used for comparing
    /// agent costs `α·edges + dist` without rationals.
    #[must_use]
    pub fn cost_key(&self, edges: u32, dist: u64) -> i128 {
        i128::from(self.num) * i128::from(edges) + i128::from(self.den) * i128::from(dist)
    }

    /// Exact comparison `α ⋈ p/q` for a non-negative rational `p/q`.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`.
    #[must_use]
    pub fn cmp_ratio(&self, p: i64, q: i64) -> Ordering {
        assert!(q > 0, "comparison denominator must be positive");
        (i128::from(self.num) * i128::from(q)).cmp(&(i128::from(p) * i128::from(self.den)))
    }

    /// Exact test `α · k < value` for integer `k ≥ 0` and integer `value`,
    /// i.e. whether a distance saving of `value` pays for `k` extra edges.
    #[must_use]
    pub fn times_lt(&self, k: u64, value: u64) -> bool {
        i128::from(self.num) * i128::from(k) < i128::from(self.den) * i128::from(value)
    }

    /// `⌈α⌉` as an integer (α is positive).
    #[must_use]
    pub fn ceil(&self) -> i64 {
        self.num.div_euclid(self.den) + i64::from(self.num % self.den != 0)
    }

    /// `⌊α⌋` as an integer.
    #[must_use]
    pub fn floor(&self) -> i64 {
        self.num.div_euclid(self.den)
    }
}

impl PartialOrd for Alpha {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Alpha {
    fn cmp(&self, other: &Self) -> Ordering {
        (i128::from(self.num) * i128::from(other.den))
            .cmp(&(i128::from(other.num) * i128::from(self.den)))
    }
}

impl fmt::Display for Alpha {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl FromStr for Alpha {
    type Err = GameError;

    /// Parses `"3"`, `"3/2"`, or a decimal such as `"104.5"`.
    fn from_str(s: &str) -> Result<Self, GameError> {
        let s = s.trim();
        if let Some((p, q)) = s.split_once('/') {
            let num: i64 = p.trim().parse().map_err(|_| GameError::InvalidAlpha)?;
            let den: i64 = q.trim().parse().map_err(|_| GameError::InvalidAlpha)?;
            return Alpha::from_ratio(num, den);
        }
        if let Some((int, frac)) = s.split_once('.') {
            if frac.is_empty() || !frac.bytes().all(|b| b.is_ascii_digit()) {
                return Err(GameError::InvalidAlpha);
            }
            let scale = 10i64
                .checked_pow(frac.len() as u32)
                .ok_or(GameError::InvalidAlpha)?;
            let int_part: i64 = if int.is_empty() {
                0
            } else {
                int.parse().map_err(|_| GameError::InvalidAlpha)?
            };
            let frac_part: i64 = frac.parse().map_err(|_| GameError::InvalidAlpha)?;
            return Alpha::from_ratio(
                int_part
                    .checked_mul(scale)
                    .and_then(|v| v.checked_add(frac_part))
                    .ok_or(GameError::InvalidAlpha)?,
                scale,
            );
        }
        let k: i64 = s.parse().map_err(|_| GameError::InvalidAlpha)?;
        Alpha::integer(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_and_display() {
        let a = Alpha::from_ratio(6, 4).unwrap();
        assert_eq!((a.num(), a.den()), (3, 2));
        assert_eq!(a.to_string(), "3/2");
        assert_eq!(Alpha::integer(7).unwrap().to_string(), "7");
    }

    #[test]
    fn rejects_nonpositive() {
        assert_eq!(Alpha::from_ratio(0, 1), Err(GameError::InvalidAlpha));
        assert_eq!(Alpha::from_ratio(-1, 2), Err(GameError::InvalidAlpha));
        assert_eq!(Alpha::from_ratio(1, 0), Err(GameError::InvalidAlpha));
        assert_eq!(Alpha::integer(0), Err(GameError::InvalidAlpha));
    }

    #[test]
    fn ordering_is_exact() {
        let half = Alpha::from_ratio(1, 2).unwrap();
        let third = Alpha::from_ratio(1, 3).unwrap();
        assert!(third < half);
        assert!(half < Alpha::integer(1).unwrap());
        assert_eq!(half.cmp(&Alpha::from_ratio(2, 4).unwrap()), Ordering::Equal);
    }

    #[test]
    fn cost_key_orders_costs() {
        // α = 3/2: cost(2 edges, dist 5) = 8; cost(1 edge, dist 7) = 8.5.
        let a = Alpha::from_ratio(3, 2).unwrap();
        assert!(a.cost_key(2, 5) < a.cost_key(1, 7));
        assert_eq!(a.cost_key(2, 5), a.cost_key(0, 8));
    }

    #[test]
    fn times_lt_certifies_strictness() {
        let a = Alpha::from_ratio(209, 2).unwrap(); // 104.5
        assert!(a.times_lt(1, 105)); // 104.5 < 105
        assert!(!a.times_lt(1, 104)); // 104.5 ≥ 104
        assert!(!a.times_lt(2, 209)); // 209 ≥ 209 (not strict)
    }

    #[test]
    fn parsing_forms() {
        assert_eq!("3".parse::<Alpha>().unwrap(), Alpha::integer(3).unwrap());
        assert_eq!(
            "1/2".parse::<Alpha>().unwrap(),
            Alpha::from_ratio(1, 2).unwrap()
        );
        assert_eq!(
            "104.5".parse::<Alpha>().unwrap(),
            Alpha::from_ratio(209, 2).unwrap()
        );
        assert_eq!(
            "4.5".parse::<Alpha>().unwrap(),
            Alpha::from_ratio(9, 2).unwrap()
        );
        assert!(".".parse::<Alpha>().is_err());
        assert!("x".parse::<Alpha>().is_err());
        assert!("-1".parse::<Alpha>().is_err());
        assert!("1.".parse::<Alpha>().is_err());
    }

    #[test]
    fn floor_and_ceil() {
        let a = Alpha::from_ratio(7, 2).unwrap();
        assert_eq!(a.floor(), 3);
        assert_eq!(a.ceil(), 4);
        let b = Alpha::integer(5).unwrap();
        assert_eq!(b.floor(), 5);
        assert_eq!(b.ceil(), 5);
    }

    #[test]
    fn cmp_ratio() {
        let a = Alpha::from_ratio(7, 2).unwrap();
        assert_eq!(a.cmp_ratio(7, 2), Ordering::Equal);
        assert_eq!(a.cmp_ratio(4, 1), Ordering::Less);
        assert_eq!(a.cmp_ratio(3, 1), Ordering::Greater);
    }
}
