//! Best responses in the bilateral game.
//!
//! The unilateral NCG has a textbook best response (pick the cheapest
//! target set); bilaterally an agent cannot force edges, so the natural
//! notion — used by the round-robin dynamics — is the **best feasible
//! neighborhood move**: among all moves "remove `R ⊆ S_u`, add `A`" whose
//! added partners all strictly consent (improve), the one minimizing `u`'s
//! own cost. This mirrors the BNE move set, so a state where no agent has
//! a feasible improving neighborhood move is exactly a BNE.
//!
//! Best responses are *optimization* queries (argmin over a move space),
//! not stability queries, so they keep their own entry points rather than
//! the [`crate::solver`] surface — but since this PR they speak the same
//! execution-policy dialect: [`best_response_with_policy`] runs the scan
//! through the [`crate::scan`] poll protocol, so an [`ExecPolicy`]'s
//! eval budget, deadline, and cancel token stop it **anytime**-style. A
//! stopped scan returns a [`BestResponseVerdict`] carrying the best move
//! found so far and a serializable [`BestResponseFrontier`];
//! [`best_response_resume`] continues from exactly there, and a chain of
//! budgeted slices returns the **identical** move an uninterrupted scan
//! would (enumeration order, pruning decisions, and tie-breaks are all
//! deterministic functions of the state — property-tested in
//! `tests/solver.rs`). This is what gives round-robin dynamics true
//! anytime budgets instead of the legacy per-activation size guard.

use crate::alpha::Alpha;
use crate::candidates::NeighborhoodPruner;
use crate::concepts::CheckBudget;
use crate::cost::AgentCost;
use crate::error::GameError;
use crate::generator::{BranchScan, NeighborhoodOracle, Step};
use crate::jsonio;
use crate::moves::Move;
use crate::scan::{CtlLocal, ScanCtl};
use crate::solver::ExecPolicy;
use crate::state::GameState;
use bncg_graph::{BitsetGraph, Graph};
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::AtomicU64;
use std::time::{Duration, Instant};

/// The outcome of a best-response computation for one agent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BestResponse {
    /// The best feasible improving move, if any exists.
    pub best: Option<Move>,
    /// The agent's cost after playing it (equals the current cost when
    /// `best` is `None`).
    pub cost: AgentCost,
}

/// The frontier layout version: positions index the raw
/// addition-mask-major `(addition mask, removal mask)` enumeration over
/// the pruning layer's filtered partner list, so they are meaningful
/// only under the exact layout of the build that issued them. Bump on
/// any layout change so stale cross-build tokens are rejected instead
/// of reinterpreted.
const BR_FRONTIER_LAYOUT: u64 = 1;

/// A serializable resume point for a stopped best-response scan.
///
/// The frontier certifies that every candidate strictly before `pos` in
/// the agent's deterministic enumeration order has been priced against
/// the carried best-so-far move, and it is bound to a fingerprint of the
/// instance (graph + α), so resuming against a different state is
/// rejected instead of silently producing garbage. Unlike the solver's
/// stability [`crate::solver::Frontier`], an *optimization* frontier must
/// also carry the evolving argmin — the best feasible move found so far —
/// or a resumed slice would restart the comparison from the agent's
/// current cost and could return a different (later, equally-improving)
/// move than the uninterrupted scan.
///
/// Serialization is a flat JSON object (`to_json`/`FromStr`) with an
/// enumeration-layout version, so frontiers can cross process boundaries
/// like the solver's; the round-robin trajectory checkpoint embeds one
/// verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BestResponseFrontier {
    agent: u32,
    instance: u64,
    pos: u64,
    evals: u64,
    /// Best feasible move over the certified prefix (always
    /// [`Move::Neighborhood`] centered on `agent`).
    best: Option<Move>,
}

impl BestResponseFrontier {
    /// The agent whose scan this frontier belongs to.
    #[must_use]
    pub fn agent(&self) -> u32 {
        self.agent
    }

    /// Cumulative candidate evaluations across all slices so far.
    #[must_use]
    pub fn evals(&self) -> u64 {
        self.evals
    }

    /// The best feasible move over the certified prefix, if one exists.
    #[must_use]
    pub fn best(&self) -> Option<&Move> {
        self.best.as_ref()
    }

    /// Serializes the frontier as a flat JSON object (including the
    /// enumeration-layout version, checked on parse).
    #[must_use]
    pub fn to_json(&self) -> String {
        let best = match &self.best {
            Some(Move::Neighborhood { remove, add, .. }) => {
                let rem: Vec<u64> = remove.iter().map(|&v| u64::from(v)).collect();
                let add: Vec<u64> = add.iter().map(|&v| u64::from(v)).collect();
                format!(
                    ",\"best\":1,\"rem\":{},\"add\":{}",
                    jsonio::render_u64_list(&rem),
                    jsonio::render_u64_list(&add)
                )
            }
            Some(_) => unreachable!("best responses are neighborhood moves"),
            None => ",\"best\":0".to_string(),
        };
        format!(
            "{{\"v\":{BR_FRONTIER_LAYOUT},\"agent\":{},\"instance\":{},\
             \"pos\":{},\"evals\":{}{best}}}",
            self.agent, self.instance, self.pos, self.evals
        )
    }
}

impl fmt::Display for BestResponseFrontier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl FromStr for BestResponseFrontier {
    type Err = GameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let field = |key: &str| {
            jsonio::u64_field(s, key).ok_or_else(|| GameError::Unsupported {
                reason: format!("malformed best-response frontier: missing or invalid {key:?}"),
            })
        };
        let layout = field("v")?;
        if layout != BR_FRONTIER_LAYOUT {
            return Err(GameError::Unsupported {
                reason: format!(
                    "best-response frontier has enumeration-layout version \
                     {layout}, this build speaks version {BR_FRONTIER_LAYOUT} \
                     — restart the scan instead of resuming"
                ),
            });
        }
        let agent = u32::try_from(field("agent")?).map_err(|_| GameError::Unsupported {
            reason: "malformed best-response frontier: agent overflows u32".into(),
        })?;
        let best = match field("best")? {
            0 => None,
            1 => {
                let list = |key: &str| -> Result<Vec<u32>, GameError> {
                    jsonio::u64_list_field(s, key)
                        .and_then(|xs| {
                            xs.into_iter()
                                .map(u32::try_from)
                                .collect::<Result<_, _>>()
                                .ok()
                        })
                        .ok_or_else(|| GameError::Unsupported {
                            reason: format!(
                                "malformed best-response frontier: missing or invalid {key:?}"
                            ),
                        })
                };
                Some(Move::Neighborhood {
                    center: agent,
                    remove: list("rem")?,
                    add: list("add")?,
                })
            }
            other => {
                return Err(GameError::Unsupported {
                    reason: format!(
                        "malformed best-response frontier: \"best\" must be 0 or 1, got {other}"
                    ),
                })
            }
        };
        Ok(BestResponseFrontier {
            agent,
            instance: field("instance")?,
            pos: field("pos")?,
            evals: field("evals")?,
            best,
        })
    }
}

/// The structured result of a metered best-response scan.
#[derive(Debug, Clone)]
pub enum BestResponseVerdict {
    /// The full candidate space was priced: `response` is the true
    /// argmin (or the no-move response if nothing improves).
    Optimal {
        /// The certified best response.
        response: BestResponse,
        /// Candidate evaluations across the whole resume chain.
        evals: u64,
        /// Candidates certified-skipped without pricing **by this call**
        /// (subtree skips plus leaf-filter skips; not carried across a
        /// resume chain — the frontier token stays layout-stable).
        skipped: u64,
        /// Wall-clock time of this call.
        elapsed: Duration,
    },
    /// The execution policy stopped the scan after it had already found
    /// an improving feasible move: `response` is the best over the
    /// certified prefix — usable as-is by load-shedding dynamics — and
    /// the frontier resumes toward the true optimum.
    ImprovedSoFar {
        /// The best response over the certified prefix.
        response: BestResponse,
        /// Resume token (carries the same best-so-far move).
        frontier: BestResponseFrontier,
        /// Candidates certified-skipped without pricing by this call.
        skipped: u64,
        /// Wall-clock time of this call.
        elapsed: Duration,
    },
    /// The execution policy stopped the scan before any improving move
    /// surfaced; everything before the frontier is certified
    /// non-improving (relative to the agent's current cost).
    Exhausted {
        /// Resume token.
        frontier: BestResponseFrontier,
        /// Candidates certified-skipped without pricing by this call.
        skipped: u64,
        /// Wall-clock time of this call.
        elapsed: Duration,
    },
}

impl BestResponseVerdict {
    /// The resume token, unless the scan completed.
    #[must_use]
    pub fn frontier(&self) -> Option<&BestResponseFrontier> {
        match self {
            BestResponseVerdict::Optimal { .. } => None,
            BestResponseVerdict::ImprovedSoFar { frontier, .. }
            | BestResponseVerdict::Exhausted { frontier, .. } => Some(frontier),
        }
    }

    /// The best move in hand (certified optimal only for `Optimal`).
    #[must_use]
    pub fn best(&self) -> Option<&Move> {
        match self {
            BestResponseVerdict::Optimal { response, .. }
            | BestResponseVerdict::ImprovedSoFar { response, .. } => response.best.as_ref(),
            BestResponseVerdict::Exhausted { .. } => None,
        }
    }

    /// Cumulative candidate evaluations across the resume chain.
    #[must_use]
    pub fn evals(&self) -> u64 {
        match self {
            BestResponseVerdict::Optimal { evals, .. } => *evals,
            BestResponseVerdict::ImprovedSoFar { frontier, .. }
            | BestResponseVerdict::Exhausted { frontier, .. } => frontier.evals,
        }
    }

    /// Candidates certified-skipped without pricing **by this call** —
    /// the subtree-skip and leaf-filter tallies the dynamics traces
    /// aggregate into per-trajectory visited fractions. Per-slice, not
    /// cumulative: frontiers do not serialize the counter, so a resumed
    /// chain sums the slices itself.
    #[must_use]
    pub fn skipped(&self) -> u64 {
        match self {
            BestResponseVerdict::Optimal { skipped, .. }
            | BestResponseVerdict::ImprovedSoFar { skipped, .. }
            | BestResponseVerdict::Exhausted { skipped, .. } => *skipped,
        }
    }
}

/// Computes agent `u`'s best feasible neighborhood move by exhaustive
/// enumeration (`2^{n−1}` candidates), under the default [`CheckBudget`].
///
/// # Errors
///
/// Returns [`GameError::CheckTooLarge`] when `2^{n−1}` exceeds the budget
/// and [`GameError::NodeOutOfRange`] for a bad agent id.
///
/// # Examples
///
/// ```
/// use bncg_core::{best_response, Alpha, Move};
/// use bncg_graph::generators;
///
/// // On a path the far end rewires towards the middle; its best feasible
/// // move strictly beats any single greedy change.
/// let g = generators::path(7);
/// let alpha = Alpha::integer(2)?;
/// let br = best_response(&g, alpha, 0)?;
/// assert!(br.best.is_some());
/// # Ok::<(), bncg_core::GameError>(())
/// ```
pub fn best_response(g: &Graph, alpha: Alpha, u: u32) -> Result<BestResponse, GameError> {
    let n = g.n();
    if u as usize >= n {
        return Err(GameError::NodeOutOfRange { node: u, n });
    }
    check_enumeration_budget(n, CheckBudget::default())?;
    best_response_in(&GameState::new(g.clone(), alpha), u, CheckBudget::default())
}

/// The legacy size guard shared by the compat wrapper and the engine
/// path: `2^{n−1}` candidates must fit the budget before any heavy work
/// starts (the metered path has no such guard — it scans anytime-style
/// and returns a resumable verdict instead).
pub(crate) fn check_enumeration_budget(n: usize, budget: CheckBudget) -> Result<(), GameError> {
    if n <= 1 {
        return Ok(());
    }
    let work = 1u128 << (n - 1);
    if work > u128::from(budget.max_evals) {
        return Err(GameError::CheckTooLarge {
            reason: format!(
                "best response enumerates 2^{} candidates, budget is {}",
                n - 1,
                budget.max_evals
            ),
        });
    }
    Ok(())
}

/// The structural representation limit shared by the direct and metered
/// scans: a position packs the `(addition mask, removal mask)` pair into
/// one `u64`, so the `n − 1` mask bits must fit — the same shape as the
/// solver's BNE limit. Without this check an oversized instance would
/// overflow the mask shifts instead of erroring.
fn check_mask_width(n: usize) -> Result<(), GameError> {
    if n > 64 {
        return Err(GameError::Unsupported {
            reason: format!(
                "best-response scans represent candidates as a packed \
                 64-bit (addition, removal) mask pair and support n ≤ 64; \
                 got n = {n} (use the sampled refuter for larger instances)"
            ),
        });
    }
    Ok(())
}

/// Engine-backed best response: the caller's persistent [`GameState`]
/// supplies the pre-move costs of every agent for free, so one activation
/// costs only the candidate evaluations themselves. This is the direct
/// unmetered path the perf gate measures as the metering-overhead
/// reference; the anytime surface ([`best_response_with_policy`]) drives
/// the identical scan under an active control.
///
/// # Errors
///
/// Returns [`GameError::CheckTooLarge`] when `2^{n−1}` exceeds the
/// budget, [`GameError::Unsupported`] past the structural `n ≤ 64` mask
/// limit (reachable only with explicit budgets above `2⁶³`), and
/// [`GameError::NodeOutOfRange`] for a bad agent id.
pub fn best_response_in(
    state: &GameState,
    u: u32,
    budget: CheckBudget,
) -> Result<BestResponse, GameError> {
    let n = state.n();
    if u as usize >= n {
        return Err(GameError::NodeOutOfRange { node: u, n });
    }
    if n <= 1 {
        return Ok(BestResponse {
            best: None,
            cost: state.cost(u),
        });
    }
    check_enumeration_budget(n, budget)?;
    check_mask_width(n)?;
    let ctl = ScanCtl::unbounded();
    let mut cl = CtlLocal::new(&ctl);
    let mut best = None;
    let (stopped, _, _) = scan_best_response(state, u, 0, &mut best, &ctl, &mut cl);
    debug_assert!(stopped.is_none(), "unbounded controls never stop");
    Ok(into_response(state, u, best))
}

/// Metered best response under an [`ExecPolicy`]: the scan runs through
/// the same poll protocol as the solver's stability checkers, so the
/// policy's eval budget, deadline (anchored at call time), and cancel
/// token stop it anytime-style with a resumable
/// [`BestResponseFrontier`]. `threads` is ignored — the scan is a single
/// enumeration unit whose argmin tie-break ("first in enumeration order
/// among equal minima") the dynamics trajectories depend on.
///
/// There is no *budget* guard on this path: an oversized agent scan
/// does partial work up to the policy's stop conditions instead of
/// refusing outright, which is exactly what
/// `round_robin::run_with_policy` needs for true anytime activations.
/// The structural `n ≤ 64` mask limit still applies (the same shape as
/// the solver's BNE limit).
///
/// # Errors
///
/// [`GameError::NodeOutOfRange`] for a bad agent id and
/// [`GameError::Unsupported`] for `n > 64`. Never
/// [`GameError::CheckTooLarge`].
pub fn best_response_with_policy(
    state: &GameState,
    u: u32,
    policy: &ExecPolicy,
) -> Result<BestResponseVerdict, GameError> {
    metered(state, u, policy, 0, None, 0)
}

/// Continues a stopped best-response scan from its frontier under
/// `policy`. The policy's stop conditions are granted afresh to this
/// slice (each call gets its own budget and deadline, like
/// [`crate::solver::StabilityQuery::resume`]); the returned verdict's
/// eval counts stay cumulative across the chain. A chain of resumed
/// slices returns the identical final move an uninterrupted
/// [`best_response_with_policy`] call would.
///
/// # Errors
///
/// [`GameError::Unsupported`] when the frontier was issued for a
/// different instance (graph, α, or cost model differ), names an out-of-range agent,
/// or carries a best-so-far move that does not apply to the state.
pub fn best_response_resume(
    state: &GameState,
    policy: &ExecPolicy,
    frontier: &BestResponseFrontier,
) -> Result<BestResponseVerdict, GameError> {
    if frontier.instance != state.fingerprint() {
        return Err(GameError::Unsupported {
            reason: "best-response frontier was issued for a different \
                     instance (graph, α, or cost model differ)"
                .into(),
        });
    }
    let u = frontier.agent;
    if u as usize >= state.n() {
        return Err(GameError::NodeOutOfRange {
            node: u,
            n: state.n(),
        });
    }
    // Re-price the carried best-so-far move so the resumed slice
    // compares candidates against exactly the cost the issuing slice
    // did (deterministic recomputation, not serialized state).
    let best = match &frontier.best {
        None => None,
        Some(mv) => {
            let g2 = mv
                .apply(state.graph())
                .map_err(|_| GameError::Unsupported {
                    reason: "best-response frontier carries a move that does \
                         not apply to this state"
                        .into(),
                })?;
            let mut buf = Vec::new();
            let cost = state.price_scalar(&g2, u, &mut buf);
            Some((mv.clone(), cost))
        }
    };
    metered(state, u, policy, frontier.pos, best, frontier.evals)
}

/// The shared metered driver behind the policy/resume entry points.
fn metered(
    state: &GameState,
    u: u32,
    policy: &ExecPolicy,
    start: u64,
    prior_best: Option<(Move, AgentCost)>,
    prior_evals: u64,
) -> Result<BestResponseVerdict, GameError> {
    let n = state.n();
    if u as usize >= n {
        return Err(GameError::NodeOutOfRange { node: u, n });
    }
    let started = Instant::now();
    if n <= 1 {
        return Ok(BestResponseVerdict::Optimal {
            response: BestResponse {
                best: None,
                cost: state.cost(u),
            },
            evals: prior_evals,
            skipped: 0,
            elapsed: started.elapsed(),
        });
    }
    check_mask_width(n)?;
    let shared = AtomicU64::new(0);
    let deadline = policy.deadline.map(|d| started + d);
    let ctl = ScanCtl::new(
        &shared,
        policy.eval_budget,
        deadline,
        policy.cancel.as_deref(),
    );
    let mut cl = CtlLocal::new(&ctl);
    let mut best = prior_best;
    let (stopped, evals, skipped) = scan_best_response(state, u, start, &mut best, &ctl, &mut cl);
    let evals = prior_evals + evals;
    let elapsed = started.elapsed();
    Ok(match stopped {
        None => BestResponseVerdict::Optimal {
            response: into_response(state, u, best),
            evals,
            skipped,
            elapsed,
        },
        Some(pos) => {
            let frontier = BestResponseFrontier {
                agent: u,
                instance: state.fingerprint(),
                pos,
                evals,
                best: best.as_ref().map(|(mv, _)| mv.clone()),
            };
            match best {
                Some((mv, cost)) => BestResponseVerdict::ImprovedSoFar {
                    response: BestResponse {
                        best: Some(mv),
                        cost,
                    },
                    frontier,
                    skipped,
                    elapsed,
                },
                None => BestResponseVerdict::Exhausted {
                    frontier,
                    skipped,
                    elapsed,
                },
            }
        }
    })
}

fn into_response(state: &GameState, u: u32, best: Option<(Move, AgentCost)>) -> BestResponse {
    match best {
        Some((mv, cost)) => BestResponse {
            best: Some(mv),
            cost,
        },
        None => BestResponse {
            best: None,
            cost: state.cost(u),
        },
    }
}

/// Scans agent `u`'s pruned candidate space in **addition-mask-major**
/// enumeration order (`pos = (add_mask << nb) | rem_mask`) from position
/// `start`, tracking the evolving argmin in `best` and polling `ctl`
/// anytime-style. Returns `(Some(next_pos), evals, skipped)` when the
/// control stopped the scan — every position strictly before `next_pos`
/// has been priced against `best` — or `(None, evals, skipped)` when the
/// space is complete; `skipped` counts the candidates certified away
/// without pricing (subtree skips plus leaf-filter skips).
///
/// Leaf evaluation is **batched on the word-parallel bitset substrate**:
/// the scan width is structurally ≤ 64, so the whole scratch state is one
/// [`BitsetGraph`]. The current addition class stays applied across its
/// run of consecutive leaves (addition-major order makes the run maximal)
/// and each surviving leaf only toggles its removal edges — `O(1)` word
/// flips — before pricing the center and the added partners through the
/// state's [`GameState::price_bits`] (frontier-BFS kernel routed through
/// the state's cost model). The scalar [`GameState::price_scalar`] path
/// remains the differential-test reference.
///
/// Positions are *generated* by a [`BranchScan`], not iterated: the
/// [`NeighborhoodOracle`] skips whole mask subtrees the pruning
/// inequalities kill — with the addition field in the high bits, an
/// entire addition class whose exact saving cap cannot pay for its
/// edges even at the friendliest removal count dies in **one probe**
/// instead of `2^{nb}` per-mask tests, which is what the round-robin
/// dynamics' activation loop spends most of its time on.
///
/// Addition-major order (unlike the BNE checker's removal-major order —
/// irrelevant here, since an argmin has no "first violation" to agree
/// on) keeps the inequality-3 saving cap a *streaming* computation: each
/// add set's cap is needed for exactly one run of consecutive leaves,
/// so an interrupted-and-resumed activation recomputes at most the one
/// in-progress cap instead of rematerializing the whole
/// [`CenterCapCache`](crate::candidates::CenterCapCache) a prior slice
/// had filled — which is what keeps the checkpoint-resume overhead of
/// anytime round-robin runs within the perf gate's ceiling.
///
/// The candidate layer's filters (leaf-level and subtree-level alike)
/// are order-preserving and only skip candidates proven no better than
/// the agent's *current* cost — hence no better than any evolving best —
/// and depend only on the state, never on `best`, so a
/// stopped-and-resumed chain replays the identical candidate stream
/// (including tie-breaks, which dynamics trajectories depend on).
fn scan_best_response(
    state: &GameState,
    u: u32,
    start: u64,
    best: &mut Option<(Move, AgentCost)>,
    ctl: &ScanCtl,
    cl: &mut CtlLocal,
) -> (Option<u64>, u64, u64) {
    let g = state.graph();
    let alpha = state.alpha();
    let old = state.costs();
    let neighbors: Vec<u32> = g.neighbors(u).to_vec();
    let pruner = NeighborhoodPruner::new(state);
    let (others, _) = pruner.filtered_partners(state, u);
    let nb = neighbors.len();
    let no = others.len();
    let total = 1u64 << (nb + no);
    if start >= total {
        return (None, 0, 0);
    }
    let removal_only_prunable = pruner.removal_only_prunable();
    let bounds_active = pruner.active();
    // The batched scratch state: the callers check the n ≤ 64 mask width
    // before scanning, so the bitset substrate always exists here.
    let mut bits = BitsetGraph::from_graph(g).expect("scan width checked: n ≤ 64");
    let mut removed: Vec<u32> = Vec::new();
    let mut added: Vec<u32> = Vec::new();
    let mut best_cost = best.as_ref().map_or(old[u as usize], |(_, c)| *c);
    let mut evals = 0u64;
    let mut skipped = 0u64;
    let mut oracle = NeighborhoodOracle::new(state, &pruner, u, &others, nb as u32, 0, nb as u32);
    let mut scan = BranchScan::new(start, total);
    // The addition class currently applied to the bitset scratch, with
    // its streaming inequality-3 cap. (Early returns may leave the add
    // edges applied; `bits` is function-local and dropped.)
    let mut cur_add = u64::MAX;
    let mut save_a = 0u64;
    loop {
        match scan.next(&mut oracle) {
            Step::Done => break,
            Step::Skipped { base, count } => {
                // The identity (position 0) was never a candidate.
                let dead = count - u64::from(base == 0);
                skipped += dead;
                if cl.tick_skipped(ctl, dead) {
                    return (Some(scan.cursor()), evals, skipped);
                }
            }
            Step::Leaf(pos) => {
                if pos == 0 {
                    continue;
                }
                let add_mask = pos >> nb;
                let rem_mask = pos & ((1u64 << nb) - 1);
                if add_mask != cur_add {
                    for &v in &added {
                        bits.remove_edge(u, v);
                    }
                    added.clear();
                    for (i, &v) in others.iter().enumerate() {
                        if add_mask >> i & 1 == 1 {
                            bits.add_edge(u, v);
                            added.push(v);
                        }
                    }
                    save_a = if add_mask != 0 && bounds_active {
                        oracle.class_cap(add_mask)
                    } else {
                        0
                    };
                    cur_add = add_mask;
                }
                if add_mask == 0 {
                    if removal_only_prunable {
                        skipped += 1;
                        if cl.tick_skipped(ctl, 1) {
                            return (Some(pos + 1), evals, skipped);
                        }
                        continue;
                    }
                } else if bounds_active
                    && pruner.center_class_prunable(
                        rem_mask.count_ones(),
                        add_mask.count_ones(),
                        save_a,
                    )
                {
                    skipped += 1;
                    if cl.tick_skipped(ctl, 1) {
                        return (Some(pos + 1), evals, skipped);
                    }
                    continue;
                }
                removed.clear();
                for (i, &v) in neighbors.iter().enumerate() {
                    if rem_mask >> i & 1 == 1 {
                        bits.remove_edge(u, v);
                        removed.push(v);
                    }
                }
                evals += 1;
                let mine = state.price_bits(&bits, u);
                let feasible = mine.better_than(&best_cost, alpha)
                    && added.iter().all(|&a| {
                        state
                            .price_bits(&bits, a)
                            .better_than(&old[a as usize], alpha)
                    });
                for &v in &removed {
                    bits.add_edge(u, v);
                }
                if feasible {
                    best_cost = mine;
                    *best = Some((
                        Move::Neighborhood {
                            center: u,
                            remove: removed.clone(),
                            add: added.clone(),
                        },
                        mine,
                    ));
                }
                if cl.tick_eval(ctl) {
                    return (Some(pos + 1), evals, skipped);
                }
            }
        }
    }
    (None, evals, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concepts;
    use crate::cost::agent_cost;
    use bncg_graph::generators;

    fn a(s: &str) -> Alpha {
        s.parse().unwrap()
    }

    #[test]
    fn no_best_response_exactly_when_bne() {
        let mut rng = bncg_graph::test_rng(55);
        for _ in 0..15 {
            let g = generators::random_connected(8, 0.3, &mut rng);
            for alpha in ["1", "2", "4"] {
                let alpha = a(alpha);
                let any_move =
                    (0..8u32).any(|u| best_response(&g, alpha, u).unwrap().best.is_some());
                let bne = concepts::bne::is_stable(&g, alpha).unwrap();
                assert_eq!(any_move, !bne, "best responses must characterize BNE");
            }
        }
    }

    #[test]
    fn best_response_dominates_first_violation() {
        // The best feasible move is at least as good for the mover as the
        // checker's first-found neighborhood violation.
        let g = generators::path(8);
        let alpha = a("2");
        for u in 0..8u32 {
            let br = best_response(&g, alpha, u).unwrap();
            if let Some(mv) = &br.best {
                let g2 = mv.apply(&g).unwrap();
                assert_eq!(agent_cost(&g2, u), br.cost);
                assert!(br.cost.better_than(&agent_cost(&g, u), alpha));
            }
        }
    }

    #[test]
    fn added_partners_always_consent() {
        let mut rng = bncg_graph::test_rng(56);
        for _ in 0..10 {
            let g = generators::random_tree(9, &mut rng);
            let alpha = a("3/2");
            for u in 0..9u32 {
                if let Some(mv) = best_response(&g, alpha, u).unwrap().best {
                    assert!(
                        crate::delta::move_improves_all(&g, alpha, &mv).unwrap(),
                        "best response must be a legal BNE-style move"
                    );
                }
            }
        }
    }

    #[test]
    #[allow(deprecated)] // the compat wrapper must keep the legacy guard
    fn budget_guard_fires() {
        let g = generators::path(40);
        assert!(matches!(
            best_response(&g, a("1"), 0),
            Err(GameError::CheckTooLarge { .. })
        ));
        assert!(matches!(
            crate::compat::best_response_with_budget(
                &generators::path(8),
                a("1"),
                0,
                CheckBudget::new(10)
            ),
            Err(GameError::CheckTooLarge { .. })
        ));
        assert!(matches!(
            best_response(&generators::path(3), a("1"), 9),
            Err(GameError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn stable_star_center_has_no_move() {
        let g = generators::star(8);
        let br = best_response(&g, a("2"), 0).unwrap();
        assert!(br.best.is_none());
        assert_eq!(br.cost, agent_cost(&g, 0));
    }

    #[test]
    fn metered_unbounded_matches_direct_path() {
        let mut rng = bncg_graph::test_rng(57);
        for _ in 0..8 {
            let g = generators::random_connected(9, 0.3, &mut rng);
            for alpha in ["1/2", "2", "9"] {
                let state = GameState::new(g.clone(), a(alpha));
                for u in 0..9u32 {
                    let direct = best_response_in(&state, u, CheckBudget::default()).unwrap();
                    let metered =
                        best_response_with_policy(&state, u, &ExecPolicy::default()).unwrap();
                    let BestResponseVerdict::Optimal { response, .. } = metered else {
                        panic!("an unbounded policy must complete the scan")
                    };
                    assert_eq!(response, direct, "u = {u}, α = {alpha}");
                }
            }
        }
    }

    #[test]
    fn budgeted_resume_chain_reaches_the_uninterrupted_move() {
        let g = generators::path(12);
        let alpha = a("2");
        let state = GameState::new(g, alpha);
        let uninterrupted = best_response_in(&state, 0, CheckBudget::default()).unwrap();
        let tight = ExecPolicy::default().with_eval_budget(1);
        let mut verdict = best_response_with_policy(&state, 0, &tight).unwrap();
        let mut slices = 1u32;
        let response = loop {
            match verdict {
                BestResponseVerdict::Optimal { response, .. } => break response,
                BestResponseVerdict::ImprovedSoFar { ref frontier, .. }
                | BestResponseVerdict::Exhausted { ref frontier, .. } => {
                    // JSON round-trip must be lossless mid-chain.
                    let parsed: BestResponseFrontier = frontier.to_json().parse().unwrap();
                    assert_eq!(&parsed, frontier);
                    verdict = best_response_resume(&state, &tight, &parsed).unwrap();
                    slices += 1;
                    assert!(slices < 100_000, "resume chain failed to terminate");
                }
            }
        };
        assert!(slices > 1, "a 1-eval budget must interrupt the P12 scan");
        assert_eq!(response, uninterrupted);
    }

    #[test]
    fn zero_deadline_stops_and_resumes_to_the_optimum() {
        // The star-16 center's scan walks 2¹⁵ − 1 positions (all pruned
        // on a tree, but pruned candidates still poll the clock), so a
        // zero deadline is guaranteed to trip before completion; the
        // resumed slice certifies the no-move optimum.
        let state = GameState::new(generators::star(16), a("2"));
        let tight = ExecPolicy::default().with_deadline(Duration::ZERO);
        let verdict = best_response_with_policy(&state, 0, &tight).unwrap();
        let frontier = verdict
            .frontier()
            .expect("a zero deadline must stop the star-center scan")
            .clone();
        assert!(frontier.best().is_none(), "the star center has no move");
        match best_response_resume(&state, &ExecPolicy::default(), &frontier).unwrap() {
            BestResponseVerdict::Optimal { response, .. } => assert!(response.best.is_none()),
            v => panic!("an unbounded resume must complete, got {v:?}"),
        }
    }

    #[test]
    fn mismatched_frontiers_are_rejected() {
        let state = GameState::new(generators::star(16), a("2"));
        let tight = ExecPolicy::default().with_deadline(Duration::ZERO);
        let verdict = best_response_with_policy(&state, 0, &tight).unwrap();
        let frontier = verdict.frontier().expect("zero deadline exhausts").clone();
        // Different α ⇒ different instance fingerprint.
        let other = GameState::new(generators::star(16), a("3"));
        assert!(matches!(
            best_response_resume(&other, &tight, &frontier),
            Err(GameError::Unsupported { .. })
        ));
        // Malformed tokens fail to parse instead of resuming garbage.
        assert!("{\"v\":1,\"agent\":0}"
            .parse::<BestResponseFrontier>()
            .is_err());
        assert!("nonsense".parse::<BestResponseFrontier>().is_err());
        // Layout-version mismatches are rejected at parse time.
        assert!(
            "{\"v\":9,\"agent\":0,\"instance\":1,\"pos\":0,\"evals\":0,\"best\":0}"
                .parse::<BestResponseFrontier>()
                .is_err()
        );
    }

    #[test]
    fn oversized_instances_error_structurally_not_by_overflow() {
        // n > 64 would overflow the packed 64-bit position masks; the
        // metered path (which has no budget guard) must refuse
        // structurally instead of panicking or wrapping the scan.
        let state = GameState::new(generators::path(70), a("2"));
        assert!(matches!(
            best_response_with_policy(&state, 0, &ExecPolicy::default()),
            Err(GameError::Unsupported { .. })
        ));
        // On the direct path the u128 budget guard already rejects every
        // n > 64 (2^{n−1} exceeds any u64 budget), even the maximal one.
        assert!(matches!(
            best_response_in(&state, 0, CheckBudget::new(u64::MAX)),
            Err(GameError::CheckTooLarge { .. })
        ));
    }

    #[test]
    fn cancel_token_stops_the_scan() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let state = GameState::new(generators::star(16), a("2"));
        let token = Arc::new(AtomicBool::new(true));
        let policy = ExecPolicy::default().with_cancel(token);
        let verdict = best_response_with_policy(&state, 0, &policy).unwrap();
        assert!(verdict.frontier().is_some(), "raised token must stop work");
    }
}
