//! Best responses in the bilateral game.
//!
//! The unilateral NCG has a textbook best response (pick the cheapest
//! target set); bilaterally an agent cannot force edges, so the natural
//! notion — used by the round-robin dynamics — is the **best feasible
//! neighborhood move**: among all moves "remove `R ⊆ S_u`, add `A`" whose
//! added partners all strictly consent (improve), the one minimizing `u`'s
//! own cost. This mirrors the BNE move set, so a state where no agent has
//! a feasible improving neighborhood move is exactly a BNE.
//!
//! Best responses are *optimization* queries (argmin over a move space),
//! not stability queries, so they keep their own entry points rather
//! than the [`crate::solver`] surface; the round-robin dynamics maps a
//! solver `ExecPolicy`'s eval budget onto the [`CheckBudget`] guard here
//! and polls the policy's deadline/cancel between activations.

use crate::alpha::Alpha;
use crate::candidates::{CenterCapCache, NeighborhoodPruner};
use crate::concepts::CheckBudget;
use crate::cost::{agent_cost_with_buf, AgentCost};
use crate::error::GameError;
use crate::moves::Move;
use crate::state::GameState;
use bncg_graph::Graph;

/// The outcome of a best-response computation for one agent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BestResponse {
    /// The best feasible improving move, if any exists.
    pub best: Option<Move>,
    /// The agent's cost after playing it (equals the current cost when
    /// `best` is `None`).
    pub cost: AgentCost,
}

/// Computes agent `u`'s best feasible neighborhood move by exhaustive
/// enumeration (`2^{n−1}` candidates), under the default [`CheckBudget`].
///
/// # Errors
///
/// Returns [`GameError::CheckTooLarge`] when `2^{n−1}` exceeds the budget
/// and [`GameError::NodeOutOfRange`] for a bad agent id.
///
/// # Examples
///
/// ```
/// use bncg_core::{best_response, Alpha, Move};
/// use bncg_graph::generators;
///
/// // On a path the far end rewires towards the middle; its best feasible
/// // move strictly beats any single greedy change.
/// let g = generators::path(7);
/// let alpha = Alpha::integer(2)?;
/// let br = best_response(&g, alpha, 0)?;
/// assert!(br.best.is_some());
/// # Ok::<(), bncg_core::GameError>(())
/// ```
pub fn best_response(g: &Graph, alpha: Alpha, u: u32) -> Result<BestResponse, GameError> {
    best_response_with_budget(g, alpha, u, CheckBudget::default())
}

/// [`best_response`] with an explicit work budget.
///
/// # Errors
///
/// Same as [`best_response`].
pub fn best_response_with_budget(
    g: &Graph,
    alpha: Alpha,
    u: u32,
    budget: CheckBudget,
) -> Result<BestResponse, GameError> {
    let n = g.n();
    if u as usize >= n {
        return Err(GameError::NodeOutOfRange { node: u, n });
    }
    check_enumeration_budget(n, budget)?;
    best_response_in(&GameState::new(g.clone(), alpha), u, budget)
}

/// The guard shared by the wrapper and the engine path: `2^{n−1}`
/// candidates must fit the budget before any heavy work starts.
fn check_enumeration_budget(n: usize, budget: CheckBudget) -> Result<(), GameError> {
    if n <= 1 {
        return Ok(());
    }
    let work = 1u128 << (n - 1);
    if work > u128::from(budget.max_evals) {
        return Err(GameError::CheckTooLarge {
            reason: format!(
                "best response enumerates 2^{} candidates, budget is {}",
                n - 1,
                budget.max_evals
            ),
        });
    }
    Ok(())
}

/// Engine-backed best response: the caller's persistent [`GameState`]
/// supplies the pre-move costs of every agent for free, so one activation
/// costs only the candidate evaluations themselves (round-robin dynamics
/// reuses one state across all activations and rounds).
///
/// # Errors
///
/// Returns [`GameError::CheckTooLarge`] when `2^{n−1}` exceeds the budget
/// and [`GameError::NodeOutOfRange`] for a bad agent id.
pub fn best_response_in(
    state: &GameState,
    u: u32,
    budget: CheckBudget,
) -> Result<BestResponse, GameError> {
    let g = state.graph();
    let n = g.n();
    if u as usize >= n {
        return Err(GameError::NodeOutOfRange { node: u, n });
    }
    if n <= 1 {
        return Ok(BestResponse {
            best: None,
            cost: state.cost(u),
        });
    }
    check_enumeration_budget(n, budget)?;
    let alpha = state.alpha();
    let old = state.costs();
    let neighbors: Vec<u32> = g.neighbors(u).to_vec();
    // The candidate layer's filters are all order-preserving and only skip
    // candidates proven no better than the *current* cost — hence no
    // better than any evolving best — so the chosen move (including tie
    // breaks, which dynamics trajectories depend on) matches the raw scan.
    let pruner = NeighborhoodPruner::new(state);
    let (others, _) = pruner.filtered_partners(state, u);
    let removal_only_prunable = pruner.removal_only_prunable();
    let bounds_active = pruner.active();
    let mut caps = CenterCapCache::default();
    caps.reset(others.len());
    let mut scratch = g.clone();
    let mut buf = Vec::new();
    let mut removed: Vec<u32> = Vec::new();
    let mut added: Vec<u32> = Vec::new();
    let mut best_cost = old[u as usize];
    let mut best_move: Option<Move> = None;
    for rem_mask in 0u64..1u64 << neighbors.len() {
        for add_mask in 0u64..1u64 << others.len() {
            if rem_mask == 0 && add_mask == 0 {
                continue;
            }
            if add_mask == 0 {
                if removal_only_prunable {
                    continue;
                }
            } else if bounds_active {
                let save_a = caps.get(&pruner, state, u, &others, add_mask);
                if pruner.center_class_prunable(
                    rem_mask.count_ones(),
                    add_mask.count_ones(),
                    save_a,
                ) {
                    continue;
                }
            }
            removed.clear();
            added.clear();
            for (i, &v) in neighbors.iter().enumerate() {
                if rem_mask >> i & 1 == 1 {
                    scratch.remove_edge(u, v).expect("neighbor edge");
                    removed.push(v);
                }
            }
            for (i, &v) in others.iter().enumerate() {
                if add_mask >> i & 1 == 1 {
                    scratch.add_edge(u, v).expect("non-neighbor pair");
                    added.push(v);
                }
            }
            let mine = agent_cost_with_buf(&scratch, u, &mut buf);
            let feasible = mine.better_than(&best_cost, alpha)
                && added.iter().all(|&a| {
                    agent_cost_with_buf(&scratch, a, &mut buf).better_than(&old[a as usize], alpha)
                });
            for &v in &removed {
                scratch.add_edge(u, v).expect("restore removed");
            }
            for &v in &added {
                scratch.remove_edge(u, v).expect("restore added");
            }
            if feasible {
                best_cost = mine;
                best_move = Some(Move::Neighborhood {
                    center: u,
                    remove: removed.clone(),
                    add: added.clone(),
                });
            }
        }
    }
    Ok(BestResponse {
        best: best_move,
        cost: best_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concepts;
    use crate::cost::agent_cost;
    use bncg_graph::generators;

    fn a(s: &str) -> Alpha {
        s.parse().unwrap()
    }

    #[test]
    fn no_best_response_exactly_when_bne() {
        let mut rng = bncg_graph::test_rng(55);
        for _ in 0..15 {
            let g = generators::random_connected(8, 0.3, &mut rng);
            for alpha in ["1", "2", "4"] {
                let alpha = a(alpha);
                let any_move =
                    (0..8u32).any(|u| best_response(&g, alpha, u).unwrap().best.is_some());
                let bne = concepts::bne::is_stable(&g, alpha).unwrap();
                assert_eq!(any_move, !bne, "best responses must characterize BNE");
            }
        }
    }

    #[test]
    fn best_response_dominates_first_violation() {
        // The best feasible move is at least as good for the mover as the
        // checker's first-found neighborhood violation.
        let g = generators::path(8);
        let alpha = a("2");
        for u in 0..8u32 {
            let br = best_response(&g, alpha, u).unwrap();
            if let Some(mv) = &br.best {
                let g2 = mv.apply(&g).unwrap();
                assert_eq!(agent_cost(&g2, u), br.cost);
                assert!(br.cost.better_than(&agent_cost(&g, u), alpha));
            }
        }
    }

    #[test]
    fn added_partners_always_consent() {
        let mut rng = bncg_graph::test_rng(56);
        for _ in 0..10 {
            let g = generators::random_tree(9, &mut rng);
            let alpha = a("3/2");
            for u in 0..9u32 {
                if let Some(mv) = best_response(&g, alpha, u).unwrap().best {
                    assert!(
                        crate::delta::move_improves_all(&g, alpha, &mv).unwrap(),
                        "best response must be a legal BNE-style move"
                    );
                }
            }
        }
    }

    #[test]
    fn budget_guard_fires() {
        let g = generators::path(40);
        assert!(matches!(
            best_response(&g, a("1"), 0),
            Err(GameError::CheckTooLarge { .. })
        ));
        assert!(matches!(
            best_response(&generators::path(3), a("1"), 9),
            Err(GameError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn stable_star_center_has_no_move() {
        let g = generators::star(8);
        let br = best_response(&g, a("2"), 0).unwrap();
        assert!(br.best.is_none());
        assert_eq!(br.cost, agent_cost(&g, 0));
    }
}
