//! Executable versions of the paper's bounds: closed-form PoA formulas for
//! each theorem and exact structural predicates for the key lemmas.
//!
//! The closed forms return `f64` — they are *reporting* quantities the
//! experiments plot measured ρ against. The lemma predicates, by contrast,
//! gate proofs and are evaluated **exactly** in integer arithmetic
//! (`ℓ(v) ≤ ℓ(u) + 2α/n` becomes `(ℓ(v) − ℓ(u))·n·den ≤ 2·num`).

use crate::alpha::Alpha;
use crate::cost::Ratio;
use crate::error::GameError;
use bncg_graph::{Graph, RootedTree};

/// Proposition 3.1: for connected `G` in RE and any node `u`,
/// `ρ(G) ≤ (α + dist(u)) / (α + n − 1)`. Returns the exact right-hand side.
#[must_use]
pub fn proposition_3_1_bound(alpha: Alpha, n: usize, dist_u: u64) -> Ratio {
    let num = i128::from(alpha.num());
    let den = i128::from(alpha.den());
    Ratio::new(num + den * i128::from(dist_u), num + den * (n as i128 - 1))
}

/// Corollary 3.2: `ρ(G) ≤ 1 + n²/α` for connected RE graphs.
#[must_use]
pub fn corollary_3_2_bound(alpha: Alpha, n: usize) -> Ratio {
    let num = i128::from(alpha.num());
    let den = i128::from(alpha.den());
    let n = n as i128;
    // 1 + n²·den/num
    Ratio::new(num + n * n * den, num)
}

/// Theorem 3.6: trees in BSwE satisfy `ρ(G) ≤ 2 + 2·log₂ α`.
#[must_use]
pub fn theorem_3_6_bound(alpha: Alpha) -> f64 {
    2.0 + 2.0 * alpha.as_f64().log2().max(0.0)
}

/// Theorem 3.10: the stretched-tree-star family achieves
/// `ρ(G) ≥ ¼·log₂ α − 17/8` in BGE.
#[must_use]
pub fn theorem_3_10_lower(alpha: Alpha) -> f64 {
    0.25 * alpha.as_f64().log2() - 17.0 / 8.0
}

/// Theorem 3.12(i): BNE lower bound `ρ ≥ (ε/168)·log₂ α − 3/28` for
/// `9η ≤ α ≤ η^{2−ε}`.
#[must_use]
pub fn theorem_3_12_i_lower(eps: f64, alpha: Alpha) -> f64 {
    eps / 168.0 * alpha.as_f64().log2() - 3.0 / 28.0
}

/// Theorem 3.12(ii): BNE lower bound `ρ ≥ ¼·ε·log₂ α − 9/8` for
/// `η^{1/2+ε} ≤ α ≤ η`.
#[must_use]
pub fn theorem_3_12_ii_lower(eps: f64, alpha: Alpha) -> f64 {
    0.25 * eps * alpha.as_f64().log2() - 9.0 / 8.0
}

/// Theorem 3.13: trees in BNE with `α ≤ √n` (and `n > 15`) have `ρ ≤ 4`.
#[must_use]
pub fn theorem_3_13_bound() -> f64 {
    4.0
}

/// Theorem 3.15: trees in 3-BSE have `ρ ≤ 25`.
#[must_use]
pub fn theorem_3_15_bound() -> f64 {
    25.0
}

/// Theorem 3.19: BSE with `α ≥ n·log₂ n` have `ρ ≤ 5`.
#[must_use]
pub fn theorem_3_19_bound() -> f64 {
    5.0
}

/// Theorem 3.20: BSE with `α ≤ n^{1−ε}` have `ρ ≤ 3 + 2/ε`.
#[must_use]
pub fn theorem_3_20_bound(eps: f64) -> f64 {
    3.0 + 2.0 / eps
}

/// Theorem 3.21: BSE in general have
/// `ρ ≤ 2 + log₂ log₂ n + 2·log₂ n / log₂ log₂ log₂ n`.
#[must_use]
pub fn theorem_3_21_bound(n: usize) -> f64 {
    let lg = (n as f64).log2();
    let lglg = lg.log2();
    let lglglg = lglg.log2();
    2.0 + lglg + 2.0 * lg / lglglg
}

/// The known PS bound `Θ(min{√α, n/√α})` (Corbo–Parkes upper, Demaine et
/// al. lower), as the upper-bound envelope the Table 1 baseline row is
/// compared against.
#[must_use]
pub fn ps_poa_envelope(alpha: Alpha, n: usize) -> f64 {
    let a = alpha.as_f64();
    let root = a.sqrt();
    root.min(n as f64 / root).max(1.0)
}

/// Lemma 3.18: in an almost complete `d`-ary tree every agent's cost is at
/// most `(d+1)·α + 2(n−1)·log_d n`.
#[must_use]
pub fn lemma_3_18_bound(d: usize, n: usize, alpha: Alpha) -> f64 {
    (d as f64 + 1.0) * alpha.as_f64() + 2.0 * (n as f64 - 1.0) * (n as f64).log(d as f64)
}

/// Lemma 3.3 (exact): in a BSwE tree rooted at a 1-median `r`, every `u`
/// has a `T_u`-1-median `v` with `ℓ(v) ≤ ℓ(u) + 2α/n`.
///
/// # Errors
///
/// Returns [`GameError::NotATree`] if `g` is not a tree.
pub fn lemma_3_3_holds(g: &Graph, alpha: Alpha) -> Result<bool, GameError> {
    let t = bncg_graph::root_at_median(g).map_err(|_| GameError::NotATree)?;
    let n = g.n() as i128;
    let two_num = 2 * i128::from(alpha.num());
    let den = i128::from(alpha.den());
    for u in 0..g.n() as u32 {
        let sub_nodes = t.subtree_nodes(u);
        let (sub, map) = g.induced_subgraph(&sub_nodes);
        let sub_tree = RootedTree::new(&sub, map[u as usize]).map_err(|_| GameError::NotATree)?;
        // Minimum layer among the subtree's 1-medians (mapped back).
        let min_layer = sub_tree
            .one_medians()
            .iter()
            .map(|&local| {
                let global = sub_nodes[local as usize];
                i128::from(t.layer(global))
            })
            .min()
            .expect("subtree has a median");
        // ℓ(v) ≤ ℓ(u) + 2α/n  ⟺  (ℓ(v) − ℓ(u))·n·den ≤ 2·num
        if (min_layer - i128::from(t.layer(u))) * n * den > two_num {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Lemma 3.4: in a BSwE tree rooted at a 1-median,
/// `depth(T_u) ≤ (1 + 2α/n)·log₂|T_u|` for every `u`.
/// Evaluated in `f64` with a `1e−9` slack (the bound itself is
/// transcendental; it gates no equilibrium decision).
///
/// # Errors
///
/// Returns [`GameError::NotATree`] if `g` is not a tree.
pub fn lemma_3_4_holds(g: &Graph, alpha: Alpha) -> Result<bool, GameError> {
    let t = bncg_graph::root_at_median(g).map_err(|_| GameError::NotATree)?;
    let n = g.n() as f64;
    let factor = 1.0 + 2.0 * alpha.as_f64() / n;
    for u in 0..g.n() as u32 {
        let size = f64::from(t.subtree_size(u));
        let depth = f64::from(t.subtree_depth(u));
        if depth > factor * size.log2() + 1e-9 {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Lemma 3.5 (exact): in a BSwE tree rooted at a 1-median, every `u` with
/// `ℓ(u) ≥ 2` has `|T_u| ≤ α/(ℓ(u) − 1)`.
///
/// # Errors
///
/// Returns [`GameError::NotATree`] if `g` is not a tree.
pub fn lemma_3_5_holds(g: &Graph, alpha: Alpha) -> Result<bool, GameError> {
    let t = bncg_graph::root_at_median(g).map_err(|_| GameError::NotATree)?;
    let num = i128::from(alpha.num());
    let den = i128::from(alpha.den());
    for u in 0..g.n() as u32 {
        let layer = i128::from(t.layer(u));
        if layer >= 2 {
            // |T_u|·(ℓ(u)−1)·den ≤ num
            if i128::from(t.subtree_size(u)) * (layer - 1) * den > num {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Lemma 3.14 (exact): in a 3-BSE tree rooted at a 1-median, every node has
/// at most one child `c` with `depth(T_c) > 2·⌈4α/n⌉ + 1`.
///
/// # Errors
///
/// Returns [`GameError::NotATree`] if `g` is not a tree.
pub fn lemma_3_14_holds(g: &Graph, alpha: Alpha) -> Result<bool, GameError> {
    let t = bncg_graph::root_at_median(g).map_err(|_| GameError::NotATree)?;
    let threshold = 2 * ceil_ratio(4 * alpha.num(), alpha.den() * g.n() as i64) + 1;
    for u in 0..g.n() as u32 {
        let deep = t
            .children(u)
            .iter()
            .filter(|&&c| i64::from(t.subtree_depth(c)) > threshold)
            .count();
        if deep > 1 {
            return Ok(false);
        }
    }
    Ok(true)
}

/// `⌈a/b⌉` for positive `b`.
fn ceil_ratio(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    a.div_euclid(b) + i64::from(a.rem_euclid(b) != 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concepts;
    use crate::cost::{agent_cost, social_cost_ratio};
    use bncg_graph::{enumerate, generators};

    fn a(s: &str) -> Alpha {
        s.parse().unwrap()
    }

    #[test]
    fn proposition_3_1_holds_on_enumerated_re_trees() {
        // For every small tree (trees are always in RE) and a price grid,
        // ρ(G) ≤ (α + dist(u))/(α + n − 1) for every node u.
        for n in 2..=8usize {
            for tree in enumerate::free_trees(n).unwrap() {
                for alpha in ["1", "2", "7/2", "12"] {
                    let alpha = a(alpha);
                    let rho = social_cost_ratio(&tree, alpha).unwrap();
                    for u in 0..n as u32 {
                        let bound = proposition_3_1_bound(alpha, n, agent_cost(&tree, u).dist);
                        assert!(rho <= bound, "Prop 3.1 violated (n={n}, α={alpha}, u={u})");
                    }
                }
            }
        }
    }

    #[test]
    fn corollary_3_2_dominates_proposition_3_1() {
        for n in [4usize, 7, 9] {
            for alpha in ["1", "5", "40"] {
                let alpha = a(alpha);
                // dist(u) < n² always, so Cor 3.2 ≥ Prop 3.1's bound.
                let cor = corollary_3_2_bound(alpha, n);
                let prop = proposition_3_1_bound(alpha, n, (n * n - 1) as u64);
                assert!(cor >= prop);
            }
        }
    }

    #[test]
    fn lemmas_3_3_to_3_5_hold_on_exhaustive_bswe_trees() {
        for n in 3..=8usize {
            for tree in enumerate::free_trees(n).unwrap() {
                for alpha in ["1", "2", "4", "10"] {
                    let alpha = a(alpha);
                    if concepts::bswe::is_stable(&tree, alpha) {
                        assert!(
                            lemma_3_3_holds(&tree, alpha).unwrap(),
                            "Lemma 3.3 violated (n={n}, α={alpha})"
                        );
                        assert!(
                            lemma_3_4_holds(&tree, alpha).unwrap(),
                            "Lemma 3.4 violated (n={n}, α={alpha})"
                        );
                        assert!(
                            lemma_3_5_holds(&tree, alpha).unwrap(),
                            "Lemma 3.5 violated (n={n}, α={alpha})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lemma_3_14_holds_on_exhaustive_3bse_trees() {
        for n in 3..=7usize {
            for tree in enumerate::free_trees(n).unwrap() {
                for alpha in ["1", "3", "9"] {
                    let alpha = a(alpha);
                    if concepts::kbse::find_violation(&tree, alpha, 3)
                        .unwrap()
                        .is_none()
                    {
                        assert!(
                            lemma_3_14_holds(&tree, alpha).unwrap(),
                            "Lemma 3.14 violated (n={n}, α={alpha})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lemma_3_14_detects_violations() {
        // A path is deep on both sides of its median: with tiny α the
        // threshold shrinks and both children of the median are too deep.
        let path = generators::path(11);
        assert!(!lemma_3_14_holds(&path, a("1")).unwrap());
    }

    #[test]
    fn lemma_3_18_bound_dominates_measured_cost() {
        for d in [2usize, 3, 5] {
            for n in [10usize, 50, 200] {
                let g = generators::almost_complete_dary_tree(d, n);
                for alpha in ["1", "10"] {
                    let alpha = a(alpha);
                    let bound = lemma_3_18_bound(d, n, alpha);
                    for u in 0..n as u32 {
                        let c = agent_cost(&g, u);
                        let value = alpha.as_f64() * f64::from(c.edges) + c.dist as f64;
                        assert!(
                            value <= bound + 1e-6,
                            "Lemma 3.18 violated (d={d}, n={n}, u={u})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn closed_forms_are_sane() {
        assert!((theorem_3_6_bound(a("1")) - 2.0).abs() < 1e-9);
        assert!(theorem_3_10_lower(a("1024")) < theorem_3_6_bound(a("1024")));
        assert_eq!(theorem_3_13_bound(), 4.0);
        assert_eq!(theorem_3_15_bound(), 25.0);
        assert_eq!(theorem_3_19_bound(), 5.0);
        assert!((theorem_3_20_bound(0.5) - 7.0).abs() < 1e-9);
        assert!(theorem_3_21_bound(1 << 20) > 2.0);
        assert!(ps_poa_envelope(a("100"), 1000) <= 10.0 + 1e-9);
        assert!(theorem_3_12_i_lower(1.0, Alpha::integer(1 << 30).unwrap()) > 0.0);
        assert!(theorem_3_12_ii_lower(0.5, a("4096")) > 0.0);
    }

    #[test]
    fn ceil_ratio_matches_definition() {
        assert_eq!(ceil_ratio(4, 2), 2);
        assert_eq!(ceil_ratio(5, 2), 3);
        assert_eq!(ceil_ratio(1, 3), 1);
        assert_eq!(ceil_ratio(0, 3), 0);
    }
}
