//! Candidate-space pruning for the exponential checkers.
//!
//! PR 1's incremental engine cut the *per-candidate* cost of stability
//! checking; this layer cuts the *number of candidates*. Every filter is
//! **exactness-preserving**: a candidate is skipped only when one of the
//! inequalities below proves no consenting agent set can strictly improve,
//! so the pruned checkers return the same stability verdict — and, where
//! enumeration order is preserved, the same witness — as raw enumeration.
//! The property suite in `tests/pruning.rs` asserts this against the
//! retained `*_reference` scans on seeded corpora.
//!
//! # The pruning inequalities
//!
//! All bounds are applied only from **connected** states (every cached
//! [`AgentCost`] has `unreachable == 0`); on disconnected states the
//! checkers fall back to raw enumeration. Costs compare
//! lexicographically, so a move that disconnects an agent that could
//! previously reach everything is never improving — each bound only has
//! to handle the connected-successor case.
//!
//! 1. **Distance floor (α-budget).** In a connected successor every agent
//!    still has `n − 1` targets at distance ≥ 1, so agent `x`'s distance
//!    sum can never drop below `n − 1` and its saving is at most
//!    `slack(x) = D(x) − (n − 1)`, where `D(x)` is its current distance
//!    sum. An agent that nets `g − l > 0` extra edges pays `α·(g − l)`
//!    more to buy, hence can only improve if `α·(g − l) < slack(x)`.
//!    [`EditSetPruner`] applies this to every agent whose consent a
//!    coalition/target-graph move requires.
//!
//! 2. **Partner two-hop bound (neighborhood moves).** Every edge a
//!    neighborhood move around `c` edits is incident to `c`. An added
//!    partner `a` gains exactly the edge `{a, c}`, and any strictly
//!    shorter path for `a` must use a new edge, hence passes through `c`:
//!    its length is ≥ 1 to `c` itself and ≥ 2 to every other node.
//!    Removals only lengthen paths that avoid the new edges. Therefore
//!    `d'(a, w) ≥ min(d(a, w), 2)` for `w ≠ c` and `d'(a, c) ≥ 1`, so
//!    `a`'s saving is at most
//!    `(d(a, c) − 1) + Σ_{w ∉ {a, c}} max(0, d(a, w) − 2)`.
//!    If `α` is at least that bound, `a` can never consent to `c` and
//!    every candidate adding `{a, c}` is pruned —
//!    [`NeighborhoodPruner::partner_may_consent`] shrinks the partner
//!    list, which shrinks the scan *exponentially* (the add masks range
//!    over the surviving partners only).
//!
//! 3. **Per-add-set center bound.** For a fixed added set `A` (all edges
//!    `{c, a}`, `a ∈ A`), `d'(c, w) ≥ min(d(c, w), 1 + min_{a∈A} d(a, w))`
//!    — a shortest path either avoids all new edges or leaves `c` through
//!    one of them. Summing gives a floor `LB_A(c)` and a saving cap
//!    `save_A = D(c) − LB_A(c)` that is independent of the removal set, so
//!    one `O(|A|·n)` computation ([`NeighborhoodPruner::center_add_cap`])
//!    prunes every removal mask with `|R| ≤ |A|` and
//!    `α·(|A| − |R|) ≥ save_A` across the whole `2^{|N(c)|}` inner loop.
//!
//! 4. **Pure removals.** With no additions, distances only grow, and each
//!    removed edge `{x, r}` forces `d'(x, r) ≥ 2`, so the remover's
//!    distance sum grows by at least the number of dropped edges: the cost
//!    change is ≥ `|R|·(1 − α)`, non-improving whenever `α ≤ 1`. On a
//!    **tree**, removing any nonempty edge set disconnects the graph and
//!    makes *every* agent lexicographically worse, so pure-removal
//!    candidates are pruned outright.
//!
//! 5. **Canonical-fingerprint dedup.** The k-BSE coalition scan generates
//!    the same edit set once per covering coalition (the removal subsets
//!    of `Γ = {hub, a, b}` are re-enumerated for every `{a, b}` pair, for
//!    example). The improving-endpoint verdict of an edit set is
//!    coalition-independent, so each canonical edit set is evaluated once
//!    and recalled by fingerprint — the same hash-the-canonical-form
//!    technique the round-robin dynamics uses for visited states, realized
//!    as a Zobrist XOR over per-(edge, role) keys so masks fold
//!    incrementally, and widened to 128 bits so a collision (which would
//!    *skip* a candidate) is beyond reach at any feasible scan size.
//!
//! 6. **Interior add bound with removal penalties.** All edges a
//!    coalition move creates lie inside the added set's endpoint set `Z`.
//!    On any strictly shorter `u`–`w` path in the successor, take the
//!    *last* new edge: it ends in some `z ∈ Z`, and the suffix after it
//!    uses only surviving old edges, so the path costs at least
//!    `1 + d(z, w) ≥ 1 + min_{z∈Z} d(z, w)`. Hence
//!    `d'(u, w) ≥ min(d(u, w), 1 + min_{z∈Z} d(z, w))`, and summing the
//!    positive parts gives a per-endpoint saving cap `cap_u`
//!    ([`coalition_member_cap`]) independent of the removal subset.
//!    Each removed *own-incident* edge `{u, x}` additionally pushes
//!    `d'(u, x)` from 1 to ≥ 2 (no other saving is counted at `x`, whose
//!    current distance is already minimal), so an endpoint gaining `g`
//!    edges and shedding `l` own edges improves only if
//!    `α·g − (α − 1)·l < cap_u`. [`add_endpoint_requirement`] solves this
//!    inequality per endpoint into a verdict the mask scans apply with
//!    one popcount per removal mask — a minimum (α > 1) or maximum
//!    (α < 1) own-incident removal count, a whole-subspace kill, or no
//!    constraint. At `α = 1` the `l` term vanishes and `g ≥ cap_u` kills
//!    the entire class, which fully prunes diameter-2 instances.
//!
//! # From enumeration-bound to evaluation-bound
//!
//! When this layer landed (PR 2) the exact scans were left
//! *enumeration-bound*: the inequalities rejected ~100% of the
//! candidates on stable instances, but the scan loops still iterated
//! every surviving mask to apply the per-candidate tests — a star hub
//! alone owns `2^{n−1}` pure-removal masks, all skipped one by one.
//! The branch-and-bound [`generator`](crate::generator) removed that
//! bound: the same inequalities, relaxed to subtree worst cases (caps
//! are monotone in the added set; removal counts take the
//! least-prunable end of their range), kill whole aligned mask ranges
//! in `O(1)` before they are materialized, and only surviving leaves
//! reach the exact per-candidate tests below. That is what lifted the
//! exact BNE path from the old `n ≤ 21` enumeration guard to the
//! structural `n ≤ 64` mask limit — past it, cost is governed by the
//! *evaluated* candidates, which the solver's budgets meter.
//!
//! The [`CandidateStats`] counters make the effect measurable: the
//! `pruning` bench and the analysis ablations record the skipped
//! fraction and the generator's visited fraction per instance, and
//! every [`crate::solver::Verdict`] carries the evaluated/pruned split
//! of the scan that produced it (the solver drives exactly these
//! pruned scans — budgets meter the *evaluated* candidates, never the
//! pruned ones).

use crate::alpha::Alpha;
use crate::cost::AgentCost;
use crate::cost_model::{filter_sound, CostModelSpec, FilterId};
use crate::state::GameState;
use bncg_graph::DistanceMatrix;

/// Counters for one pruned candidate scan: how much of the raw move space
/// was skipped without evaluation, and why.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CandidateStats {
    /// Size of the raw (unpruned) candidate space the scan covered.
    pub generated: u64,
    /// Candidates proven non-improving by an inequality and skipped.
    pub pruned: u64,
    /// Candidates skipped because an identical edit set was already
    /// evaluated (k-BSE coalition overlap).
    pub deduped: u64,
    /// Candidates actually priced by the engine.
    pub evaluated: u64,
    /// Enumeration steps the branch-and-bound
    /// [`generator`](crate::generator) took: surviving leaves emitted
    /// plus dead subtrees skipped whole. On a dense (non-generated)
    /// scan this stays 0; on a generated scan,
    /// `visited / generated` is the fraction of the raw mask space the
    /// scan actually had to touch — the `ci_gate` `generator_vs_dense`
    /// kernel bounds it at 1% on the pinned stable instances.
    pub visited: u64,
}

impl CandidateStats {
    /// Total candidates skipped (pruned + deduplicated).
    #[must_use]
    pub fn skipped(&self) -> u64 {
        self.pruned + self.deduped
    }

    /// Fraction of the raw space skipped, in `[0, 1]`.
    #[must_use]
    pub fn skipped_fraction(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.skipped() as f64 / self.generated as f64
        }
    }

    /// Accumulates another scan's counters (parallel shards, sweeps).
    pub fn merge(&mut self, other: &CandidateStats) {
        self.generated += other.generated;
        self.pruned += other.pruned;
        self.deduped += other.deduped;
        self.evaluated += other.evaluated;
        self.visited += other.visited;
    }
}

/// Shared precomputation for pruning center-based (neighborhood) scans:
/// one pass over the cached distance matrix yields, per agent, the
/// distance sum, the distance floor slack, and the two-hop spread used by
/// the partner bound.
#[derive(Debug)]
pub struct NeighborhoodPruner {
    alpha: Alpha,
    /// Whether every agent reaches every other **and** the state's cost
    /// model is one inequalities 2/3/4 are proven for
    /// ([`filter_sound`]) — the gate for all bounds.
    active: bool,
    is_tree: bool,
    alpha_le_one: bool,
    /// `spread2[x] = Σ_w max(0, d(x, w) − 2)` (inequality 2).
    spread2: Vec<u64>,
}

impl NeighborhoodPruner {
    /// Builds the pruner from a state's cached matrix and costs: `O(n²)`.
    /// Consults the model-soundness capability: under a cost model the
    /// neighborhood bounds are not proven for, the pruner constructs
    /// inactive and the scan runs filter-free.
    #[must_use]
    pub fn new(state: &GameState) -> Self {
        let n = state.n();
        let connected = state.costs().iter().all(|c| c.unreachable == 0);
        let active = connected && filter_sound(FilterId::NeighborhoodBounds, state.cost_model());
        let mut spread2 = Vec::with_capacity(n);
        for u in 0..n as u32 {
            let s2 = if active {
                state
                    .distances()
                    .row(u)
                    .iter()
                    .map(|&d| u64::from(d.saturating_sub(2)))
                    .sum()
            } else {
                0
            };
            spread2.push(s2);
        }
        let alpha = state.alpha();
        NeighborhoodPruner {
            alpha,
            active,
            is_tree: state.is_tree(),
            alpha_le_one: alpha.cmp_ratio(1, 1) != std::cmp::Ordering::Greater,
            spread2,
        }
    }

    /// Whether the bounds may be applied at all (connected state, and a
    /// cost model the inequalities are proven for).
    #[must_use]
    pub fn active(&self) -> bool {
        self.active
    }

    /// Inequality 2: can `partner` ever strictly improve from gaining the
    /// single edge to `center` under a neighborhood move around `center`?
    /// `false` is a proof of impossibility; `true` is no claim.
    #[must_use]
    pub fn partner_may_consent(&self, state: &GameState, partner: u32, center: u32) -> bool {
        if !self.active {
            return true;
        }
        let d_pc = u64::from(state.distances().dist(partner, center));
        // spread2 counts the center term max(0, d(p,c) − 2); the exact cap
        // for the center target is d(p,c) − 1, so add the difference.
        let cap = self.spread2[partner as usize] - d_pc.saturating_sub(2) + d_pc.saturating_sub(1);
        // partner nets exactly one extra edge: improvement needs α·1 < cap.
        self.alpha.times_lt(1, cap)
    }

    /// The partner list for `center` with provably non-consenting nodes
    /// removed (relative order preserved), plus the number dropped.
    #[must_use]
    pub fn filtered_partners(&self, state: &GameState, center: u32) -> (Vec<u32>, usize) {
        let g = state.graph();
        let raw: Vec<u32> = (0..g.n() as u32)
            .filter(|&v| v != center && !g.has_edge(center, v))
            .collect();
        let before = raw.len();
        let kept: Vec<u32> = raw
            .into_iter()
            .filter(|&v| self.partner_may_consent(state, v, center))
            .collect();
        let dropped = before - kept.len();
        (kept, dropped)
    }

    /// Inequality 4: are all pure-removal candidates non-improving from
    /// this state (`α ≤ 1`, or a tree where any removal disconnects)?
    #[must_use]
    pub fn removal_only_prunable(&self) -> bool {
        self.active && (self.alpha_le_one || self.is_tree)
    }

    /// Inequality 3: the removal-independent cap `save_A` on the center's
    /// distance saving for the added set `A` (`O(|A|·n)`).
    #[must_use]
    pub fn center_add_cap(&self, state: &GameState, center: u32, added: &[u32]) -> u64 {
        debug_assert!(self.active);
        let dist = state.distances();
        let row_c = dist.row(center);
        let mut save = 0u64;
        for (w, &dc) in row_c.iter().enumerate() {
            let dc = u64::from(dc);
            let via = added
                .iter()
                .map(|&a| 1 + u64::from(dist.dist(a, w as u32)))
                .min()
                .unwrap_or(u64::MAX);
            if via < dc {
                save += dc - via;
            }
        }
        save
    }

    /// Whether a `(|R| = nr, |A| = na)` candidate around a center with add
    /// cap `save_a` is proven non-improving for the center: the center
    /// pays `α` per added edge, recoups `α` but loses ≥ 1 distance per
    /// removed own edge, and can save at most `save_a` distance — so it
    /// improves only if `α·na − (α − 1)·nr < save_a` (inequality 6's
    /// specialization to neighborhood moves).
    #[must_use]
    pub fn center_class_prunable(&self, nr: u32, na: u32, save_a: u64) -> bool {
        if !self.active {
            return false;
        }
        let num = i128::from(self.alpha.num());
        let den = i128::from(self.alpha.den());
        // α·na − (α−1)·nr < save_a, multiplied through by den.
        num * i128::from(na) - (num - den) * i128::from(nr) >= den * i128::from(save_a)
    }
}

/// Per-add-mask memo of [`NeighborhoodPruner::center_add_cap`], shared by
/// the BNE checker and `best_response` so the inequality-3 pruning logic
/// has exactly one implementation. Dense table below 2²⁰ masks; sparse
/// map above, so the budget-maximal partner counts (up to 2²⁵ masks)
/// never pre-allocate gigabytes for scans that visit few classes.
#[derive(Debug, Default)]
pub struct CenterCapCache {
    dense: Vec<u64>,
    sparse: std::collections::HashMap<u64, u64>,
    use_dense: bool,
    added: Vec<u32>,
}

impl CenterCapCache {
    const DENSE_BITS: usize = 20;
    const UNSET: u64 = u64::MAX;

    /// Clears the memo for a new center with `partner_count` partners.
    pub fn reset(&mut self, partner_count: usize) {
        self.use_dense = partner_count <= Self::DENSE_BITS;
        self.dense.clear();
        self.sparse.clear();
        if self.use_dense {
            self.dense.resize(1usize << partner_count, Self::UNSET);
        }
    }

    /// The memoized saving cap for the partners selected by `add_mask`
    /// (computed once per distinct mask via
    /// [`NeighborhoodPruner::center_add_cap`]).
    pub fn get(
        &mut self,
        pruner: &NeighborhoodPruner,
        state: &GameState,
        center: u32,
        partners: &[u32],
        add_mask: u64,
    ) -> u64 {
        if self.use_dense {
            let slot = self.dense[add_mask as usize];
            if slot != Self::UNSET {
                return slot;
            }
        } else if let Some(&cap) = self.sparse.get(&add_mask) {
            return cap;
        }
        self.added.clear();
        for (i, &v) in partners.iter().enumerate() {
            if add_mask >> i & 1 == 1 {
                self.added.push(v);
            }
        }
        let cap = pruner.center_add_cap(state, center, &self.added);
        if self.use_dense {
            self.dense[add_mask as usize] = cap;
        } else {
            self.sparse.insert(add_mask, cap);
        }
        cap
    }
}

/// Pruning for arbitrary edit sets (coalition moves, BSE target graphs):
/// the distance-floor bound per required consenter and the pure-removal
/// rules, computed from per-agent edge deltas in `O(|edits|)`.
#[derive(Debug)]
pub struct EditSetPruner {
    alpha: Alpha,
    /// Connected state **and** a cost model inequalities 1/4/6 are
    /// proven for ([`filter_sound`]).
    active: bool,
    is_tree: bool,
    alpha_le_one: bool,
    slack: Vec<u64>,
    /// Scratch: net gained/lost edge counts, reset per edit set via the
    /// touched list.
    gained: Vec<u32>,
    lost: Vec<u32>,
    touched: Vec<u32>,
}

impl EditSetPruner {
    /// Builds the pruner from the pre-move costs (`costs[x].dist` is the
    /// distance sum `D(x)` — which is only the case under a
    /// distance-linear `model`; the soundness capability deactivates
    /// the bounds otherwise).
    #[must_use]
    pub fn new(alpha: Alpha, costs: &[AgentCost], is_tree: bool, model: CostModelSpec) -> Self {
        let n = costs.len();
        let connected = costs.iter().all(|c| c.unreachable == 0);
        let active = connected && filter_sound(FilterId::EditSetBounds, model);
        let floor = n.saturating_sub(1) as u64;
        EditSetPruner {
            alpha,
            active,
            is_tree,
            alpha_le_one: alpha.cmp_ratio(1, 1) != std::cmp::Ordering::Greater,
            slack: costs.iter().map(|c| c.dist.saturating_sub(floor)).collect(),
            gained: vec![0; n],
            lost: vec![0; n],
            touched: Vec::new(),
        }
    }

    /// Convenience constructor from a state.
    #[must_use]
    pub fn from_state(state: &GameState) -> Self {
        EditSetPruner::new(
            state.alpha(),
            state.costs(),
            state.is_tree(),
            state.cost_model(),
        )
    }

    /// Whether the bounds may be applied at all (connected state, and a
    /// cost model the inequalities are proven for).
    #[must_use]
    pub fn active(&self) -> bool {
        self.active
    }

    /// Inequality 4: are all pure-removal edit sets non-improving from
    /// this state (`α ≤ 1`, or a tree where any removal disconnects)?
    #[must_use]
    pub fn removal_only_prunable(&self) -> bool {
        self.active && (self.alpha_le_one || self.is_tree)
    }

    /// Inequality 1 for one agent, given its net edge delta: `true` is
    /// a proof the agent cannot strictly improve under any move with
    /// that delta; `false` is no claim. Public so the generator's
    /// subtree oracles share **this** decision (applied to their
    /// worst-case deltas) instead of re-implementing the arithmetic —
    /// the oracle kills must stay a subset of this filter's skips, and
    /// one implementation cannot drift from itself.
    #[must_use]
    pub fn agent_cannot_improve(&self, x: u32, gained: u32, lost: u32) -> bool {
        gained > lost
            && !self
                .alpha
                .times_lt(u64::from(gained - lost), self.slack[x as usize])
    }

    /// Whether the edit set `(rem, add)` is proven non-improving for every
    /// legal consenting set: some added edge has an endpoint that cannot
    /// improve, some removed edge has no endpoint that could improve, or
    /// the pure-removal rules apply. Exactness-preserving (see the
    /// [module docs](self)); `false` is no claim.
    pub fn prunable(&mut self, rem: &[(u32, u32)], add: &[(u32, u32)]) -> bool {
        if !self.active {
            return false;
        }
        if add.is_empty() && !rem.is_empty() && (self.alpha_le_one || self.is_tree) {
            return true;
        }
        for &u in &self.touched {
            self.gained[u as usize] = 0;
            self.lost[u as usize] = 0;
        }
        self.touched.clear();
        for &(u, v) in add {
            self.gained[u as usize] += 1;
            self.gained[v as usize] += 1;
            self.touched.push(u);
            self.touched.push(v);
        }
        for &(u, v) in rem {
            self.lost[u as usize] += 1;
            self.lost[v as usize] += 1;
            self.touched.push(u);
            self.touched.push(v);
        }
        // Every endpoint of an added edge must consent.
        for &(u, v) in add {
            for x in [u, v] {
                if self.agent_cannot_improve(x, self.gained[x as usize], self.lost[x as usize]) {
                    return true;
                }
            }
        }
        // Every removed edge needs at least one endpoint that improves.
        for &(u, v) in rem {
            let dead = [u, v].into_iter().all(|x| {
                self.agent_cannot_improve(x, self.gained[x as usize], self.lost[x as usize])
            });
            if dead {
                return true;
            }
        }
        false
    }
}

/// SplitMix64 finalizer: the key generator behind the Zobrist
/// fingerprints (well-distributed, stateless, cheap).
fn splitmix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The canonical 128-bit Zobrist key of one edit: an edge (unordered) in
/// the removed or added role. Edit-set fingerprints are XORs of edit keys,
/// so they are order-independent by construction and mask scans can fold
/// them bit by bit.
#[must_use]
pub fn edit_key(u: u32, v: u32, added: bool) -> u128 {
    let id = (u64::from(u.min(v)) << 33) | (u64::from(u.max(v)) << 1) | u64::from(added);
    (u128::from(splitmix(id ^ 0x5EED_CAFE_F00D_BA5E)) << 64)
        | u128::from(splitmix(id ^ 0x0BAD_C0DE_DEAD_BEA7))
}

/// A canonical 128-bit fingerprint of an edit set (inequality 5's dedup
/// key; see the [module docs](self) on collision safety). Edit sets never
/// repeat an edge, so the XOR fold cannot self-cancel.
#[must_use]
pub fn edit_fingerprint(rem: &[(u32, u32)], add: &[(u32, u32)]) -> u128 {
    let mut fp = 0u128;
    for &(u, v) in rem {
        fp ^= edit_key(u, v, false);
    }
    for &(u, v) in add {
        fp ^= edit_key(u, v, true);
    }
    fp
}

/// Inequality 6 support: `out[w] = min_{z∈nodes} d(z, w)`, the distance
/// profile of an added set's endpoints, computed in `O(|nodes|·n)`.
pub fn coalition_min_rows(dist: &DistanceMatrix, nodes: &[u32], out: &mut Vec<u32>) {
    out.clear();
    out.resize(dist.n(), u32::MAX);
    for &z in nodes {
        for (w, &d) in dist.row(z).iter().enumerate() {
            if d < out[w] {
                out[w] = d;
            }
        }
    }
}

/// Inequality 6: the removal-independent cap on endpoint `u`'s distance
/// saving under any move whose added edges all have their endpoints in
/// the profiled node set (see [`coalition_min_rows`]). Only meaningful on
/// connected states.
#[must_use]
pub fn coalition_member_cap(dist: &DistanceMatrix, u: u32, min_profile: &[u32]) -> u64 {
    let mut cap = 0u64;
    for (w, &d) in dist.row(u).iter().enumerate() {
        let floor = u64::from(min_profile[w]).saturating_add(1);
        let d = u64::from(d);
        if floor < d {
            cap += d - floor;
        }
    }
    cap
}

/// The per-endpoint verdict of inequality 6, resolved against a removal
/// subspace (see [`add_endpoint_requirement`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointRequirement {
    /// No removal subset makes the endpoint improve: the whole class dies.
    Dead,
    /// Improvement requires at least this many own-incident removals.
    MinIncident(u32),
    /// Improvement requires at most this many own-incident removals.
    MaxIncident(u32),
    /// The inequality constrains nothing in this class.
    Free,
}

/// Solves inequality 6 for one added-edge endpoint: the endpoint gains
/// `gained ≥ 1` edges, can shed at most `incident_removable` own edges,
/// and improves only if `α·gained − (α − 1)·l < cap` for its own-removal
/// count `l`. Returns the strongest constraint on `l` the inequality
/// supports — callers apply it to removal masks with one popcount.
#[must_use]
pub fn add_endpoint_requirement(
    alpha: Alpha,
    gained: u32,
    cap: u64,
    incident_removable: u32,
) -> EndpointRequirement {
    let num = i128::from(alpha.num());
    let den = i128::from(alpha.den());
    let g = i128::from(gained);
    let cap = i128::from(cap);
    let slope = num - den; // sign of (α − 1), scaled by den
    if slope > 0 {
        // α > 1: own removals help; need l > (num·g − den·cap)/slope.
        let excess = num * g - den * cap;
        if excess < 0 {
            return EndpointRequirement::Free;
        }
        let l_min = excess / slope + 1;
        if l_min > i128::from(incident_removable) {
            EndpointRequirement::Dead
        } else {
            EndpointRequirement::MinIncident(l_min as u32)
        }
    } else if slope == 0 {
        // α = 1: removals are cost-neutral; need gained < cap outright.
        if g >= cap {
            EndpointRequirement::Dead
        } else {
            EndpointRequirement::Free
        }
    } else {
        // α < 1: own removals hurt; need l < (den·cap − num·g)/(−slope).
        let room = den * cap - num * g;
        if room <= 0 {
            return EndpointRequirement::Dead;
        }
        let l_max = (room - 1) / (-slope);
        if l_max >= i128::from(incident_removable) {
            EndpointRequirement::Free
        } else {
            EndpointRequirement::MaxIncident(l_max as u32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moves::Move;
    use bncg_graph::generators;

    fn a(s: &str) -> Alpha {
        s.parse().unwrap()
    }

    #[test]
    fn stats_fractions() {
        let mut s = CandidateStats {
            generated: 100,
            pruned: 30,
            deduped: 20,
            evaluated: 50,
            visited: 60,
        };
        assert_eq!(s.skipped(), 50);
        assert!((s.skipped_fraction() - 0.5).abs() < 1e-12);
        s.merge(&CandidateStats::default());
        assert_eq!(s.generated, 100);
        assert_eq!(CandidateStats::default().skipped_fraction(), 0.0);
    }

    /// Inequality 2 is sound: a pruned partner never consents to any
    /// neighborhood move around the center, exhaustively verified.
    #[test]
    fn partner_filter_is_sound_exhaustively() {
        let mut rng = bncg_graph::test_rng(0xF117);
        for _ in 0..12 {
            let g = generators::random_connected(8, 0.25, &mut rng);
            for alpha in ["1/2", "1", "2", "8"] {
                let state = GameState::new(g.clone(), a(alpha));
                let pruner = NeighborhoodPruner::new(&state);
                let mut ev = state.evaluator();
                for center in 0..8u32 {
                    for partner in 0..8u32 {
                        if partner == center || g.has_edge(center, partner) {
                            continue;
                        }
                        if pruner.partner_may_consent(&state, partner, center) {
                            continue;
                        }
                        // Pruned: every move adding {center, partner} must
                        // fail the partner's consent. Scan all of them.
                        let neighbors: Vec<u32> = g.neighbors(center).to_vec();
                        for rem_mask in 0u64..1 << neighbors.len() {
                            let remove: Vec<u32> = neighbors
                                .iter()
                                .enumerate()
                                .filter(|(i, _)| rem_mask >> i & 1 == 1)
                                .map(|(_, &v)| v)
                                .collect();
                            let mv = Move::Neighborhood {
                                center,
                                remove,
                                add: vec![partner],
                            };
                            let d = ev.evaluate(&mv).unwrap();
                            let pd = d.cost_after(partner).unwrap();
                            assert!(
                                !pd.better_than(&state.cost(partner), state.alpha()),
                                "pruned partner {partner} consented to {mv} at α = {alpha}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Inequality 1/4 soundness on arbitrary edit sets: a prunable edit
    /// set admits no coalition whose members all strictly improve.
    #[test]
    fn edit_set_pruner_is_sound() {
        let mut rng = bncg_graph::test_rng(0xF118);
        for _ in 0..15 {
            let g = generators::random_connected(7, 0.3, &mut rng);
            for alpha in ["1/2", "1", "3", "12"] {
                let state = GameState::new(g.clone(), a(alpha));
                let mut pruner = EditSetPruner::from_state(&state);
                let edges: Vec<(u32, u32)> = g.edges().collect();
                let non_edges: Vec<(u32, u32)> = g.non_edges().collect();
                let mut ev = state.evaluator();
                for rmask in 0u64..1 << edges.len().min(4) {
                    for amask in 0u64..1 << non_edges.len().min(3) {
                        let rem: Vec<(u32, u32)> = edges
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| rmask >> i & 1 == 1)
                            .map(|(_, &e)| e)
                            .collect();
                        let add: Vec<(u32, u32)> = non_edges
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| amask >> i & 1 == 1)
                            .map(|(_, &e)| e)
                            .collect();
                        if rem.is_empty() && add.is_empty() {
                            continue;
                        }
                        if !pruner.prunable(&rem, &add) {
                            continue;
                        }
                        // Pruned: the all-agents coalition covering the
                        // edits must contain a non-improving endpoint for
                        // every choice of consenters; check the strongest
                        // consequence — no endpoint-only coalition works.
                        let mut members: Vec<u32> = rem
                            .iter()
                            .chain(add.iter())
                            .flat_map(|&(u, v)| [u, v])
                            .collect();
                        members.sort_unstable();
                        members.dedup();
                        let mv = Move::Coalition {
                            members: members.clone(),
                            remove_edges: rem.clone(),
                            add_edges: add.clone(),
                        };
                        if let Ok(delta) = ev.evaluate(&mv) {
                            // Added endpoints must all improve and each
                            // removed edge needs an improving endpoint.
                            let improves = |x: u32| {
                                delta
                                    .cost_after(x)
                                    .is_some_and(|c| c.better_than(&state.cost(x), state.alpha()))
                            };
                            let viable = add.iter().all(|&(u, v)| improves(u) && improves(v))
                                && rem.iter().all(|&(u, v)| improves(u) || improves(v));
                            assert!(
                                !viable,
                                "pruned edit set rem {rem:?} add {add:?} is viable at α = {alpha}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn fingerprints_are_canonical_and_distinct() {
        let f1 = edit_fingerprint(&[(1, 2), (3, 4)], &[(0, 5)]);
        let f2 = edit_fingerprint(&[(2, 1), (4, 3)], &[(5, 0)]);
        assert_eq!(f1, f2, "endpoint order must not matter");
        let f3 = edit_fingerprint(&[(1, 2)], &[(3, 4), (0, 5)]);
        assert_ne!(f1, f3, "removal/addition role must matter");
        // Moving an edge between the rem and add roles changes the print.
        let f4 = edit_fingerprint(&[], &[(1, 2)]);
        let f5 = edit_fingerprint(&[(1, 2)], &[]);
        assert_ne!(f4, f5);
    }

    #[test]
    fn pure_removal_rules() {
        // Tree at α = 4 > 1: still prunable because removals disconnect.
        let tree = generators::random_tree(9, &mut bncg_graph::test_rng(5));
        let state = GameState::new(tree.clone(), a("4"));
        let mut pruner = EditSetPruner::from_state(&state);
        let e = tree.edges().next().unwrap();
        assert!(pruner.prunable(&[e], &[]));
        // Cycle at α = 1/2 ≤ 1: prunable by the α ≤ 1 rule.
        let cyc = generators::cycle(8);
        let state = GameState::new(cyc.clone(), a("1/2"));
        let mut pruner = EditSetPruner::from_state(&state);
        let e = cyc.edges().next().unwrap();
        assert!(pruner.prunable(&[e], &[]));
        // Cycle at α = 4 > 1: not provable by these rules.
        let state = GameState::new(cyc, a("4"));
        let mut pruner = EditSetPruner::from_state(&state);
        assert!(!pruner.prunable(&[e], &[]));
    }

    #[test]
    fn unsound_model_disables_inequality_bounds_but_not_dedup() {
        // Connected state, but priced under a model the inequality
        // proofs do not cover: every bound must report inactive, so the
        // scans run filter-free instead of silently wrong. The Zobrist
        // dedup is model-free and unaffected.
        use crate::cost_model::{filter_sound, CostModelSpec, FilterId, Utility};
        let g = generators::cycle(8);
        for model in [
            CostModelSpec::Generalized(Utility::Quadratic),
            CostModelSpec::AdversaryRobust,
        ] {
            let state = GameState::with_cost_model(g.clone(), a("1/2"), model);
            let pruner = NeighborhoodPruner::new(&state);
            assert!(!pruner.active(), "{model}: neighborhood bounds must be off");
            assert!(!pruner.removal_only_prunable());
            assert!(pruner.partner_may_consent(&state, 3, 0));
            let mut ep = EditSetPruner::from_state(&state);
            assert!(!ep.active(), "{model}: edit-set bounds must be off");
            let e = g.edges().next().unwrap();
            assert!(!ep.prunable(&[e], &[]));
            assert!(filter_sound(FilterId::EditDedup, model));
        }
        // The identity utility is the paper's objective on the generic
        // dispatch path: every proof carries over and the bounds stay on.
        let state = GameState::with_cost_model(
            g.clone(),
            a("1/2"),
            CostModelSpec::Generalized(Utility::Identity),
        );
        assert!(NeighborhoodPruner::new(&state).active());
        assert!(EditSetPruner::from_state(&state).active());
    }

    #[test]
    fn disconnected_states_disable_all_bounds() {
        let g = bncg_graph::Graph::from_edges(5, [(0, 1), (2, 3)]).unwrap();
        let state = GameState::new(g, a("100"));
        let pruner = NeighborhoodPruner::new(&state);
        assert!(!pruner.active());
        assert!(pruner.partner_may_consent(&state, 4, 0));
        assert!(!pruner.removal_only_prunable());
        let mut ep = EditSetPruner::from_state(&state);
        assert!(!ep.prunable(&[(0, 1)], &[]));
    }
}
