//! Small combinatorial helpers shared by the coalition checkers and the
//! experiment harness.

/// Iterates over all `k`-element subsets of `0..n` in lexicographic order.
///
/// # Examples
///
/// ```
/// use bncg_core::combinatorics::combinations;
///
/// let pairs: Vec<Vec<u32>> = combinations(4, 2).collect();
/// assert_eq!(pairs.len(), 6);
/// assert_eq!(pairs[0], vec![0, 1]);
/// assert_eq!(pairs[5], vec![2, 3]);
/// ```
pub fn combinations(n: usize, k: usize) -> Combinations {
    Combinations {
        n,
        k,
        state: None,
        done: k > n,
    }
}

/// Iterator type of [`combinations`].
#[derive(Debug, Clone)]
pub struct Combinations {
    n: usize,
    k: usize,
    state: Option<Vec<u32>>,
    done: bool,
}

impl Iterator for Combinations {
    type Item = Vec<u32>;

    fn next(&mut self) -> Option<Vec<u32>> {
        if self.done {
            return None;
        }
        match &mut self.state {
            None => {
                let first: Vec<u32> = (0..self.k as u32).collect();
                self.state = Some(first.clone());
                if self.k == 0 {
                    self.done = true;
                }
                Some(first)
            }
            Some(cur) => {
                // Find the rightmost index that can be incremented.
                let k = self.k;
                let n = self.n;
                let mut i = k;
                loop {
                    if i == 0 {
                        self.done = true;
                        return None;
                    }
                    i -= 1;
                    if cur[i] < (n - k + i) as u32 {
                        break;
                    }
                }
                cur[i] += 1;
                for j in i + 1..k {
                    cur[j] = cur[j - 1] + 1;
                }
                Some(cur.clone())
            }
        }
    }
}

/// Iterates over all subsets of `items` with size between `min_size` and
/// `max_size` (inclusive), materialized as vectors.
pub fn bounded_subsets<T: Copy>(
    items: &[T],
    min_size: usize,
    max_size: usize,
) -> impl Iterator<Item = Vec<T>> + '_ {
    let n = items.len();
    (min_size..=max_size.min(n)).flat_map(move |k| {
        combinations(n, k).map(move |idx| idx.iter().map(|&i| items[i as usize]).collect())
    })
}

/// `C(n, k)` with saturation, for budget accounting.
#[must_use]
pub fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result = 1u64;
    for i in 0..k {
        result = result.saturating_mul(n - i) / (i + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combination_counts() {
        assert_eq!(combinations(5, 0).count(), 1);
        assert_eq!(combinations(5, 2).count(), 10);
        assert_eq!(combinations(5, 5).count(), 1);
        assert_eq!(combinations(3, 4).count(), 0);
        assert_eq!(combinations(0, 0).count(), 1);
    }

    #[test]
    fn combinations_are_sorted_and_unique() {
        let all: Vec<Vec<u32>> = combinations(6, 3).collect();
        assert_eq!(all.len(), 20);
        for c in &all {
            assert!(c.windows(2).all(|w| w[0] < w[1]));
        }
        let mut dedup = all.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
    }

    #[test]
    fn bounded_subsets_sizes() {
        let items = [10, 20, 30];
        let subs: Vec<Vec<i32>> = bounded_subsets(&items, 1, 2).collect();
        // C(3,1) + C(3,2) = 3 + 3
        assert_eq!(subs.len(), 6);
        assert!(subs.iter().all(|s| (1..=2).contains(&s.len())));
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 0), 1);
        assert_eq!(binomial(4, 5), 0);
        assert_eq!(binomial(52, 5), 2_598_960);
    }
}
