//! Deprecated compatibility shims, consolidated in one place.
//!
//! The PR 3 solver redesign turned every exponential check into a
//! [`crate::solver::StabilityQuery`] under an
//! [`crate::solver::ExecPolicy`], and the per-concept budgeted/parallel
//! entry points that predate it became thin deprecated wrappers scattered
//! across `concepts::bne`, `concepts::kbse`, `concepts::bse`,
//! `best_response`, and `Concept` itself. This module is their single
//! retirement home: the wrappers behave exactly as before — including the
//! legacy **raw-space pre-guard** that refuses oversized instances with
//! [`GameError::CheckTooLarge`] before any work starts, which the solver
//! surface deliberately does not have (it scans anytime-style and returns
//! a resumable `Verdict::Exhausted` instead).
//!
//! # Removal policy
//!
//! Everything in this module is frozen: shims keep compiling and keep
//! their exact legacy semantics (guards, witnesses, panics) until the
//! next breaking release, at which point the whole module is deleted at
//! once. Nothing new is ever added here, and no other module may depend
//! on it except the differential tests that pin the legacy behavior.
//! Migrate to [`crate::solver::Solver`] (stability checks) or
//! [`crate::best_response_with_policy`] (optimization) — every shim's
//! deprecation note names its replacement.

use crate::alpha::Alpha;
use crate::best_response::BestResponse;
use crate::concepts::{CheckBudget, Concept};
use crate::error::GameError;
use crate::moves::Move;
use crate::solver::{legacy_guard, solve_to_completion, ExecPolicy, Solver, StabilityQuery};
use crate::state::GameState;
use bncg_graph::Graph;

/// Runs the concept's scan sharded over `threads` std scoped threads
/// (centers for BNE, coalitions for k-BSE, target-graph ranges for BSE)
/// behind the legacy default-budget size guard. Verdict and witness equal
/// the sequential scan; polynomial concepts run sequentially.
///
/// # Errors
///
/// Same as [`Concept::find_violation`].
///
/// # Panics
///
/// Panics if `threads == 0`.
#[deprecated(
    since = "0.2.0",
    note = "route through `bncg_core::solver::Solver` with \
            `ExecPolicy::default().with_threads(n)`"
)]
pub fn find_violation_in_parallel(
    concept: Concept,
    state: &GameState,
    threads: usize,
) -> Result<Option<Move>, GameError> {
    assert!(threads > 0, "need at least one worker thread");
    if !concept.is_exponential() {
        return concept.find_violation_in(state);
    }
    if legacy_guard(concept, state, CheckBudget::default())? {
        return Ok(None);
    }
    Solver::new(ExecPolicy::default().with_threads(threads))
        .check(&StabilityQuery::on(concept, state))?
        .into_violation()
}

/// [`crate::best_response`] with an explicit work budget.
///
/// # Errors
///
/// Same as [`crate::best_response`].
#[deprecated(
    since = "0.2.0",
    note = "route through `best_response_with_policy` with an `ExecPolicy` \
            eval budget; budget overruns become a resumable \
            `BestResponseVerdict` there instead of erroring"
)]
pub fn best_response_with_budget(
    g: &Graph,
    alpha: Alpha,
    u: u32,
    budget: CheckBudget,
) -> Result<BestResponse, GameError> {
    let n = g.n();
    if u as usize >= n {
        return Err(GameError::NodeOutOfRange { node: u, n });
    }
    crate::best_response::check_enumeration_budget(n, budget)?;
    crate::best_response::best_response_in(&GameState::new(g.clone(), alpha), u, budget)
}

/// Legacy budgeted/parallel BNE entry points.
pub mod bne {
    use super::*;
    use crate::concepts::bne::check_budget;

    /// Exact BNE check with an explicit work budget.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::CheckTooLarge`] if `n·2^{n−1}` exceeds
    /// `budget.max_evals`.
    #[deprecated(
        since = "0.2.0",
        note = "route through `bncg_core::solver::Solver` with an `ExecPolicy` \
                eval budget; budget overruns become `Verdict::Exhausted` there"
    )]
    pub fn find_violation_with_budget(
        g: &Graph,
        alpha: Alpha,
        budget: CheckBudget,
    ) -> Result<Option<Move>, GameError> {
        check_budget(g.n(), budget)?;
        solve_to_completion(Concept::Bne, &GameState::new(g.clone(), alpha))
    }

    /// Exact BNE check against a caller-maintained [`GameState`], behind
    /// the legacy raw-space pre-guard.
    ///
    /// # Errors
    ///
    /// Same guard as [`find_violation_with_budget`].
    #[deprecated(
        since = "0.2.0",
        note = "route through `bncg_core::solver::Solver` with a \
                `StabilityQuery::on(Concept::Bne, state)` query"
    )]
    pub fn find_violation_in_with_budget(
        state: &GameState,
        budget: CheckBudget,
    ) -> Result<Option<Move>, GameError> {
        if legacy_guard(Concept::Bne, state, budget)? {
            return Ok(None);
        }
        solve_to_completion(Concept::Bne, state)
    }

    /// Parallel exact BNE check behind the legacy pre-guard. Verdict
    /// **and** witness equal the sequential scan's.
    ///
    /// # Errors
    ///
    /// Same guard as [`find_violation_with_budget`].
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[deprecated(
        since = "0.2.0",
        note = "route through `bncg_core::solver::Solver` with \
                `ExecPolicy::default().with_threads(n)`"
    )]
    pub fn find_violation_in_parallel(
        state: &GameState,
        budget: CheckBudget,
        threads: usize,
    ) -> Result<Option<Move>, GameError> {
        assert!(threads > 0, "need at least one worker thread");
        if legacy_guard(Concept::Bne, state, budget)? {
            return Ok(None);
        }
        Solver::new(ExecPolicy::default().with_threads(threads))
            .check(&StabilityQuery::on(Concept::Bne, state))?
            .into_violation()
    }
}

/// Legacy budgeted/parallel BSE entry points.
pub mod bse {
    use super::*;
    use crate::concepts::bse::check_budget;

    /// Exact BSE check with an explicit work budget.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::CheckTooLarge`] if `2^{C(n,2)}` exceeds
    /// `budget.max_evals`.
    #[deprecated(
        since = "0.2.0",
        note = "route through `bncg_core::solver::Solver` with an `ExecPolicy` \
                eval budget; budget overruns become `Verdict::Exhausted` there"
    )]
    pub fn find_violation_with_budget(
        g: &Graph,
        alpha: Alpha,
        budget: CheckBudget,
    ) -> Result<Option<Move>, GameError> {
        if g.n() <= 1 {
            return Ok(None);
        }
        check_budget(g.n(), budget)?;
        solve_to_completion(Concept::Bse, &GameState::new(g.clone(), alpha))
    }

    /// Exact BSE check against a caller-maintained [`GameState`], behind
    /// the legacy raw-space pre-guard.
    ///
    /// # Errors
    ///
    /// Same guard as [`find_violation_with_budget`].
    #[deprecated(
        since = "0.2.0",
        note = "route through `bncg_core::solver::Solver` with a \
                `StabilityQuery::on(Concept::Bse, state)` query"
    )]
    pub fn find_violation_in_with_budget(
        state: &GameState,
        budget: CheckBudget,
    ) -> Result<Option<Move>, GameError> {
        if legacy_guard(Concept::Bse, state, budget)? {
            return Ok(None);
        }
        solve_to_completion(Concept::Bse, state)
    }

    /// Parallel exact BSE check behind the legacy pre-guard. Verdict
    /// **and** witness equal the sequential scan's.
    ///
    /// # Errors
    ///
    /// Same guard as [`find_violation_with_budget`].
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[deprecated(
        since = "0.2.0",
        note = "route through `bncg_core::solver::Solver` with \
                `ExecPolicy::default().with_threads(n)`"
    )]
    pub fn find_violation_in_parallel(
        state: &GameState,
        budget: CheckBudget,
        threads: usize,
    ) -> Result<Option<Move>, GameError> {
        assert!(threads > 0, "need at least one worker thread");
        if legacy_guard(Concept::Bse, state, budget)? {
            return Ok(None);
        }
        Solver::new(ExecPolicy::default().with_threads(threads))
            .check(&StabilityQuery::on(Concept::Bse, state))?
            .into_violation()
    }
}

/// Legacy budgeted/parallel k-BSE entry points.
pub mod kbse {
    use super::*;
    use crate::concepts::kbse::check_budget;

    /// Exact k-BSE check with an explicit work budget.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::CheckTooLarge`] if the total number of
    /// candidate moves exceeds `budget.max_evals`.
    #[deprecated(
        since = "0.2.0",
        note = "route through `bncg_core::solver::Solver` with an `ExecPolicy` \
                eval budget; budget overruns become `Verdict::Exhausted` there"
    )]
    pub fn find_violation_with_budget(
        g: &Graph,
        alpha: Alpha,
        k: usize,
        budget: CheckBudget,
    ) -> Result<Option<Move>, GameError> {
        if g.n() <= 1 || k == 0 {
            return Ok(None);
        }
        check_budget(g, k, budget)?;
        solve_to_completion(
            Concept::KBse(k.min(u32::MAX as usize) as u32),
            &GameState::new(g.clone(), alpha),
        )
    }

    /// Exact k-BSE check against a caller-maintained [`GameState`],
    /// behind the legacy raw-space pre-guard.
    ///
    /// # Errors
    ///
    /// Same guard as [`find_violation_with_budget`].
    #[deprecated(
        since = "0.2.0",
        note = "route through `bncg_core::solver::Solver` with a \
                `StabilityQuery::on(Concept::KBse(k), state)` query"
    )]
    pub fn find_violation_in_with_budget(
        state: &GameState,
        k: usize,
        budget: CheckBudget,
    ) -> Result<Option<Move>, GameError> {
        let concept = Concept::KBse(k.min(u32::MAX as usize) as u32);
        if legacy_guard(concept, state, budget)? {
            return Ok(None);
        }
        solve_to_completion(concept, state)
    }

    /// Parallel exact k-BSE check behind the legacy pre-guard. Verdict
    /// **and** witness equal the sequential scan's.
    ///
    /// # Errors
    ///
    /// Same guard as [`find_violation_with_budget`].
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[deprecated(
        since = "0.2.0",
        note = "route through `bncg_core::solver::Solver` with \
                `ExecPolicy::default().with_threads(n)`"
    )]
    pub fn find_violation_in_parallel(
        state: &GameState,
        k: usize,
        budget: CheckBudget,
        threads: usize,
    ) -> Result<Option<Move>, GameError> {
        assert!(threads > 0, "need at least one worker thread");
        let concept = Concept::KBse(k.min(u32::MAX as usize) as u32);
        if legacy_guard(concept, state, budget)? {
            return Ok(None);
        }
        Solver::new(ExecPolicy::default().with_threads(threads))
            .check(&StabilityQuery::on(concept, state))?
            .into_violation()
    }
}
