//! Bilateral Add Equilibrium (BAE): no two agents can both strictly profit
//! from jointly creating a single new edge, each paying `α`.

use crate::alpha::Alpha;
use crate::delta::cost_after_add;
use crate::moves::Move;
use crate::state::GameState;
use bncg_graph::{DistanceMatrix, Graph};

/// Finds a mutually profitable edge addition, or `None` if `g` is in BAE.
///
/// Runs in `O(n³)` using the pre-move distance matrix: the post-add
/// distance row of an endpoint is `min(d(u,·), 1 + d(v,·))`.
///
/// # Examples
///
/// ```
/// use bncg_core::{concepts::bae, Alpha, Move};
/// use bncg_graph::generators;
///
/// // A long path at α = 1: the two ends gain a lot by linking up.
/// let g = generators::path(6);
/// let alpha = Alpha::integer(1)?;
/// assert!(bae::find_violation(&g, alpha).is_some());
///
/// // The star is in BAE: a leaf-leaf edge saves only distance 1 < α + ε.
/// assert!(bae::find_violation(&generators::star(6), alpha).is_none());
/// # Ok::<(), bncg_core::GameError>(())
/// ```
#[must_use]
pub fn find_violation(g: &Graph, alpha: Alpha) -> Option<Move> {
    find_violation_in(&GameState::new(g.clone(), alpha))
}

/// [`find_violation`] against a caller-maintained [`GameState`], reusing
/// its cached matrix and pre-move costs (no recomputation at all).
#[must_use]
pub fn find_violation_in(state: &GameState) -> Option<Move> {
    let (g, alpha, d) = (state.graph(), state.alpha(), state.distances());
    let old = state.costs();
    for (u, v) in g.non_edges() {
        let cu = cost_after_add(g, d, u, v);
        if !cu.better_than(&old[u as usize], alpha) {
            continue;
        }
        let cv = cost_after_add(g, d, v, u);
        if cv.better_than(&old[v as usize], alpha) {
            return Some(Move::BilateralAdd { u, v });
        }
    }
    None
}

/// [`find_violation`] with a caller-supplied distance matrix, for callers
/// that already paid for it.
#[must_use]
pub fn find_violation_with_matrix(g: &Graph, alpha: Alpha, d: &DistanceMatrix) -> Option<Move> {
    find_violation_in(&GameState::with_matrix(g.clone(), alpha, d.clone()))
}

/// Whether `g` is in Bilateral Add Equilibrium.
#[must_use]
pub fn is_stable(g: &Graph, alpha: Alpha) -> bool {
    find_violation(g, alpha).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bncg_graph::generators;

    fn a(s: &str) -> Alpha {
        s.parse().unwrap()
    }

    #[test]
    fn clique_is_trivially_in_bae() {
        assert!(is_stable(&generators::clique(5), a("1/2")));
    }

    #[test]
    fn path_ends_connect_when_cheap() {
        let g = generators::path(5);
        // Ends adding {0,4}: each saves dist (4−1) + (3−2) = 4 > α for α < 4.
        let mv = find_violation(&g, a("3")).unwrap();
        assert_eq!(mv, Move::BilateralAdd { u: 0, v: 4 });
        // Strictness boundary: gain is exactly 4.
        assert!(is_stable(&g, a("4")));
        assert!(!is_stable(&g, a("7/2")));
    }

    #[test]
    fn disconnected_agents_always_link() {
        // Lexicographic reachability: two components always want to merge.
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(find_violation(&g, a("1000")).is_some());
    }

    #[test]
    fn star_is_in_bae_for_alpha_at_least_one() {
        for n in [4usize, 6, 9] {
            assert!(is_stable(&generators::star(n), a("1")));
            // For α < 1 leaves do want to pair up.
            assert!(!is_stable(&generators::star(n), a("1/2")));
        }
    }

    #[test]
    fn witness_is_replayable() {
        let mut rng = bncg_graph::test_rng(5);
        for _ in 0..20 {
            let g = generators::random_tree(10, &mut rng);
            for alpha in ["1/2", "1", "2"] {
                if let Some(mv) = find_violation(&g, a(alpha)) {
                    assert!(crate::delta::move_improves_all(&g, a(alpha), &mv).unwrap());
                }
            }
        }
    }

    #[test]
    fn matches_brute_force_on_small_graphs() {
        let mut rng = bncg_graph::test_rng(6);
        for _ in 0..15 {
            let g = generators::random_connected(8, 0.25, &mut rng);
            for alpha in ["1/2", "1", "3", "11/2"] {
                let alpha = a(alpha);
                let fast = find_violation(&g, alpha).is_none();
                // Brute force via the generic engine.
                let brute = g.non_edges().all(|(u, v)| {
                    !crate::delta::move_improves_all(&g, alpha, &Move::BilateralAdd { u, v })
                        .unwrap()
                });
                assert_eq!(fast, brute);
            }
        }
    }
}
