//! Bilateral Greedy Equilibrium (BGE): Pairwise Stability plus Bilateral
//! Swap Equilibrium — stability against every single-edge greedy change
//! (add, remove, swap). On trees BGE coincides with 2-BSE
//! (Proposition 3.7), which the test suite verifies exhaustively.

use crate::alpha::Alpha;
use crate::concepts::{bae, bswe, re};
use crate::moves::Move;
use crate::state::GameState;
use bncg_graph::Graph;

/// Finds a profitable greedy change (removal, mutual addition, or swap),
/// or `None` if `g` is in BGE.
///
/// # Examples
///
/// ```
/// use bncg_core::{concepts::bge, Alpha};
/// use bncg_graph::generators;
///
/// assert!(bge::find_violation(&generators::star(8), Alpha::integer(2)?).is_none());
/// assert!(bge::find_violation(&generators::path(8), Alpha::integer(2)?).is_some());
/// # Ok::<(), bncg_core::GameError>(())
/// ```
#[must_use]
pub fn find_violation(g: &Graph, alpha: Alpha) -> Option<Move> {
    find_violation_in(&GameState::new(g.clone(), alpha))
}

/// [`find_violation`] against a caller-maintained [`GameState`]: all three
/// sub-checkers share one cached matrix and cost vector (previously each
/// rebuilt its own).
#[must_use]
pub fn find_violation_in(state: &GameState) -> Option<Move> {
    re::find_violation_in(state)
        .or_else(|| bae::find_violation_in(state))
        .or_else(|| bswe::find_violation_in(state))
}

/// Whether `g` is in Bilateral Greedy Equilibrium.
#[must_use]
pub fn is_stable(g: &Graph, alpha: Alpha) -> bool {
    find_violation(g, alpha).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bncg_graph::generators;

    fn a(s: &str) -> Alpha {
        s.parse().unwrap()
    }

    #[test]
    fn bge_is_triple_intersection() {
        let mut rng = bncg_graph::test_rng(11);
        for _ in 0..25 {
            let g = generators::random_connected(7, 0.3, &mut rng);
            for alpha in ["1/2", "1", "3", "8"] {
                let alpha = a(alpha);
                assert_eq!(
                    is_stable(&g, alpha),
                    re::is_stable(&g, alpha)
                        && bae::is_stable(&g, alpha)
                        && bswe::is_stable(&g, alpha)
                );
            }
        }
    }

    #[test]
    fn proposition_3_7_bge_equals_2bse_on_trees() {
        // Exhaustive over all trees with up to 8 nodes and an α grid.
        for n in 2..=8usize {
            for tree in bncg_graph::enumerate::free_trees(n).unwrap() {
                for alpha in ["1/2", "1", "2", "7/2", "6", "20"] {
                    let alpha = a(alpha);
                    let bge = is_stable(&tree, alpha);
                    let two_bse = crate::concepts::kbse::find_violation(&tree, alpha, 2)
                        .unwrap()
                        .is_none();
                    assert_eq!(
                        bge, two_bse,
                        "Prop 3.7 violated on an {n}-node tree at α = {alpha}"
                    );
                }
            }
        }
    }

    #[test]
    fn star_is_greedy_stable() {
        for alpha in ["1", "2", "50"] {
            assert!(is_stable(&generators::star(10), a(alpha)));
        }
    }
}
