//! Bilateral Neighborhood Equilibrium (BNE): no agent `u` can rearrange its
//! whole neighborhood — removing any subset `R ⊆ S_u` of its edges and
//! adding edges to any set `A` of new partners — such that `u` *and every
//! agent in `A`* strictly improve. This is the bilateral analogue of the
//! Nash equilibrium of the unilateral game (paper, footnote 4).
//!
//! The move space is `Θ(n·2^{n−1})`; the legacy exact entry points carry
//! a [`CheckBudget`] guard and a randomized refuter handles larger
//! instances (it can only ever prove *in*stability). The
//! [`crate::solver`] surface scans the same pruned space *anytime*-style
//! instead: budgets and deadlines exhaust into a resumable frontier
//! (one unit per center) rather than erroring.
//!
//! The default checker routes through the
//! [`candidates`](crate::candidates) pruning layer: partners that provably
//! cannot consent are dropped from the add space (shrinking it
//! exponentially), per-add-set saving caps prune removal masks wholesale,
//! and pure-removal candidates are skipped when `α ≤ 1` or the state is a
//! tree. Every filter is exactness-preserving, so the verdict — and, since
//! enumeration order is preserved, the witness — equals the raw scan
//! retained as [`find_violation_in_reference`].

use crate::alpha::Alpha;
use crate::candidates::{CandidateStats, CenterCapCache, NeighborhoodPruner};
use crate::concepts::{CheckBudget, Concept};
use crate::cost::{agent_cost, agent_cost_with_buf, AgentCost};
use crate::error::GameError;
use crate::moves::Move;
use crate::scan::{CtlLocal, ScanCtl, UnitOutcome, UnitScanner};
use crate::solver::{legacy_guard, solve_to_completion, ExecPolicy, Solver, StabilityQuery};
use crate::state::GameState;
use bncg_graph::Graph;
use std::sync::atomic::{AtomicU64, Ordering};

/// Minimal RNG abstraction so the sampled refuter does not force a `rand`
/// dependency onto every caller; implemented for closures and for anything
/// resembling `rand::Rng` via [`from_rand`].
mod rand_like {
    /// Source of uniform `u64`s.
    pub trait RngLike {
        /// Next pseudo-random value.
        fn next_u64(&mut self) -> u64;
        /// Uniform value in `0..bound` (bound > 0).
        fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// A small xorshift generator, deterministic from a seed — enough for
    /// refutation sampling (no statistical claims rest on it).
    #[derive(Debug, Clone)]
    pub struct SplitMix(pub u64);

    impl RngLike for SplitMix {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub use rand_like::{RngLike, SplitMix};

/// Exact BNE check under the default [`CheckBudget`].
///
/// # Errors
///
/// Returns [`GameError::CheckTooLarge`] when `n·2^{n−1}` exceeds the
/// budget (default: up to `n = 21`).
///
/// # Examples
///
/// ```
/// use bncg_core::{concepts::bne, Alpha};
/// use bncg_graph::generators;
///
/// let alpha = Alpha::integer(2)?;
/// assert!(bne::find_violation(&generators::star(7), alpha)?.is_none());
/// assert!(bne::find_violation(&generators::path(7), alpha)?.is_some());
/// # Ok::<(), bncg_core::GameError>(())
/// ```
pub fn find_violation(g: &Graph, alpha: Alpha) -> Result<Option<Move>, GameError> {
    check_budget(g.n(), CheckBudget::default())?;
    solve_to_completion(Concept::Bne, &GameState::new(g.clone(), alpha))
}

/// Exact BNE check with an explicit work budget.
///
/// # Errors
///
/// Returns [`GameError::CheckTooLarge`] if `n·2^{n−1}` exceeds
/// `budget.max_evals`.
#[deprecated(
    since = "0.2.0",
    note = "route through `bncg_core::solver::Solver` with an `ExecPolicy` \
            eval budget; budget overruns become `Verdict::Exhausted` there"
)]
pub fn find_violation_with_budget(
    g: &Graph,
    alpha: Alpha,
    budget: CheckBudget,
) -> Result<Option<Move>, GameError> {
    check_budget(g.n(), budget)?;
    solve_to_completion(Concept::Bne, &GameState::new(g.clone(), alpha))
}

/// The legacy size guard: refuses instances whose **raw** move space
/// exceeds the budget before any work starts (the solver path has no
/// such guard — it scans anytime-style and exhausts instead).
pub(crate) fn check_budget(n: usize, budget: CheckBudget) -> Result<(), GameError> {
    if n <= 1 {
        return Ok(());
    }
    let per_center = 1u128 << (n - 1);
    let work = per_center * n as u128;
    if work > u128::from(budget.max_evals) {
        return Err(GameError::CheckTooLarge {
            reason: format!(
                "exact BNE needs {work} move evaluations for n = {n}, budget is {}",
                budget.max_evals
            ),
        });
    }
    Ok(())
}

/// Exact BNE check against a caller-maintained [`GameState`], through the
/// candidate-pruning layer (see the [module docs](self)).
///
/// # Errors
///
/// Same guard as [`find_violation_with_budget`].
#[deprecated(
    since = "0.2.0",
    note = "route through `bncg_core::solver::Solver` with a \
            `StabilityQuery::on(Concept::Bne, state)` query"
)]
pub fn find_violation_in_with_budget(
    state: &GameState,
    budget: CheckBudget,
) -> Result<Option<Move>, GameError> {
    if legacy_guard(Concept::Bne, state, budget)? {
        return Ok(None);
    }
    solve_to_completion(Concept::Bne, state)
}

/// The direct engine-path full scan, reporting how much of the raw
/// candidate space the pruning layer skipped. This is the sequential
/// scan the solver drives; the perf gate measures it as the
/// facade-overhead reference.
///
/// # Errors
///
/// Same guard as [`find_violation_with_budget`].
pub fn find_violation_in_with_stats(
    state: &GameState,
    budget: CheckBudget,
) -> Result<(Option<Move>, CandidateStats), GameError> {
    let n = state.n();
    let mut stats = CandidateStats::default();
    if n <= 1 {
        return Ok((None, stats));
    }
    check_budget(n, budget)?;
    let pruner = NeighborhoodPruner::new(state);
    let mut ws = CenterScanSpace::new(state.graph());
    let ctl = ScanCtl::unbounded();
    let mut cl = CtlLocal::new(&ctl);
    for center in 0..n as u32 {
        match scan_center(
            state, &pruner, center, &mut ws, &mut stats, None, &ctl, &mut cl, 0,
        ) {
            UnitOutcome::Found(mv) => return Ok((Some(mv), stats)),
            UnitOutcome::Done => {}
            UnitOutcome::Stopped(_) => unreachable!("unbounded controls never stop"),
        }
    }
    Ok((None, stats))
}

/// Parallel exact BNE check: centers are sharded across `threads` std
/// scoped threads over the same pruned candidate stream, with an atomic
/// first-violation index propagating early exit. The verdict **and** the
/// witness equal the sequential scan's (the lowest-center, first-in-order
/// violation wins).
///
/// # Errors
///
/// Same guard as [`find_violation_with_budget`].
///
/// # Panics
///
/// Panics if `threads == 0`.
#[deprecated(
    since = "0.2.0",
    note = "route through `bncg_core::solver::Solver` with \
            `ExecPolicy::default().with_threads(n)`"
)]
pub fn find_violation_in_parallel(
    state: &GameState,
    budget: CheckBudget,
    threads: usize,
) -> Result<Option<Move>, GameError> {
    assert!(threads > 0, "need at least one worker thread");
    if legacy_guard(Concept::Bne, state, budget)? {
        return Ok(None);
    }
    Solver::new(ExecPolicy::default().with_threads(threads))
        .check(&StabilityQuery::on(Concept::Bne, state))?
        .into_violation()
}

/// The solver's BNE unit scanner: one unit per center, positions in
/// `(removal mask, addition mask)` raw enumeration order.
pub(crate) struct SolverScan<'a> {
    state: &'a GameState,
    pruner: NeighborhoodPruner,
}

impl<'a> SolverScan<'a> {
    pub(crate) fn new(state: &'a GameState) -> Self {
        SolverScan {
            state,
            pruner: NeighborhoodPruner::new(state),
        }
    }
}

impl UnitScanner for SolverScan<'_> {
    type Ws = CenterScanSpace;

    fn units(&self) -> u64 {
        self.state.n() as u64
    }

    fn workspace(&self) -> CenterScanSpace {
        CenterScanSpace::new(self.state.graph())
    }

    fn scan_unit(
        &self,
        ws: &mut CenterScanSpace,
        stats: &mut CandidateStats,
        unit: u64,
        start: u64,
        ctl: &ScanCtl,
        cl: &mut CtlLocal,
        racing: Option<&AtomicU64>,
    ) -> UnitOutcome {
        scan_center(
            self.state,
            &self.pruner,
            unit as u32,
            ws,
            stats,
            racing,
            ctl,
            cl,
            start,
        )
    }
}

/// Reusable scratch for one center's candidate scan.
pub(crate) struct CenterScanSpace {
    scratch: Graph,
    buf: Vec<u32>,
    removed: Vec<u32>,
    added: Vec<u32>,
    /// Lazily filled per-add-mask saving caps (inequality 3 memo).
    caps: CenterCapCache,
}

impl CenterScanSpace {
    fn new(g: &Graph) -> Self {
        CenterScanSpace {
            scratch: g.clone(),
            buf: Vec::new(),
            removed: Vec::new(),
            added: Vec::new(),
            caps: CenterCapCache::default(),
        }
    }
}

/// Scans one center's pruned candidate space in raw enumeration order
/// (removal-mask major) from position `start`, returning the first
/// improving move at or after it. `racing` carries the parallel drive's
/// first-violation center index: once it falls below `center` this scan
/// cannot win and abandons. `ctl`/`cl` stop the scan anytime-style at an
/// exact resumable position.
#[allow(clippy::too_many_arguments)]
fn scan_center(
    state: &GameState,
    pruner: &NeighborhoodPruner,
    center: u32,
    ws: &mut CenterScanSpace,
    stats: &mut CandidateStats,
    racing: Option<&AtomicU64>,
    ctl: &ScanCtl,
    cl: &mut CtlLocal,
    start: u64,
) -> UnitOutcome {
    let g = state.graph();
    let alpha = state.alpha();
    let old = state.costs();
    let neighbors: Vec<u32> = g.neighbors(center).to_vec();
    let (partners, dropped) = pruner.filtered_partners(state, center);
    let nb = neighbors.len();
    let no = partners.len();
    if start >> no >= 1u64 << nb {
        return UnitOutcome::Done;
    }
    if start == 0 {
        // Raw-space accounting happens once per center; resumed slices
        // only add their per-candidate counters.
        let raw = (1u64 << nb) * (1u64 << (no + dropped)) - 1;
        let surviving = (1u64 << nb) * (1u64 << no) - 1;
        stats.generated += raw;
        stats.pruned += raw - surviving;
    }
    ws.caps.reset(no);
    let removal_only_prunable = pruner.removal_only_prunable();
    let bounds_active = pruner.active();
    let rem0 = start >> no;
    let add0 = start & ((1u64 << no) - 1);
    for rem_mask in rem0..1u64 << nb {
        if let Some(flag) = racing {
            if flag.load(Ordering::Relaxed) < u64::from(center) {
                return UnitOutcome::Done;
            }
        }
        let add_from = if rem_mask == rem0 { add0 } else { 0 };
        for add_mask in add_from..1u64 << no {
            if rem_mask == 0 && add_mask == 0 {
                continue;
            }
            let pos = (rem_mask << no) | add_mask;
            if add_mask == 0 {
                if removal_only_prunable {
                    stats.pruned += 1;
                    if cl.tick_skipped(ctl, 1) {
                        return UnitOutcome::Stopped(pos + 1);
                    }
                    continue;
                }
            } else if bounds_active {
                let save_a = ws.caps.get(pruner, state, center, &partners, add_mask);
                if pruner.center_class_prunable(
                    rem_mask.count_ones(),
                    add_mask.count_ones(),
                    save_a,
                ) {
                    stats.pruned += 1;
                    if cl.tick_skipped(ctl, 1) {
                        return UnitOutcome::Stopped(pos + 1);
                    }
                    continue;
                }
            }
            stats.evaluated += 1;
            if let Some(mv) = eval_candidate(
                &mut ws.scratch,
                g,
                alpha,
                old,
                center,
                &neighbors,
                rem_mask,
                &partners,
                add_mask,
                &mut ws.buf,
                &mut ws.removed,
                &mut ws.added,
            ) {
                return UnitOutcome::Found(mv);
            }
            if cl.tick_eval(ctl) {
                return UnitOutcome::Stopped(pos + 1);
            }
        }
    }
    UnitOutcome::Done
}

/// The raw (unpruned) scan, retained as ground truth: identical
/// enumeration order to the pruned checker, no filters. Property tests
/// and the `pruning` bench compare against this path — it is exactly the
/// PR 1 engine-era BNE scan.
///
/// # Errors
///
/// Same guard as [`find_violation_with_budget`].
pub fn find_violation_in_reference(
    state: &GameState,
    budget: CheckBudget,
) -> Result<Option<Move>, GameError> {
    let g = state.graph();
    let n = g.n();
    if n <= 1 {
        return Ok(None);
    }
    check_budget(n, budget)?;
    let alpha = state.alpha();
    let old = state.costs();
    let mut scratch = g.clone();
    let mut buf = Vec::new();
    let mut removed = Vec::new();
    let mut added = Vec::new();
    for center in 0..n as u32 {
        let neighbors: Vec<u32> = g.neighbors(center).to_vec();
        let others: Vec<u32> = (0..n as u32)
            .filter(|&v| v != center && !g.has_edge(center, v))
            .collect();
        let nb = neighbors.len();
        let no = others.len();
        for rem_mask in 0u64..1u64 << nb {
            for add_mask in 0u64..1u64 << no {
                if rem_mask == 0 && add_mask == 0 {
                    continue;
                }
                if let Some(mv) = eval_candidate(
                    &mut scratch,
                    g,
                    alpha,
                    old,
                    center,
                    &neighbors,
                    rem_mask,
                    &others,
                    add_mask,
                    &mut buf,
                    &mut removed,
                    &mut added,
                ) {
                    return Ok(Some(mv));
                }
            }
        }
    }
    Ok(None)
}

/// Applies a candidate neighborhood move in place, evaluates it, restores
/// the graph, and returns the move if improving for the center and every
/// added partner.
#[allow(clippy::too_many_arguments)]
fn eval_candidate(
    scratch: &mut Graph,
    g: &Graph,
    alpha: Alpha,
    old: &[AgentCost],
    center: u32,
    neighbors: &[u32],
    rem_mask: u64,
    others: &[u32],
    add_mask: u64,
    buf: &mut Vec<u32>,
    removed: &mut Vec<u32>,
    added: &mut Vec<u32>,
) -> Option<Move> {
    removed.clear();
    added.clear();
    for (i, &v) in neighbors.iter().enumerate() {
        if rem_mask >> i & 1 == 1 {
            scratch.remove_edge(center, v).expect("neighbor edge");
            removed.push(v);
        }
    }
    for (i, &v) in others.iter().enumerate() {
        if add_mask >> i & 1 == 1 {
            scratch.add_edge(center, v).expect("non-neighbor pair");
            added.push(v);
        }
    }
    let improving = agent_cost_with_buf(scratch, center, buf)
        .better_than(&old[center as usize], alpha)
        && added
            .iter()
            .all(|&a| agent_cost_with_buf(scratch, a, buf).better_than(&old[a as usize], alpha));
    // Restore.
    for &v in removed.iter() {
        scratch.add_edge(center, v).expect("restore removed");
    }
    for &v in added.iter() {
        scratch.remove_edge(center, v).expect("restore added");
    }
    debug_assert_eq!(scratch.m(), g.m());
    if improving {
        Some(Move::Neighborhood {
            center,
            remove: removed.clone(),
            add: added.clone(),
        })
    } else {
        None
    }
}

/// Randomized refutation search for large graphs: samples `samples`
/// neighborhood moves biased towards small changes and returns the first
/// improving one. A `None` result is **not** a stability certificate.
#[must_use]
pub fn find_violation_sampled<R: RngLike>(
    g: &Graph,
    alpha: Alpha,
    rng: &mut R,
    samples: u32,
) -> Option<Move> {
    let n = g.n();
    if n <= 2 {
        return None;
    }
    let old: Vec<AgentCost> = (0..n as u32).map(|u| agent_cost(g, u)).collect();
    let mut scratch = g.clone();
    for _ in 0..samples {
        let center = rng.below(n as u64) as u32;
        let neighbors: Vec<u32> = g.neighbors(center).to_vec();
        let others: Vec<u32> = (0..n as u32)
            .filter(|&v| v != center && !g.has_edge(center, v))
            .collect();
        if others.is_empty() && neighbors.is_empty() {
            continue;
        }
        // Geometric-ish sizes: mostly 0–2 removals and 1–3 additions.
        let n_rem = (rng.below(4)).min(neighbors.len() as u64) as usize;
        let n_add = (1 + rng.below(3)).min(others.len() as u64) as usize;
        if n_rem == 0 && n_add == 0 {
            continue;
        }
        // Sample distinct indices directly (candidate sets can be far
        // larger than 64, so bitmasks are not an option here).
        let mut removed: Vec<u32> = Vec::with_capacity(n_rem);
        while removed.len() < n_rem {
            let v = neighbors[rng.below(neighbors.len() as u64) as usize];
            if !removed.contains(&v) {
                removed.push(v);
            }
        }
        let mut added: Vec<u32> = Vec::with_capacity(n_add);
        while added.len() < n_add {
            let v = others[rng.below(others.len() as u64) as usize];
            if !added.contains(&v) {
                added.push(v);
            }
        }
        if let Some(mv) =
            eval_candidate_lists(&mut scratch, g, alpha, &old, center, &removed, &added)
        {
            return Some(mv);
        }
    }
    None
}

/// List-based twin of `eval_candidate` for samplers whose candidate sets
/// exceed 64 entries.
fn eval_candidate_lists(
    scratch: &mut Graph,
    g: &Graph,
    alpha: Alpha,
    old: &[AgentCost],
    center: u32,
    removed: &[u32],
    added: &[u32],
) -> Option<Move> {
    for &v in removed {
        scratch.remove_edge(center, v).expect("neighbor edge");
    }
    for &v in added {
        scratch.add_edge(center, v).expect("non-neighbor pair");
    }
    let improving = agent_cost(scratch, center).better_than(&old[center as usize], alpha)
        && added
            .iter()
            .all(|&a| agent_cost(scratch, a).better_than(&old[a as usize], alpha));
    for &v in removed {
        scratch.add_edge(center, v).expect("restore removed");
    }
    for &v in added {
        scratch.remove_edge(center, v).expect("restore added");
    }
    debug_assert_eq!(scratch.m(), g.m());
    if improving {
        Some(Move::Neighborhood {
            center,
            remove: removed.to_vec(),
            add: added.to_vec(),
        })
    } else {
        None
    }
}

/// Whether `g` is in Bilateral Neighborhood Equilibrium (exact).
///
/// # Errors
///
/// Same guard as [`find_violation`].
pub fn is_stable(g: &Graph, alpha: Alpha) -> Result<bool, GameError> {
    Ok(find_violation(g, alpha)?.is_none())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bncg_graph::generators;

    fn a(s: &str) -> Alpha {
        s.parse().unwrap()
    }

    #[test]
    fn star_is_in_bne() {
        for alpha in ["1", "2", "9"] {
            assert!(is_stable(&generators::star(7), a(alpha)).unwrap());
        }
    }

    #[test]
    fn bne_is_subset_of_bge() {
        // Proposition A.4 direction: BNE ⊆ BAE ∩ BGE.
        let mut rng = bncg_graph::test_rng(12);
        for _ in 0..25 {
            let g = generators::random_connected(7, 0.3, &mut rng);
            for alpha in ["1/2", "1", "2", "6"] {
                let alpha = a(alpha);
                if is_stable(&g, alpha).unwrap() {
                    assert!(crate::concepts::bge::is_stable(&g, alpha));
                    assert!(crate::concepts::bae::is_stable(&g, alpha));
                }
            }
        }
    }

    #[test]
    #[allow(deprecated)] // the compat wrapper must keep the legacy guard
    fn guard_fires_for_large_instances() {
        let g = generators::path(40);
        assert!(matches!(
            find_violation(&g, a("1")),
            Err(GameError::CheckTooLarge { .. })
        ));
        // An explicit budget can lift the refusal threshold…
        let tiny = CheckBudget::new(10);
        assert!(matches!(
            find_violation_with_budget(&generators::path(8), a("1"), tiny),
            Err(GameError::CheckTooLarge { .. })
        ));
    }

    #[test]
    fn witnesses_are_replayable() {
        let mut rng = bncg_graph::test_rng(13);
        for _ in 0..10 {
            let g = generators::random_tree(8, &mut rng);
            for alpha in ["1/2", "1", "3"] {
                if let Some(mv) = find_violation(&g, a(alpha)).unwrap() {
                    assert!(crate::delta::move_improves_all(&g, a(alpha), &mv).unwrap());
                }
            }
        }
    }

    /// The pruned default and the raw reference scan return the *same*
    /// witness, not just the same verdict (pruned candidates are all
    /// non-improving and the enumeration order is shared).
    #[test]
    #[allow(deprecated)] // reference test for the compat wrapper
    fn pruned_scan_matches_reference_witness_exactly() {
        let mut rng = bncg_graph::test_rng(0xB14E);
        for case in 0..18 {
            let g = if case % 3 == 0 {
                generators::random_tree(9, &mut rng)
            } else {
                generators::random_connected(9, 0.3, &mut rng)
            };
            for alpha in ["1/2", "1", "2", "9"] {
                let state = GameState::new(g.clone(), a(alpha));
                let budget = CheckBudget::default();
                let pruned = find_violation_in_with_budget(&state, budget).unwrap();
                let reference = find_violation_in_reference(&state, budget).unwrap();
                assert_eq!(pruned, reference, "witness mismatch at α = {alpha}");
            }
        }
    }

    #[test]
    #[allow(deprecated)] // reference test for the compat wrappers
    fn parallel_scan_matches_sequential_witness_exactly() {
        let mut rng = bncg_graph::test_rng(0xB14F);
        for _ in 0..10 {
            let g = generators::random_connected(9, 0.3, &mut rng);
            for alpha in ["1", "3"] {
                let state = GameState::new(g.clone(), a(alpha));
                let budget = CheckBudget::default();
                let seq = find_violation_in_with_budget(&state, budget).unwrap();
                for threads in [1usize, 2, 4] {
                    let par = find_violation_in_parallel(&state, budget, threads).unwrap();
                    assert_eq!(seq, par, "threads = {threads}");
                }
            }
        }
    }

    #[test]
    fn pruning_skips_most_of_a_stable_star_scan() {
        // On a star at α ≥ 1 the partner filter and the tree pure-removal
        // rule eliminate the entire candidate space.
        let state = GameState::new(generators::star(16), a("2"));
        let (mv, stats) = find_violation_in_with_stats(&state, CheckBudget::default()).unwrap();
        assert!(mv.is_none());
        assert_eq!(stats.evaluated, 0, "star scan should be fully pruned");
        assert_eq!(stats.skipped(), stats.generated);
    }

    #[test]
    fn sampled_refuter_finds_known_violations() {
        // The path at α = 2 is not in BNE; the sampler should find some
        // improving move with a modest sample count.
        let g = generators::path(9);
        let mut rng = SplitMix(7);
        let found = find_violation_sampled(&g, a("2"), &mut rng, 5000);
        let mv = found.expect("sampler should refute the long path");
        assert!(crate::delta::move_improves_all(&g, a("2"), &mv).unwrap());
    }

    #[test]
    fn sampled_refuter_respects_stability() {
        // On the star (stable) the sampler must return nothing.
        let g = generators::star(9);
        let mut rng = SplitMix(11);
        assert!(find_violation_sampled(&g, a("2"), &mut rng, 3000).is_none());
    }

    #[test]
    fn trivial_graphs_are_stable() {
        assert!(is_stable(&Graph::new(1), a("1")).unwrap());
        assert!(is_stable(&generators::path(2), a("1")).unwrap());
    }
}
