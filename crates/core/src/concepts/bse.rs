//! Bilateral Strong Equilibrium (BSE = n-BSE): stability against joint
//! moves of *arbitrary* coalitions.
//!
//! The exact checker enumerates target graphs rather than coalitions: a
//! move to graph `G'` is an improving coalition move iff the set `I` of
//! strictly improving agents covers it — both endpoints of every added
//! edge lie in `I` and every removed edge touches `I` (taking `Γ` to be
//! exactly those covering agents; adding further members only adds
//! constraints). This cuts the double exponential to `2^{C(n,2)}` target
//! graphs, which is feasible for `n ≤ 7`.
//!
//! The default scan filters each target graph's edit set through the
//! [`EditSetPruner`] inequalities (see [`crate::candidates`]) before any
//! BFS is paid: masks whose added edges touch an agent that provably
//! cannot improve, whose removed edges have no viable endpoint, or that
//! are pure removals at `α ≤ 1` (or on a tree) are skipped. The filters
//! are exactness-preserving and order-preserving, so verdict and witness
//! equal the raw scan retained as [`find_violation_in_reference`]. The
//! [`crate::solver`] surface drives the same scan anytime-style over
//! fixed-size mask chunks (4096-mask units), and within each chunk the
//! masks are generated branch-and-bound style ([`crate::generator`]):
//! aligned mask ranges whose fixed edits already violate the filters
//! are skipped whole instead of being iterated.

use crate::alpha::Alpha;
use crate::candidates::{CandidateStats, EditSetPruner};
use crate::concepts::{CheckBudget, Concept};
use crate::cost_model::CostModel;
use crate::error::GameError;
use crate::generator::{BranchScan, EditOracle, Step};
use crate::moves::Move;
use crate::scan::{CtlLocal, ScanCtl, UnitOutcome, UnitScanner};
use crate::solver::solve_to_completion;
use crate::state::GameState;
use bncg_graph::Graph;
use std::sync::atomic::{AtomicU64, Ordering};

/// Exact BSE check under the default budget (`n ≤ 7`).
///
/// # Errors
///
/// Returns [`GameError::CheckTooLarge`] when `2^{C(n,2)}` exceeds the
/// budget.
///
/// # Examples
///
/// ```
/// use bncg_core::{concepts::bse, Alpha};
/// use bncg_graph::generators;
///
/// // Proposition 3.16: for α < 1 the clique is the only BSE.
/// let alpha: Alpha = "1/2".parse()?;
/// assert!(bse::find_violation(&generators::clique(5), alpha)?.is_none());
/// assert!(bse::find_violation(&generators::star(5), alpha)?.is_some());
/// # Ok::<(), bncg_core::GameError>(())
/// ```
pub fn find_violation(g: &Graph, alpha: Alpha) -> Result<Option<Move>, GameError> {
    if g.n() <= 1 {
        return Ok(None);
    }
    check_budget(g.n(), CheckBudget::default())?;
    solve_to_completion(Concept::Bse, &GameState::new(g.clone(), alpha))
}

/// The legacy size guard (the solver path exhausts instead).
pub(crate) fn check_budget(n: usize, budget: CheckBudget) -> Result<(), GameError> {
    let pairs = n * (n - 1) / 2;
    if pairs >= 63 || (1u128 << pairs) > u128::from(budget.max_evals) {
        return Err(GameError::CheckTooLarge {
            reason: format!(
                "exact BSE scans 2^{pairs} target graphs for n = {n}, budget is {}",
                budget.max_evals
            ),
        });
    }
    Ok(())
}

/// The direct engine-path full scan, reporting how much of the target
/// space the pruning layer skipped. This is the sequential scan the
/// solver drives; the perf gate measures it as the facade-overhead
/// reference.
///
/// # Errors
///
/// The legacy raw-space pre-guard against `budget`.
pub fn find_violation_in_with_stats(
    state: &GameState,
    budget: CheckBudget,
) -> Result<(Option<Move>, CandidateStats), GameError> {
    let n = state.n();
    let mut stats = CandidateStats::default();
    if n <= 1 {
        return Ok((None, stats));
    }
    check_budget(n, budget)?;
    let pairs = n * (n - 1) / 2;
    let units = (1u64 << pairs).div_ceil(BSE_CHUNK);
    let mut ws = TargetScan::new(state);
    let ctl = ScanCtl::unbounded();
    let mut cl = CtlLocal::new(&ctl);
    for unit in 0..units {
        match ws.scan_chunk(state, unit, 0, &mut stats, &ctl, &mut cl, None) {
            UnitOutcome::Found(mv) => return Ok((Some(mv), stats)),
            UnitOutcome::Done => {}
            UnitOutcome::Stopped(_) => unreachable!("unbounded controls never stop"),
        }
    }
    Ok((None, stats))
}

/// Fixed shard size of the target-mask space: frontier positions stay
/// meaningful across thread counts, and at `n = 7` (2²¹ masks) the scan
/// still splits into 512 units for parallel drive.
pub(crate) const BSE_CHUNK: u64 = 1 << 12;

/// The solver's BSE unit scanner: units are contiguous [`BSE_CHUNK`]
/// ranges of the target-graph mask space, positions are mask offsets.
pub(crate) struct SolverScan<'a> {
    state: &'a GameState,
}

impl<'a> SolverScan<'a> {
    pub(crate) fn new(state: &'a GameState) -> Self {
        SolverScan { state }
    }
}

impl UnitScanner for SolverScan<'_> {
    type Ws = TargetScan;

    fn units(&self) -> u64 {
        let n = self.state.n();
        if n <= 1 {
            return 0;
        }
        let pairs = n * (n - 1) / 2;
        (1u64 << pairs).div_ceil(BSE_CHUNK)
    }

    fn workspace(&self) -> TargetScan {
        TargetScan::new(self.state)
    }

    fn scan_unit(
        &self,
        ws: &mut TargetScan,
        stats: &mut CandidateStats,
        unit: u64,
        start: u64,
        ctl: &ScanCtl,
        cl: &mut CtlLocal,
        racing: Option<&AtomicU64>,
    ) -> UnitOutcome {
        ws.scan_chunk(self.state, unit, start, stats, ctl, cl, racing)
    }
}

/// Scratch for one thread's target-graph scan.
pub(crate) struct TargetScan {
    current: u64,
    pair_list: Vec<(u32, u32)>,
    pruner: EditSetPruner,
    oracle: EditOracle,
    rem: Vec<(u32, u32)>,
    add: Vec<(u32, u32)>,
}

impl TargetScan {
    fn new(state: &GameState) -> Self {
        let n = state.n();
        let current = state.graph().to_bitmask().expect("n ≤ 11 here");
        let pair_list: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|u| (u + 1..n as u32).map(move |v| (u, v)))
            .collect();
        TargetScan {
            current,
            oracle: EditOracle::new(state, current, &pair_list),
            pair_list,
            pruner: EditSetPruner::from_state(state),
            rem: Vec::new(),
            add: Vec::new(),
        }
    }

    /// Scans positions `start..` of chunk `unit` (masks
    /// `unit·BSE_CHUNK + start ..`) in ascending order. `racing` carries
    /// the parallel drive's lowest violating chunk: once it undercuts
    /// this one, nothing here can beat it and the scan abandons.
    #[allow(clippy::too_many_arguments)]
    fn scan_chunk(
        &mut self,
        state: &GameState,
        unit: u64,
        start: u64,
        stats: &mut CandidateStats,
        ctl: &ScanCtl,
        cl: &mut CtlLocal,
        racing: Option<&AtomicU64>,
    ) -> UnitOutcome {
        let n = state.n();
        let alpha = state.alpha();
        let old = state.costs();
        let pairs = n * (n - 1) / 2;
        let total = 1u64 << pairs;
        let base = unit * BSE_CHUNK;
        let lo = base + start;
        let hi = (base + BSE_CHUNK).min(total);
        if lo >= hi {
            return UnitOutcome::Done;
        }
        // Target masks are generated branch-and-bound style: the
        // [`EditOracle`] kills aligned mask ranges whose fixed edits
        // already violate the distance-floor or pure-removal rules;
        // surviving leaves run the exact per-mask pipeline below.
        let mut scan = BranchScan::new(lo, hi);
        let mut steps = 0u64;
        loop {
            // Poll the shared first-violation chunk every 64 steps.
            if let Some(flag) = racing {
                if steps & 63 == 0 && flag.load(Ordering::Relaxed) < unit {
                    return UnitOutcome::Done;
                }
            }
            steps += 1;
            let mask = match scan.next(&mut self.oracle) {
                Step::Done => break,
                Step::Skipped { base: _, count } => {
                    stats.visited += 1;
                    stats.generated += count;
                    stats.pruned += count;
                    if cl.tick_skipped(ctl, count) {
                        return UnitOutcome::Stopped(scan.cursor() - base);
                    }
                    continue;
                }
                Step::Leaf(mask) => mask,
            };
            if mask == self.current {
                if cl.tick_skipped(ctl, 1) {
                    return UnitOutcome::Stopped(mask + 1 - base);
                }
                continue;
            }
            stats.visited += 1;
            stats.generated += 1;
            let diff = mask ^ self.current;
            self.rem.clear();
            self.add.clear();
            for (i, &(u, v)) in self.pair_list.iter().enumerate() {
                if diff >> i & 1 == 0 {
                    continue;
                }
                if self.current >> i & 1 == 1 {
                    self.rem.push((u, v));
                } else {
                    self.add.push((u, v));
                }
            }
            if self.pruner.prunable(&self.rem, &self.add) {
                stats.pruned += 1;
                if cl.tick_skipped(ctl, 1) {
                    return UnitOutcome::Stopped(mask + 1 - base);
                }
                continue;
            }
            stats.evaluated += 1;
            let target = Graph::from_bitmask(n, mask).expect("n ≤ 11 here");
            let model = state.cost_model();
            // Lazily computed improving-agent memo over touched nodes.
            let mut improving: Vec<Option<bool>> = vec![None; n];
            let mut improves = |w: u32, target: &Graph| -> bool {
                let slot = &mut improving[w as usize];
                if let Some(v) = *slot {
                    return v;
                }
                let v = model.cost(target, w).better_than(&old[w as usize], alpha);
                *slot = Some(v);
                v
            };
            let valid = self
                .add
                .iter()
                .all(|&(u, v)| improves(u, &target) && improves(v, &target))
                && self
                    .rem
                    .iter()
                    .all(|&(u, v)| improves(u, &target) || improves(v, &target));
            if !valid {
                if cl.tick_eval(ctl) {
                    return UnitOutcome::Stopped(mask + 1 - base);
                }
                continue;
            }
            // Assemble the minimal coalition: endpoints of additions plus
            // one improving endpoint per removal.
            let mut members: Vec<u32> = Vec::new();
            for &(u, v) in &self.add {
                members.push(u);
                members.push(v);
            }
            for &(u, v) in &self.rem {
                if improves(u, &target) {
                    members.push(u);
                } else {
                    members.push(v);
                }
            }
            members.sort_unstable();
            members.dedup();
            // Winning eval still counts toward the shared pool.
            let _ = cl.tick_eval(ctl);
            return UnitOutcome::Found(Move::Coalition {
                members,
                remove_edges: self.rem.clone(),
                add_edges: self.add.clone(),
            });
        }
        UnitOutcome::Done
    }
}

/// The raw (unpruned) target-graph scan, retained as ground truth:
/// identical enumeration order, no filters — exactly the PR 1 engine-era
/// checker. Property tests and the `pruning` bench compare against it.
///
/// # Errors
///
/// The legacy raw-space pre-guard against `budget`.
pub fn find_violation_in_reference(
    state: &GameState,
    budget: CheckBudget,
) -> Result<Option<Move>, GameError> {
    let g = state.graph();
    let alpha = state.alpha();
    let n = g.n();
    if n <= 1 {
        return Ok(None);
    }
    check_budget(n, budget)?;
    let pairs = n * (n - 1) / 2;
    let current = g.to_bitmask().expect("n ≤ 11 here");
    let old = state.costs();
    let pair_list: Vec<(u32, u32)> = (0..n as u32)
        .flat_map(|u| (u + 1..n as u32).map(move |v| (u, v)))
        .collect();
    let model = state.cost_model();
    for mask in 0u64..1u64 << pairs {
        if mask == current {
            continue;
        }
        let diff = mask ^ current;
        let target = Graph::from_bitmask(n, mask).expect("n ≤ 11 here");
        let mut improving: Vec<Option<bool>> = vec![None; n];
        let mut improves = |w: u32, target: &Graph| -> bool {
            let slot = &mut improving[w as usize];
            if let Some(v) = *slot {
                return v;
            }
            let v = model.cost(target, w).better_than(&old[w as usize], alpha);
            *slot = Some(v);
            v
        };
        let mut valid = true;
        let mut removed = Vec::new();
        let mut added = Vec::new();
        for (i, &(u, v)) in pair_list.iter().enumerate() {
            if diff >> i & 1 == 0 {
                continue;
            }
            if current >> i & 1 == 1 {
                // removed edge: needs an improving endpoint
                if !improves(u, &target) && !improves(v, &target) {
                    valid = false;
                    break;
                }
                removed.push((u, v));
            } else {
                // added edge: needs both endpoints improving
                if !improves(u, &target) || !improves(v, &target) {
                    valid = false;
                    break;
                }
                added.push((u, v));
            }
        }
        if !valid {
            continue;
        }
        let mut members: Vec<u32> = Vec::new();
        for &(u, v) in &added {
            members.push(u);
            members.push(v);
        }
        for &(u, v) in &removed {
            if improves(u, &target) {
                members.push(u);
            } else {
                members.push(v);
            }
        }
        members.sort_unstable();
        members.dedup();
        return Ok(Some(Move::Coalition {
            members,
            remove_edges: removed,
            add_edges: added,
        }));
    }
    Ok(None)
}

/// Whether `g` is in Bilateral Strong Equilibrium (exact).
///
/// # Errors
///
/// Same guard as [`find_violation`].
pub fn is_stable(g: &Graph, alpha: Alpha) -> Result<bool, GameError> {
    Ok(find_violation(g, alpha)?.is_none())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bncg_graph::generators;

    fn a(s: &str) -> Alpha {
        s.parse().unwrap()
    }

    #[test]
    fn bse_equals_n_bse_on_small_graphs() {
        // Cross-validate the target-graph enumeration against the
        // coalition-first k-BSE checker with k = n.
        let mut rng = bncg_graph::test_rng(18);
        for _ in 0..12 {
            let g = generators::random_connected(5, 0.4, &mut rng);
            for alpha in ["1/2", "1", "2", "4"] {
                let alpha = a(alpha);
                let by_target = find_violation(&g, alpha).unwrap().is_some();
                let by_coalition = crate::concepts::kbse::find_violation(&g, alpha, 5)
                    .unwrap()
                    .is_some();
                assert_eq!(by_target, by_coalition, "engines disagree at α = {alpha}");
            }
        }
    }

    #[test]
    fn proposition_3_16_clique_only_bse_below_one() {
        let alpha = a("1/2");
        for g in bncg_graph::enumerate::connected_graphs(5).unwrap() {
            let stable = is_stable(&g, alpha).unwrap();
            let is_clique = g.m() == 5 * 4 / 2;
            assert_eq!(stable, is_clique, "only the clique is BSE for α < 1");
        }
    }

    #[test]
    fn proposition_3_16_diameter_two_at_alpha_one() {
        let alpha = a("1");
        for g in bncg_graph::enumerate::connected_graphs(5).unwrap() {
            let stable = is_stable(&g, alpha).unwrap();
            let diam = bncg_graph::diameter(&g).unwrap();
            assert_eq!(
                stable,
                diam <= 2,
                "BSE at α = 1 are exactly the diameter ≤ 2 graphs"
            );
        }
    }

    #[test]
    fn proposition_3_16_star_and_p4_above_one() {
        assert!(is_stable(&generators::star(6), a("2")).unwrap());
        // A path of 4 nodes is in BSE for α = 100 (Prop. 3.16).
        assert!(is_stable(&generators::path(4), a("100")).unwrap());
        // …but not for small α (ends would link up).
        assert!(!is_stable(&generators::path(4), a("1")).unwrap());
    }

    #[test]
    fn lemma_2_4_cycle_windows() {
        // C_n is in BSE inside a Θ(n²) window (Lemma 2.4). With the RE
        // threshold worked out exactly: even n gives
        // (n²/4 − (n−1), n(n−2)/4], odd n gives
        // ((n+1)(n−1)/4 − (n−1), (n−1)²/4].
        // n = 5: window (2, 4]; n = 6: window (4, 6].
        for (n, inside, outside) in [
            (5usize, "3", "9/2"),
            (6, "5", "7"),
            (5, "7/2", "5"),
            (6, "23/4", "13/2"),
        ] {
            let g = generators::cycle(n);
            assert!(
                is_stable(&g, a(inside)).unwrap(),
                "C{n} must be BSE at α = {inside}"
            );
            assert!(
                !is_stable(&g, a(outside)).unwrap(),
                "C{n} must not be BSE at α = {outside}"
            );
        }
    }

    /// Pruned and reference scans return identical witnesses (filters are
    /// order-preserving and only ever skip non-violations).
    #[test]
    #[allow(deprecated)] // reference test for the compat wrapper
    fn pruned_scan_matches_reference_witness_exactly() {
        let mut rng = bncg_graph::test_rng(0xB5E);
        for case in 0..10 {
            let g = if case % 3 == 0 {
                generators::random_tree(6, &mut rng)
            } else {
                generators::random_connected(6, 0.4, &mut rng)
            };
            for alpha in ["1/2", "1", "2", "8"] {
                let state = GameState::new(g.clone(), a(alpha));
                let budget = CheckBudget::default();
                let pruned =
                    crate::compat::bse::find_violation_in_with_budget(&state, budget).unwrap();
                let reference = find_violation_in_reference(&state, budget).unwrap();
                assert_eq!(pruned, reference, "witness mismatch at α = {alpha}");
            }
        }
    }

    #[test]
    #[allow(deprecated)] // reference test for the compat wrappers
    fn parallel_scan_matches_sequential_witness_exactly() {
        let mut rng = bncg_graph::test_rng(0xB5F);
        for _ in 0..6 {
            let g = generators::random_connected(6, 0.35, &mut rng);
            for alpha in ["1/2", "2"] {
                let state = GameState::new(g.clone(), a(alpha));
                let budget = CheckBudget::default();
                let seq =
                    crate::compat::bse::find_violation_in_with_budget(&state, budget).unwrap();
                for threads in [2usize, 4] {
                    let par =
                        crate::compat::bse::find_violation_in_parallel(&state, budget, threads)
                            .unwrap();
                    assert_eq!(seq, par, "threads = {threads}");
                }
            }
        }
    }

    #[test]
    fn guard_fires_for_large_instances() {
        let g = generators::path(8);
        assert!(matches!(
            find_violation(&g, a("1")),
            Err(GameError::CheckTooLarge { .. })
        ));
    }

    #[test]
    fn witnesses_are_replayable() {
        let mut rng = bncg_graph::test_rng(19);
        for _ in 0..10 {
            let g = generators::random_connected(5, 0.4, &mut rng);
            for alpha in ["1/2", "1", "3"] {
                if let Some(mv) = find_violation(&g, a(alpha)).unwrap() {
                    assert!(
                        crate::delta::move_improves_all(&g, a(alpha), &mv).unwrap(),
                        "witness {mv} must replay"
                    );
                }
            }
        }
    }
}
