//! Bilateral Swap Equilibrium (BSwE): stable when no agent `u` with a
//! bilateral edge `{u, v}` can replace `v` by some consenting `w` such that
//! both `u` and `w` strictly improve. `u`'s buying cost is unchanged, `w`
//! pays for one new edge, `v` is not asked (Section 1.1).

use crate::alpha::Alpha;
use crate::delta::tree_swap_costs;
use crate::moves::Move;
use crate::state::GameState;
use bncg_graph::{DistanceMatrix, Graph};

/// Finds a mutually profitable swap, or `None` if `g` is in BSwE.
///
/// On trees the post-swap costs come from component sums over the
/// pre-move distance matrix (`O(n)` per candidate, `O(n³)` total); on
/// general graphs the checker falls back to applying each candidate and
/// re-running BFS for the two consenting agents.
///
/// # Examples
///
/// ```
/// use bncg_core::{concepts::bswe, Alpha};
/// use bncg_graph::generators;
///
/// // A path wants to fold into a star when edges are expensive relative
/// // to distance: the far end swaps its edge towards the center.
/// let path = generators::path(6);
/// assert!(bswe::find_violation(&path, Alpha::integer(2)?).is_some());
///
/// // The star is swap-stable.
/// assert!(bswe::find_violation(&generators::star(6), Alpha::integer(2)?).is_none());
/// # Ok::<(), bncg_core::GameError>(())
/// ```
#[must_use]
pub fn find_violation(g: &Graph, alpha: Alpha) -> Option<Move> {
    find_violation_in(&GameState::new(g.clone(), alpha))
}

/// [`find_violation`] against a caller-maintained [`GameState`]: the tree
/// fast path reads the cached matrix; the general fallback BFS-es only the
/// two consenting agents through the state's evaluator.
#[must_use]
pub fn find_violation_in(state: &GameState) -> Option<Move> {
    let (g, alpha) = (state.graph(), state.alpha());
    let n = g.n() as u32;
    let old = state.costs();
    let mut ev = state.evaluator();
    for agent in 0..n {
        let neighbors: Vec<u32> = g.neighbors(agent).to_vec();
        for &dropped in &neighbors {
            for new in 0..n {
                if new == agent || g.has_edge(agent, new) {
                    continue;
                }
                if state.is_tree() {
                    // `O(n)` component sums; `None` marks a disconnecting
                    // swap, which is never improving from a tree.
                    let Some((c_agent, c_new)) =
                        tree_swap_costs(g, state.distances(), agent, dropped, new)
                    else {
                        continue;
                    };
                    if c_agent.better_than(&old[agent as usize], alpha)
                        && c_new.better_than(&old[new as usize], alpha)
                    {
                        return Some(Move::Swap {
                            agent,
                            old: dropped,
                            new,
                        });
                    }
                } else {
                    let mv = Move::Swap {
                        agent,
                        old: dropped,
                        new,
                    };
                    if ev.improves_all(&mv).expect("swap candidate is valid") {
                        return Some(mv);
                    }
                }
            }
        }
    }
    None
}

/// [`find_violation`] with a caller-supplied distance matrix (pre-engine
/// entry point, kept for callers that own a bare matrix).
#[must_use]
pub fn find_violation_with_matrix(g: &Graph, alpha: Alpha, d: &DistanceMatrix) -> Option<Move> {
    find_violation_in(&GameState::with_matrix(g.clone(), alpha, d.clone()))
}

/// Whether `g` is in Bilateral Swap Equilibrium.
#[must_use]
pub fn is_stable(g: &Graph, alpha: Alpha) -> bool {
    find_violation(g, alpha).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bncg_graph::generators;

    fn a(s: &str) -> Alpha {
        s.parse().unwrap()
    }

    #[test]
    fn star_is_swap_stable() {
        for alpha in ["1/2", "1", "17"] {
            assert!(is_stable(&generators::star(7), a(alpha)));
        }
    }

    #[test]
    fn long_path_folds() {
        // On the path 0-…-5 the end agent 0 prefers swapping its edge
        // {0,1} towards the middle; the middle node gains many shortcuts.
        let g = generators::path(6);
        let mv = find_violation(&g, a("2")).unwrap();
        assert!(crate::delta::move_improves_all(&g, a("2"), &mv).unwrap());
    }

    #[test]
    fn tree_fast_path_agrees_with_generic_on_random_trees() {
        let mut rng = bncg_graph::test_rng(8);
        for _ in 0..15 {
            let g = generators::random_tree(11, &mut rng);
            for alpha in ["1/2", "1", "3", "10"] {
                let alpha = a(alpha);
                let fast = find_violation(&g, alpha);
                // Brute force through every swap with the generic engine.
                let mut brute = None;
                'outer: for agent in 0..11u32 {
                    for &old in g.neighbors(agent) {
                        for new in 0..11u32 {
                            if new == agent || g.has_edge(agent, new) {
                                continue;
                            }
                            let mv = Move::Swap { agent, old, new };
                            if crate::delta::move_improves_all(&g, alpha, &mv).unwrap() {
                                brute = Some(mv);
                                break 'outer;
                            }
                        }
                    }
                }
                assert_eq!(fast.is_some(), brute.is_some(), "α = {alpha}, g = {g:?}");
                if let Some(mv) = fast {
                    assert!(crate::delta::move_improves_all(&g, alpha, &mv).unwrap());
                }
            }
        }
    }

    #[test]
    fn general_graph_swaps_are_detected() {
        // A 6-cycle at moderate α: agents reroute a cycle edge into a
        // chord is never possible (buying unchanged only for the swapper);
        // verify against brute force rather than intuition.
        let g = generators::cycle(6);
        for alpha in ["1/2", "1", "2"] {
            let alpha = a(alpha);
            let fast = find_violation(&g, alpha);
            let mut brute = None;
            'outer: for agent in 0..6u32 {
                for &old in g.neighbors(agent) {
                    for new in 0..6u32 {
                        if new == agent || g.has_edge(agent, new) {
                            continue;
                        }
                        let mv = Move::Swap { agent, old, new };
                        if crate::delta::move_improves_all(&g, alpha, &mv).unwrap() {
                            brute = Some(mv);
                            break 'outer;
                        }
                    }
                }
            }
            assert_eq!(fast.is_some(), brute.is_some());
        }
    }

    #[test]
    fn witnesses_are_replayable() {
        let mut rng = bncg_graph::test_rng(9);
        for _ in 0..10 {
            let g = generators::random_connected(9, 0.2, &mut rng);
            for alpha in ["1", "5/2"] {
                if let Some(mv) = find_violation(&g, a(alpha)) {
                    assert!(crate::delta::move_improves_all(&g, a(alpha), &mv).unwrap());
                }
            }
        }
    }
}
