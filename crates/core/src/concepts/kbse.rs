//! Bilateral k-Strong Equilibrium (k-BSE): no coalition `Γ` with `|Γ| ≤ k`
//! has a joint move — deleting any edges that touch `Γ` and creating any
//! edges inside `Γ` — from which *every* member strictly benefits.
//!
//! The exact checker enumerates coalitions and their full move spaces and
//! therefore carries a [`CheckBudget`] guard: a coalition touching
//! high-degree nodes owns `2^{|E_Γ|}` removal subsets. The restricted
//! checker bounds the number of simultaneous removals instead, trading
//! completeness for scale (a `None` from it is evidence, not proof).

use crate::alpha::Alpha;
use crate::combinatorics::{bounded_subsets, combinations};
use crate::concepts::CheckBudget;
use crate::cost::{agent_cost_with_buf, AgentCost};
use crate::error::GameError;
use crate::moves::Move;
use crate::state::GameState;
use bncg_graph::Graph;

/// Exact k-BSE check under the default [`CheckBudget`].
///
/// # Errors
///
/// Returns [`GameError::CheckTooLarge`] when the summed move space of all
/// coalitions exceeds the budget.
///
/// # Examples
///
/// ```
/// use bncg_core::{concepts::kbse, Alpha};
/// use bncg_graph::generators;
///
/// let alpha = Alpha::integer(2)?;
/// // 3-BSE: the star survives, the long path does not.
/// assert!(kbse::find_violation(&generators::star(7), alpha, 3)?.is_none());
/// assert!(kbse::find_violation(&generators::path(7), alpha, 3)?.is_some());
/// # Ok::<(), bncg_core::GameError>(())
/// ```
pub fn find_violation(g: &Graph, alpha: Alpha, k: usize) -> Result<Option<Move>, GameError> {
    find_violation_with_budget(g, alpha, k, CheckBudget::default())
}

/// Exact k-BSE check with an explicit work budget.
///
/// # Errors
///
/// Returns [`GameError::CheckTooLarge`] if the total number of candidate
/// moves exceeds `budget.max_evals`.
pub fn find_violation_with_budget(
    g: &Graph,
    alpha: Alpha,
    k: usize,
    budget: CheckBudget,
) -> Result<Option<Move>, GameError> {
    if g.n() <= 1 || k == 0 {
        return Ok(None);
    }
    check_budget(g, k, budget)?;
    find_violation_in_with_budget(&GameState::new(g.clone(), alpha), k, budget)
}

/// Pre-pass sizing the summed move space of all coalitions against the
/// budget before any cost evaluation starts.
fn check_budget(g: &Graph, k: usize, budget: CheckBudget) -> Result<(), GameError> {
    let n = g.n();
    let k = k.min(n);
    let mut total_work: u128 = 0;
    for size in 1..=k {
        for coalition in combinations(n, size) {
            let (removable, addable) = coalition_move_space(g, &coalition);
            let bits = removable.len() + addable.len();
            if bits >= 60 {
                return Err(GameError::CheckTooLarge {
                    reason: format!("coalition {coalition:?} owns 2^{bits} candidate moves"),
                });
            }
            total_work += 1u128 << bits;
            if total_work > u128::from(budget.max_evals) {
                return Err(GameError::CheckTooLarge {
                    reason: format!(
                        "k-BSE move space exceeds budget {} (n = {n}, k = {k})",
                        budget.max_evals
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Exact k-BSE check against a caller-maintained [`GameState`]: pre-move
/// costs come from the state's cache, and each candidate coalition move
/// BFS-es only the coalition members.
///
/// # Errors
///
/// Same guard as [`find_violation_with_budget`].
pub fn find_violation_in_with_budget(
    state: &GameState,
    k: usize,
    budget: CheckBudget,
) -> Result<Option<Move>, GameError> {
    let g = state.graph();
    let n = g.n();
    if n <= 1 || k == 0 {
        return Ok(None);
    }
    check_budget(g, k, budget)?;
    let k = k.min(n);
    let alpha = state.alpha();
    let old = state.costs();
    let mut scratch = g.clone();
    let mut buf = Vec::new();
    for size in 1..=k {
        for coalition in combinations(n, size) {
            let (removable, addable) = coalition_move_space(g, &coalition);
            if let Some(mv) = scan_coalition_moves(
                &mut scratch,
                alpha,
                old,
                &coalition,
                &removable,
                &addable,
                &mut buf,
            ) {
                return Ok(Some(mv));
            }
        }
    }
    Ok(None)
}

/// Restricted k-BSE refuter: only moves deleting at most `max_removals`
/// edges are scanned (additions inside a size-k coalition are at most
/// `C(k,2)` and always fully enumerated). `None` means *no violation found
/// in the restricted space* — it is not a stability certificate.
#[must_use]
pub fn find_violation_restricted(
    g: &Graph,
    alpha: Alpha,
    k: usize,
    max_removals: usize,
) -> Option<Move> {
    let n = g.n();
    if n <= 1 || k == 0 {
        return None;
    }
    let k = k.min(n);
    // Plain BFS costs: the scan below never reads a distance matrix, so a
    // full GameState build would be wasted work here.
    let old: Vec<AgentCost> = (0..n as u32)
        .map(|u| crate::cost::agent_cost(g, u))
        .collect();
    let mut scratch = g.clone();
    let mut buf = Vec::new();
    for size in 1..=k {
        for coalition in combinations(n, size) {
            let (removable, addable) = coalition_move_space(g, &coalition);
            for add in bounded_subsets(&addable, 0, addable.len()) {
                for rem in bounded_subsets(&removable, 0, max_removals.min(removable.len())) {
                    if add.is_empty() && rem.is_empty() {
                        continue;
                    }
                    if let Some(mv) = eval_coalition_move(
                        &mut scratch,
                        alpha,
                        &old,
                        &coalition,
                        &rem,
                        &add,
                        &mut buf,
                    ) {
                        return Some(mv);
                    }
                }
            }
        }
    }
    None
}

/// Parallel variant of [`find_violation_restricted`]: coalitions are
/// partitioned across `threads` OS threads (std scoped threads — no extra
/// dependency), each scanning with its own scratch graph. The stable /
/// unstable verdict matches the serial scan; when several violations
/// exist the *witness* returned depends on thread timing (any returned
/// move is certified improving, as everywhere else).
///
/// # Panics
///
/// Panics if `threads == 0`.
#[must_use]
pub fn find_violation_restricted_parallel(
    g: &Graph,
    alpha: Alpha,
    k: usize,
    max_removals: usize,
    threads: usize,
) -> Option<Move> {
    assert!(threads > 0, "need at least one thread");
    let n = g.n();
    if n <= 1 || k == 0 {
        return None;
    }
    let k = k.min(n);
    let coalitions: Vec<Vec<u32>> = (1..=k).flat_map(|size| combinations(n, size)).collect();
    // Plain BFS costs, as in the serial refuter: no matrix is read here.
    let old: Vec<AgentCost> = (0..n as u32)
        .map(|u| crate::cost::agent_cost(g, u))
        .collect();
    let old = &old;
    let found = std::sync::atomic::AtomicBool::new(false);
    let result = std::sync::Mutex::new(None::<Move>);
    let chunk = coalitions.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for piece in coalitions.chunks(chunk.max(1)) {
            let found = &found;
            let result = &result;
            scope.spawn(move || {
                let mut scratch = g.clone();
                let mut buf = Vec::new();
                for coalition in piece {
                    if found.load(std::sync::atomic::Ordering::Relaxed) {
                        return;
                    }
                    let (removable, addable) = coalition_move_space(g, coalition);
                    for add in bounded_subsets(&addable, 0, addable.len()) {
                        for rem in bounded_subsets(&removable, 0, max_removals.min(removable.len()))
                        {
                            if add.is_empty() && rem.is_empty() {
                                continue;
                            }
                            if let Some(mv) = eval_coalition_move(
                                &mut scratch,
                                alpha,
                                old,
                                coalition,
                                &rem,
                                &add,
                                &mut buf,
                            ) {
                                *result.lock().expect("no poisoning") = Some(mv);
                                found.store(true, std::sync::atomic::Ordering::Relaxed);
                                return;
                            }
                        }
                    }
                }
            });
        }
    });
    result.into_inner().expect("no poisoning")
}

/// Deletable edges and creatable pairs of a coalition.
type MoveSpace = (Vec<(u32, u32)>, Vec<(u32, u32)>);

/// The edges a coalition may delete (touching Γ) and the pairs it may
/// create (inside Γ).
fn coalition_move_space(g: &Graph, coalition: &[u32]) -> MoveSpace {
    let in_coalition = |x: u32| coalition.contains(&x);
    let removable: Vec<(u32, u32)> = g
        .edges()
        .filter(|&(u, v)| in_coalition(u) || in_coalition(v))
        .collect();
    let mut addable = Vec::new();
    for (i, &u) in coalition.iter().enumerate() {
        for &v in &coalition[i + 1..] {
            if !g.has_edge(u, v) {
                addable.push((u.min(v), u.max(v)));
            }
        }
    }
    (removable, addable)
}

/// Full mask scan over a single coalition's move space.
fn scan_coalition_moves(
    scratch: &mut Graph,
    alpha: Alpha,
    old: &[AgentCost],
    coalition: &[u32],
    removable: &[(u32, u32)],
    addable: &[(u32, u32)],
    buf: &mut Vec<u32>,
) -> Option<Move> {
    let rbits = removable.len();
    let abits = addable.len();
    for rem_mask in 0u64..1u64 << rbits {
        for add_mask in 0u64..1u64 << abits {
            if rem_mask == 0 && add_mask == 0 {
                continue;
            }
            let rem: Vec<(u32, u32)> = (0..rbits)
                .filter(|&i| rem_mask >> i & 1 == 1)
                .map(|i| removable[i])
                .collect();
            let add: Vec<(u32, u32)> = (0..abits)
                .filter(|&i| add_mask >> i & 1 == 1)
                .map(|i| addable[i])
                .collect();
            if let Some(mv) = eval_coalition_move(scratch, alpha, old, coalition, &rem, &add, buf) {
                return Some(mv);
            }
        }
    }
    None
}

/// Applies a coalition move in place, checks every member improves, and
/// restores the graph.
fn eval_coalition_move(
    scratch: &mut Graph,
    alpha: Alpha,
    old: &[AgentCost],
    coalition: &[u32],
    rem: &[(u32, u32)],
    add: &[(u32, u32)],
    buf: &mut Vec<u32>,
) -> Option<Move> {
    for &(u, v) in rem {
        scratch.remove_edge(u, v).expect("removable edge exists");
    }
    for &(u, v) in add {
        scratch.add_edge(u, v).expect("addable pair is a non-edge");
    }
    let improving = coalition
        .iter()
        .all(|&w| agent_cost_with_buf(scratch, w, buf).better_than(&old[w as usize], alpha));
    for &(u, v) in add {
        scratch.remove_edge(u, v).expect("restore added");
    }
    for &(u, v) in rem {
        scratch.add_edge(u, v).expect("restore removed");
    }
    if improving {
        Some(Move::Coalition {
            members: coalition.to_vec(),
            remove_edges: rem.to_vec(),
            add_edges: add.to_vec(),
        })
    } else {
        None
    }
}

/// Whether `g` is in Bilateral k-Strong Equilibrium (exact).
///
/// # Errors
///
/// Same guard as [`find_violation`].
pub fn is_stable(g: &Graph, alpha: Alpha, k: usize) -> Result<bool, GameError> {
    Ok(find_violation(g, alpha, k)?.is_none())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bncg_graph::generators;

    fn a(s: &str) -> Alpha {
        s.parse().unwrap()
    }

    #[test]
    fn one_bse_handles_multi_removal() {
        // 1-BSE allows one agent to drop several edges at once (stronger
        // than RE syntactically; equivalent by the Corbo–Parkes argument,
        // which this exercises).
        let mut rng = bncg_graph::test_rng(14);
        for _ in 0..20 {
            let g = generators::random_connected(7, 0.35, &mut rng);
            for alpha in ["1/2", "1", "3"] {
                let alpha = a(alpha);
                assert_eq!(
                    find_violation(&g, alpha, 1).unwrap().is_none(),
                    crate::concepts::re::is_stable(&g, alpha),
                    "1-BSE must coincide with RE (Prop. A.2 argument)"
                );
            }
        }
    }

    #[test]
    fn kbse_ladder_is_monotone() {
        // (k+1)-BSE ⊆ k-BSE: more cooperation can only destabilize.
        let mut rng = bncg_graph::test_rng(15);
        for _ in 0..15 {
            let g = generators::random_connected(6, 0.3, &mut rng);
            for alpha in ["1/2", "1", "2", "5"] {
                let alpha = a(alpha);
                let mut prev_stable = true;
                for k in 1..=6usize {
                    let stable = is_stable(&g, alpha, k).unwrap();
                    if !prev_stable {
                        assert!(!stable, "stability must be antitone in k");
                    }
                    prev_stable = stable;
                }
            }
        }
    }

    #[test]
    fn star_is_3bse_stable() {
        for alpha in ["1", "2", "20"] {
            assert!(is_stable(&generators::star(7), a(alpha), 3).unwrap());
        }
    }

    #[test]
    fn witnesses_are_replayable() {
        let mut rng = bncg_graph::test_rng(16);
        for _ in 0..10 {
            let g = generators::random_connected(6, 0.3, &mut rng);
            for alpha in ["1/2", "2"] {
                for k in [2usize, 3] {
                    if let Some(mv) = find_violation(&g, a(alpha), k).unwrap() {
                        assert!(crate::delta::move_improves_all(&g, a(alpha), &mv).unwrap());
                        if let Move::Coalition { members, .. } = &mv {
                            assert!(members.len() <= k);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn restricted_matches_exact_when_unrestricted() {
        let mut rng = bncg_graph::test_rng(17);
        for _ in 0..10 {
            let g = generators::random_connected(6, 0.3, &mut rng);
            for alpha in ["1", "3"] {
                let alpha = a(alpha);
                let exact = find_violation(&g, alpha, 2).unwrap().is_some();
                let restricted = find_violation_restricted(&g, alpha, 2, g.m()).is_some();
                assert_eq!(exact, restricted);
            }
        }
    }

    #[test]
    fn parallel_restricted_agrees_with_serial() {
        let mut rng = bncg_graph::test_rng(73);
        for _ in 0..8 {
            let g = generators::random_connected(7, 0.3, &mut rng);
            for alpha in ["1", "3"] {
                let alpha = a(alpha);
                let serial = find_violation_restricted(&g, alpha, 2, 2);
                for threads in [1usize, 4] {
                    let parallel = find_violation_restricted_parallel(&g, alpha, 2, 2, threads);
                    assert_eq!(serial.is_some(), parallel.is_some());
                    if let Some(mv) = parallel {
                        assert!(crate::delta::move_improves_all(&g, alpha, &mv).unwrap());
                    }
                }
            }
        }
    }

    #[test]
    fn budget_guard_fires() {
        // A dense graph with a huge coalition move space.
        let g = generators::clique(16);
        assert!(matches!(
            find_violation_with_budget(&g, a("1"), 3, CheckBudget::new(1000)),
            Err(GameError::CheckTooLarge { .. })
        ));
    }

    #[test]
    fn cycle_collapses_under_coalitions_at_low_alpha() {
        // At α slightly above the RE threshold a cycle is pairwise stable,
        // but for very low α agents build chords bilaterally; 2-BSE must
        // catch what BAE catches.
        let g = generators::cycle(6);
        let alpha = a("1");
        assert_eq!(
            find_violation(&g, alpha, 2).unwrap().is_some(),
            crate::concepts::bge::find_violation(&g, alpha).is_some()
                || find_violation_restricted(&g, alpha, 2, 6).is_some()
        );
    }
}
