//! Bilateral k-Strong Equilibrium (k-BSE): no coalition `Γ` with `|Γ| ≤ k`
//! has a joint move — deleting any edges that touch `Γ` and creating any
//! edges inside `Γ` — from which *every* member strictly benefits.
//!
//! The exact checker enumerates coalitions and their full move spaces and
//! therefore carries a [`CheckBudget`] guard: a coalition touching
//! high-degree nodes owns `2^{|E_Γ|}` removal subsets. The restricted
//! checker bounds the number of simultaneous removals instead, trading
//! completeness for scale (a `None` from it is evidence, not proof).
//!
//! All scans — exact, restricted, sequential, and parallel — now share
//! **one candidate iterator** over the
//! [`candidates`](crate::candidates) layer. Two observations make that
//! layer bite hard here:
//!
//! 1. An edit set is a k-BSE violation **iff** its strictly improving
//!    endpoints admit a covering coalition of size ≤ k (both endpoints of
//!    every added edge improve, every removed edge has an improving
//!    endpoint, and a ≤ k cover of those exists) — the same covering
//!    argument the BSE target-graph checker uses, bounded by `k`. The
//!    verdict is therefore *coalition-independent*, so
//! 2. each canonical edit set needs to be evaluated **once**, even though
//!    the coalition enumeration regenerates it for every covering
//!    coalition. The scan deduplicates by canonical fingerprint
//!    ([`crate::candidates::edit_fingerprint`]) and prunes candidates the
//!    [`EditSetPruner`] inequalities prove non-improving.
//!
//! The pre-dedup scan is retained as [`find_violation_in_reference`] for
//! the property suite and the `pruning` bench. The [`crate::solver`]
//! surface drives the same shared candidate iterator anytime-style, one
//! unit per coalition in size-major order.

use crate::alpha::Alpha;
use crate::candidates::{
    add_endpoint_requirement, coalition_member_cap, coalition_min_rows, edit_fingerprint, edit_key,
    CandidateStats, EditSetPruner, EndpointRequirement,
};
use crate::combinatorics::{bounded_subsets, combinations};
use crate::concepts::{CheckBudget, Concept};
use crate::cost::{agent_cost_from_matrix, AgentCost};
use crate::cost_model::{CostModel, CostModelSpec};
use crate::error::GameError;
use crate::generator::{BranchScan, IncidentInterval, RemovalIntervalOracle, Step};
use crate::moves::Move;
use crate::scan::{CtlLocal, ScanCtl, UnitOutcome, UnitScanner};
use crate::solver::solve_to_completion;
use crate::state::GameState;
use bncg_graph::{DistanceMatrix, Graph};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

/// Exact k-BSE check under the default [`CheckBudget`].
///
/// # Errors
///
/// Returns [`GameError::CheckTooLarge`] when the summed move space of all
/// coalitions exceeds the budget.
///
/// # Examples
///
/// ```
/// use bncg_core::{concepts::kbse, Alpha};
/// use bncg_graph::generators;
///
/// let alpha = Alpha::integer(2)?;
/// // 3-BSE: the star survives, the long path does not.
/// assert!(kbse::find_violation(&generators::star(7), alpha, 3)?.is_none());
/// assert!(kbse::find_violation(&generators::path(7), alpha, 3)?.is_some());
/// # Ok::<(), bncg_core::GameError>(())
/// ```
pub fn find_violation(g: &Graph, alpha: Alpha, k: usize) -> Result<Option<Move>, GameError> {
    if g.n() <= 1 || k == 0 {
        return Ok(None);
    }
    check_budget(g, k, CheckBudget::default())?;
    solve_to_completion(
        Concept::KBse(k.min(u32::MAX as usize) as u32),
        &GameState::new(g.clone(), alpha),
    )
}

/// The legacy size guard: sizes the summed move space of all coalitions
/// against the budget before any cost evaluation starts (the raw space —
/// pruning and dedup only ever shrink the work below this bound). The
/// solver path has no such guard; it scans anytime-style and exhausts.
pub(crate) fn check_budget(g: &Graph, k: usize, budget: CheckBudget) -> Result<(), GameError> {
    let n = g.n();
    let k = k.min(n);
    let mut total_work: u128 = 0;
    for size in 1..=k {
        for coalition in combinations(n, size) {
            let (removable, addable) = coalition_move_space(g, &coalition);
            let bits = removable.len() + addable.len();
            if bits >= 60 {
                return Err(GameError::CheckTooLarge {
                    reason: format!("coalition {coalition:?} owns 2^{bits} candidate moves"),
                });
            }
            total_work += 1u128 << bits;
            if total_work > u128::from(budget.max_evals) {
                return Err(GameError::CheckTooLarge {
                    reason: format!(
                        "k-BSE move space exceeds budget {} (n = {n}, k = {k})",
                        budget.max_evals
                    ),
                });
            }
        }
    }
    Ok(())
}

/// The direct engine-path full scan, reporting how much of the raw
/// candidate space was pruned or deduplicated away. This is the
/// sequential scan the solver drives; the perf gate measures it as the
/// facade-overhead reference.
///
/// # Errors
///
/// The legacy raw-space pre-guard against `budget`.
pub fn find_violation_in_with_stats(
    state: &GameState,
    k: usize,
    budget: CheckBudget,
) -> Result<(Option<Move>, CandidateStats), GameError> {
    let g = state.graph();
    let n = g.n();
    let mut stats = CandidateStats::default();
    if n <= 1 || k == 0 {
        return Ok((None, stats));
    }
    check_budget(g, k, budget)?;
    let k = k.min(n);
    let mut scan = CoalitionScan::new(
        g,
        state.alpha(),
        state.cost_model(),
        state.costs(),
        state.is_tree(),
        k,
        Some(state.distances()),
    );
    let ctl = ScanCtl::unbounded();
    let mut cl = CtlLocal::new(&ctl);
    for size in 1..=k {
        for coalition in combinations(n, size) {
            match scan.scan_coalition(&coalition, usize::MAX, &mut stats, &ctl, &mut cl, 0) {
                UnitOutcome::Found(mv) => return Ok((Some(mv), stats)),
                UnitOutcome::Done => {}
                UnitOutcome::Stopped(_) => unreachable!("unbounded controls never stop"),
            }
        }
    }
    Ok((None, stats))
}

/// The solver's k-BSE unit scanner: one unit per coalition in the
/// canonical size-major order, positions in each coalition's raw edit
/// enumeration order (mask-based where the move space fits 63 bits,
/// size-bounded subset order otherwise). Dedup sets are per workspace,
/// so a resumed or parallel scan may re-evaluate edit sets an
/// uninterrupted run deduplicated — wasted work, never a wrong verdict
/// (a deduplicated set is always a previously judged non-violation).
pub(crate) struct SolverScan<'a> {
    state: &'a GameState,
    k: usize,
    coalitions: Vec<Vec<u32>>,
}

impl<'a> SolverScan<'a> {
    pub(crate) fn new(state: &'a GameState, k: usize) -> Self {
        let n = state.n();
        let k = k.min(n);
        let coalitions: Vec<Vec<u32>> = if n <= 1 || k == 0 {
            Vec::new()
        } else {
            (1..=k).flat_map(|size| combinations(n, size)).collect()
        };
        SolverScan {
            state,
            k,
            coalitions,
        }
    }
}

impl<'a> UnitScanner for SolverScan<'a> {
    type Ws = CoalitionScan<'a>;

    fn units(&self) -> u64 {
        self.coalitions.len() as u64
    }

    fn workspace(&self) -> CoalitionScan<'a> {
        CoalitionScan::new(
            self.state.graph(),
            self.state.alpha(),
            self.state.cost_model(),
            self.state.costs(),
            self.state.is_tree(),
            self.k,
            Some(self.state.distances()),
        )
    }

    fn scan_unit(
        &self,
        ws: &mut CoalitionScan<'a>,
        stats: &mut CandidateStats,
        unit: u64,
        start: u64,
        ctl: &ScanCtl,
        cl: &mut CtlLocal,
        _racing: Option<&AtomicU64>,
    ) -> UnitOutcome {
        ws.scan_coalition(
            &self.coalitions[unit as usize],
            usize::MAX,
            stats,
            ctl,
            cl,
            start,
        )
    }
}

/// Restricted k-BSE refuter: only moves deleting at most `max_removals`
/// edges are scanned (additions inside a size-k coalition are at most
/// `C(k,2)` and always fully enumerated). `None` means *no violation found
/// in the restricted space* — it is not a stability certificate.
///
/// The refuter now builds one all-pairs distance matrix up front
/// (`O(n·m)` — the same work its per-agent BFS costs already paid) and
/// feeds the **inequality-6 saving caps** to the removal-restricted
/// subset scan: each addition subset's endpoint caps are memoized once
/// per coalition, and any candidate whose own-removal count cannot pay
/// for an added endpoint's edges is pruned before the covering search.
/// The caps are exactness-preserving, so the restricted verdict is
/// unchanged — tested against the unrestricted exact path on instances
/// where the removal cap does not bind (`tests/pruning.rs`).
#[must_use]
pub fn find_violation_restricted(
    g: &Graph,
    alpha: Alpha,
    k: usize,
    max_removals: usize,
) -> Option<Move> {
    let n = g.n();
    if n <= 1 || k == 0 {
        return None;
    }
    let k = k.min(n);
    let dist = DistanceMatrix::new(g);
    let old: Vec<AgentCost> = (0..n as u32)
        .map(|u| agent_cost_from_matrix(g, &dist, u))
        .collect();
    let mut scan = CoalitionScan::new(
        g,
        alpha,
        CostModelSpec::SumDistances,
        &old,
        g.is_tree(),
        k,
        Some(&dist),
    );
    let mut stats = CandidateStats::default();
    let ctl = ScanCtl::unbounded();
    let mut cl = CtlLocal::new(&ctl);
    for size in 1..=k {
        for coalition in combinations(n, size) {
            match scan.scan_coalition(&coalition, max_removals, &mut stats, &ctl, &mut cl, 0) {
                UnitOutcome::Found(mv) => return Some(mv),
                UnitOutcome::Done => {}
                UnitOutcome::Stopped(_) => unreachable!("unbounded controls never stop"),
            }
        }
    }
    None
}

/// Parallel variant of [`find_violation_restricted`], sharing the exact
/// same candidate iterator: coalitions are partitioned across `threads`
/// OS threads (std scoped threads — no extra dependency), the first
/// violation in sequential candidate order wins via an atomic
/// lowest-coalition-index race, and the returned witness is **identical**
/// to the sequential scan's.
///
/// # Panics
///
/// Panics if `threads == 0`.
#[must_use]
pub fn find_violation_restricted_parallel(
    g: &Graph,
    alpha: Alpha,
    k: usize,
    max_removals: usize,
    threads: usize,
) -> Option<Move> {
    assert!(threads > 0, "need at least one thread");
    let n = g.n();
    if n <= 1 || k == 0 {
        return None;
    }
    let k = k.min(n);
    let coalitions: Vec<Vec<u32>> = (1..=k).flat_map(|size| combinations(n, size)).collect();
    let dist = DistanceMatrix::new(g);
    let old: Vec<AgentCost> = (0..n as u32)
        .map(|u| agent_cost_from_matrix(g, &dist, u))
        .collect();
    parallel_coalition_scan(
        g,
        alpha,
        &old,
        g.is_tree(),
        Some(&dist),
        &coalitions,
        k,
        max_removals,
        threads,
    )
}

/// The shared sharded scan behind both parallel entry points: strided
/// coalition assignment, per-thread scratch and dedup sets, and a
/// deterministic lowest-index winner so the witness matches the
/// sequential scan.
#[allow(clippy::too_many_arguments)]
fn parallel_coalition_scan(
    g: &Graph,
    alpha: Alpha,
    old: &[AgentCost],
    is_tree: bool,
    dist: Option<&DistanceMatrix>,
    coalitions: &[Vec<u32>],
    k: usize,
    max_removals: usize,
    threads: usize,
) -> Option<Move> {
    if threads == 1 || coalitions.len() < 2 {
        let mut scan =
            CoalitionScan::new(g, alpha, CostModelSpec::SumDistances, old, is_tree, k, dist);
        let mut stats = CandidateStats::default();
        let ctl = ScanCtl::unbounded();
        let mut cl = CtlLocal::new(&ctl);
        for coalition in coalitions {
            match scan.scan_coalition(coalition, max_removals, &mut stats, &ctl, &mut cl, 0) {
                UnitOutcome::Found(mv) => return Some(mv),
                UnitOutcome::Done => {}
                UnitOutcome::Stopped(_) => unreachable!("unbounded controls never stop"),
            }
        }
        return None;
    }
    let best_idx = AtomicU32::new(u32::MAX);
    let best: Mutex<Option<Move>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let best_idx = &best_idx;
            let best = &best;
            scope.spawn(move || {
                let mut scan = CoalitionScan::new(
                    g,
                    alpha,
                    CostModelSpec::SumDistances,
                    old,
                    is_tree,
                    k,
                    dist,
                );
                let mut stats = CandidateStats::default();
                let ctl = ScanCtl::unbounded();
                let mut cl = CtlLocal::new(&ctl);
                let mut i = t;
                while i < coalitions.len() {
                    if (best_idx.load(Ordering::Relaxed) as usize) < i {
                        return;
                    }
                    match scan.scan_coalition(
                        &coalitions[i],
                        max_removals,
                        &mut stats,
                        &ctl,
                        &mut cl,
                        0,
                    ) {
                        UnitOutcome::Found(mv) => {
                            let mut guard = best.lock().expect("no poisoning");
                            if (i as u32) < best_idx.load(Ordering::Relaxed) {
                                best_idx.store(i as u32, Ordering::Relaxed);
                                *guard = Some(mv);
                            }
                            return;
                        }
                        UnitOutcome::Done => {}
                        UnitOutcome::Stopped(_) => unreachable!("unbounded controls never stop"),
                    }
                    i += threads;
                }
            });
        }
    });
    best.into_inner().expect("no poisoning")
}

/// The unified candidate iterator state: one per scanning thread. Holds
/// the scratch graph, the dedup set, and the pruner; `scan_coalition`
/// walks one coalition's (possibly removal-restricted) move space in the
/// canonical order every entry point shares and funnels every candidate
/// through the same dedup → prune → judge pipeline.
///
/// Two enumeration strategies back the shared pipeline, and both carry
/// the inequality-6 saving caps now that every entry point (including
/// the restricted refuters) supplies a distance matrix. With an
/// unrestricted removal budget, removal subsets are walked as
/// branch-and-bound generated masks ([`crate::generator`]) so
/// inequality 6 discards whole subspaces — per class up front, and per
/// removal subtree through the interval oracle; with a removal cap (or
/// removable sets past 64 edges), size-bounded subset iteration is used
/// instead, with the same caps memoized per addition subset and applied
/// per candidate.
pub(crate) struct CoalitionScan<'a> {
    g: &'a Graph,
    alpha: Alpha,
    model: CostModelSpec,
    old: &'a [AgentCost],
    k: usize,
    dist: Option<&'a DistanceMatrix>,
    scratch: Graph,
    buf: Vec<u32>,
    pruner: EditSetPruner,
    seen: HashSet<u128>,
    /// Inequality 6 scratch: the coalition distance profile.
    min_gamma: Vec<u32>,
    /// Inequality 6 requirements for the subset strategy, memoized per
    /// addition subset ordinal of the current coalition: `(endpoint,
    /// requirement)` pairs computed on first touch — through the same
    /// [`endpoint_caps`](Self::endpoint_caps) +
    /// [`add_endpoint_requirement`] pipeline the mask strategy uses —
    /// and reused across every removal subset (the addition subsets
    /// repeat identically inside each removal iteration).
    add_caps: Vec<Option<Vec<(u32, EndpointRequirement)>>>,
    rem_list: Vec<(u32, u32)>,
}

impl<'a> CoalitionScan<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        g: &'a Graph,
        alpha: Alpha,
        model: CostModelSpec,
        old: &'a [AgentCost],
        is_tree: bool,
        k: usize,
        dist: Option<&'a DistanceMatrix>,
    ) -> Self {
        CoalitionScan {
            g,
            alpha,
            model,
            old,
            k,
            dist,
            scratch: g.clone(),
            buf: Vec::new(),
            pruner: EditSetPruner::new(alpha, old, is_tree, model),
            seen: HashSet::new(),
            min_gamma: Vec::new(),
            add_caps: Vec::new(),
            rem_list: Vec::new(),
        }
    }

    /// Scans one coalition's candidate edit sets from position `start`:
    /// removal subsets of the edges touching Γ (at most `max_removals`
    /// at once), crossed with addition subsets of the non-edges inside
    /// Γ. Each canonical edit set is fingerprint-deduplicated, filtered
    /// by the pruning inequalities, and — when it survives — judged
    /// coalition-independently by the ≤ k covering argument. `ctl`/`cl`
    /// stop the scan anytime-style at an exact resumable position.
    fn scan_coalition(
        &mut self,
        coalition: &[u32],
        max_removals: usize,
        stats: &mut CandidateStats,
        ctl: &ScanCtl,
        cl: &mut CtlLocal,
        start: u64,
    ) -> UnitOutcome {
        let (removable, addable) = coalition_move_space(self.g, coalition);
        if self.dist.is_some() {
            // The mask strategy additionally needs positions to fit one
            // u64 (`add_mask · 2^r + rem_mask`); coalitions past 63 total
            // bits fall back to subset order, whose ordinal positions
            // index only what a scan could ever actually visit.
            if max_removals >= removable.len()
                && removable.len() < 60
                && addable.len() <= 20
                && removable.len() + addable.len() <= 63
            {
                return self.scan_coalition_masks(&removable, &addable, stats, ctl, cl, start);
            }
        }
        let rcap = max_removals.min(removable.len());
        // Inequality 6 for the subset strategy (the restricted refuter's
        // path, now that it carries a distance matrix): requirements are
        // memoized per addition subset and applied per candidate.
        let use_caps = self.dist.is_some() && self.pruner.active();
        self.add_caps.clear();
        let mut idx: u64 = 0;
        for rem in bounded_subsets(&removable, 0, rcap) {
            for (cur_add, add) in bounded_subsets(&addable, 0, addable.len()).enumerate() {
                let pos = idx;
                idx += 1;
                if rem.is_empty() && add.is_empty() {
                    continue;
                }
                if pos < start {
                    // Resume seek: regeneration is cheap next to the
                    // evaluations the prior run already paid for.
                    continue;
                }
                stats.generated += 1;
                if self.pruner.prunable(&rem, &add) {
                    stats.pruned += 1;
                    if cl.tick_skipped(ctl, 1) {
                        return UnitOutcome::Stopped(pos + 1);
                    }
                    continue;
                }
                if use_caps && !add.is_empty() {
                    if cur_add >= self.add_caps.len() {
                        self.add_caps.resize(cur_add + 1, None);
                    }
                    if self.add_caps[cur_add].is_none() {
                        let reqs = self
                            .endpoint_caps(&add)
                            .into_iter()
                            .map(|(u, gained, cap)| {
                                let inc =
                                    removable.iter().filter(|&&(a, b)| a == u || b == u).count()
                                        as u32;
                                (u, add_endpoint_requirement(self.alpha, gained, cap, inc))
                            })
                            .collect();
                        self.add_caps[cur_add] = Some(reqs);
                    }
                    let reqs = self.add_caps[cur_add].as_ref().expect("just filled");
                    // The same per-endpoint requirement the mask
                    // strategy applies, resolved against this
                    // candidate's own-incident removal count.
                    let blocked = reqs.iter().any(|&(u, req)| {
                        let l = rem.iter().filter(|&&(a, b)| a == u || b == u).count() as u32;
                        match req {
                            EndpointRequirement::Dead => true,
                            EndpointRequirement::MinIncident(lo) => l < lo,
                            EndpointRequirement::MaxIncident(hi) => l > hi,
                            EndpointRequirement::Free => false,
                        }
                    });
                    if blocked {
                        stats.pruned += 1;
                        if cl.tick_skipped(ctl, 1) {
                            return UnitOutcome::Stopped(pos + 1);
                        }
                        continue;
                    }
                }
                let fp = edit_fingerprint(&rem, &add);
                if !self.seen.insert(fp) {
                    stats.deduped += 1;
                    if cl.tick_skipped(ctl, 1) {
                        return UnitOutcome::Stopped(pos + 1);
                    }
                    continue;
                }
                stats.evaluated += 1;
                if let Some(mv) = self.judge_edit_set(&rem, &add) {
                    // Winning eval still counts toward the shared pool.
                    let _ = cl.tick_eval(ctl);
                    return UnitOutcome::Found(mv);
                }
                if cl.tick_eval(ctl) {
                    return UnitOutcome::Stopped(pos + 1);
                }
            }
        }
        UnitOutcome::Done
    }

    /// Mask-based exact scan of one coalition (addition masks outer,
    /// removal masks inner), with class-level pruning: pure-removal
    /// subspaces are skipped arithmetically, and inequality 6 turns each
    /// added set into per-endpoint own-removal-count constraints that
    /// discard removal masks with one popcount — or the whole subspace
    /// when an endpoint's constraint is unmeetable. Within a class the
    /// removal masks are generated branch-and-bound style
    /// ([`crate::generator`]): the same constraints kill unreachable
    /// removal *subtrees* whole instead of testing their masks one by
    /// one.
    fn scan_coalition_masks(
        &mut self,
        removable: &[(u32, u32)],
        addable: &[(u32, u32)],
        stats: &mut CandidateStats,
        ctl: &ScanCtl,
        cl: &mut CtlLocal,
        start: u64,
    ) -> UnitOutcome {
        let rbits = removable.len();
        let rspace = 1u64 << rbits;
        if start >> rbits >= 1u64 << addable.len() {
            return UnitOutcome::Done;
        }
        let bounds_active = self.pruner.active();
        let removal_only_prunable = self.pruner.removal_only_prunable();
        // Per-edge Zobrist keys (rem role), computed once per coalition.
        let rem_keys: Vec<u128> = removable
            .iter()
            .map(|&(u, v)| edit_key(u, v, false))
            .collect();
        // Inequality 6's own-incident removal-count requirement per
        // added-set endpoint — the same intervals double as the
        // generator's subtree bounds over the removal space.
        let mut reqs: Vec<IncidentInterval> = Vec::new();
        let add0 = start / rspace;
        let rem0 = start % rspace;
        for add_mask in add0..1u64 << addable.len() {
            let base = add_mask * rspace;
            if add_mask == 0 && removal_only_prunable {
                // Pure-removal subspace: one arithmetic skip when the
                // rules apply (the 2^r − 1 nonempty removal subsets).
                stats.generated += rspace - 1;
                stats.pruned += rspace - 1;
                if cl.tick_skipped(ctl, rspace - 1) {
                    return UnitOutcome::Stopped(base + rspace);
                }
                continue;
            }
            let mut add: Vec<(u32, u32)> = Vec::new();
            let mut fp_add = 0u128;
            for (i, &(u, v)) in addable.iter().enumerate() {
                if add_mask >> i & 1 == 1 {
                    add.push((u, v));
                    fp_add ^= edit_key(u, v, true);
                }
            }
            // Inequality 6 against this added set's endpoint profile
            // (shared with the subset strategy via `endpoint_caps`).
            reqs.clear();
            let mut class_dead = false;
            if bounds_active && !add.is_empty() {
                for (u, gained, cap) in self.endpoint_caps(&add) {
                    let mut inc = 0u64;
                    for (i, &(a, b)) in removable.iter().enumerate() {
                        if a == u || b == u {
                            inc |= 1u64 << i;
                        }
                    }
                    match add_endpoint_requirement(self.alpha, gained, cap, inc.count_ones()) {
                        EndpointRequirement::Dead => {
                            class_dead = true;
                            break;
                        }
                        EndpointRequirement::MinIncident(l) => reqs.push(IncidentInterval {
                            incident: inc,
                            lo: l,
                            hi: u32::MAX,
                        }),
                        EndpointRequirement::MaxIncident(l) => reqs.push(IncidentInterval {
                            incident: inc,
                            lo: 0,
                            hi: l,
                        }),
                        EndpointRequirement::Free => {}
                    }
                }
            }
            if class_dead {
                stats.generated += rspace;
                stats.pruned += rspace;
                if cl.tick_skipped(ctl, rspace) {
                    return UnitOutcome::Stopped(base + rspace);
                }
                continue;
            }
            let rem_from = if add_mask == add0 { rem0 } else { 0 };
            // The removal space is *generated*, not iterated: the
            // requirement intervals double as subtree bounds, so a
            // removal range that cannot reach some endpoint's required
            // own-removal count dies whole. Leaves keep the exact
            // per-candidate pipeline (reqs → dedup → pruner → judge).
            let mut oracle = RemovalIntervalOracle { reqs: &reqs };
            let mut scan = BranchScan::new(rem_from, rspace);
            loop {
                match scan.next(&mut oracle) {
                    Step::Done => break,
                    Step::Skipped { base: _, count } => {
                        stats.visited += 1;
                        stats.generated += count;
                        stats.pruned += count;
                        if cl.tick_skipped(ctl, count) {
                            return UnitOutcome::Stopped(base + scan.cursor());
                        }
                    }
                    Step::Leaf(rem_mask) => {
                        if add_mask == 0 && rem_mask == 0 {
                            continue;
                        }
                        stats.visited += 1;
                        let pos = base + rem_mask;
                        stats.generated += 1;
                        if !reqs.iter().all(|r| {
                            let l = (rem_mask & r.incident).count_ones();
                            l >= r.lo && l <= r.hi
                        }) {
                            stats.pruned += 1;
                            if cl.tick_skipped(ctl, 1) {
                                return UnitOutcome::Stopped(pos + 1);
                            }
                            continue;
                        }
                        let mut fp = fp_add;
                        let mut bits = rem_mask;
                        while bits != 0 {
                            fp ^= rem_keys[bits.trailing_zeros() as usize];
                            bits &= bits - 1;
                        }
                        if !self.seen.insert(fp) {
                            stats.deduped += 1;
                            if cl.tick_skipped(ctl, 1) {
                                return UnitOutcome::Stopped(pos + 1);
                            }
                            continue;
                        }
                        self.rem_list.clear();
                        for (i, &e) in removable.iter().enumerate() {
                            if rem_mask >> i & 1 == 1 {
                                self.rem_list.push(e);
                            }
                        }
                        let rem = std::mem::take(&mut self.rem_list);
                        if self.pruner.prunable(&rem, &add) {
                            stats.pruned += 1;
                            self.rem_list = rem;
                            if cl.tick_skipped(ctl, 1) {
                                return UnitOutcome::Stopped(pos + 1);
                            }
                            continue;
                        }
                        stats.evaluated += 1;
                        let verdict = self.judge_edit_set(&rem, &add);
                        self.rem_list = rem;
                        if let Some(mv) = verdict {
                            // Winning eval still counts toward the pool.
                            let _ = cl.tick_eval(ctl);
                            return UnitOutcome::Found(mv);
                        }
                        if cl.tick_eval(ctl) {
                            return UnitOutcome::Stopped(pos + 1);
                        }
                    }
                }
            }
        }
        UnitOutcome::Done
    }

    /// Inequality 6's endpoint profile of one added set: per distinct
    /// added-edge endpoint, its gained-edge count and its
    /// removal-independent saving cap — the one computation both
    /// enumeration strategies feed to [`add_endpoint_requirement`], so
    /// the two paths cannot drift on which candidates the caps prune.
    fn endpoint_caps(&mut self, add: &[(u32, u32)]) -> Vec<(u32, u32, u64)> {
        let dist = self.dist.expect("callers gate on a distance matrix");
        let mut endpoints: Vec<u32> = add.iter().flat_map(|&(u, v)| [u, v]).collect();
        endpoints.sort_unstable();
        endpoints.dedup();
        coalition_min_rows(dist, &endpoints, &mut self.min_gamma);
        endpoints
            .iter()
            .map(|&u| {
                let gained = add.iter().filter(|&&(a, b)| a == u || b == u).count() as u32;
                (u, gained, coalition_member_cap(dist, u, &self.min_gamma))
            })
            .collect()
    }

    /// The coalition-independent verdict: applies the edit set, computes
    /// which endpoints strictly improve (lazily, one BFS each), and looks
    /// for a covering coalition of size ≤ k made of improving endpoints.
    fn judge_edit_set(&mut self, rem: &[(u32, u32)], add: &[(u32, u32)]) -> Option<Move> {
        for &(u, v) in rem {
            self.scratch.remove_edge(u, v).expect("removable edge");
        }
        for &(u, v) in add {
            self.scratch.add_edge(u, v).expect("addable non-edge");
        }
        let mut memo: Vec<(u32, bool)> = Vec::new();
        let model = self.model;
        let mut improves = |x: u32, scratch: &Graph, buf: &mut Vec<u32>| -> bool {
            if let Some(&(_, s)) = memo.iter().find(|&&(y, _)| y == x) {
                return s;
            }
            let s = model
                .cost_scalar(scratch, x, buf)
                .better_than(&self.old[x as usize], self.alpha);
            memo.push((x, s));
            s
        };
        // Both endpoints of every added edge must improve; every removed
        // edge needs at least one improving endpoint.
        let mut feasible = add.iter().all(|&(u, v)| {
            improves(u, &self.scratch, &mut self.buf) && improves(v, &self.scratch, &mut self.buf)
        });
        if feasible {
            feasible = rem.iter().all(|&(u, v)| {
                improves(u, &self.scratch, &mut self.buf)
                    || improves(v, &self.scratch, &mut self.buf)
            });
        }
        let witness = if feasible {
            let mut members: Vec<u32> = add.iter().flat_map(|&(u, v)| [u, v]).collect();
            members.sort_unstable();
            members.dedup();
            if members.len() <= self.k {
                let uncovered: Vec<(u32, u32)> = rem
                    .iter()
                    .copied()
                    .filter(|&(u, v)| !members.contains(&u) && !members.contains(&v))
                    .collect();
                let mut imp = |x: u32| improves(x, &self.scratch, &mut self.buf);
                if cover_removals(&mut members, &uncovered, self.k, &mut imp) {
                    members.sort_unstable();
                    Some(Move::Coalition {
                        members,
                        remove_edges: rem.to_vec(),
                        add_edges: add.to_vec(),
                    })
                } else {
                    None
                }
            } else {
                None
            }
        } else {
            None
        };
        for &(u, v) in add {
            self.scratch.remove_edge(u, v).expect("restore added");
        }
        for &(u, v) in rem {
            self.scratch.add_edge(u, v).expect("restore removed");
        }
        witness
    }
}

/// Exhaustive bounded search for a ≤ `k` covering extension: every edge in
/// `uncovered` must gain an improving endpoint in `members`. Deterministic
/// (edges in order, lower endpoint tried first), so witnesses are stable
/// across entry points.
fn cover_removals(
    members: &mut Vec<u32>,
    uncovered: &[(u32, u32)],
    k: usize,
    improves: &mut impl FnMut(u32) -> bool,
) -> bool {
    if members.len() > k {
        return false;
    }
    let Some(&(u, v)) = uncovered.first() else {
        return true;
    };
    if members.contains(&u) || members.contains(&v) {
        return cover_removals(members, &uncovered[1..], k, improves);
    }
    for x in [u, v] {
        if improves(x) {
            members.push(x);
            if members.len() <= k && cover_removals(members, &uncovered[1..], k, improves) {
                return true;
            }
            members.pop();
        }
    }
    false
}

/// The raw pre-dedup scan, retained as ground truth: per-coalition mask
/// enumeration requiring *every coalition member* to improve, exactly the
/// PR 1 engine-era checker. Property tests and the `pruning` bench
/// compare against this path.
///
/// # Errors
///
/// The legacy raw-space pre-guard against `budget`.
pub fn find_violation_in_reference(
    state: &GameState,
    k: usize,
    budget: CheckBudget,
) -> Result<Option<Move>, GameError> {
    let g = state.graph();
    let n = g.n();
    if n <= 1 || k == 0 {
        return Ok(None);
    }
    check_budget(g, k, budget)?;
    let k = k.min(n);
    let alpha = state.alpha();
    let model = state.cost_model();
    let old = state.costs();
    let mut scratch = g.clone();
    let mut buf = Vec::new();
    for size in 1..=k {
        for coalition in combinations(n, size) {
            let (removable, addable) = coalition_move_space(g, &coalition);
            if let Some(mv) = scan_coalition_moves(
                &mut scratch,
                alpha,
                model,
                old,
                &coalition,
                &removable,
                &addable,
                &mut buf,
            ) {
                return Ok(Some(mv));
            }
        }
    }
    Ok(None)
}

/// Deletable edges and creatable pairs of a coalition.
type MoveSpace = (Vec<(u32, u32)>, Vec<(u32, u32)>);

/// The edges a coalition may delete (touching Γ) and the pairs it may
/// create (inside Γ).
fn coalition_move_space(g: &Graph, coalition: &[u32]) -> MoveSpace {
    let in_coalition = |x: u32| coalition.contains(&x);
    let removable: Vec<(u32, u32)> = g
        .edges()
        .filter(|&(u, v)| in_coalition(u) || in_coalition(v))
        .collect();
    let mut addable = Vec::new();
    for (i, &u) in coalition.iter().enumerate() {
        for &v in &coalition[i + 1..] {
            if !g.has_edge(u, v) {
                addable.push((u.min(v), u.max(v)));
            }
        }
    }
    (removable, addable)
}

/// Full mask scan over a single coalition's move space (reference path).
#[allow(clippy::too_many_arguments)]
fn scan_coalition_moves(
    scratch: &mut Graph,
    alpha: Alpha,
    model: CostModelSpec,
    old: &[AgentCost],
    coalition: &[u32],
    removable: &[(u32, u32)],
    addable: &[(u32, u32)],
    buf: &mut Vec<u32>,
) -> Option<Move> {
    let rbits = removable.len();
    let abits = addable.len();
    for rem_mask in 0u64..1u64 << rbits {
        for add_mask in 0u64..1u64 << abits {
            if rem_mask == 0 && add_mask == 0 {
                continue;
            }
            let rem: Vec<(u32, u32)> = (0..rbits)
                .filter(|&i| rem_mask >> i & 1 == 1)
                .map(|i| removable[i])
                .collect();
            let add: Vec<(u32, u32)> = (0..abits)
                .filter(|&i| add_mask >> i & 1 == 1)
                .map(|i| addable[i])
                .collect();
            if let Some(mv) =
                eval_coalition_move(scratch, alpha, model, old, coalition, &rem, &add, buf)
            {
                return Some(mv);
            }
        }
    }
    None
}

/// Applies a coalition move in place, checks every member improves, and
/// restores the graph (reference path).
#[allow(clippy::too_many_arguments)]
fn eval_coalition_move(
    scratch: &mut Graph,
    alpha: Alpha,
    model: CostModelSpec,
    old: &[AgentCost],
    coalition: &[u32],
    rem: &[(u32, u32)],
    add: &[(u32, u32)],
    buf: &mut Vec<u32>,
) -> Option<Move> {
    for &(u, v) in rem {
        scratch.remove_edge(u, v).expect("removable edge exists");
    }
    for &(u, v) in add {
        scratch.add_edge(u, v).expect("addable pair is a non-edge");
    }
    let improving = coalition.iter().all(|&w| {
        model
            .cost_scalar(scratch, w, buf)
            .better_than(&old[w as usize], alpha)
    });
    for &(u, v) in add {
        scratch.remove_edge(u, v).expect("restore added");
    }
    for &(u, v) in rem {
        scratch.add_edge(u, v).expect("restore removed");
    }
    if improving {
        Some(Move::Coalition {
            members: coalition.to_vec(),
            remove_edges: rem.to_vec(),
            add_edges: add.to_vec(),
        })
    } else {
        None
    }
}

/// Whether `g` is in Bilateral k-Strong Equilibrium (exact).
///
/// # Errors
///
/// Same guard as [`find_violation`].
pub fn is_stable(g: &Graph, alpha: Alpha, k: usize) -> Result<bool, GameError> {
    Ok(find_violation(g, alpha, k)?.is_none())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bncg_graph::generators;

    fn a(s: &str) -> Alpha {
        s.parse().unwrap()
    }

    #[test]
    fn one_bse_handles_multi_removal() {
        // 1-BSE allows one agent to drop several edges at once (stronger
        // than RE syntactically; equivalent by the Corbo–Parkes argument,
        // which this exercises).
        let mut rng = bncg_graph::test_rng(14);
        for _ in 0..20 {
            let g = generators::random_connected(7, 0.35, &mut rng);
            for alpha in ["1/2", "1", "3"] {
                let alpha = a(alpha);
                assert_eq!(
                    find_violation(&g, alpha, 1).unwrap().is_none(),
                    crate::concepts::re::is_stable(&g, alpha),
                    "1-BSE must coincide with RE (Prop. A.2 argument)"
                );
            }
        }
    }

    #[test]
    fn kbse_ladder_is_monotone() {
        // (k+1)-BSE ⊆ k-BSE: more cooperation can only destabilize.
        let mut rng = bncg_graph::test_rng(15);
        for _ in 0..15 {
            let g = generators::random_connected(6, 0.3, &mut rng);
            for alpha in ["1/2", "1", "2", "5"] {
                let alpha = a(alpha);
                let mut prev_stable = true;
                for k in 1..=6usize {
                    let stable = is_stable(&g, alpha, k).unwrap();
                    if !prev_stable {
                        assert!(!stable, "stability must be antitone in k");
                    }
                    prev_stable = stable;
                }
            }
        }
    }

    #[test]
    fn star_is_3bse_stable() {
        for alpha in ["1", "2", "20"] {
            assert!(is_stable(&generators::star(7), a(alpha), 3).unwrap());
        }
    }

    #[test]
    fn witnesses_are_replayable() {
        let mut rng = bncg_graph::test_rng(16);
        for _ in 0..10 {
            let g = generators::random_connected(6, 0.3, &mut rng);
            for alpha in ["1/2", "2"] {
                for k in [2usize, 3] {
                    if let Some(mv) = find_violation(&g, a(alpha), k).unwrap() {
                        assert!(crate::delta::move_improves_all(&g, a(alpha), &mv).unwrap());
                        if let Move::Coalition { members, .. } = &mv {
                            assert!(members.len() <= k);
                        }
                    }
                }
            }
        }
    }

    /// The pruned+deduped scan and the raw reference coalition scan agree
    /// on the stability verdict everywhere, and both witnesses replay.
    #[test]
    #[allow(deprecated)] // reference test for the compat wrapper
    fn pruned_scan_matches_reference_verdict() {
        let mut rng = bncg_graph::test_rng(0xCBE);
        for case in 0..14 {
            let g = if case % 3 == 0 {
                generators::random_tree(7, &mut rng)
            } else {
                generators::random_connected(7, 0.3, &mut rng)
            };
            for alpha in ["1/2", "1", "2", "7"] {
                let state = GameState::new(g.clone(), a(alpha));
                for k in [1usize, 2, 3] {
                    let budget = CheckBudget::default();
                    let pruned =
                        crate::compat::kbse::find_violation_in_with_budget(&state, k, budget)
                            .unwrap();
                    let reference = find_violation_in_reference(&state, k, budget).unwrap();
                    assert_eq!(
                        pruned.is_some(),
                        reference.is_some(),
                        "verdict mismatch at α = {alpha}, k = {k}"
                    );
                    if let Some(mv) = pruned {
                        assert!(crate::delta::move_improves_all(&g, a(alpha), &mv).unwrap());
                    }
                }
            }
        }
    }

    #[test]
    fn restricted_matches_exact_when_unrestricted() {
        let mut rng = bncg_graph::test_rng(17);
        for _ in 0..10 {
            let g = generators::random_connected(6, 0.3, &mut rng);
            for alpha in ["1", "3"] {
                let alpha = a(alpha);
                let exact = find_violation(&g, alpha, 2).unwrap().is_some();
                let restricted = find_violation_restricted(&g, alpha, 2, g.m()).is_some();
                assert_eq!(exact, restricted);
            }
        }
    }

    /// The satellite guarantee: serial and parallel restricted scans run
    /// the same candidate iterator and return **identical** witnesses.
    #[test]
    fn parallel_restricted_returns_identical_witness() {
        let mut rng = bncg_graph::test_rng(73);
        for _ in 0..8 {
            let g = generators::random_connected(7, 0.3, &mut rng);
            for alpha in ["1", "3"] {
                let alpha = a(alpha);
                let serial = find_violation_restricted(&g, alpha, 2, 2);
                for threads in [1usize, 2, 4] {
                    let parallel = find_violation_restricted_parallel(&g, alpha, 2, 2, threads);
                    assert_eq!(serial, parallel, "witness diverged at {threads} threads");
                }
                if let Some(mv) = serial {
                    assert!(crate::delta::move_improves_all(&g, alpha, &mv).unwrap());
                }
            }
        }
    }

    #[test]
    #[allow(deprecated)] // reference test for the compat wrappers
    fn parallel_exact_matches_sequential_witness() {
        let mut rng = bncg_graph::test_rng(74);
        for _ in 0..6 {
            let g = generators::random_connected(6, 0.35, &mut rng);
            for alpha in ["1", "4"] {
                let state = GameState::new(g.clone(), a(alpha));
                let budget = CheckBudget::default();
                let seq =
                    crate::compat::kbse::find_violation_in_with_budget(&state, 3, budget).unwrap();
                for threads in [2usize, 4] {
                    let par =
                        crate::compat::kbse::find_violation_in_parallel(&state, 3, budget, threads)
                            .unwrap();
                    assert_eq!(seq, par);
                }
            }
        }
    }

    #[test]
    fn dedup_skips_regenerated_edit_sets() {
        // Overlapping coalitions regenerate each other's edit sets; the
        // scan must evaluate each canonical set at most once. The cycle
        // inside its BSE window keeps pure-removal subsets alive (α > 1,
        // not a tree), and neighboring coalitions share those edges.
        let g = generators::cycle(8);
        let state = GameState::new(g, a("10"));
        let (mv, stats) = find_violation_in_with_stats(&state, 3, CheckBudget::default()).unwrap();
        assert!(mv.is_none(), "C8 is in its BSE window at α = 10");
        assert!(stats.deduped > 0, "cycle coalitions must overlap");
        assert!(
            stats.evaluated + stats.pruned + stats.deduped == stats.generated,
            "counters must partition the space"
        );
    }

    #[test]
    fn star_scan_is_fully_pruned() {
        // Inequality 6 with removal penalties kills every add class on a
        // star at α ≥ 1 and the tree rule kills every pure removal: the
        // exact 3-BSE scan prices nothing at all.
        let state = GameState::new(generators::star(8), a("2"));
        let (mv, stats) = find_violation_in_with_stats(&state, 3, CheckBudget::default()).unwrap();
        assert!(mv.is_none());
        assert_eq!(stats.evaluated, 0, "star scan should be fully pruned");
    }

    #[test]
    #[allow(deprecated)] // the compat wrapper must keep the legacy guard
    fn budget_guard_fires() {
        // A dense graph with a huge coalition move space.
        let g = generators::clique(16);
        assert!(matches!(
            crate::compat::kbse::find_violation_with_budget(&g, a("1"), 3, CheckBudget::new(1000)),
            Err(GameError::CheckTooLarge { .. })
        ));
    }

    #[test]
    fn cycle_collapses_under_coalitions_at_low_alpha() {
        // At α slightly above the RE threshold a cycle is pairwise stable,
        // but for very low α agents build chords bilaterally; 2-BSE must
        // catch what BAE catches.
        let g = generators::cycle(6);
        let alpha = a("1");
        assert_eq!(
            find_violation(&g, alpha, 2).unwrap().is_some(),
            crate::concepts::bge::find_violation(&g, alpha).is_some()
                || find_violation_restricted(&g, alpha, 2, 6).is_some()
        );
    }
}
