//! The paper's solution concepts, ordered by increasing cooperation
//! (Section 1.1):
//!
//! | Concept | Stable against | Checker |
//! |---|---|---|
//! | [`re`] Remove Equilibrium (= NE, Prop. A.2) | single own-edge removal | exact, polynomial |
//! | [`bae`] Bilateral Add Equilibrium | bilateral single addition | exact, polynomial |
//! | [`ps`] Pairwise Stability | RE ∩ BAE | exact, polynomial |
//! | [`bswe`] Bilateral Swap Equilibrium | consensual edge swap | exact, polynomial |
//! | [`bge`] Bilateral Greedy Equilibrium | PS ∩ BSwE | exact, polynomial |
//! | [`bne`] Bilateral Neighborhood Equilibrium | one-agent neighborhood rewiring | exact to `n ≤ 64` (branch-and-bound generator, evaluation-budgeted) + sampled refuter |
//! | [`kbse`] Bilateral k-Strong Equilibrium | coalitions of size ≤ k | exact with budget guard + restricted refuter |
//! | [`bse`] Bilateral Strong Equilibrium | arbitrary coalitions | exact for tiny n + sampled refuter |
//!
//! Every checker returns the *witness move* on instability, so callers can
//! replay and re-verify it with the generic engine.

pub mod bae;
pub mod bge;
pub mod bne;
pub mod bse;
pub mod bswe;
pub mod kbse;
pub mod ps;
pub mod re;

use crate::alpha::Alpha;
use crate::error::GameError;
use crate::moves::Move;
use crate::solver::{legacy_guard, solve_to_completion};
use crate::state::GameState;
use bncg_graph::Graph;
use std::fmt;
use std::str::FromStr;

/// Work budget for the exponential checkers (BNE, k-BSE, BSE). One unit is
/// one **raw** candidate-move evaluation.
///
/// The legacy entry points use it as a pre-scan *size guard*: an instance
/// whose raw move space exceeds the budget is refused with
/// [`GameError::CheckTooLarge`] before any work starts. The
/// [`crate::solver`] surface instead treats
/// [`ExecPolicy::eval_budget`](crate::solver::ExecPolicy) as an anytime
/// cap — work up to the budget, then return a resumable
/// `Verdict::Exhausted`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckBudget {
    /// Maximum number of raw candidate-move evaluations the guard admits.
    pub max_evals: u64,
}

impl CheckBudget {
    /// The default guard: 4·10⁷ raw candidate evaluations.
    ///
    /// What that means in wall-clock terms is *measured*, not assumed:
    /// the perf gate (`crates/bench/src/bin/ci_gate.rs`) derives the
    /// implied duration from its calibration kernels and records it as
    /// `budget_default_seconds` in `BENCH_ci.json` — on the baseline
    /// host a raw reference scan prices roughly 2–3 million candidates
    /// per second, so the default admits **on the order of 10–20 s of
    /// raw scanning**, not "around a second" as previously documented.
    /// Since PR 2 the default checkers route through the candidate
    /// pruning layer, which skips ≳ 99.9% of a guarded space on the
    /// pinned n = 16 instances, so admitted scans typically finish in
    /// milliseconds: the guard is an enumeration-size cap (exact BNE up
    /// to n = 21), not a wall-clock promise.
    pub const DEFAULT_MAX_EVALS: u64 = 40_000_000;

    /// A budget of `max_evals` candidate evaluations.
    #[must_use]
    pub fn new(max_evals: u64) -> Self {
        CheckBudget { max_evals }
    }
}

impl Default for CheckBudget {
    fn default() -> Self {
        CheckBudget {
            max_evals: CheckBudget::DEFAULT_MAX_EVALS,
        }
    }
}

/// A solution concept of the bilateral game, for uniform dispatch in
/// experiments and dynamics.
///
/// # Examples
///
/// ```
/// use bncg_core::{Alpha, Concept};
/// use bncg_graph::generators;
///
/// let star = generators::star(6);
/// let alpha = Alpha::integer(3)?;
/// // The star is in equilibrium for every concept when α ≥ 1 (paper §1.3).
/// for c in Concept::ALL {
///     assert!(c.is_stable(&star, alpha)?, "star unstable under {c}");
/// }
/// # Ok::<(), bncg_core::GameError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Concept {
    /// Remove Equilibrium (equals the Pure Nash Equilibrium, Prop. A.2).
    Re,
    /// Bilateral Add Equilibrium.
    Bae,
    /// Pairwise Stability = RE ∩ BAE.
    Ps,
    /// Bilateral Swap Equilibrium.
    Bswe,
    /// Bilateral Greedy Equilibrium = PS ∩ BSwE.
    Bge,
    /// Bilateral Neighborhood Equilibrium.
    Bne,
    /// Bilateral k-Strong Equilibrium for the given coalition bound.
    KBse(u32),
    /// Bilateral Strong Equilibrium (= n-BSE).
    Bse,
}

impl Concept {
    /// The concepts of Table 1, with k-BSE instantiated at k ∈ {2, 3}.
    pub const ALL: [Concept; 9] = [
        Concept::Re,
        Concept::Bae,
        Concept::Ps,
        Concept::Bswe,
        Concept::Bge,
        Concept::Bne,
        Concept::KBse(2),
        Concept::KBse(3),
        Concept::Bse,
    ];

    /// Finds an improving move the concept forbids, or `None` if stable.
    ///
    /// # Errors
    ///
    /// The exponential checkers (BNE, k-BSE, BSE) return
    /// [`GameError::CheckTooLarge`] when the instance exceeds the default
    /// [`CheckBudget`]; route through [`crate::solver::Solver`] with an
    /// [`crate::solver::ExecPolicy`] eval budget for explicit control.
    pub fn find_violation(&self, g: &Graph, alpha: Alpha) -> Result<Option<Move>, GameError> {
        // Cheap structural shortcut: trees are in RE unconditionally, so
        // the RE checker never needs the engine's caches built.
        if *self == Concept::Re && g.is_tree() {
            return Ok(None);
        }
        self.find_violation_in(&GameState::new(g.clone(), alpha))
    }

    /// [`Concept::find_violation`] against a caller-maintained
    /// [`GameState`]: every checker reuses the state's cached distance
    /// matrix and pre-move costs, and no checker rebuilds a full
    /// [`bncg_graph::DistanceMatrix`] per candidate move. Routes through
    /// the [`crate::solver`] engine (sequential, unbounded) after
    /// applying the legacy default-budget size guard.
    ///
    /// # Errors
    ///
    /// Same as [`Concept::find_violation`].
    pub fn find_violation_in(&self, state: &GameState) -> Result<Option<Move>, GameError> {
        match *self {
            Concept::Re => Ok(re::find_violation_in(state)),
            Concept::Bae => Ok(bae::find_violation_in(state)),
            Concept::Ps => Ok(ps::find_violation_in(state)),
            Concept::Bswe => Ok(bswe::find_violation_in(state)),
            Concept::Bge => Ok(bge::find_violation_in(state)),
            // BNE is evaluation-bound since the branch-and-bound
            // generator: no raw-space pre-guard — the default budget is
            // spent as an anytime evaluation cap up to the structural
            // n ≤ 64 mask limit.
            Concept::Bne => bne::find_violation_in(state),
            _ => {
                if legacy_guard(*self, state, CheckBudget::default())? {
                    return Ok(None);
                }
                solve_to_completion(*self, state)
            }
        }
    }

    /// Whether `g` is stable for this concept at price `alpha`.
    ///
    /// # Errors
    ///
    /// Same as [`Concept::find_violation`].
    pub fn is_stable(&self, g: &Graph, alpha: Alpha) -> Result<bool, GameError> {
        Ok(self.find_violation(g, alpha)?.is_none())
    }

    /// Whether the state is stable for this concept.
    ///
    /// # Errors
    ///
    /// Same as [`Concept::find_violation`].
    pub fn is_stable_in(&self, state: &GameState) -> Result<bool, GameError> {
        Ok(self.find_violation_in(state)?.is_none())
    }
}

impl Concept {
    /// Whether this concept's exact checker scans an exponential
    /// candidate space (BNE, k-BSE, BSE) — the concepts whose checks
    /// the [`crate::solver`] meters, shards, and exhausts; the
    /// polynomial concepts complete eagerly.
    #[must_use]
    pub fn is_exponential(&self) -> bool {
        matches!(self, Concept::Bne | Concept::KBse(_) | Concept::Bse)
    }

    /// The canonical machine token (`re`, `bae`, `ps`, `bswe`, `bge`,
    /// `bne`, `kbse<k>`, `bse`) used by the `--concept` CLI flag and the
    /// solver's frontier serialization. Round-trips through
    /// [`Concept::from_str`].
    #[must_use]
    pub fn token(&self) -> String {
        match self {
            Concept::Re => "re".into(),
            Concept::Bae => "bae".into(),
            Concept::Ps => "ps".into(),
            Concept::Bswe => "bswe".into(),
            Concept::Bge => "bge".into(),
            Concept::Bne => "bne".into(),
            Concept::KBse(k) => format!("kbse{k}"),
            Concept::Bse => "bse".into(),
        }
    }
}

impl FromStr for Concept {
    type Err = GameError;

    /// Parses a concept name, case-insensitively: the machine tokens
    /// (`kbse2`), the paper-style [`fmt::Display`] names (`2-BSE`,
    /// `BSwE`), and `k-bse`-style spellings all round-trip.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim().to_ascii_lowercase();
        let simple = match t.as_str() {
            "re" => Some(Concept::Re),
            "bae" => Some(Concept::Bae),
            "ps" => Some(Concept::Ps),
            "bswe" => Some(Concept::Bswe),
            "bge" => Some(Concept::Bge),
            "bne" => Some(Concept::Bne),
            "bse" => Some(Concept::Bse),
            _ => None,
        };
        if let Some(c) = simple {
            return Ok(c);
        }
        let digits = t
            .strip_prefix("kbse")
            .or_else(|| t.strip_suffix("-bse"))
            .unwrap_or("");
        if let Ok(k) = digits.parse::<u32>() {
            if k >= 1 {
                return Ok(Concept::KBse(k));
            }
        }
        Err(GameError::Unsupported {
            reason: format!(
                "unknown concept {s:?}; expected one of re, bae, ps, bswe, \
                 bge, bne, kbse<k> (or <k>-BSE), bse"
            ),
        })
    }
}

impl fmt::Display for Concept {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Concept::Re => write!(f, "RE"),
            Concept::Bae => write!(f, "BAE"),
            Concept::Ps => write!(f, "PS"),
            Concept::Bswe => write!(f, "BSwE"),
            Concept::Bge => write!(f, "BGE"),
            Concept::Bne => write!(f, "BNE"),
            Concept::KBse(k) => write!(f, "{k}-BSE"),
            Concept::Bse => write!(f, "BSE"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bncg_graph::generators;

    #[test]
    fn star_is_universally_stable_for_alpha_at_least_one() {
        // Paper footnote 6: for α ≥ 1 a star is an equilibrium for all
        // considered solution concepts.
        let star = generators::star(7);
        for alpha in ["1", "3/2", "10", "100"] {
            let alpha: Alpha = alpha.parse().unwrap();
            for c in Concept::ALL {
                assert!(
                    c.is_stable(&star, alpha).unwrap(),
                    "star must be stable under {c} at α = {alpha}"
                );
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Concept::KBse(3).to_string(), "3-BSE");
        assert_eq!(Concept::Bswe.to_string(), "BSwE");
    }

    #[test]
    fn token_and_display_round_trip_through_from_str() {
        for c in Concept::ALL {
            assert_eq!(c.token().parse::<Concept>().unwrap(), c, "token of {c}");
            assert_eq!(
                c.to_string().parse::<Concept>().unwrap(),
                c,
                "display of {c}"
            );
        }
    }

    #[test]
    fn from_str_accepts_cli_spellings() {
        assert_eq!("kbse2".parse::<Concept>().unwrap(), Concept::KBse(2));
        assert_eq!("KBSE3".parse::<Concept>().unwrap(), Concept::KBse(3));
        assert_eq!("2-bse".parse::<Concept>().unwrap(), Concept::KBse(2));
        assert_eq!(" BSwE ".parse::<Concept>().unwrap(), Concept::Bswe);
        assert_eq!("bse".parse::<Concept>().unwrap(), Concept::Bse);
        for bad in ["", "kbse", "kbse0", "0-bse", "nash", "k-bse"] {
            assert!(bad.parse::<Concept>().is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn every_violation_reported_is_truly_improving() {
        // Cross-check all concept checkers against the generic engine on a
        // corpus of small graphs and prices.
        let mut rng = bncg_graph::test_rng(4242);
        for _ in 0..30 {
            let g = generators::random_connected(7, 0.3, &mut rng);
            for alpha in ["1/2", "1", "2", "7/2", "20"] {
                let alpha: Alpha = alpha.parse().unwrap();
                for c in Concept::ALL {
                    if let Some(mv) = c.find_violation(&g, alpha).unwrap() {
                        assert!(
                            crate::delta::move_improves_all(&g, alpha, &mv).unwrap(),
                            "{c} reported a non-improving witness {mv} on α = {alpha}"
                        );
                    }
                }
            }
        }
    }
}
