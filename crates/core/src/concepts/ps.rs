//! Pairwise Stability (PS, Jackson–Wolinsky): Remove Equilibrium plus
//! Bilateral Add Equilibrium — the solution concept Corbo and Parkes
//! analyzed for the BNCG and the baseline of the paper's Table 1.

use crate::alpha::Alpha;
use crate::concepts::{bae, re};
use crate::moves::Move;
use crate::state::GameState;
use bncg_graph::Graph;

/// Finds a profitable removal or mutual addition, or `None` if `g` is
/// pairwise stable.
///
/// # Examples
///
/// ```
/// use bncg_core::{concepts::ps, Alpha};
/// use bncg_graph::generators;
///
/// // A cycle is pairwise stable in the Θ(n²) window of Lemma 2.4.
/// let c8 = generators::cycle(8);
/// assert!(ps::find_violation(&c8, Alpha::integer(10)?).is_none());
/// # Ok::<(), bncg_core::GameError>(())
/// ```
#[must_use]
pub fn find_violation(g: &Graph, alpha: Alpha) -> Option<Move> {
    find_violation_in(&GameState::new(g.clone(), alpha))
}

/// [`find_violation`] against a caller-maintained [`GameState`]: both
/// sub-checkers share one cached matrix and cost vector.
#[must_use]
pub fn find_violation_in(state: &GameState) -> Option<Move> {
    re::find_violation_in(state).or_else(|| bae::find_violation_in(state))
}

/// Whether `g` is pairwise stable.
#[must_use]
pub fn is_stable(g: &Graph, alpha: Alpha) -> bool {
    find_violation(g, alpha).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bncg_graph::generators;

    fn a(s: &str) -> Alpha {
        s.parse().unwrap()
    }

    #[test]
    fn ps_is_intersection_of_re_and_bae() {
        let mut rng = bncg_graph::test_rng(10);
        for _ in 0..30 {
            let g = generators::random_connected(7, 0.3, &mut rng);
            for alpha in ["1/2", "1", "2", "9"] {
                let alpha = a(alpha);
                assert_eq!(
                    is_stable(&g, alpha),
                    re::is_stable(&g, alpha) && bae::is_stable(&g, alpha)
                );
            }
        }
    }

    #[test]
    fn stars_are_pairwise_stable_for_alpha_at_least_one() {
        assert!(is_stable(&generators::star(9), a("1")));
        assert!(is_stable(&generators::star(9), a("42")));
    }

    #[test]
    fn clique_is_pairwise_stable_below_one() {
        assert!(is_stable(&generators::clique(5), a("1/2")));
        assert!(!is_stable(&generators::clique(5), a("3/2")));
    }
}
