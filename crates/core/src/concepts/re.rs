//! Remove Equilibrium (RE): no agent improves by dropping a single incident
//! edge. By Proposition A.2 of the paper, RE coincides with the Pure Nash
//! Equilibrium of the bilateral game.

use crate::alpha::Alpha;
use crate::moves::Move;
use crate::state::GameState;
use bncg_graph::Graph;

/// Finds a profitable single-edge removal, or `None` if `g` is in RE.
///
/// On a *connected tree* every removal disconnects the remover from at
/// least one node, which is lexicographically worse, so trees are in RE
/// unconditionally — the checker shortcuts that case (the paper uses this
/// fact throughout Section 3.2).
///
/// # Examples
///
/// ```
/// use bncg_core::{concepts::re, Alpha, Move};
/// use bncg_graph::generators;
///
/// // A clique at high α: every agent wants to drop edges.
/// let g = generators::clique(4);
/// let alpha = Alpha::integer(10)?;
/// assert!(matches!(re::find_violation(&g, alpha), Some(Move::Remove { .. })));
///
/// // Any tree is in RE.
/// assert!(re::find_violation(&generators::path(6), alpha).is_none());
/// # Ok::<(), bncg_core::GameError>(())
/// ```
#[must_use]
pub fn find_violation(g: &Graph, alpha: Alpha) -> Option<Move> {
    if g.is_tree() {
        return None;
    }
    find_violation_in(&GameState::new(g.clone(), alpha))
}

/// [`find_violation`] against a caller-maintained [`GameState`], reusing
/// its cached pre-move costs.
#[must_use]
pub fn find_violation_in(state: &GameState) -> Option<Move> {
    let g = state.graph();
    if state.is_tree() {
        return None;
    }
    // Bridge removals strictly lose reachability — lexicographically worse
    // for the remover no matter how large α is — so only the edges inside
    // 2-edge-connected blocks need cost evaluation.
    let bridges: std::collections::HashSet<(u32, u32)> = bncg_graph::connectivity::analyze(g)
        .bridges
        .into_iter()
        .collect();
    let mut ev = state.evaluator();
    for (u, v) in g.edges() {
        if bridges.contains(&(u, v)) {
            continue;
        }
        for agent in [u, v] {
            let target = if agent == u { v } else { u };
            let mv = Move::Remove { agent, target };
            let delta = ev.evaluate(&mv).expect("removal of an existing edge");
            debug_assert_eq!(
                delta.agents[0].after.edges,
                delta.agents[0].before.edges - 1
            );
            if delta.improving_all {
                return Some(mv);
            }
        }
    }
    None
}

/// Whether `g` is in Remove Equilibrium.
#[must_use]
pub fn is_stable(g: &Graph, alpha: Alpha) -> bool {
    find_violation(g, alpha).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bncg_graph::generators;

    fn a(s: &str) -> Alpha {
        s.parse().unwrap()
    }

    #[test]
    fn trees_are_always_in_re() {
        let mut rng = bncg_graph::test_rng(1);
        for _ in 0..20 {
            let g = generators::random_tree(12, &mut rng);
            for alpha in ["1/3", "1", "50"] {
                assert!(is_stable(&g, a(alpha)));
            }
        }
    }

    #[test]
    fn cycle_re_window_matches_lemma_2_4_arithmetic() {
        // From the proof of Lemma 2.4: C_n is in RE iff removing an edge
        // (distance increase) does not pay for α. For even n the distance
        // cost of a cycle agent is n²/4 and of a path-end agent n(n−1)/2;
        // removal is improving iff α > n(n−1)/2 − n²/4.
        for n in [4usize, 6, 8] {
            let g = generators::cycle(n);
            let threshold = (n * (n - 1) / 2 - n * n / 4) as i64;
            assert!(is_stable(&g, Alpha::integer(threshold).unwrap()));
            assert!(!is_stable(&g, Alpha::integer(threshold + 1).unwrap()));
        }
    }

    #[test]
    fn clique_sheds_edges_at_high_alpha() {
        let g = generators::clique(5);
        // Removing one clique edge costs distance +1, saves α.
        assert!(is_stable(&g, a("1")));
        assert!(!is_stable(&g, a("2")));
        // Strictness: at α = 1 the trade is exactly neutral.
        assert!(is_stable(&g, a("1")));
    }

    #[test]
    fn witness_is_replayable() {
        let g = generators::clique(4);
        let alpha = a("5");
        let mv = find_violation(&g, alpha).expect("clique is unstable");
        assert!(crate::delta::move_improves_all(&g, alpha, &mv).unwrap());
    }

    #[test]
    fn disconnected_graphs_are_handled() {
        // Two disjoint edges: removing either edge increases unreachability.
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(is_stable(&g, a("100")));
    }

    #[test]
    fn bridge_pruning_matches_brute_force() {
        // The optimized checker must agree with an unpruned scan on
        // graphs mixing bridges and cycles.
        let mut rng = bncg_graph::test_rng(83);
        for _ in 0..20 {
            let g = generators::random_connected(9, 0.15, &mut rng);
            for alpha in ["1/2", "1", "2", "6"] {
                let alpha = a(alpha);
                let brute = g.edges().any(|(u, v)| {
                    [(u, v), (v, u)].into_iter().any(|(agent, target)| {
                        crate::delta::move_improves_all(
                            &g,
                            alpha,
                            &crate::moves::Move::Remove { agent, target },
                        )
                        .unwrap()
                    })
                });
                assert_eq!(!is_stable(&g, alpha), brute, "pruned RE check diverged");
            }
        }
    }
}
