//! Agent and social cost, the social optimum, and the social cost ratio ρ.
//!
//! An agent's cost is `α·|S_u| + Σ_v dist(u, v)` with disconnected pairs
//! priced at `M > α·n³` (paper, Section 1.1). The `M` construction makes
//! cost comparison *lexicographic*: an agent first prefers reaching more
//! nodes, then the finite cost. [`AgentCost`] implements exactly that
//! semantics, which is the paper's stated intent for `M`.

use crate::alpha::Alpha;
use crate::error::GameError;
use bncg_graph::{bfs_distances, BitsetGraph, DistanceMatrix, Graph, UNREACHABLE};
use std::cmp::Ordering;

/// The cost of a single agent, kept in unevaluated form so comparisons can
/// be exact for any rational `α`.
///
/// # Examples
///
/// ```
/// use bncg_core::{agent_cost, Alpha};
/// use bncg_graph::generators;
///
/// let star = generators::star(5);
/// let center = agent_cost(&star, 0);
/// let leaf = agent_cost(&star, 1);
/// assert_eq!((center.edges, center.dist), (4, 4));
/// assert_eq!((leaf.edges, leaf.dist), (1, 7));
/// let alpha = Alpha::integer(2)?;
/// // center: 2·4 + 4 = 12, leaf: 2·1 + 7 = 9
/// assert!(leaf.better_than(&center, alpha));
/// # Ok::<(), bncg_core::GameError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AgentCost {
    /// Number of nodes the agent cannot reach (each priced at `M`).
    pub unreachable: u32,
    /// Number of edges the agent pays for (`|S_u|`; in a BNCG graph state
    /// this is the degree).
    pub edges: u32,
    /// Sum of finite hop distances to the reachable nodes.
    pub dist: u64,
}

impl AgentCost {
    /// Exact three-way comparison under edge price `alpha`:
    /// lexicographically by unreachable count, then by `α·edges + dist`.
    #[must_use]
    pub fn compare(&self, other: &AgentCost, alpha: Alpha) -> Ordering {
        self.unreachable.cmp(&other.unreachable).then_with(|| {
            alpha
                .cost_key(self.edges, self.dist)
                .cmp(&alpha.cost_key(other.edges, other.dist))
        })
    }

    /// Whether this cost is *strictly* lower than `other` — the improvement
    /// predicate every solution concept is built on.
    #[must_use]
    pub fn better_than(&self, other: &AgentCost, alpha: Alpha) -> bool {
        self.compare(other, alpha) == Ordering::Less
    }

    /// The finite part `α·edges + dist` as an exact fraction over
    /// `alpha.den()`. Meaningful on its own only when `unreachable == 0`.
    #[must_use]
    pub fn finite_value(&self, alpha: Alpha) -> Ratio {
        Ratio::new(
            alpha.cost_key(self.edges, self.dist),
            i128::from(alpha.den()),
        )
    }
}

/// An exact non-negative fraction used for social costs and ρ values.
///
/// # Examples
///
/// ```
/// use bncg_core::Ratio;
///
/// let r = Ratio::new(3, 2);
/// assert_eq!(r.as_f64(), 1.5);
/// assert!(r > Ratio::new(1, 1));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Ratio {
    num: i128,
    den: i128,
}

impl Ratio {
    /// Creates `num/den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    #[must_use]
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "ratio denominator must be nonzero");
        let (num, den) = if den < 0 { (-num, -den) } else { (num, den) };
        Ratio { num, den }
    }

    /// Numerator (denominator normalized positive).
    #[must_use]
    pub fn num(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    #[must_use]
    pub fn den(&self) -> i128 {
        self.den
    }

    /// Approximate `f64` value for reporting.
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Exact division of two ratios.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    #[must_use]
    pub fn div(&self, other: &Ratio) -> Ratio {
        assert!(other.num != 0, "division by zero ratio");
        Ratio::new(self.num * other.den, self.den * other.num)
    }
}

impl PartialEq for Ratio {
    fn eq(&self, other: &Self) -> bool {
        self.num * other.den == other.num * self.den
    }
}

impl Eq for Ratio {}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl std::fmt::Display for Ratio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Computes the cost of agent `u` in graph state `g` by a single BFS.
///
/// In a BNCG graph state the strategy bijection means `|S_u| = deg(u)`.
///
/// # Panics
///
/// Panics if `u` is out of range.
#[must_use]
pub fn agent_cost(g: &Graph, u: u32) -> AgentCost {
    agent_cost_with_buf(g, u, &mut Vec::new())
}

/// Like [`agent_cost`] but reusing a caller-owned BFS buffer — the hot
/// candidate-evaluation paths run millions of BFS passes and per-call
/// allocation would dominate.
///
/// # Panics
///
/// Panics if `u` is out of range.
#[must_use]
pub fn agent_cost_with_buf(g: &Graph, u: u32, buf: &mut Vec<u32>) -> AgentCost {
    let reached = bfs_distances(g, u, buf);
    let dist_sum = buf
        .iter()
        .filter(|&&d| d != UNREACHABLE)
        .map(|&d| u64::from(d))
        .sum();
    AgentCost {
        unreachable: (g.n() - reached) as u32,
        edges: g.degree(u) as u32,
        dist: dist_sum,
    }
}

/// Computes the cost of agent `u` from a word-parallel bitset graph —
/// the batched leaf-evaluation kernel: one frontier BFS summing
/// `level · popcount(level_set)` per level, never materializing a
/// distance row, with the degree read off the adjacency word.
///
/// Differential-tested equal to [`agent_cost`] (the scalar reference)
/// on every graph with `n ≤ 64`.
///
/// # Panics
///
/// Panics if `u` is out of range.
#[must_use]
pub fn agent_cost_bits(bits: &BitsetGraph, u: u32) -> AgentCost {
    let (unreachable, dist) = bits.cost_from(u);
    AgentCost {
        unreachable,
        edges: bits.degree(u),
        dist,
    }
}

/// Computes the cost of agent `u` from a precomputed distance matrix.
#[must_use]
pub fn agent_cost_from_matrix(g: &Graph, d: &DistanceMatrix, u: u32) -> AgentCost {
    let mut dist_sum = 0u64;
    let mut unreachable = 0u32;
    for &dd in d.row(u) {
        if dd == UNREACHABLE {
            unreachable += 1;
        } else {
            dist_sum += u64::from(dd);
        }
    }
    AgentCost {
        unreachable,
        edges: g.degree(u) as u32,
        dist: dist_sum,
    }
}

/// The social cost `Σ_u cost(u)` of a *connected* graph as an exact ratio.
///
/// # Errors
///
/// Returns [`GameError::Disconnected`] for disconnected graphs: the paper
/// compares ρ only over connected equilibria (any state with unreachable
/// pairs is dominated lexicographically and never optimal).
pub fn social_cost(g: &Graph, alpha: Alpha) -> Result<Ratio, GameError> {
    let total_dist = if g.is_tree() {
        // Trees (the bulk of the paper's constructions, some with 10⁴⁺
        // nodes): rerooted distance sums in O(n) memory instead of the
        // O(n²) all-pairs matrix.
        let t = bncg_graph::RootedTree::new(g, 0).expect("validated tree");
        t.dist_sums().iter().sum::<u64>()
    } else {
        let d = DistanceMatrix::new(g);
        d.total_distance().ok_or(GameError::Disconnected)?
    };
    // Total buying cost: every edge is paid by both endpoints.
    let edges_paid = 2 * g.m() as u64;
    Ok(Ratio::new(
        i128::from(alpha.num()) * i128::from(edges_paid)
            + i128::from(alpha.den()) * i128::from(total_dist),
        i128::from(alpha.den()),
    ))
}

/// The cost of the social optimum for `n` agents at price `alpha`
/// (Section 3.1): the star for `α ≥ 1` with cost `2(n−1)(α+n−1)`, the
/// clique for `α ≤ 1` with cost `n(n−1)(1+α)`; at `α = 1` both coincide.
///
/// # Examples
///
/// ```
/// use bncg_core::{optimum_cost, Alpha, Ratio};
///
/// let alpha = Alpha::integer(3)?;
/// // 2(n−1)(α+n−1) with n = 5: 2·4·7 = 56
/// assert_eq!(optimum_cost(5, alpha), Ratio::new(56, 1));
/// # Ok::<(), bncg_core::GameError>(())
/// ```
#[must_use]
pub fn optimum_cost(n: usize, alpha: Alpha) -> Ratio {
    let n = n as i128;
    if n <= 1 {
        return Ratio::new(0, 1);
    }
    let num = i128::from(alpha.num());
    let den = i128::from(alpha.den());
    // star: 2(n−1)(α + n − 1) = 2(n−1)(num + den(n−1)) / den
    let star = Ratio::new(2 * (n - 1) * (num + den * (n - 1)), den);
    // clique: n(n−1)(1 + α) = n(n−1)(den + num) / den
    let clique = Ratio::new(n * (n - 1) * (den + num), den);
    star.min(clique)
}

/// The social cost ratio `ρ(G) = cost(G) / cost(OPT)` (paper, Section 1.1).
///
/// # Errors
///
/// Returns [`GameError::Disconnected`] for disconnected graphs.
pub fn social_cost_ratio(g: &Graph, alpha: Alpha) -> Result<Ratio, GameError> {
    Ok(ratio_against_optimum(social_cost(g, alpha)?, g.n(), alpha))
}

/// The single definition of `ρ = cost / cost(OPT)`, shared by the
/// graph-based and the engine-based entry points.
pub(crate) fn ratio_against_optimum(cost: Ratio, n: usize, alpha: Alpha) -> Ratio {
    let opt = optimum_cost(n, alpha);
    if opt.num() == 0 {
        // n ≤ 1: a single agent is trivially optimal.
        return Ratio::new(1, 1);
    }
    cost.div(&opt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bncg_graph::generators;

    fn a(s: &str) -> Alpha {
        s.parse().unwrap()
    }

    #[test]
    fn star_is_optimal_for_alpha_above_one() {
        let alpha = a("2");
        for n in 2..8 {
            let star = generators::star(n);
            let rho = social_cost_ratio(&star, alpha).unwrap();
            assert_eq!(rho, Ratio::new(1, 1), "star must be optimal at n = {n}");
        }
    }

    #[test]
    fn clique_is_optimal_for_alpha_below_one() {
        let alpha = a("1/2");
        for n in 2..7 {
            let clique = generators::clique(n);
            let rho = social_cost_ratio(&clique, alpha).unwrap();
            assert_eq!(rho, Ratio::new(1, 1), "clique must be optimal at n = {n}");
        }
    }

    #[test]
    fn star_and_clique_tie_at_alpha_one() {
        let alpha = a("1");
        for n in 2..7 {
            let star = social_cost(&generators::star(n), alpha).unwrap();
            let clique = social_cost(&generators::clique(n), alpha).unwrap();
            assert_eq!(star, clique);
        }
    }

    #[test]
    fn no_small_graph_beats_the_optimum() {
        // Exhaustive sanity check of the closed form on all connected
        // graphs with 5 nodes.
        for alpha in ["1/2", "1", "3/2", "4", "30"] {
            let alpha = a(alpha);
            let opt = optimum_cost(5, alpha);
            for g in bncg_graph::enumerate::connected_graphs(5).unwrap() {
                let c = social_cost(&g, alpha).unwrap();
                assert!(c >= opt, "graph beats closed-form optimum at α = {alpha}");
            }
        }
    }

    #[test]
    fn agent_cost_counts_unreachable() {
        let g = Graph::from_edges(4, [(0, 1)]).unwrap();
        let c = agent_cost(&g, 0);
        assert_eq!(c.unreachable, 2);
        assert_eq!(c.dist, 1);
        assert_eq!(c.edges, 1);
    }

    #[test]
    fn lexicographic_preference_for_reachability() {
        let alpha = a("1");
        // Reaching one more node beats any finite saving.
        let more_reach = AgentCost {
            unreachable: 0,
            edges: 50,
            dist: 10_000,
        };
        let less_reach = AgentCost {
            unreachable: 1,
            edges: 0,
            dist: 0,
        };
        assert!(more_reach.better_than(&less_reach, alpha));
        assert!(!less_reach.better_than(&more_reach, alpha));
    }

    #[test]
    fn strictness_at_fractional_alpha() {
        // α = 1/2: one extra edge for a distance saving of 1 is strictly
        // improving; a saving of exactly α·2 = 1 for 2 edges is not.
        let alpha = a("1/2");
        let before = AgentCost {
            unreachable: 0,
            edges: 1,
            dist: 10,
        };
        let after = AgentCost {
            unreachable: 0,
            edges: 2,
            dist: 9,
        };
        assert!(after.better_than(&before, alpha));
        let after_tie = AgentCost {
            unreachable: 0,
            edges: 3,
            dist: 9,
        };
        assert!(!after_tie.better_than(&before, alpha));
        assert_eq!(after_tie.compare(&before, alpha), Ordering::Equal);
    }

    #[test]
    fn matrix_and_bfs_costs_agree() {
        let mut rng = bncg_graph::test_rng(77);
        for _ in 0..10 {
            let g = generators::random_connected(15, 0.2, &mut rng);
            let d = DistanceMatrix::new(&g);
            for u in 0..15u32 {
                assert_eq!(agent_cost(&g, u), agent_cost_from_matrix(&g, &d, u));
            }
        }
    }

    #[test]
    fn bitset_and_bfs_costs_agree() {
        // Includes disconnected G(n, p) draws: the unreachable count and
        // the finite distance sum must both match the scalar reference.
        let mut rng = bncg_graph::test_rng(78);
        for _ in 0..10 {
            let g = generators::gnp(20, 0.15, &mut rng);
            let bits = BitsetGraph::from_graph(&g).unwrap();
            for u in 0..20u32 {
                assert_eq!(agent_cost(&g, u), agent_cost_bits(&bits, u));
            }
        }
    }

    #[test]
    fn social_cost_of_disconnected_graph_errors() {
        let g = Graph::new(3);
        assert_eq!(social_cost(&g, a("1")), Err(GameError::Disconnected));
    }

    #[test]
    fn social_cost_matches_manual_path() {
        // Path on 3 nodes, α = 2: buy = 2α·m = 8; dist = 2·(1+2) + 2 = 8.
        let g = generators::path(3);
        let c = social_cost(&g, a("2")).unwrap();
        assert_eq!(c, Ratio::new(16, 1));
    }

    #[test]
    fn rho_of_single_node() {
        let g = Graph::new(1);
        assert_eq!(social_cost_ratio(&g, a("1")).unwrap(), Ratio::new(1, 1));
    }

    #[test]
    fn ratio_arithmetic() {
        let r = Ratio::new(6, 4);
        assert_eq!(r, Ratio::new(3, 2));
        assert_eq!(r.div(&Ratio::new(1, 2)), Ratio::new(3, 1));
        assert_eq!(r.to_string(), "6/4");
        assert_eq!(Ratio::new(5, 1).to_string(), "5");
        assert!(Ratio::new(-3, -2) == Ratio::new(3, 2));
    }
}
