//! Pluggable per-agent cost models.
//!
//! The engine was built around one objective — the paper's
//! `cost(u) = α·|S_u| + Σ_v dist(u, v)` with the lexicographic
//! disconnection penalty — and every layer (state caches, candidate
//! pruning, solver, analysis, wire protocol) hard-coded it. This module
//! turns the objective into a **capability**: a [`CostModel`] prices one
//! agent from any of the three distance substrates the engine already
//! maintains (scalar BFS, word-parallel bitset, cached all-pairs
//! matrix), and the rest of the stack threads a [`CostModelSpec`] value
//! instead of calling `agent_cost` directly.
//!
//! # The incremental-evaluation contract
//!
//! Every model must return the *same* [`AgentCost`] from all three
//! substrates, and [`crate::GameState::evaluate_move`] /
//! [`crate::GameState::apply_move`] must agree with a from-scratch
//! recomputation of the model on the successor graph — the exact
//! contract `state.rs` documents for the default objective, now
//! property-tested **per model** (`tests/cost_models.rs`).
//!
//! All models express their objective through the existing [`AgentCost`]
//! triple `(unreachable, edges, dist)` compared lexicographically by
//! `unreachable`, then `α·edges + dist`. The fields carry model-specific
//! *semantics* but the comparison machinery — and therefore every
//! checker, the solver, and the dynamics loops — is reused unchanged:
//!
//! * [`SumDistances`] — the paper's objective. The default; the pricing
//!   functions are byte-for-byte the pre-trait `agent_cost*` paths, so
//!   default-model witnesses and verdicts are bit-identical to before.
//! * [`GeneralizedDistance`] — distance-based utilities (arXiv
//!   2510.00239): `dist = Σ_v f(d(u, v))` for a non-decreasing per-hop
//!   [`Utility`] `f`. [`Utility::Identity`] reproduces the paper's
//!   objective through the generic dispatch arm (the perf gate's
//!   dispatch-overhead kernel is built on that equivalence).
//! * [`AdversaryRobust`] — expected post-deletion cost (arXiv
//!   1308.1832): an adversary removes one of `K = n²` attack slots
//!   uniformly at random; slots `1..=m` delete one existing edge, the
//!   rest are no-ops. All three fields are the **sum over scenarios**
//!   (`K ×` the expectation — a fixed positive scaling, so strict
//!   comparisons are preserved): `edges = K·deg(u)` (edges are bought
//!   before the attack), `dist = Σ_scenarios Σ_v d(u, v)`, `unreachable
//!   = Σ_scenarios |{v unreachable}|`. Lexicographic comparison then
//!   orders by expected disconnection first, expected finite cost
//!   second.
//!
//! # Soundness capability
//!
//! The PR 2 pruning inequalities and the PR 5 subtree oracles are
//! *theorems about the sum-of-distances objective*; under another model
//! they are unproven and may discard improving moves. Each filter
//! family declares (via [`filter_sound`]) which models it is proven
//! for, and the pruning layer consults the table at construction time:
//! an unproven combination runs **filter-free** — correct but slower —
//! never silently wrong. Canonical-fingerprint dedup is model-free (it
//! only collapses identical successor graphs) and stays on everywhere.
//!
//! | Filter family | `sum_distances` | `generalized:id` | other `generalized` | `adversary_robust` |
//! |---|---|---|---|---|
//! | [`FilterId::EditDedup`] | ✓ | ✓ | ✓ | ✓ |
//! | [`FilterId::NeighborhoodBounds`] | ✓ | ✓ | — | — |
//! | [`FilterId::EditSetBounds`] | ✓ | ✓ | — | — |
//! | [`FilterId::CoalitionBounds`] | ✓ | ✓ | — | — |
//!
//! `generalized:id` inherits every proof because `f(d) = d` *is* the
//! paper's objective — only the dispatch path differs.

use crate::cost::{agent_cost_bits, agent_cost_from_matrix, agent_cost_with_buf, AgentCost};
use crate::error::GameError;
use bncg_graph::{bfs_distances, BitsetGraph, DistanceMatrix, Graph, UNREACHABLE};
use std::fmt;
use std::str::FromStr;

/// A non-decreasing per-hop utility `f` for [`GeneralizedDistance`]:
/// the agent pays `Σ_v f(d(u, v))` instead of `Σ_v d(u, v)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Utility {
    /// `f(d) = d` — the paper's objective routed through the generic
    /// dispatch arm. Semantically identical to [`SumDistances`]; used by
    /// the perf gate to price trait dispatch in isolation.
    Identity,
    /// `f(d) = min(d, k)`: hops beyond `k` cost nothing extra — agents
    /// only care about their `k`-neighborhood.
    Capped(u32),
    /// `f(d) = d²`: long detours are penalized superlinearly.
    Quadratic,
}

impl Utility {
    /// Applies the utility to one hop distance.
    #[inline]
    #[must_use]
    pub fn apply(self, d: u32) -> u64 {
        match self {
            Utility::Identity => u64::from(d),
            Utility::Capped(k) => u64::from(d.min(k)),
            Utility::Quadratic => u64::from(d) * u64::from(d),
        }
    }
}

/// The cost-model selector threaded through the stack: `Copy`, ordered
/// token round-trip via [`FromStr`]/[`fmt::Display`], and itself a
/// [`CostModel`] (enum dispatch over the three concrete models).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CostModelSpec {
    /// The paper's sum-of-distances objective (the default).
    #[default]
    SumDistances,
    /// Distance-based utility `Σ_v f(d(u, v))`.
    Generalized(Utility),
    /// Expected post-deletion cost under one uniform edge deletion.
    AdversaryRobust,
}

impl CostModelSpec {
    /// Whether this is the default model, whose pricing must stay
    /// byte-identical to the pre-trait engine. The fast paths
    /// ([`crate::MoveEvaluator`]'s matrix-priced additions and tree
    /// swaps, the affected-agents-only cost refresh in `apply_move`,
    /// the social-cost matrix total) are proven only for it and gate on
    /// this predicate.
    #[inline]
    #[must_use]
    pub fn is_default(self) -> bool {
        matches!(self, CostModelSpec::SumDistances)
    }

    /// Whether the model's `dist` field is the plain sum of hop
    /// distances — the hypothesis of every pruning-inequality proof.
    /// True for [`SumDistances`] and [`Utility::Identity`] (identical
    /// objective, different dispatch path).
    #[inline]
    #[must_use]
    pub fn distance_linear(self) -> bool {
        matches!(
            self,
            CostModelSpec::SumDistances | CostModelSpec::Generalized(Utility::Identity)
        )
    }

    /// The canonical machine token: `sum_distances`, `generalized:id`,
    /// `generalized:cap<k>`, `generalized:quad`, `adversary_robust`.
    /// Round-trips through [`CostModelSpec::from_str`], which also
    /// accepts bare `generalized` as `generalized:cap2`.
    #[must_use]
    pub fn token(self) -> String {
        match self {
            CostModelSpec::SumDistances => "sum_distances".into(),
            CostModelSpec::Generalized(Utility::Identity) => "generalized:id".into(),
            CostModelSpec::Generalized(Utility::Capped(k)) => format!("generalized:cap{k}"),
            CostModelSpec::Generalized(Utility::Quadratic) => "generalized:quad".into(),
            CostModelSpec::AdversaryRobust => "adversary_robust".into(),
        }
    }

    /// A stable 64-bit tag of the model, folded into
    /// [`crate::GameState::fingerprint`] for **non-default** models so
    /// resume tokens and checkpoints bind to the objective they were
    /// issued under. The default model contributes nothing — existing
    /// serialized frontiers, atlas records, and checkpoints stay valid.
    #[must_use]
    pub fn fingerprint_tag(self) -> u64 {
        self.token().bytes().fold(0xBC05_7A61u64, |h, b| {
            bncg_graph::fnv1a_u64(h, u64::from(b))
        })
    }
}

impl fmt::Display for CostModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.token())
    }
}

impl FromStr for CostModelSpec {
    type Err = GameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim().to_ascii_lowercase();
        match t.as_str() {
            "sum_distances" | "sum-distances" | "default" => Ok(CostModelSpec::SumDistances),
            "generalized" => Ok(CostModelSpec::Generalized(Utility::Capped(2))),
            "generalized:id" => Ok(CostModelSpec::Generalized(Utility::Identity)),
            "generalized:quad" => Ok(CostModelSpec::Generalized(Utility::Quadratic)),
            "adversary_robust" | "adversary-robust" => Ok(CostModelSpec::AdversaryRobust),
            _ => {
                if let Some(k) = t.strip_prefix("generalized:cap") {
                    if let Ok(k) = k.parse::<u32>() {
                        if k >= 1 {
                            return Ok(CostModelSpec::Generalized(Utility::Capped(k)));
                        }
                    }
                }
                Err(GameError::Unsupported {
                    reason: format!(
                        "unknown cost model {s:?}; expected sum_distances, generalized, \
                         generalized:id, generalized:cap<k>, generalized:quad, or \
                         adversary_robust"
                    ),
                })
            }
        }
    }
}

/// A per-agent objective priced from the engine's three distance
/// substrates. See the [module docs](self) for the contract.
pub trait CostModel {
    /// The selector value identifying this model.
    fn spec(&self) -> CostModelSpec;

    /// Prices agent `u` by scalar BFS over the adjacency lists, reusing
    /// a caller-owned distance buffer.
    fn cost_scalar(&self, g: &Graph, u: u32, buf: &mut Vec<u32>) -> AgentCost;

    /// Prices agent `u` from the word-parallel bitset mirror
    /// (`n ≤ 64`).
    fn cost_bits(&self, bits: &BitsetGraph, u: u32) -> AgentCost;

    /// Prices agent `u` from the cached all-pairs matrix (exact for the
    /// graph `g` it was built from).
    fn cost_matrix(&self, g: &Graph, d: &DistanceMatrix, u: u32) -> AgentCost;

    /// Convenience: [`CostModel::cost_scalar`] with a fresh buffer.
    fn cost(&self, g: &Graph, u: u32) -> AgentCost {
        self.cost_scalar(g, u, &mut Vec::new())
    }
}

/// The paper's objective `α·|S_u| + Σ_v dist(u, v)` (the default
/// model). Pricing delegates to the pre-trait `agent_cost*` functions
/// unchanged, which is what keeps default witnesses byte-identical.
#[derive(Debug, Clone, Copy, Default)]
pub struct SumDistances;

impl CostModel for SumDistances {
    fn spec(&self) -> CostModelSpec {
        CostModelSpec::SumDistances
    }

    fn cost_scalar(&self, g: &Graph, u: u32, buf: &mut Vec<u32>) -> AgentCost {
        agent_cost_with_buf(g, u, buf)
    }

    fn cost_bits(&self, bits: &BitsetGraph, u: u32) -> AgentCost {
        agent_cost_bits(bits, u)
    }

    fn cost_matrix(&self, g: &Graph, d: &DistanceMatrix, u: u32) -> AgentCost {
        agent_cost_from_matrix(g, d, u)
    }
}

/// Distance-based utilities (arXiv 2510.00239): `dist = Σ_v f(d(u, v))`
/// for a non-decreasing per-hop [`Utility`] `f`. Unreachable nodes keep
/// the lexicographic penalty regardless of `f`.
#[derive(Debug, Clone, Copy)]
pub struct GeneralizedDistance {
    /// The per-hop utility.
    pub utility: Utility,
}

impl CostModel for GeneralizedDistance {
    fn spec(&self) -> CostModelSpec {
        CostModelSpec::Generalized(self.utility)
    }

    fn cost_scalar(&self, g: &Graph, u: u32, buf: &mut Vec<u32>) -> AgentCost {
        let reached = bfs_distances(g, u, buf);
        let dist = buf
            .iter()
            .filter(|&&d| d != UNREACHABLE)
            .map(|&d| self.utility.apply(d))
            .sum();
        AgentCost {
            unreachable: (g.n() - reached) as u32,
            edges: g.degree(u) as u32,
            dist,
        }
    }

    fn cost_bits(&self, bits: &BitsetGraph, u: u32) -> AgentCost {
        // Frontier BFS mirroring `BitsetGraph::cost_from`, pricing each
        // level at `f(level) · popcount` instead of `level · popcount`.
        let n = bits.n();
        let full = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let mut visited = 1u64 << u;
        let mut frontier = bits.row(u);
        let mut level = 1u32;
        let mut dist = 0u64;
        while frontier != 0 {
            dist += self.utility.apply(level) * u64::from(frontier.count_ones());
            visited |= frontier;
            let mut next = 0u64;
            let mut f = frontier;
            while f != 0 {
                let v = f.trailing_zeros();
                f &= f - 1;
                next |= bits.row(v);
            }
            frontier = next & !visited;
            level += 1;
        }
        AgentCost {
            unreachable: (full & !visited).count_ones(),
            edges: bits.degree(u),
            dist,
        }
    }

    fn cost_matrix(&self, g: &Graph, d: &DistanceMatrix, u: u32) -> AgentCost {
        let mut dist = 0u64;
        let mut unreachable = 0u32;
        for &dd in d.row(u) {
            if dd == UNREACHABLE {
                unreachable += 1;
            } else {
                dist += self.utility.apply(dd);
            }
        }
        AgentCost {
            unreachable,
            edges: g.degree(u) as u32,
            dist,
        }
    }
}

/// Expected post-deletion cost (arXiv 1308.1832): one of `K = n²` attack
/// slots fires uniformly; slots `1..=m` delete one existing edge, the
/// rest are no-ops. Fields are the scenario **sums** (`K ×` the
/// expectation, a fixed positive scale at fixed `n`, so the strict
/// improvement predicate is the expected-cost one): see the
/// [module docs](self).
#[derive(Debug, Clone, Copy, Default)]
pub struct AdversaryRobust;

/// `K = n²` keeps the probability space independent of `m`, which moves
/// change; `K·deg(u) ≤ n³` and the scenario-summed unreachable count
/// `≤ n³` must fit the `u32` cost fields.
const ADVERSARY_MAX_N: usize = 1024;

impl AdversaryRobust {
    fn scenario_sum(
        &self,
        n: usize,
        deg: u32,
        base: (u32, u64),
        per_edge: impl Iterator<Item = (u32, u64)>,
    ) -> AgentCost {
        assert!(
            n <= ADVERSARY_MAX_N,
            "adversary_robust is defined for n ≤ {ADVERSARY_MAX_N} (scenario sums must fit u32)"
        );
        let k = (n as u64) * (n as u64);
        let mut m = 0u64;
        let mut unreachable = 0u64;
        let mut dist = 0u64;
        for (u_e, d_e) in per_edge {
            m += 1;
            unreachable += u64::from(u_e);
            dist += d_e;
        }
        unreachable += (k - m) * u64::from(base.0);
        dist += (k - m) * base.1;
        AgentCost {
            unreachable: u32::try_from(unreachable).expect("n ≤ 1024 bounds the scenario sum"),
            edges: u32::try_from(k * u64::from(deg)).expect("n ≤ 1024 bounds K·deg"),
            dist,
        }
    }
}

impl CostModel for AdversaryRobust {
    fn spec(&self) -> CostModelSpec {
        CostModelSpec::AdversaryRobust
    }

    fn cost_scalar(&self, g: &Graph, u: u32, buf: &mut Vec<u32>) -> AgentCost {
        let reach = |h: &Graph, buf: &mut Vec<u32>| -> (u32, u64) {
            let reached = bfs_distances(h, u, buf);
            let dist = buf
                .iter()
                .filter(|&&d| d != UNREACHABLE)
                .map(|&d| u64::from(d))
                .sum();
            ((h.n() - reached) as u32, dist)
        };
        let base = reach(g, buf);
        let edges: Vec<(u32, u32)> = g.edges().collect();
        let mut scratch = g.clone();
        let per_edge: Vec<(u32, u64)> = edges
            .iter()
            .map(|&(a, b)| {
                scratch.remove_edge(a, b).expect("edge exists");
                let r = reach(&scratch, buf);
                scratch.add_edge(a, b).expect("edge was just removed");
                r
            })
            .collect();
        self.scenario_sum(g.n(), g.degree(u) as u32, base, per_edge.into_iter())
    }

    fn cost_bits(&self, bits: &BitsetGraph, u: u32) -> AgentCost {
        let n = bits.n();
        let base = bits.cost_from(u);
        let mut scratch = bits.clone();
        let mut per_edge = Vec::new();
        for a in 0..n as u32 {
            // Each undirected edge once: partners above `a`.
            let mut above = scratch.row(a) & !((1u64 << a) | ((1u64 << a) - 1));
            while above != 0 {
                let b = above.trailing_zeros();
                above &= above - 1;
                scratch.toggle_edge(a, b);
                per_edge.push(scratch.cost_from(u));
                scratch.toggle_edge(a, b);
            }
        }
        self.scenario_sum(n, bits.degree(u), base, per_edge.into_iter())
    }

    fn cost_matrix(&self, g: &Graph, d: &DistanceMatrix, u: u32) -> AgentCost {
        // Deletion scenarios are not derivable from the base matrix; the
        // base row is, but re-running the scalar path keeps one
        // definition for all substrates.
        let _ = d;
        self.cost_scalar(g, u, &mut Vec::new())
    }
}

impl CostModel for CostModelSpec {
    fn spec(&self) -> CostModelSpec {
        *self
    }

    fn cost_scalar(&self, g: &Graph, u: u32, buf: &mut Vec<u32>) -> AgentCost {
        match *self {
            CostModelSpec::SumDistances => SumDistances.cost_scalar(g, u, buf),
            CostModelSpec::Generalized(utility) => {
                GeneralizedDistance { utility }.cost_scalar(g, u, buf)
            }
            CostModelSpec::AdversaryRobust => AdversaryRobust.cost_scalar(g, u, buf),
        }
    }

    fn cost_bits(&self, bits: &BitsetGraph, u: u32) -> AgentCost {
        match *self {
            CostModelSpec::SumDistances => SumDistances.cost_bits(bits, u),
            CostModelSpec::Generalized(utility) => {
                GeneralizedDistance { utility }.cost_bits(bits, u)
            }
            CostModelSpec::AdversaryRobust => AdversaryRobust.cost_bits(bits, u),
        }
    }

    fn cost_matrix(&self, g: &Graph, d: &DistanceMatrix, u: u32) -> AgentCost {
        match *self {
            CostModelSpec::SumDistances => SumDistances.cost_matrix(g, d, u),
            CostModelSpec::Generalized(utility) => {
                GeneralizedDistance { utility }.cost_matrix(g, d, u)
            }
            CostModelSpec::AdversaryRobust => AdversaryRobust.cost_matrix(g, d, u),
        }
    }
}

/// The filter families of the pruning layer, for the soundness table.
/// One id per *proof*, not per call site: every inequality a family
/// bundles shares the same objective hypothesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FilterId {
    /// Canonical-fingerprint dedup of successor graphs
    /// (`edit_fingerprint` / Zobrist). Model-free: it only collapses
    /// candidates with identical successors.
    EditDedup,
    /// The neighborhood-scan bounds: inequalities 2/3/4, the per-class
    /// saving caps, and their subtree relaxations
    /// ([`crate::candidates::NeighborhoodPruner`] and the
    /// `NeighborhoodOracle` built on it).
    NeighborhoodBounds,
    /// The edit-set bounds: inequalities 1/4 and the `EditOracle`
    /// subtree tests ([`crate::candidates::EditSetPruner`]).
    EditSetBounds,
    /// The coalition bounds: inequality 6's minimum-rows, member caps,
    /// and per-endpoint removal requirements.
    CoalitionBounds,
}

impl FilterId {
    /// All filter families, for table-driven tests and docs.
    pub const ALL: [FilterId; 4] = [
        FilterId::EditDedup,
        FilterId::NeighborhoodBounds,
        FilterId::EditSetBounds,
        FilterId::CoalitionBounds,
    ];
}

/// The soundness capability: whether `filter` is proven to discard only
/// non-improving candidates under `model`. The pruning layer consults
/// this at construction; an unproven combination deactivates the filter
/// (the scan runs dense — correct but slower). See the
/// [module docs](self) for the full table.
#[must_use]
pub fn filter_sound(filter: FilterId, model: CostModelSpec) -> bool {
    match filter {
        FilterId::EditDedup => true,
        FilterId::NeighborhoodBounds | FilterId::EditSetBounds | FilterId::CoalitionBounds => {
            model.distance_linear()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::agent_cost;
    use bncg_graph::generators;

    #[test]
    fn tokens_round_trip() {
        let specs = [
            CostModelSpec::SumDistances,
            CostModelSpec::Generalized(Utility::Identity),
            CostModelSpec::Generalized(Utility::Capped(2)),
            CostModelSpec::Generalized(Utility::Capped(7)),
            CostModelSpec::Generalized(Utility::Quadratic),
            CostModelSpec::AdversaryRobust,
        ];
        for s in specs {
            assert_eq!(s.token().parse::<CostModelSpec>().unwrap(), s);
            assert_eq!(s.to_string(), s.token());
        }
        assert_eq!(
            "generalized".parse::<CostModelSpec>().unwrap(),
            CostModelSpec::Generalized(Utility::Capped(2))
        );
        assert_eq!(
            "default".parse::<CostModelSpec>().unwrap(),
            CostModelSpec::SumDistances
        );
        for bad in ["", "sum", "generalized:cap0", "generalized:cube", "robust"] {
            assert!(
                bad.parse::<CostModelSpec>().is_err(),
                "{bad:?} must not parse"
            );
        }
    }

    #[test]
    fn default_model_prices_identically_to_agent_cost() {
        let mut rng = bncg_graph::test_rng(0xC057);
        for _ in 0..8 {
            let g = generators::gnp(12, 0.25, &mut rng);
            let bits = BitsetGraph::from_graph(&g).unwrap();
            let d = DistanceMatrix::new(&g);
            let mut buf = Vec::new();
            for u in 0..12u32 {
                let want = agent_cost(&g, u);
                assert_eq!(SumDistances.cost_scalar(&g, u, &mut buf), want);
                assert_eq!(SumDistances.cost_bits(&bits, u), want);
                assert_eq!(SumDistances.cost_matrix(&g, &d, u), want);
            }
        }
    }

    #[test]
    fn identity_utility_equals_sum_distances() {
        let mut rng = bncg_graph::test_rng(0x1DE7);
        let id = GeneralizedDistance {
            utility: Utility::Identity,
        };
        for _ in 0..8 {
            let g = generators::gnp(14, 0.2, &mut rng);
            let bits = BitsetGraph::from_graph(&g).unwrap();
            for u in 0..14u32 {
                assert_eq!(id.cost(&g, u), agent_cost(&g, u));
                assert_eq!(id.cost_bits(&bits, u), agent_cost(&g, u));
            }
        }
    }

    #[test]
    fn every_model_agrees_across_substrates() {
        let mut rng = bncg_graph::test_rng(0x5B57);
        let specs = [
            CostModelSpec::SumDistances,
            CostModelSpec::Generalized(Utility::Capped(2)),
            CostModelSpec::Generalized(Utility::Quadratic),
            CostModelSpec::AdversaryRobust,
        ];
        for _ in 0..6 {
            let g = generators::gnp(9, 0.3, &mut rng);
            let bits = BitsetGraph::from_graph(&g).unwrap();
            let d = DistanceMatrix::new(&g);
            let mut buf = Vec::new();
            for spec in specs {
                for u in 0..9u32 {
                    let scalar = spec.cost_scalar(&g, u, &mut buf);
                    assert_eq!(spec.cost_bits(&bits, u), scalar, "{spec} bits vs scalar");
                    assert_eq!(
                        spec.cost_matrix(&g, &d, u),
                        scalar,
                        "{spec} matrix vs scalar"
                    );
                }
            }
        }
    }

    #[test]
    fn capped_utility_saturates() {
        // Path 0-1-2-3-4: from node 0 under cap 2 the hops price 1, 2,
        // 2, 2.
        let g = generators::path(5);
        let m = GeneralizedDistance {
            utility: Utility::Capped(2),
        };
        let c = m.cost(&g, 0);
        assert_eq!((c.unreachable, c.edges, c.dist), (0, 1, 7));
        let q = GeneralizedDistance {
            utility: Utility::Quadratic,
        };
        // 1 + 4 + 9 + 16 = 30.
        assert_eq!(q.cost(&g, 0).dist, 30);
    }

    #[test]
    fn adversary_robust_on_a_triangle_by_hand() {
        // Triangle, agent 0, K = 9, m = 3. No deletion disconnects.
        // Scenario dists for agent 0: six no-ops at 2, deleting {0,1}
        // or {0,2} reroutes one neighbor to 2 hops (dist 3 each), and
        // deleting {1,2} changes nothing (dist 2). Sum = 12 + 3 + 3 + 2
        // = 20; unreachable = 0; edges = K·deg = 9·2.
        let g = generators::clique(3);
        let c = AdversaryRobust.cost(&g, 0);
        assert_eq!((c.unreachable, c.edges, c.dist), (0, 18, 20));
    }

    #[test]
    fn adversary_robust_counts_disconnection_scenarios() {
        // Path 0-1: K = 4, m = 1. Deleting the single edge strands the
        // other node: unreachable = 1 in that scenario, 0 in the three
        // no-ops; dist = 3·1 + 0.
        let g = generators::path(2);
        let c = AdversaryRobust.cost(&g, 0);
        assert_eq!((c.unreachable, c.edges, c.dist), (1, 4, 3));
    }

    #[test]
    fn adversary_robust_prefers_redundancy() {
        // On 4 nodes at small α the cycle beats the star for the
        // center-adjacent agents: the star's center edges are single
        // points of failure. Compare leaf costs under α = 1/2.
        let alpha: crate::Alpha = "1/2".parse().unwrap();
        let star_leaf = AdversaryRobust.cost(&generators::star(4), 1);
        let cycle_agent = AdversaryRobust.cost(&generators::cycle(4), 1);
        assert!(
            cycle_agent.better_than(&star_leaf, alpha),
            "cycle {cycle_agent:?} must beat star leaf {star_leaf:?}"
        );
    }

    #[test]
    fn soundness_table() {
        for f in FilterId::ALL {
            assert!(filter_sound(f, CostModelSpec::SumDistances));
            assert!(filter_sound(
                f,
                CostModelSpec::Generalized(Utility::Identity)
            ));
        }
        for model in [
            CostModelSpec::Generalized(Utility::Capped(2)),
            CostModelSpec::Generalized(Utility::Quadratic),
            CostModelSpec::AdversaryRobust,
        ] {
            assert!(filter_sound(FilterId::EditDedup, model));
            assert!(!filter_sound(FilterId::NeighborhoodBounds, model));
            assert!(!filter_sound(FilterId::EditSetBounds, model));
            assert!(!filter_sound(FilterId::CoalitionBounds, model));
        }
    }

    #[test]
    fn fingerprint_tags_are_distinct_per_model() {
        let specs = [
            CostModelSpec::SumDistances,
            CostModelSpec::Generalized(Utility::Identity),
            CostModelSpec::Generalized(Utility::Capped(2)),
            CostModelSpec::Generalized(Utility::Quadratic),
            CostModelSpec::AdversaryRobust,
        ];
        for (i, a) in specs.iter().enumerate() {
            for b in &specs[i + 1..] {
                assert_ne!(a.fingerprint_tag(), b.fingerprint_tag(), "{a} vs {b}");
            }
        }
    }
}
