//! Improvement evaluation: does a move strictly lower an agent's cost?
//!
//! Two engines are provided. The **generic engine** applies the move and
//! recomputes BFS costs — correct on any graph, used as ground truth. The
//! **fast engine** evaluates single-edge additions from a precomputed
//! distance matrix and edge swaps on trees from component sums, avoiding
//! the post-move BFS; property tests assert both engines agree.
//!
//! The batched exponential scans price surviving leaves through a third
//! path — the word-parallel [`crate::cost::agent_cost_bits`] kernel on a
//! toggled [`bncg_graph::BitsetGraph`] — which the tests here also pin
//! against the matrix-based fast engine, closing the differential
//! triangle between all three.

use crate::alpha::Alpha;
use crate::cost::{agent_cost, AgentCost};
use crate::error::GameError;
use crate::moves::Move;
use bncg_graph::{DistanceMatrix, Graph, UNREACHABLE};

/// Ground truth: applies `mv` and reports whether **all** consenting agents
/// strictly improve.
///
/// # Errors
///
/// Returns an error if the move does not type-check against `g`.
pub fn move_improves_all(g: &Graph, alpha: Alpha, mv: &Move) -> Result<bool, GameError> {
    let g2 = mv.apply(g)?;
    Ok(mv
        .consenting_agents()
        .iter()
        .all(|&a| agent_cost(&g2, a).better_than(&agent_cost(g, a), alpha)))
}

/// Like [`move_improves_all`] but with the pre-move costs supplied, so
/// checkers that scan many candidate moves do not recompute them.
///
/// # Errors
///
/// Returns an error if the move does not type-check against `g`.
pub fn move_improves_all_cached(
    g: &Graph,
    alpha: Alpha,
    mv: &Move,
    old_costs: &[AgentCost],
) -> Result<bool, GameError> {
    let g2 = mv.apply(g)?;
    Ok(mv
        .consenting_agents()
        .iter()
        .all(|&a| agent_cost(&g2, a).better_than(&old_costs[a as usize], alpha)))
}

/// Fast engine: the cost of agent `u` after the bilateral addition of
/// `{u, v}`, computed from the *pre-move* distance matrix.
///
/// After adding an edge incident to `u`, the new distance from `u` to any
/// `w` is exactly `min(d(u,w), 1 + d(v,w))`: a shortest path either avoids
/// the new edge or starts with it.
#[must_use]
pub fn cost_after_add(g: &Graph, d: &DistanceMatrix, u: u32, v: u32) -> AgentCost {
    let row_u = d.row(u);
    let row_v = d.row(v);
    let mut dist = 0u64;
    let mut unreachable = 0u32;
    for w in 0..g.n() {
        let du = row_u[w];
        let dv = row_v[w];
        let new = match (du, dv) {
            (UNREACHABLE, UNREACHABLE) => UNREACHABLE,
            (UNREACHABLE, dv) => dv + 1,
            (du, UNREACHABLE) => du,
            (du, dv) => du.min(dv + 1),
        };
        if new == UNREACHABLE {
            unreachable += 1;
        } else {
            dist += u64::from(new);
        }
    }
    AgentCost {
        unreachable,
        edges: g.degree(u) as u32 + 1,
        dist,
    }
}

/// Fast engine: post-swap costs on a **tree**.
///
/// For the swap `agent: old → new` on a tree, removing `{agent, old}`
/// splits the tree into the component `C` of `old` and the rest; the swap
/// keeps the graph a tree iff `new ∈ C`. Distances inside each part are
/// unchanged and cross distances route through the new bridge
/// `{agent, new}`.
///
/// Returns `None` when the swap disconnects the graph (`new ∉ C`), which
/// can never be improving from a connected state.
///
/// # Panics
///
/// Panics (in debug builds) if `g` is not a tree or `{agent, old}` is not
/// an edge; call sites guarantee both.
#[must_use]
pub fn tree_swap_costs(
    g: &Graph,
    d: &DistanceMatrix,
    agent: u32,
    old: u32,
    new: u32,
) -> Option<(AgentCost, AgentCost)> {
    debug_assert!(g.is_tree(), "tree_swap_costs requires a tree");
    debug_assert!(g.has_edge(agent, old), "swap requires the old edge");
    debug_assert!(
        !g.has_edge(agent, new) && agent != new,
        "swap target must be a non-neighbor"
    );
    let n = g.n();
    let row_agent = d.row(agent);
    let row_old = d.row(old);
    let row_new = d.row(new);
    // `new` must sit on the `old` side of the split.
    if row_old[new as usize] >= row_agent[new as usize] {
        return None;
    }
    let mut c_size = 0u64; // |C|, the old-side component
    let mut sum_new_c = 0u64; // Σ_{y∈C} d(new, y)
    let mut sum_agent_rest = 0u64; // Σ_{x∉C} d(agent, x)
    for w in 0..n {
        if row_old[w] < row_agent[w] {
            c_size += 1;
            sum_new_c += u64::from(row_new[w]);
        } else {
            sum_agent_rest += u64::from(row_agent[w]);
        }
    }
    let rest_size = n as u64 - c_size;
    // Agent: unchanged to its own side, 1 + d(new, y) across the bridge.
    let agent_dist = sum_agent_rest + c_size + sum_new_c;
    // New partner: unchanged inside C, 1 + d(agent, x) across the bridge.
    let new_dist = sum_new_c + rest_size + sum_agent_rest;
    Some((
        AgentCost {
            unreachable: 0,
            edges: g.degree(agent) as u32,
            dist: agent_dist,
        },
        AgentCost {
            unreachable: 0,
            edges: g.degree(new) as u32 + 1,
            dist: new_dist,
        },
    ))
}

/// The distance-sum gain (old − new, ≥ 0) for `u` when the edge `{u, v}` is
/// added, for connected graphs; a convenience over [`cost_after_add`].
#[must_use]
pub fn add_distance_gain(d: &DistanceMatrix, u: u32, v: u32) -> u64 {
    let row_u = d.row(u);
    let row_v = d.row(v);
    let mut gain = 0u64;
    for w in 0..row_u.len() {
        let (du, dv) = (row_u[w], row_v[w]);
        if du != UNREACHABLE && dv != UNREACHABLE && dv + 1 < du {
            gain += u64::from(du - dv - 1);
        }
    }
    gain
}

#[cfg(test)]
mod tests {
    use super::*;
    use bncg_graph::generators;

    fn alpha(s: &str) -> Alpha {
        s.parse().unwrap()
    }

    #[test]
    fn generic_engine_detects_improvement() {
        // Path 0-1-2-3, α = 1: adding {0,3} saves each endpoint
        // dist 3→1 plus nothing else... 0's distances: 1,2,3 → 1,2,1:
        // gain 2 > α = 1.
        let g = generators::path(4);
        let mv = Move::BilateralAdd { u: 0, v: 3 };
        assert!(move_improves_all(&g, alpha("1"), &mv).unwrap());
        assert!(!move_improves_all(&g, alpha("2"), &mv).unwrap());
    }

    #[test]
    fn cached_engine_matches_generic() {
        let g = generators::path(5);
        let old: Vec<AgentCost> = (0..5).map(|u| agent_cost(&g, u)).collect();
        for mv in [
            Move::BilateralAdd { u: 0, v: 4 },
            Move::BilateralAdd { u: 0, v: 2 },
            Move::Remove {
                agent: 1,
                target: 2,
            },
        ] {
            assert_eq!(
                move_improves_all(&g, alpha("3/2"), &mv).unwrap(),
                move_improves_all_cached(&g, alpha("3/2"), &mv, &old).unwrap()
            );
        }
    }

    #[test]
    fn fast_add_matches_generic_on_random_graphs() {
        let mut rng = bncg_graph::test_rng(42);
        for _ in 0..20 {
            let g = generators::random_connected(12, 0.2, &mut rng);
            let d = DistanceMatrix::new(&g);
            for (u, v) in g.non_edges() {
                let fast = cost_after_add(&g, &d, u, v);
                let g2 = Move::BilateralAdd { u, v }.apply(&g).unwrap();
                let slow = agent_cost(&g2, u);
                assert_eq!(fast, slow, "fast add disagrees at ({u}, {v})");
            }
        }
    }

    #[test]
    fn fast_add_matches_bitset_kernel() {
        // The matrix-based add engine and the word-parallel bitset
        // kernel are independent fast paths; they must agree with each
        // other on every candidate addition (and, via
        // `fast_add_matches_generic_on_random_graphs`, with ground
        // truth).
        use crate::cost::agent_cost_bits;
        use bncg_graph::BitsetGraph;
        let mut rng = bncg_graph::test_rng(0xB1D5);
        for _ in 0..10 {
            let g = generators::random_connected(12, 0.2, &mut rng);
            let d = DistanceMatrix::new(&g);
            let mut bits = BitsetGraph::from_graph(&g).unwrap();
            for (u, v) in g.non_edges() {
                bits.add_edge(u, v);
                let from_bits = agent_cost_bits(&bits, u);
                bits.remove_edge(u, v);
                assert_eq!(
                    cost_after_add(&g, &d, u, v),
                    from_bits,
                    "bitset kernel disagrees with the add engine at ({u}, {v})"
                );
            }
        }
    }

    #[test]
    fn fast_add_handles_disconnected_components() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let d = DistanceMatrix::new(&g);
        let c = cost_after_add(&g, &d, 0, 2);
        assert_eq!(c.unreachable, 0);
        assert_eq!(c.dist, 1 + 1 + 2); // to 1, 2, 3
        assert_eq!(c.edges, 2);
    }

    #[test]
    fn tree_swap_matches_generic_on_random_trees() {
        let mut rng = bncg_graph::test_rng(7);
        for _ in 0..10 {
            let g = generators::random_tree(14, &mut rng);
            let d = DistanceMatrix::new(&g);
            for u in 0..14u32 {
                for &old in g.neighbors(u) {
                    for new in 0..14u32 {
                        if new == u || g.has_edge(u, new) {
                            continue;
                        }
                        let mv = Move::Swap { agent: u, old, new };
                        let g2 = mv.apply(&g).unwrap();
                        match tree_swap_costs(&g, &d, u, old, new) {
                            Some((cu, cn)) => {
                                assert_eq!(cu, agent_cost(&g2, u));
                                assert_eq!(cn, agent_cost(&g2, new));
                            }
                            None => {
                                // Disconnecting swap: generic engine must
                                // report unreachable nodes.
                                assert!(agent_cost(&g2, u).unreachable > 0);
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn add_distance_gain_matches_cost_delta() {
        let g = generators::cycle(8);
        let d = DistanceMatrix::new(&g);
        for (u, v) in g.non_edges() {
            let before = agent_cost(&g, u);
            let after = cost_after_add(&g, &d, u, v);
            assert_eq!(before.dist - after.dist, add_distance_gain(&d, u, v));
        }
    }
}
