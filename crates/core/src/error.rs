//! Error types for the game layer.

use std::error::Error;
use std::fmt;

/// Errors raised by game construction, move application, and equilibrium
/// checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GameError {
    /// An `Alpha` was constructed with a non-positive value or a zero
    /// denominator.
    InvalidAlpha,
    /// A move referenced a node outside the graph.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// Number of nodes in the game graph.
        n: usize,
    },
    /// A move tried to add an edge that exists or remove one that does not,
    /// or was otherwise structurally invalid.
    InvalidMove(String),
    /// An exact checker was asked for an instance beyond its documented
    /// guard (the check would be super-polynomially large). The legacy
    /// refusal path — [`crate::solver::Solver`] queries degrade to
    /// [`crate::solver::Verdict::Exhausted`] instead.
    CheckTooLarge {
        /// Human-readable description of the exceeded guard.
        reason: String,
    },
    /// The request itself cannot be executed: a malformed or mismatched
    /// solver resume token, an unknown concept name, or an instance past
    /// a structural representation limit (not a budget — budgets
    /// exhaust, they do not error).
    Unsupported {
        /// Human-readable description of what was rejected.
        reason: String,
    },
    /// The operation requires a connected graph.
    Disconnected,
    /// The operation requires a tree.
    NotATree,
    /// An error bubbled up from the graph substrate.
    Graph(bncg_graph::GraphError),
}

impl fmt::Display for GameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GameError::InvalidAlpha => write!(f, "alpha must be a positive rational"),
            GameError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for game with {n} agents")
            }
            GameError::InvalidMove(why) => write!(f, "invalid move: {why}"),
            GameError::CheckTooLarge { reason } => {
                write!(f, "exact check exceeds its size guard: {reason}")
            }
            GameError::Unsupported { reason } => {
                write!(f, "unsupported request: {reason}")
            }
            GameError::Disconnected => write!(f, "operation requires a connected graph"),
            GameError::NotATree => write!(f, "operation requires a tree"),
            GameError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl Error for GameError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GameError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<bncg_graph::GraphError> for GameError {
    fn from(e: bncg_graph::GraphError) -> Self {
        GameError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(GameError::InvalidAlpha.to_string().contains("alpha"));
        assert!(GameError::Disconnected.to_string().contains("connected"));
        let wrapped = GameError::from(bncg_graph::GraphError::NotATree);
        assert!(wrapped.to_string().contains("graph error"));
        use std::error::Error;
        assert!(wrapped.source().is_some());
        assert!(GameError::InvalidAlpha.source().is_none());
    }
}
