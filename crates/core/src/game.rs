//! A convenience facade bundling a graph state with its edge price.

use crate::alpha::Alpha;
use crate::concepts::Concept;
use crate::cost::{agent_cost, social_cost, social_cost_ratio, AgentCost, Ratio};
use crate::error::GameError;
use crate::moves::Move;
use bncg_graph::Graph;

/// A Bilateral Network Creation Game state: the created graph together with
/// the edge price `α`.
///
/// In the BNCG strategy vectors and created graphs are in bijection
/// (Section 1.1), so the graph *is* the state.
///
/// # Examples
///
/// ```
/// use bncg_core::{Alpha, Concept, Game};
/// use bncg_graph::generators;
///
/// let game = Game::new(generators::star(8), Alpha::integer(2)?);
/// assert!(game.is_stable(Concept::Ps)?);
/// assert_eq!(game.social_cost_ratio()?.as_f64(), 1.0); // the optimum
/// # Ok::<(), bncg_core::GameError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Game {
    graph: Graph,
    alpha: Alpha,
}

impl Game {
    /// Creates a game state.
    #[must_use]
    pub fn new(graph: Graph, alpha: Alpha) -> Self {
        Game { graph, alpha }
    }

    /// The created network.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The edge price.
    #[must_use]
    pub fn alpha(&self) -> Alpha {
        self.alpha
    }

    /// Number of agents.
    #[must_use]
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Cost of agent `u` in this state.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[must_use]
    pub fn agent_cost(&self, u: u32) -> AgentCost {
        agent_cost(&self.graph, u)
    }

    /// Social cost of the state.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::Disconnected`] if the graph is disconnected.
    pub fn social_cost(&self) -> Result<Ratio, GameError> {
        social_cost(&self.graph, self.alpha)
    }

    /// The social cost ratio `ρ` against the optimum for this `n` and `α`.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::Disconnected`] if the graph is disconnected.
    pub fn social_cost_ratio(&self) -> Result<Ratio, GameError> {
        social_cost_ratio(&self.graph, self.alpha)
    }

    /// Whether the state is stable under `concept`.
    ///
    /// # Errors
    ///
    /// Forwards guard errors from the exponential checkers.
    pub fn is_stable(&self, concept: Concept) -> Result<bool, GameError> {
        concept.is_stable(&self.graph, self.alpha)
    }

    /// A violating move under `concept`, if any.
    ///
    /// # Errors
    ///
    /// Forwards guard errors from the exponential checkers.
    pub fn find_violation(&self, concept: Concept) -> Result<Option<Move>, GameError> {
        concept.find_violation(&self.graph, self.alpha)
    }

    /// Applies a move, returning the successor state.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidMove`] if the move does not type-check.
    pub fn apply(&self, mv: &Move) -> Result<Game, GameError> {
        Ok(Game {
            graph: mv.apply(&self.graph)?,
            alpha: self.alpha,
        })
    }

    /// Builds the incremental [`GameState`](crate::GameState) engine for
    /// this game — the entry point for repeated checking, best responses,
    /// and dynamics on one evolving state.
    #[must_use]
    pub fn state(&self) -> crate::GameState {
        crate::GameState::new(self.graph.clone(), self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bncg_graph::generators;

    #[test]
    fn facade_roundtrip() {
        let alpha = Alpha::integer(2).unwrap();
        let game = Game::new(generators::path(5), alpha);
        assert_eq!(game.n(), 5);
        assert_eq!(game.alpha(), alpha);
        let mv = game.find_violation(Concept::Ps).unwrap().unwrap();
        let next = game.apply(&mv).unwrap();
        let old_cost = game.social_cost().unwrap();
        // A PS deviation by two agents does not necessarily lower social
        // cost, but here it does (path folds toward a star).
        assert!(next.social_cost().unwrap() < old_cost);
    }

    #[test]
    fn star_has_ratio_one() {
        let game = Game::new(generators::star(9), Alpha::integer(5).unwrap());
        assert_eq!(game.social_cost_ratio().unwrap().as_f64(), 1.0);
        assert_eq!(game.agent_cost(0).edges, 8);
    }
}
