//! Minimal flat-JSON field extractors shared by the serializable resume
//! tokens — the solver's [`crate::solver::Frontier`], the metered
//! best-response [`crate::best_response::BestResponseFrontier`], and the
//! round-robin trajectory checkpoint in `bncg-dynamics`.
//!
//! The workspace is offline (no `serde`), and every token is a flat JSON
//! object whose values are unsigned integers, short known strings, or
//! arrays of unsigned integers — so a handful of scanning extractors is
//! the whole parser. None of the emitted tokens contain strings with
//! embedded braces or brackets, which is the (documented) assumption the
//! nested-object extractor [`object_field`] relies on.

/// Extracts `"key": <u64>` from a flat JSON object.
#[must_use]
pub fn u64_field(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `"key": "<str>"` from a flat JSON object.
#[must_use]
pub fn str_field<'j>(json: &'j str, key: &str) -> Option<&'j str> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Extracts `"key": [u64, …]` from a flat JSON object. An empty array
/// yields an empty vector; a malformed element yields `None` (the caller
/// rejects the whole token rather than resuming from partial garbage).
#[must_use]
pub fn u64_list_field(json: &str, key: &str) -> Option<Vec<u64>> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix('[')?;
    let end = rest.find(']')?;
    let body = rest[..end].trim();
    if body.is_empty() {
        return Some(Vec::new());
    }
    body.split(',').map(|tok| tok.trim().parse().ok()).collect()
}

/// Extracts the balanced `{…}` object value of `"key": {…}`, brace
/// counting only (valid because no emitted token carries braces inside
/// strings). Returns the slice including the outer braces, ready to hand
/// to the nested token's own parser.
#[must_use]
pub fn object_field<'j>(json: &'j str, key: &str) -> Option<&'j str> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    if !rest.starts_with('{') {
        return None;
    }
    let mut depth = 0usize;
    for (i, c) in rest.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[..=i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Renders a `u64` slice as a JSON array (`[1,2,3]`).
#[must_use]
pub fn render_u64_list(values: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_round_trip() {
        let json = "{\"v\":1,\"name\":\"bne\",\"xs\":[3, 5,8],\"empty\":[],\
                     \"inner\":{\"a\":2,\"b\":[9]},\"tail\":7}";
        assert_eq!(u64_field(json, "v"), Some(1));
        assert_eq!(u64_field(json, "tail"), Some(7));
        assert_eq!(str_field(json, "name"), Some("bne"));
        assert_eq!(u64_list_field(json, "xs"), Some(vec![3, 5, 8]));
        assert_eq!(u64_list_field(json, "empty"), Some(Vec::new()));
        let inner = object_field(json, "inner").unwrap();
        assert_eq!(inner, "{\"a\":2,\"b\":[9]}");
        assert_eq!(u64_field(inner, "a"), Some(2));
        assert_eq!(u64_field(json, "missing"), None);
        assert_eq!(object_field(json, "v"), None);
    }

    #[test]
    fn malformed_lists_are_rejected_whole() {
        assert_eq!(u64_list_field("{\"xs\":[1,x]}", "xs"), None);
        assert_eq!(u64_list_field("{\"xs\":1}", "xs"), None);
    }

    #[test]
    fn render_matches_parser() {
        for xs in [vec![], vec![42], vec![1, 2, 3]] {
            let json = format!("{{\"xs\":{}}}", render_u64_list(&xs));
            assert_eq!(u64_list_field(&json, "xs"), Some(xs));
        }
    }
}
