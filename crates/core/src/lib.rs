//! # bncg-core
//!
//! The primary contribution of *The Impact of Cooperation in Bilateral
//! Network Creation* (Friedrich, Gawendowicz, Lenzner, Zahn; PODC 2023),
//! as an executable model:
//!
//! * the **Bilateral Network Creation Game**: agents are nodes, an edge
//!   needs consent and `α` from both endpoints, and
//!   `cost(u) = α·|S_u| + Σ_v dist(u, v)` with a lexicographic
//!   disconnection penalty ([`agent_cost`], [`Alpha`], [`Game`]);
//! * the incremental **`GameState` evaluation engine** every checker and
//!   dynamics loop routes through: cached distance matrix and agent costs,
//!   exact per-move deltas without full recomputation ([`state`],
//!   [`GameState`]);
//! * the full ladder of **solution concepts** ordered by cooperation —
//!   RE, BAE, PS, BSwE, BGE, BNE, k-BSE, BSE — each with a
//!   witness-producing checker ([`concepts`], [`Concept`]);
//! * the **candidate-pruning layer** the exponential checkers and
//!   [`best_response`] route through: sound cost-threshold and locality
//!   filters plus canonical-fingerprint dedup that skip provably
//!   non-improving moves without pricing them ([`candidates`]);
//! * the **unilateral NCG** comparison layer with edge assignments
//!   ([`unilateral`]), used to disprove the Corbo–Parkes conjecture;
//! * the unified **[`solver`] query surface** every stability check
//!   routes through: a [`StabilityQuery`] executed under an
//!   [`ExecPolicy`] (threads, evaluation budget, deadline, cancel
//!   token, shared batch pool) returns a structured [`Verdict`] —
//!   stable, unstable with a witness, or *exhausted* with a
//!   serializable resume [`Frontier`]. Best responses speak the same
//!   policy dialect: [`best_response_with_policy`] meters the scan
//!   anytime-style and [`best_response_resume`] continues a
//!   [`BestResponseFrontier`] to the identical argmin;
//! * the paper's **bounds** as executable closed forms and exact lemma
//!   predicates ([`bounds`]).
//!
//! # Examples
//!
//! One query surface for the whole cooperation ladder — budgeted,
//! anytime, resumable:
//!
//! ```
//! use bncg_core::solver::{ExecPolicy, Solver, StabilityQuery, Verdict};
//! use bncg_core::{delta, Alpha, Concept};
//! use bncg_graph::generators;
//!
//! let path = generators::path(6);
//! let alpha = Alpha::integer(2)?;
//! let solver = Solver::new(ExecPolicy::default().with_threads(2));
//!
//! // Trees are always in Remove Equilibrium …
//! let q = StabilityQuery::new(Concept::Re, &path, alpha);
//! assert!(matches!(solver.check(&q)?, Verdict::Stable { .. }));
//!
//! // … but the path's ends profit from a joint edge: not pairwise
//! // stable, and the verdict carries a replayable witness move.
//! let q = StabilityQuery::new(Concept::Ps, &path, alpha);
//! let Verdict::Unstable { witness, .. } = solver.check(&q)? else {
//!     panic!("the path is not pairwise stable")
//! };
//! assert!(delta::move_improves_all(&path, alpha, &witness)?);
//!
//! // Exponential concepts degrade gracefully instead of erroring: a
//! // deadline (or eval budget) turns into an `Exhausted` verdict whose
//! // frontier resumes the scan exactly where it stopped.
//! let star = generators::star(16);
//! let tight = Solver::new(ExecPolicy::default().with_deadline(std::time::Duration::ZERO));
//! let Verdict::Exhausted { frontier, .. } =
//!     tight.check(&StabilityQuery::new(Concept::Bne, &star, alpha))?
//! else {
//!     panic!("a zero deadline must exhaust the BNE scan")
//! };
//! let resumed = StabilityQuery::new(Concept::Bne, &star, alpha).resume(frontier);
//! assert!(matches!(solver.check(&resumed)?, Verdict::Stable { .. }));
//! # Ok::<(), bncg_core::GameError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod alpha;
mod best_response;
mod cost;
mod error;
mod game;
mod moves;
mod scan;

pub mod bounds;
pub mod candidates;
pub mod combinatorics;
pub mod concepts;
pub mod delta;
pub mod jsonio;
pub mod solver;
pub mod state;
pub mod unilateral;
pub mod windows;

pub use alpha::Alpha;
#[allow(deprecated)]
pub use best_response::best_response_with_budget;
pub use best_response::{
    best_response, best_response_in, best_response_resume, best_response_with_policy, BestResponse,
    BestResponseFrontier, BestResponseVerdict,
};
pub use candidates::CandidateStats;
pub use concepts::{CheckBudget, Concept};
pub use cost::{
    agent_cost, agent_cost_from_matrix, optimum_cost, social_cost, social_cost_ratio, AgentCost,
    Ratio,
};
pub use error::GameError;
pub use game::Game;
pub use moves::{AppliedMove, Move};
pub use solver::{ExecPolicy, Frontier, Progress, Solver, StabilityQuery, Verdict};
pub use state::{AgentDelta, GameState, MoveDelta, MoveEvaluator};
