//! # bncg-core
//!
//! The primary contribution of *The Impact of Cooperation in Bilateral
//! Network Creation* (Friedrich, Gawendowicz, Lenzner, Zahn; PODC 2023),
//! as an executable model:
//!
//! * the **Bilateral Network Creation Game**: agents are nodes, an edge
//!   needs consent and `α` from both endpoints, and
//!   `cost(u) = α·|S_u| + Σ_v dist(u, v)` with a lexicographic
//!   disconnection penalty ([`agent_cost`], [`Alpha`], [`Game`]);
//! * the incremental **`GameState` evaluation engine** every checker and
//!   dynamics loop routes through: cached distance matrix and agent costs,
//!   exact per-move deltas without full recomputation ([`state`],
//!   [`GameState`]);
//! * the full ladder of **solution concepts** ordered by cooperation —
//!   RE, BAE, PS, BSwE, BGE, BNE, k-BSE, BSE — each with a
//!   witness-producing checker ([`concepts`], [`Concept`]);
//! * the **candidate-pruning layer** the exponential checkers and
//!   [`best_response`] route through: sound cost-threshold and locality
//!   filters plus canonical-fingerprint dedup that skip provably
//!   non-improving moves without pricing them ([`candidates`]);
//! * the **unilateral NCG** comparison layer with edge assignments
//!   ([`unilateral`]), used to disprove the Corbo–Parkes conjecture;
//! * the paper's **bounds** as executable closed forms and exact lemma
//!   predicates ([`bounds`]).
//!
//! # Examples
//!
//! Checkers certify stability or hand back a replayable witness move:
//!
//! ```
//! use bncg_core::{concepts, delta, Alpha};
//! use bncg_graph::generators;
//!
//! let path = generators::path(6);
//! let alpha = Alpha::integer(2)?;
//! // Trees are always in Remove Equilibrium …
//! assert!(concepts::re::is_stable(&path, alpha));
//! // … but the path's ends profit from a joint edge: not pairwise stable.
//! let witness = concepts::ps::find_violation(&path, alpha).expect("unstable");
//! assert!(delta::move_improves_all(&path, alpha, &witness)?);
//! # Ok::<(), bncg_core::GameError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod alpha;
mod best_response;
mod cost;
mod error;
mod game;
mod moves;

pub mod bounds;
pub mod candidates;
pub mod combinatorics;
pub mod concepts;
pub mod delta;
pub mod state;
pub mod unilateral;
pub mod windows;

pub use alpha::Alpha;
pub use best_response::{best_response, best_response_in, best_response_with_budget, BestResponse};
pub use candidates::CandidateStats;
pub use concepts::{CheckBudget, Concept};
pub use cost::{
    agent_cost, agent_cost_from_matrix, optimum_cost, social_cost, social_cost_ratio, AgentCost,
    Ratio,
};
pub use error::GameError;
pub use game::Game;
pub use moves::{AppliedMove, Move};
pub use state::{AgentDelta, GameState, MoveDelta, MoveEvaluator};
