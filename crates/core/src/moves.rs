//! Strategy changes (moves) in the bilateral game.
//!
//! Every solution concept is defined by the set of moves it must be stable
//! against; checkers return a concrete [`Move`] as the witness of
//! instability, and dynamics replay these moves. A move can always be
//! applied to a graph state, producing the successor state.

use crate::error::GameError;
use bncg_graph::{BitsetGraph, Graph};
use std::fmt;

/// A strategy change in the bilateral game, annotated with the agents that
/// must consent (i.e. strictly improve) for the corresponding solution
/// concept.
///
/// # Examples
///
/// ```
/// use bncg_core::Move;
/// use bncg_graph::generators;
///
/// let g = generators::path(3);
/// let m = Move::BilateralAdd { u: 0, v: 2 };
/// let g2 = m.apply(&g)?;
/// assert!(g2.has_edge(0, 2));
/// assert_eq!(m.consenting_agents(), vec![0, 2]);
/// # Ok::<(), bncg_core::GameError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Move {
    /// Agent `agent` unilaterally stops paying for `target`; the edge
    /// disappears (Remove Equilibrium).
    Remove {
        /// The agent performing the removal.
        agent: u32,
        /// The neighbor whose edge is dropped.
        target: u32,
    },
    /// Agents `u` and `v` jointly create the edge `{u, v}`; both pay `α`
    /// (Bilateral Add Equilibrium).
    BilateralAdd {
        /// First endpoint.
        u: u32,
        /// Second endpoint.
        v: u32,
    },
    /// Agent `agent` swaps its edge to `old` for a new edge to `new`; the
    /// buying cost of `agent` is unchanged, `new` pays for one extra edge
    /// (Bilateral Swap Equilibrium). `old` is not asked.
    Swap {
        /// The swapping agent.
        agent: u32,
        /// Current neighbor to drop.
        old: u32,
        /// New partner to connect to (must consent).
        new: u32,
    },
    /// A neighborhood change around `center`: simultaneously remove the
    /// edges to `remove` and create edges to `add`. The center and *all*
    /// agents in `add` must strictly improve (Bilateral Neighborhood
    /// Equilibrium).
    Neighborhood {
        /// The agent rearranging its neighborhood.
        center: u32,
        /// Current neighbors to disconnect from.
        remove: Vec<u32>,
        /// New partners to connect to.
        add: Vec<u32>,
    },
    /// A coalitional move by `members` (Bilateral k-Strong Equilibrium):
    /// delete `remove_edges` (each touching the coalition) and create
    /// `add_edges` (both endpoints inside the coalition). All members must
    /// strictly improve.
    Coalition {
        /// The coalition Γ.
        members: Vec<u32>,
        /// Edges to delete; every edge must have an endpoint in Γ.
        remove_edges: Vec<(u32, u32)>,
        /// Edges to create; both endpoints must lie in Γ.
        add_edges: Vec<(u32, u32)>,
    },
}

impl Move {
    /// The agents whose strict improvement the move requires.
    #[must_use]
    pub fn consenting_agents(&self) -> Vec<u32> {
        match self {
            Move::Remove { agent, .. } => vec![*agent],
            Move::BilateralAdd { u, v } => vec![*u, *v],
            Move::Swap { agent, new, .. } => vec![*agent, *new],
            Move::Neighborhood { center, add, .. } => {
                let mut agents = vec![*center];
                agents.extend_from_slice(add);
                agents
            }
            Move::Coalition { members, .. } => members.clone(),
        }
    }

    /// Renders the move in the repo's flat escape-free JSON dialect
    /// ([`crate::jsonio`]) — the wire format the daemon's responses and
    /// the atlas's stored witnesses share. Vertex pairs travel packed one
    /// per u64 as `(u << 32) | v`, never as nested arrays.
    #[must_use]
    pub fn render_json(&self) -> String {
        use crate::jsonio::render_u64_list;
        let pack = |u: u32, v: u32| (u64::from(u) << 32) | u64::from(v);
        match self {
            Move::Remove { agent, target } => {
                format!("{{\"kind\":\"remove\",\"agent\":{agent},\"target\":{target}}}")
            }
            Move::BilateralAdd { u, v } => {
                format!("{{\"kind\":\"add\",\"u\":{u},\"v\":{v}}}")
            }
            Move::Swap { agent, old, new } => {
                format!("{{\"kind\":\"swap\",\"agent\":{agent},\"old\":{old},\"new\":{new}}}")
            }
            Move::Neighborhood {
                center,
                remove,
                add,
            } => {
                let rem: Vec<u64> = remove.iter().map(|&v| u64::from(v)).collect();
                let add: Vec<u64> = add.iter().map(|&v| u64::from(v)).collect();
                format!(
                    "{{\"kind\":\"neighborhood\",\"center\":{center},\"remove\":{},\"add\":{}}}",
                    render_u64_list(&rem),
                    render_u64_list(&add)
                )
            }
            Move::Coalition {
                members,
                remove_edges,
                add_edges,
            } => {
                let mem: Vec<u64> = members.iter().map(|&v| u64::from(v)).collect();
                let rem: Vec<u64> = remove_edges.iter().map(|&(u, v)| pack(u, v)).collect();
                let add: Vec<u64> = add_edges.iter().map(|&(u, v)| pack(u, v)).collect();
                format!(
                    "{{\"kind\":\"coalition\",\"members\":{},\"remove_edges\":{},\"add_edges\":{}}}",
                    render_u64_list(&mem),
                    render_u64_list(&rem),
                    render_u64_list(&add)
                )
            }
        }
    }

    /// Parses a move rendered by [`Move::render_json`]. The inverse holds
    /// exactly: `parse_json(render_json(m)) == Ok(m)`.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::Unsupported`] on an unknown `kind` or missing
    /// fields — stored witnesses are replayed, so a silently defaulted
    /// field would replay the wrong move.
    pub fn parse_json(json: &str) -> Result<Move, GameError> {
        use crate::jsonio::{str_field, u64_field, u64_list_field};
        let missing = |field: &str| GameError::Unsupported {
            reason: format!("move object is missing '{field}'"),
        };
        let vertex = |field: &str| -> Result<u32, GameError> {
            let raw = u64_field(json, field).ok_or_else(|| missing(field))?;
            u32::try_from(raw).map_err(|_| GameError::Unsupported {
                reason: format!("move field '{field}' is not a vertex id"),
            })
        };
        let vertex_list = |field: &str| -> Result<Vec<u32>, GameError> {
            u64_list_field(json, field)
                .ok_or_else(|| missing(field))?
                .into_iter()
                .map(|raw| {
                    u32::try_from(raw).map_err(|_| GameError::Unsupported {
                        reason: format!("move field '{field}' holds a non-vertex value"),
                    })
                })
                .collect()
        };
        let unpack = |p: u64| ((p >> 32) as u32, (p & u32::MAX as u64) as u32);
        let edge_list = |field: &str| -> Result<Vec<(u32, u32)>, GameError> {
            Ok(u64_list_field(json, field)
                .ok_or_else(|| missing(field))?
                .into_iter()
                .map(unpack)
                .collect())
        };
        match str_field(json, "kind").ok_or_else(|| missing("kind"))? {
            "remove" => Ok(Move::Remove {
                agent: vertex("agent")?,
                target: vertex("target")?,
            }),
            "add" => Ok(Move::BilateralAdd {
                u: vertex("u")?,
                v: vertex("v")?,
            }),
            "swap" => Ok(Move::Swap {
                agent: vertex("agent")?,
                old: vertex("old")?,
                new: vertex("new")?,
            }),
            "neighborhood" => Ok(Move::Neighborhood {
                center: vertex("center")?,
                remove: vertex_list("remove")?,
                add: vertex_list("add")?,
            }),
            "coalition" => Ok(Move::Coalition {
                members: vertex_list("members")?,
                remove_edges: edge_list("remove_edges")?,
                add_edges: edge_list("add_edges")?,
            }),
            other => Err(GameError::Unsupported {
                reason: format!("unknown move kind {other:?}"),
            }),
        }
    }

    /// The move with every vertex id mapped through `map` (`map[old]` is
    /// the new id). Used to translate a witness found on a canonical
    /// representative back to the labels of an isomorphic query graph.
    ///
    /// # Panics
    ///
    /// Panics if a vertex id of the move is outside `map`.
    #[must_use]
    pub fn relabeled(&self, map: &[u32]) -> Move {
        let m = |v: u32| map[v as usize];
        match self {
            Move::Remove { agent, target } => Move::Remove {
                agent: m(*agent),
                target: m(*target),
            },
            Move::BilateralAdd { u, v } => Move::BilateralAdd { u: m(*u), v: m(*v) },
            Move::Swap { agent, old, new } => Move::Swap {
                agent: m(*agent),
                old: m(*old),
                new: m(*new),
            },
            Move::Neighborhood {
                center,
                remove,
                add,
            } => Move::Neighborhood {
                center: m(*center),
                remove: remove.iter().map(|&v| m(v)).collect(),
                add: add.iter().map(|&v| m(v)).collect(),
            },
            Move::Coalition {
                members,
                remove_edges,
                add_edges,
            } => Move::Coalition {
                members: members.iter().map(|&v| m(v)).collect(),
                remove_edges: remove_edges.iter().map(|&(u, v)| (m(u), m(v))).collect(),
                add_edges: add_edges.iter().map(|&(u, v)| (m(u), m(v))).collect(),
            },
        }
    }

    /// Validates the move against a graph state and returns the successor
    /// state.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidMove`] if the move does not type-check
    /// against the state (adding present edges, removing absent ones,
    /// coalition constraints violated, …).
    pub fn apply(&self, g: &Graph) -> Result<Graph, GameError> {
        let mut out = g.clone();
        self.apply_in_place(&mut out)?;
        Ok(out)
    }

    /// Validates the move and applies it to `g` **in place**, returning the
    /// edge toggles performed so the caller can replay or undo them (the
    /// incremental [`GameState`](crate::GameState) engine updates its
    /// distance cache one toggle at a time).
    ///
    /// On error the graph is left exactly as it was: toggles applied before
    /// the failing step are rolled back.
    ///
    /// # Errors
    ///
    /// Same contract as [`Move::apply`].
    pub fn apply_in_place(&self, g: &mut Graph) -> Result<AppliedMove, GameError> {
        let n = g.n();
        let check_node = |x: u32| -> Result<(), GameError> {
            if (x as usize) < n {
                Ok(())
            } else {
                Err(GameError::NodeOutOfRange { node: x, n })
            }
        };
        let mut applied = AppliedMove {
            toggles: Vec::new(),
        };
        let result = (|| -> Result<(), GameError> {
            match self {
                Move::Remove { agent, target } => {
                    check_node(*agent)?;
                    check_node(*target)?;
                    applied.remove(g, *agent, *target)?;
                }
                Move::BilateralAdd { u, v } => {
                    check_node(*u)?;
                    check_node(*v)?;
                    applied.add(g, *u, *v)?;
                }
                Move::Swap { agent, old, new } => {
                    check_node(*agent)?;
                    check_node(*old)?;
                    check_node(*new)?;
                    if old == new {
                        return Err(GameError::InvalidMove(
                            "swap must change the partner".into(),
                        ));
                    }
                    applied.remove(g, *agent, *old)?;
                    applied.add(g, *agent, *new)?;
                }
                Move::Neighborhood {
                    center,
                    remove,
                    add,
                } => {
                    check_node(*center)?;
                    if remove.is_empty() && add.is_empty() {
                        return Err(GameError::InvalidMove(
                            "neighborhood move must change something".into(),
                        ));
                    }
                    for &r in remove {
                        check_node(r)?;
                        applied.remove(g, *center, r)?;
                    }
                    for &a in add {
                        check_node(a)?;
                        applied.add(g, *center, a)?;
                    }
                }
                Move::Coalition {
                    members,
                    remove_edges,
                    add_edges,
                } => {
                    if members.is_empty() {
                        return Err(GameError::InvalidMove("empty coalition".into()));
                    }
                    if remove_edges.is_empty() && add_edges.is_empty() {
                        return Err(GameError::InvalidMove(
                            "coalition move must change something".into(),
                        ));
                    }
                    for &m in members {
                        check_node(m)?;
                    }
                    let in_coalition = |x: u32| members.contains(&x);
                    for &(u, v) in remove_edges {
                        if !in_coalition(u) && !in_coalition(v) {
                            return Err(GameError::InvalidMove(format!(
                                "removed edge {{{u}, {v}}} does not touch the coalition"
                            )));
                        }
                        applied.remove(g, u, v)?;
                    }
                    for &(u, v) in add_edges {
                        if !in_coalition(u) || !in_coalition(v) {
                            return Err(GameError::InvalidMove(format!(
                                "added edge {{{u}, {v}}} leaves the coalition"
                            )));
                        }
                        applied.add(g, u, v)?;
                    }
                }
            }
            Ok(())
        })();
        match result {
            Ok(()) => Ok(applied),
            Err(e) => {
                applied.undo(g);
                Err(e)
            }
        }
    }
}

/// The record of a [`Move`] applied in place: the edge toggles performed,
/// in application order (`true` marks an addition).
#[derive(Debug, Clone)]
pub struct AppliedMove {
    toggles: Vec<(u32, u32, bool)>,
}

impl AppliedMove {
    /// The performed toggles `(u, v, added)` in application order.
    #[must_use]
    pub fn toggles(&self) -> &[(u32, u32, bool)] {
        &self.toggles
    }

    /// Reverts every recorded toggle, restoring the pre-move graph.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not the graph the toggles were applied to.
    pub fn undo(&self, g: &mut Graph) {
        for &(u, v, added) in self.toggles.iter().rev() {
            if added {
                g.remove_edge(u, v).expect("undoing a recorded addition");
            } else {
                g.add_edge(u, v).expect("undoing a recorded removal");
            }
        }
    }

    /// Replays the recorded toggles on a word-parallel bitset mirror of
    /// the pre-move graph, so candidate pricing can run on the bitset
    /// kernels without re-converting the whole adjacency per move.
    ///
    /// # Panics
    ///
    /// Panics if a toggled endpoint is out of the bitset's range.
    pub fn redo_on_bits(&self, bits: &mut BitsetGraph) {
        for &(u, v, added) in &self.toggles {
            if added {
                bits.add_edge(u, v);
            } else {
                bits.remove_edge(u, v);
            }
        }
    }

    /// Reverts the recorded toggles on the bitset mirror (inverse of
    /// [`AppliedMove::redo_on_bits`]).
    ///
    /// # Panics
    ///
    /// Panics if a toggled endpoint is out of the bitset's range.
    pub fn undo_on_bits(&self, bits: &mut BitsetGraph) {
        for &(u, v, added) in self.toggles.iter().rev() {
            if added {
                bits.remove_edge(u, v);
            } else {
                bits.add_edge(u, v);
            }
        }
    }

    fn add(&mut self, g: &mut Graph, u: u32, v: u32) -> Result<(), GameError> {
        g.add_edge(u, v)
            .map_err(|e| GameError::InvalidMove(e.to_string()))?;
        self.toggles.push((u, v, true));
        Ok(())
    }

    fn remove(&mut self, g: &mut Graph, u: u32, v: u32) -> Result<(), GameError> {
        g.remove_edge(u, v)
            .map_err(|e| GameError::InvalidMove(e.to_string()))?;
        self.toggles.push((u, v, false));
        Ok(())
    }
}

impl fmt::Display for Move {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Move::Remove { agent, target } => write!(f, "remove: {agent} drops edge to {target}"),
            Move::BilateralAdd { u, v } => write!(f, "add: {u} and {v} build {{{u}, {v}}}"),
            Move::Swap { agent, old, new } => {
                write!(f, "swap: {agent} trades edge to {old} for edge to {new}")
            }
            Move::Neighborhood {
                center,
                remove,
                add,
            } => write!(
                f,
                "neighborhood around {center}: remove {remove:?}, add {add:?}"
            ),
            Move::Coalition {
                members,
                remove_edges,
                add_edges,
            } => write!(
                f,
                "coalition {members:?}: remove {remove_edges:?}, add {add_edges:?}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bncg_graph::generators;

    #[test]
    fn apply_remove_and_add() {
        let g = generators::path(4);
        let g2 = Move::Remove {
            agent: 1,
            target: 2,
        }
        .apply(&g)
        .unwrap();
        assert!(!g2.has_edge(1, 2));
        let g3 = Move::BilateralAdd { u: 0, v: 3 }.apply(&g).unwrap();
        assert!(g3.has_edge(0, 3));
    }

    #[test]
    fn apply_swap() {
        let g = generators::star(4); // center 0
        let m = Move::Swap {
            agent: 1,
            old: 0,
            new: 2,
        };
        let g2 = m.apply(&g).unwrap();
        assert!(!g2.has_edge(1, 0));
        assert!(g2.has_edge(1, 2));
        assert_eq!(m.consenting_agents(), vec![1, 2]);
    }

    #[test]
    fn apply_neighborhood() {
        let g = generators::star(5);
        let m = Move::Neighborhood {
            center: 0,
            remove: vec![1, 2],
            add: vec![],
        };
        let g2 = m.apply(&g).unwrap();
        assert_eq!(g2.degree(0), 2);
        assert!(Move::Neighborhood {
            center: 0,
            remove: vec![],
            add: vec![]
        }
        .apply(&g)
        .is_err());
    }

    #[test]
    fn coalition_constraints() {
        let g = generators::path(5);
        // Legal: coalition {0, 4} adds {0, 4} and removes {3, 4}.
        let m = Move::Coalition {
            members: vec![0, 4],
            remove_edges: vec![(3, 4)],
            add_edges: vec![(0, 4)],
        };
        let g2 = m.apply(&g).unwrap();
        assert!(g2.has_edge(0, 4));
        assert!(!g2.has_edge(3, 4));

        // Illegal: removed edge does not touch the coalition.
        let bad = Move::Coalition {
            members: vec![0],
            remove_edges: vec![(2, 3)],
            add_edges: vec![],
        };
        assert!(matches!(bad.apply(&g), Err(GameError::InvalidMove(_))));

        // Illegal: added edge leaves the coalition.
        let bad = Move::Coalition {
            members: vec![0],
            remove_edges: vec![],
            add_edges: vec![(0, 2)],
        };
        assert!(matches!(bad.apply(&g), Err(GameError::InvalidMove(_))));

        // Illegal: empty coalition or empty move.
        assert!(Move::Coalition {
            members: vec![],
            remove_edges: vec![],
            add_edges: vec![(0, 1)]
        }
        .apply(&g)
        .is_err());
        assert!(Move::Coalition {
            members: vec![0],
            remove_edges: vec![],
            add_edges: vec![]
        }
        .apply(&g)
        .is_err());
    }

    #[test]
    fn invalid_moves_are_rejected() {
        let g = generators::path(3);
        assert!(Move::Remove {
            agent: 0,
            target: 2
        }
        .apply(&g)
        .is_err());
        assert!(Move::BilateralAdd { u: 0, v: 1 }.apply(&g).is_err());
        assert!(Move::Swap {
            agent: 0,
            old: 1,
            new: 1
        }
        .apply(&g)
        .is_err());
        assert!(matches!(
            Move::Remove {
                agent: 9,
                target: 0
            }
            .apply(&g),
            Err(GameError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn consenting_agents_per_move() {
        assert_eq!(
            Move::Remove {
                agent: 3,
                target: 1
            }
            .consenting_agents(),
            vec![3]
        );
        assert_eq!(
            Move::Neighborhood {
                center: 0,
                remove: vec![1],
                add: vec![2, 3]
            }
            .consenting_agents(),
            vec![0, 2, 3]
        );
        assert_eq!(
            Move::Coalition {
                members: vec![4, 5],
                remove_edges: vec![],
                add_edges: vec![]
            }
            .consenting_agents(),
            vec![4, 5]
        );
    }

    #[test]
    fn apply_in_place_rolls_back_on_error() {
        let g0 = generators::path(5);
        let mut g = g0.clone();
        // The second removal fails (edge {0, 2} does not exist); the first
        // removal must be rolled back.
        let bad = Move::Coalition {
            members: vec![0, 1, 2],
            remove_edges: vec![(0, 1), (0, 2)],
            add_edges: vec![],
        };
        assert!(bad.apply_in_place(&mut g).is_err());
        assert_eq!(g, g0, "failed move must leave the graph untouched");

        // A successful application records its toggles and undoes cleanly.
        let good = Move::Neighborhood {
            center: 0,
            remove: vec![1],
            add: vec![3, 4],
        };
        let applied = good.apply_in_place(&mut g).unwrap();
        assert_eq!(
            applied.toggles(),
            &[(0, 1, false), (0, 3, true), (0, 4, true)]
        );
        assert!(g.has_edge(0, 4) && !g.has_edge(0, 1));
        applied.undo(&mut g);
        assert_eq!(g, g0);
    }

    #[test]
    fn bitset_mirror_tracks_redo_and_undo() {
        let g = generators::path(6);
        let mut scratch = g.clone();
        let mut bits = BitsetGraph::from_graph(&g).unwrap();
        let mv = Move::Neighborhood {
            center: 0,
            remove: vec![1],
            add: vec![3, 5],
        };
        let applied = mv.apply_in_place(&mut scratch).unwrap();
        applied.redo_on_bits(&mut bits);
        assert_eq!(bits, BitsetGraph::from_graph(&scratch).unwrap());
        applied.undo(&mut scratch);
        applied.undo_on_bits(&mut bits);
        assert_eq!(scratch, g);
        assert_eq!(bits, BitsetGraph::from_graph(&g).unwrap());
    }

    #[test]
    fn display_is_informative() {
        let m = Move::Swap {
            agent: 1,
            old: 0,
            new: 2,
        };
        let s = m.to_string();
        assert!(s.contains("swap"));
        assert!(s.contains('1') && s.contains('0') && s.contains('2'));
    }

    fn wire_samples() -> Vec<Move> {
        vec![
            Move::Remove {
                agent: 3,
                target: 7,
            },
            Move::BilateralAdd { u: 0, v: 9 },
            Move::Swap {
                agent: 2,
                old: 1,
                new: 5,
            },
            Move::Neighborhood {
                center: 4,
                remove: vec![1, 2],
                add: vec![6, 8, 9],
            },
            Move::Neighborhood {
                center: 0,
                remove: vec![],
                add: vec![3],
            },
            Move::Coalition {
                members: vec![0, 2, 5],
                remove_edges: vec![(0, 1), (2, 4)],
                add_edges: vec![(0, 5)],
            },
            Move::Coalition {
                members: vec![1, 2],
                remove_edges: vec![],
                add_edges: vec![(1, 2)],
            },
        ]
    }

    #[test]
    fn wire_json_round_trips() {
        for mv in wire_samples() {
            let json = mv.render_json();
            assert_eq!(
                Move::parse_json(&json).unwrap(),
                mv,
                "round-trip failed for {json}"
            );
        }
    }

    #[test]
    fn wire_json_rejects_malformed_objects() {
        assert!(Move::parse_json("{}").is_err());
        assert!(Move::parse_json("{\"kind\":\"teleport\"}").is_err());
        assert!(Move::parse_json("{\"kind\":\"add\",\"u\":0}").is_err());
        assert!(Move::parse_json("{\"kind\":\"neighborhood\",\"center\":1}").is_err());
    }

    #[test]
    fn relabeling_maps_every_vertex() {
        // map: 0→4, 1→3, 2→2, 3→1, 4→0, 5→5, …
        let map = [4, 3, 2, 1, 0, 5, 6, 7, 8, 9];
        let relabeled: Vec<Move> = wire_samples().iter().map(|m| m.relabeled(&map)).collect();
        assert_eq!(
            relabeled[0],
            Move::Remove {
                agent: 1,
                target: 7
            }
        );
        assert_eq!(relabeled[1], Move::BilateralAdd { u: 4, v: 9 });
        assert_eq!(
            relabeled[3],
            Move::Neighborhood {
                center: 0,
                remove: vec![3, 2],
                add: vec![6, 8, 9],
            }
        );
        // An involution applied twice is the identity.
        let back: Vec<Move> = relabeled.iter().map(|m| m.relabeled(&map)).collect();
        assert_eq!(back, wire_samples());
    }
}
