//! Shared evaluation-budget pools with admission control — the
//! multi-tenant generalization of [`ExecPolicy::batch_budget`].
//!
//! [`ExecPolicy::batch_budget`] caps one `check_many` batch with a
//! single anonymous atomic counter. A [`BudgetPool`] makes that pool a
//! first-class, long-lived object: it carries its **grant** (total
//! evaluations allowed, top-uppable while the pool is live), its
//! **used** counter (the atomic every scan flushes into — the same
//! counter `check_many_pooled` accepts), and an optional **expiry
//! instant**, so a serving layer can hold one pool per tenant and admit,
//! meter, and shed that tenant's queries independently of every other
//! tenant's.
//!
//! The intended consumer is [`Solver::check_sliced`]
//! (one query, one bounded time slice, drawn from a shared pool — the
//! scheduling primitive of `bncg-serve`), but the type is useful
//! anywhere a budget outlives a single call: sweeps that chunk their
//! instances, dynamics runs that meter activations across slices, or a
//! daemon's per-tenant fair-share accounting.
//!
//! # Accounting contract
//!
//! * The pool never blocks: admission is a load, draining is the scan
//!   poll protocol, so overshoot is bounded by the scan poll quantum
//!   (at most `threads · 1024` evaluations past the grant — the same
//!   bound [`ExecPolicy::batch_budget`] documents).
//! * [`BudgetPool::drained`] is monotone under a fixed grant: once a
//!   pool reads drained, every later admission check sheds until
//!   [`BudgetPool::top_up`] raises the grant.
//! * Counters are cumulative for the lifetime of the pool — a tenant's
//!   `used` total is its fair-share accounting record, not a per-call
//!   scratch value.
//!
//! [`ExecPolicy::batch_budget`]: crate::solver::ExecPolicy::batch_budget
//! [`Solver::check_sliced`]: crate::solver::Solver::check_sliced

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A shared, top-uppable evaluation budget with admission control.
///
/// See the [module docs](self) for the accounting contract.
#[derive(Debug)]
pub struct BudgetPool {
    /// Total evaluations granted over the pool's lifetime.
    granted: AtomicU64,
    /// Evaluations consumed so far (the counter scans flush into).
    used: AtomicU64,
    /// Hard wall-clock expiry: past it the pool admits nothing,
    /// regardless of remaining budget.
    expires_at: Option<Instant>,
}

impl BudgetPool {
    /// A pool granting `evals` candidate evaluations, with no expiry.
    #[must_use]
    pub fn new(evals: u64) -> Self {
        BudgetPool {
            granted: AtomicU64::new(evals),
            used: AtomicU64::new(0),
            expires_at: None,
        }
    }

    /// Attaches a hard wall-clock expiry: once `at` passes, the pool
    /// sheds every admission check even if budget remains. This is the
    /// deadline-propagation half of fair-share accounting — a tenant's
    /// whole sweep shares one expiry instead of each query anchoring
    /// its own deadline.
    #[must_use]
    pub fn with_expiry(mut self, at: Instant) -> Self {
        self.expires_at = Some(at);
        self
    }

    /// Total evaluations granted so far (initial grant plus top-ups).
    #[must_use]
    pub fn granted(&self) -> u64 {
        self.granted.load(Ordering::Relaxed)
    }

    /// Evaluations consumed so far (may overshoot the grant by at most
    /// one scan poll quantum per worker thread).
    #[must_use]
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Evaluations still admissible (`0` once drained).
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.granted().saturating_sub(self.used())
    }

    /// Whether the budget is exhausted. Queries admitted against a
    /// drained pool must be shed with zero work (the solver's
    /// [`check_sliced`](crate::solver::Solver::check_sliced) does this
    /// itself; callers metering other scans check before running).
    #[must_use]
    pub fn drained(&self) -> bool {
        self.used() >= self.granted()
    }

    /// Whether the pool's wall-clock expiry has passed (always `false`
    /// without one).
    #[must_use]
    pub fn expired(&self) -> bool {
        self.expires_at.is_some_and(|at| Instant::now() >= at)
    }

    /// The expiry instant, if one is set — callers propagate the
    /// remaining slice into per-call [`ExecPolicy::deadline`]s.
    ///
    /// [`ExecPolicy::deadline`]: crate::solver::ExecPolicy::deadline
    #[must_use]
    pub fn expires_at(&self) -> Option<Instant> {
        self.expires_at
    }

    /// Whether a new query may start work: budget remains and the
    /// expiry (if any) has not passed.
    #[must_use]
    pub fn admits(&self) -> bool {
        !self.drained() && !self.expired()
    }

    /// Raises the grant by `evals` (a drained pool becomes admissible
    /// again). Returns the new grant total.
    pub fn top_up(&self, evals: u64) -> u64 {
        self.granted.fetch_add(evals, Ordering::Relaxed) + evals
    }

    /// Charges `evals` consumed outside the scan protocol (polynomial
    /// concepts complete eagerly and unmetered; a fair-share layer
    /// charges them a flat rate so they cannot bypass the pool).
    pub fn charge(&self, evals: u64) {
        self.used.fetch_add(evals, Ordering::Relaxed);
    }

    /// The raw used-counter, in the shape
    /// [`Solver::check_many_pooled`](crate::solver::Solver::check_many_pooled)
    /// drains: pass it there with
    /// [`ExecPolicy::batch_budget`](crate::solver::ExecPolicy::batch_budget)
    /// set to this pool's grant to span the pool across a batch sweep.
    #[must_use]
    pub fn counter(&self) -> &AtomicU64 {
        &self.used
    }

    /// The effective batch-budget cap for one time slice of at most
    /// `slice` evaluations: `min(granted, used + max(slice, 1))`. A
    /// scan bounded by this cap stops after roughly one slice of work
    /// *and* never overruns the pool, in a single stop condition.
    #[must_use]
    pub fn slice_cap(&self, slice: u64) -> u64 {
        self.granted().min(self.used().saturating_add(slice.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn accounting_and_admission() {
        let pool = BudgetPool::new(100);
        assert!(pool.admits());
        assert_eq!(pool.remaining(), 100);
        pool.charge(40);
        assert_eq!(pool.used(), 40);
        assert_eq!(pool.remaining(), 60);
        assert_eq!(pool.slice_cap(10), 50);
        assert_eq!(pool.slice_cap(1000), 100);
        pool.charge(60);
        assert!(pool.drained());
        assert!(!pool.admits());
        // A drained pool's slice cap never exceeds the grant, so a
        // sliced scan sheds with zero work.
        assert_eq!(pool.slice_cap(10), 100);
        pool.top_up(50);
        assert!(pool.admits());
        assert_eq!(pool.remaining(), 50);
    }

    #[test]
    fn zero_slices_clamp_to_one_evaluation() {
        let pool = BudgetPool::new(100);
        assert_eq!(pool.slice_cap(0), 1, "a zero slice must make progress");
    }

    #[test]
    fn expiry_sheds_regardless_of_budget() {
        let pool = BudgetPool::new(u64::MAX).with_expiry(Instant::now() - Duration::from_secs(1));
        assert!(pool.expired());
        assert!(!pool.admits());
        assert!(!pool.drained());
    }
}
