//! Shared scan-control infrastructure behind the [`crate::solver`]
//! surface: a cooperative stop protocol (`ScanCtl`/`CtlLocal`) the
//! exponential checkers poll from their hot loops, a per-unit outcome
//! type, and the generic sequential/parallel drive loop that turns a
//! unit-structured scan (BNE centers, k-BSE coalitions, BSE target-mask
//! chunks) into an anytime, resumable search.
//!
//! # The unit/position contract
//!
//! Every exponential checker factors its candidate space into **units**
//! (outer index, scanned in ascending order) and **positions** within a
//! unit (inner index in raw enumeration order). The contract the driver
//! relies on:
//!
//! 1. `scan_unit(unit, start)` scans positions `start..` of `unit` in
//!    ascending order and never looks at another unit.
//! 2. `UnitOutcome::Found` reports the *first* violation at or after
//!    `start`; `UnitOutcome::Done` certifies no violation at or after
//!    `start`; `UnitOutcome::Stopped(p)` certifies positions
//!    `start..p` and that `p > start` whenever any candidate was
//!    processed (forward progress).
//! 3. Enumeration is deterministic in `(unit, position)` — independent
//!    of thread count, budgets, and resume points — so a scan stopped at
//!    a frontier and resumed later visits exactly the candidates an
//!    uninterrupted scan would, in the same order.
//!
//! Under that contract [`drive`] guarantees: a `Completed(Some(mv))`
//! result is the same witness the sequential unbudgeted scan returns,
//! and a `Stopped` result's `(unit, pos)` frontier has every candidate
//! strictly before it certified non-improving — resuming there can never
//! skip or reorder a candidate.
//!
//! The control protocol is substrate-agnostic: workspaces now carry a
//! per-thread [`bncg_graph::BitsetGraph`] whose toggled state is batched
//! across consecutive leaves of one unit, which is safe precisely
//! because a unit is owned by one worker end to end — the contract above
//! never migrates a half-scanned unit, so no bitset state crosses
//! threads.

use crate::candidates::CandidateStats;
use crate::moves::Move;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Immutable stop conditions for one query execution, shared by all
/// worker threads. An inactive control (no budget, deadline, or cancel
/// token) reduces every poll to a single branch so the legacy
/// full-scan entry points pay nothing for the shared code path.
pub(crate) struct ScanCtl<'a> {
    /// Shared evaluation counter; `None` means the control is inert.
    shared_evals: Option<&'a AtomicU64>,
    /// Stop once the shared counter reaches this (`u64::MAX` = none).
    eval_budget: u64,
    /// Stop once the wall clock passes this instant.
    deadline: Option<Instant>,
    /// Stop once this flag is raised.
    cancel: Option<&'a AtomicBool>,
    /// Local work between flushes of the shared counter: stop conditions
    /// are polled at this granularity, which bounds budget overshoot to
    /// `threads · poll` evaluations.
    poll: u64,
}

impl<'a> ScanCtl<'a> {
    /// A control that never stops the scan (legacy full-scan paths).
    pub(crate) fn unbounded() -> ScanCtl<'static> {
        ScanCtl {
            shared_evals: None,
            eval_budget: u64::MAX,
            deadline: None,
            cancel: None,
            poll: u64::MAX,
        }
    }

    /// A control enforcing the given stop conditions through `shared`.
    pub(crate) fn new(
        shared: &'a AtomicU64,
        eval_budget: Option<u64>,
        deadline: Option<Instant>,
        cancel: Option<&'a AtomicBool>,
    ) -> ScanCtl<'a> {
        if eval_budget.is_none() && deadline.is_none() && cancel.is_none() {
            return ScanCtl::unbounded();
        }
        // A zero budget still makes progress: the first poll fires only
        // after `poll` candidates were processed.
        let budget = eval_budget.unwrap_or(u64::MAX).max(1);
        ScanCtl {
            shared_evals: Some(shared),
            eval_budget: budget,
            deadline,
            cancel,
            poll: (budget / 8).clamp(64, 1024),
        }
    }
}

/// Per-thread poll state: counts work locally and only touches the
/// shared counter (and the clock) every [`ScanCtl::poll`] candidates.
pub(crate) struct CtlLocal {
    /// Evaluations not yet flushed to the shared counter.
    pending: u64,
    /// Candidates until the next flush.
    countdown: u64,
}

impl CtlLocal {
    pub(crate) fn new(ctl: &ScanCtl) -> Self {
        CtlLocal {
            pending: 0,
            countdown: ctl.poll,
        }
    }

    /// Records one engine evaluation; `true` means stop the scan.
    #[inline]
    pub(crate) fn tick_eval(&mut self, ctl: &ScanCtl) -> bool {
        let Some(shared) = ctl.shared_evals else {
            return false;
        };
        self.pending += 1;
        if self.countdown > 1 {
            self.countdown -= 1;
            return false;
        }
        self.flush(ctl, shared)
    }

    /// Records `n` generated-but-skipped candidates (pruned, deduped, or
    /// bulk-eliminated subspaces). Only the wall-clock conditions can
    /// fire here — skipped candidates cost no evaluation budget — but
    /// polling on them keeps prune-heavy scans responsive to deadlines
    /// and cancellation.
    #[inline]
    pub(crate) fn tick_skipped(&mut self, ctl: &ScanCtl, n: u64) -> bool {
        let Some(shared) = ctl.shared_evals else {
            return false;
        };
        if self.countdown > n {
            self.countdown -= n;
            return false;
        }
        self.flush(ctl, shared)
    }

    /// Flushes any unreported evaluations to the shared counter
    /// *without* evaluating stop conditions — called when a drive
    /// worker finishes so a counter that outlives the query (the
    /// [`crate::solver`] batch budget pool) observes every evaluation,
    /// not just those past a poll boundary.
    pub(crate) fn finish(&mut self, ctl: &ScanCtl) {
        if let Some(shared) = ctl.shared_evals {
            if self.pending > 0 {
                shared.fetch_add(self.pending, Ordering::Relaxed);
                self.pending = 0;
            }
        }
    }

    #[cold]
    fn flush(&mut self, ctl: &ScanCtl, shared: &AtomicU64) -> bool {
        self.countdown = ctl.poll;
        let total = shared.fetch_add(self.pending, Ordering::Relaxed) + self.pending;
        self.pending = 0;
        if total >= ctl.eval_budget {
            return true;
        }
        if let Some(c) = ctl.cancel {
            if c.load(Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(d) = ctl.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        false
    }
}

/// What one unit's scan produced (see the module docs for the contract).
pub(crate) enum UnitOutcome {
    /// Every position at or after `start` is certified non-improving.
    Done,
    /// The first improving move at or after `start`.
    Found(Move),
    /// The scan certified positions `start..p` and was stopped by the
    /// control; `p` is the next position to resume at.
    Stopped(u64),
}

/// A unit-structured candidate scan (one per exponential concept).
pub(crate) trait UnitScanner: Sync {
    /// Per-thread scratch (scratch graph, bitset workspace, dedup set,
    /// memo caches).
    type Ws: Send;

    /// Number of units in the scan.
    fn units(&self) -> u64;

    /// Fresh per-thread scratch.
    fn workspace(&self) -> Self::Ws;

    /// Scans positions `start..` of `unit` under `ctl`. `racing` carries
    /// the parallel drive's lowest-found-unit index: once it undercuts
    /// `unit`, the scan may abandon (return `Done`) because a violation
    /// in a strictly lower unit already beats anything found here — the
    /// driver never certifies a prefix past a recorded stop, and a
    /// recorded find below `unit` makes this unit's completeness moot.
    #[allow(clippy::too_many_arguments)]
    fn scan_unit(
        &self,
        ws: &mut Self::Ws,
        stats: &mut CandidateStats,
        unit: u64,
        start: u64,
        ctl: &ScanCtl,
        cl: &mut CtlLocal,
        racing: Option<&AtomicU64>,
    ) -> UnitOutcome;
}

/// Outcome of a full drive over a scanner's units.
pub(crate) enum DriveOutcome {
    /// The scan ran to completion: `Some` witness or certified stability.
    Completed(Option<Move>),
    /// The control stopped the scan; everything strictly before
    /// `(unit, pos)` is certified non-improving.
    Stopped {
        /// First unit not fully certified.
        unit: u64,
        /// First uncertified position within that unit.
        pos: u64,
    },
}

/// Runs `scanner` from `(start_unit, start_pos)` across `threads`
/// workers. The verdict — and, on completion, the witness — equals the
/// sequential scan's: units are raced with a lowest-unit-wins atomic
/// (the same protocol the PR 2 parallel checkers used), and a stop in a
/// unit below the lowest found violation downgrades the result to
/// `Stopped` so an unscanned earlier candidate can never be skipped.
pub(crate) fn drive<S: UnitScanner>(
    scanner: &S,
    threads: usize,
    start_unit: u64,
    start_pos: u64,
    ctl: &ScanCtl,
) -> (DriveOutcome, CandidateStats) {
    let units = scanner.units();
    if threads <= 1 {
        let mut ws = scanner.workspace();
        let mut cl = CtlLocal::new(ctl);
        let mut stats = CandidateStats::default();
        let mut unit = start_unit;
        let mut outcome = DriveOutcome::Completed(None);
        while unit < units {
            let s = if unit == start_unit { start_pos } else { 0 };
            match scanner.scan_unit(&mut ws, &mut stats, unit, s, ctl, &mut cl, None) {
                UnitOutcome::Done => unit += 1,
                UnitOutcome::Found(mv) => {
                    outcome = DriveOutcome::Completed(Some(mv));
                    break;
                }
                UnitOutcome::Stopped(pos) => {
                    outcome = DriveOutcome::Stopped { unit, pos };
                    break;
                }
            }
        }
        cl.finish(ctl);
        return (outcome, stats);
    }

    let best_unit = AtomicU64::new(u64::MAX);
    let found: Mutex<Option<(u64, Move)>> = Mutex::new(None);
    let stops: Mutex<Vec<(u64, u64)>> = Mutex::new(Vec::new());
    let total: Mutex<CandidateStats> = Mutex::new(CandidateStats::default());
    std::thread::scope(|scope| {
        for t in 0..threads as u64 {
            let best_unit = &best_unit;
            let found = &found;
            let stops = &stops;
            let total = &total;
            scope.spawn(move || {
                let mut ws = scanner.workspace();
                let mut cl = CtlLocal::new(ctl);
                let mut stats = CandidateStats::default();
                let mut unit = start_unit + t;
                while unit < units {
                    if best_unit.load(Ordering::Relaxed) < unit {
                        break;
                    }
                    let s = if unit == start_unit { start_pos } else { 0 };
                    match scanner.scan_unit(
                        &mut ws,
                        &mut stats,
                        unit,
                        s,
                        ctl,
                        &mut cl,
                        Some(best_unit),
                    ) {
                        UnitOutcome::Done => unit += threads as u64,
                        UnitOutcome::Found(mv) => {
                            let mut guard = found.lock().expect("no poisoning");
                            if unit < best_unit.load(Ordering::Relaxed) {
                                best_unit.store(unit, Ordering::Relaxed);
                                *guard = Some((unit, mv));
                            }
                            break;
                        }
                        UnitOutcome::Stopped(pos) => {
                            stops.lock().expect("no poisoning").push((unit, pos));
                            break;
                        }
                    }
                }
                cl.finish(ctl);
                total.lock().expect("no poisoning").merge(&stats);
            });
        }
    });
    let stats = total.into_inner().expect("no poisoning");
    let found = found.into_inner().expect("no poisoning");
    let stop = stops.into_inner().expect("no poisoning").into_iter().min();
    let outcome = match (found, stop) {
        (Some((_, mv)), None) => DriveOutcome::Completed(Some(mv)),
        (Some((w, mv)), Some((su, sp))) => {
            if w < su {
                // Every unit before `w` was certified (no stop below it
                // and strided owners passed them in order), so this is
                // the sequential-order first witness.
                DriveOutcome::Completed(Some(mv))
            } else {
                // A stop below the found unit: the witness cannot be
                // certified as first-in-order, so it is discarded and the
                // resumable frontier wins (the resumed scan will
                // deterministically rediscover it or an earlier one).
                DriveOutcome::Stopped { unit: su, pos: sp }
            }
        }
        (None, Some((su, sp))) => DriveOutcome::Stopped { unit: su, pos: sp },
        (None, None) => DriveOutcome::Completed(None),
    };
    (outcome, stats)
}
