//! The unified stability-query surface: **one way to ask "is this state
//! stable?"** for every solution concept, under an explicit execution
//! policy with budgets, deadlines, cancellation, and threads — returning
//! a structured [`Verdict`] instead of a zoo of per-concept entry
//! points.
//!
//! A [`StabilityQuery`] names the concept and the instance (a graph plus
//! α, or a borrowed [`GameState`] whose caches are reused). A [`Solver`]
//! executes queries under its [`ExecPolicy`]:
//!
//! * **Budgeted** — `eval_budget` caps the number of candidate-move
//!   evaluations (the same unit the legacy [`CheckBudget`] counted);
//! * **anytime** — a query stopped by budget, deadline, or cancellation
//!   returns [`Verdict::Exhausted`] with the work done so far instead of
//!   the old hard [`GameError::CheckTooLarge`] refusal;
//! * **resumable** — the exhausted verdict carries a serializable
//!   [`Frontier`]; a follow-up query built with
//!   [`StabilityQuery::resume`] continues the scan exactly where it
//!   stopped. Enumeration order is deterministic, so a chain of budgeted
//!   queries returns the **identical witness** an uninterrupted run
//!   would (property-tested in `tests/solver.rs`);
//! * **poolable** — [`Solver::check_many`] executes a batch on one
//!   scoped thread pool with deterministic (input-order) results, and
//!   an [`ExecPolicy::batch_budget`] makes the whole batch drain one
//!   shared atomic eval pool first-come: queries past the drained pool
//!   load-shed into zero-work exhausted verdicts instead of running
//!   ([`Solver::check_many_pooled`] spans one pool across chunked
//!   sweeps).
//!
//! The polynomial concepts (RE, BAE, PS, BSwE, BGE) complete in
//! microseconds and are executed eagerly — they never exhaust and their
//! evaluation counts are not metered. The exponential concepts (BNE,
//! k-BSE, BSE) run through the PR 2 pruned scans, sharded across
//! `threads` std scoped threads with the deterministic
//! lowest-unit-wins witness protocol.
//!
//! # Examples
//!
//! ```
//! use bncg_core::solver::{ExecPolicy, Solver, StabilityQuery, Verdict};
//! use bncg_core::{Alpha, Concept};
//! use bncg_graph::generators;
//!
//! let alpha = Alpha::integer(2)?;
//! let solver = Solver::new(ExecPolicy::default().with_threads(2));
//! // The star is a Bilateral Neighborhood Equilibrium at α ≥ 1 …
//! let q = StabilityQuery::new(Concept::Bne, &generators::star(12), alpha);
//! assert!(matches!(solver.check(&q)?, Verdict::Stable { .. }));
//! // … the path is not, and the verdict carries the witness move.
//! let q = StabilityQuery::new(Concept::Bne, &generators::path(12), alpha);
//! assert!(matches!(solver.check(&q)?, Verdict::Unstable { .. }));
//! # Ok::<(), bncg_core::GameError>(())
//! ```
//!
//! Anytime + resume: drain a too-large check in budgeted slices.
//!
//! ```
//! use bncg_core::solver::{ExecPolicy, Solver, StabilityQuery, Verdict};
//! use bncg_core::{Alpha, Concept, GameState};
//! use bncg_graph::generators;
//!
//! let state = GameState::new(generators::path(12), Alpha::integer(2)?);
//! let solver = Solver::new(ExecPolicy::default().with_eval_budget(50));
//! let mut query = StabilityQuery::on(Concept::Bne, &state);
//! let witness = loop {
//!     match solver.check(&query)? {
//!         Verdict::Unstable { witness, .. } => break Some(witness),
//!         Verdict::Stable { .. } => break None,
//!         Verdict::Exhausted { frontier, .. } => {
//!             query = StabilityQuery::on(Concept::Bne, &state).resume(frontier);
//!         }
//!     }
//! };
//! assert!(witness.is_some());
//! # Ok::<(), bncg_core::GameError>(())
//! ```

use crate::alpha::Alpha;
use crate::candidates::CandidateStats;
use crate::concepts::{bae, bge, bne, bse, bswe, kbse, ps, re, CheckBudget, Concept};
use crate::cost_model::CostModelSpec;
use crate::error::GameError;
use crate::jsonio;
use crate::moves::Move;
use crate::pool::BudgetPool;
use crate::scan::{drive, DriveOutcome, ScanCtl, UnitScanner};
use crate::state::GameState;
use bncg_graph::Graph;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How a [`Solver`] executes queries: thread count and stop conditions.
///
/// The default policy is sequential and unbounded — semantically the
/// exhaustive scan, minus the legacy size guards (an oversized query
/// simply runs until a stop condition fires, so pair unbounded policies
/// with instances you know terminate, or set a budget or deadline).
#[derive(Debug, Clone)]
pub struct ExecPolicy {
    /// Worker threads for the exponential scans and for
    /// [`Solver::check_many`] batches. `0` is treated as `1`.
    pub threads: usize,
    /// Maximum candidate-move evaluations per query (the unit
    /// [`CheckBudget`] counted). Enforced within a poll quantum of at
    /// most 1024 evaluations per thread.
    pub eval_budget: Option<u64>,
    /// Wall-clock allowance per query, measured from the start of each
    /// [`Solver::check`] call (batch sweeps therefore grant it per
    /// instance). Run-level consumers — `dynamics::run_with_policy`,
    /// `round_robin::run_with_policy` — anchor it once per run and pass
    /// the remainder down, so there it bounds the whole run.
    pub deadline: Option<Duration>,
    /// Cooperative cancellation: raise the flag and every running query
    /// of this policy returns [`Verdict::Exhausted`] at its next poll.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Shared evaluation budget for a **whole batch**: when set,
    /// [`Solver::check_many`] drains this many candidate evaluations
    /// from one atomic pool across all its queries (first-come
    /// draining), instead of granting `eval_budget` to each query
    /// individually. Queries that find the pool already drained return
    /// [`Verdict::Exhausted`] immediately with a zero-work frontier, so
    /// an over-budget batch sheds load instead of overrunning — the
    /// service primitive behind budgeted empirical-PoA sweeps. In a
    /// batch, `batch_budget` takes precedence over `eval_budget`;
    /// single [`Solver::check`] calls ignore it. Enforcement shares the
    /// scan poll quantum, so the pool can overshoot by at most
    /// `threads · 1024` evaluations.
    pub batch_budget: Option<u64>,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy {
            threads: 1,
            eval_budget: None,
            deadline: None,
            cancel: None,
            batch_budget: None,
        }
    }
}

impl ExecPolicy {
    /// Sets the worker-thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Caps candidate evaluations per query.
    #[must_use]
    pub fn with_eval_budget(mut self, evals: u64) -> Self {
        self.eval_budget = Some(evals);
        self
    }

    /// Caps wall-clock time per query.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, token: Arc<AtomicBool>) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Caps candidate evaluations for a whole [`Solver::check_many`]
    /// batch via one shared pool (see [`ExecPolicy::batch_budget`]).
    #[must_use]
    pub fn with_batch_budget(mut self, evals: u64) -> Self {
        self.batch_budget = Some(evals);
        self
    }
}

/// The frontier layout version: positions are meaningful only under the
/// exact enumeration layout of the build that issued them (BSE chunk
/// size, pruning-derived partner lists, k-BSE strategy thresholds).
/// Bump this whenever any of those change so stale cross-build tokens
/// are rejected instead of silently reinterpreted.
const FRONTIER_LAYOUT: u64 = 1;

/// A serializable resume point for an exhausted exponential scan.
///
/// The frontier certifies that every candidate strictly before
/// `(unit, pos)` in the concept's deterministic enumeration order is
/// non-improving; resuming continues from exactly there. It is bound to
/// the concept and to a fingerprint of the instance (graph + α), so
/// resuming against a different query — or with a unit cursor outside
/// the scan — is rejected instead of silently producing garbage.
///
/// Since the branch-and-bound [`crate::generator`] landed, `pos` is the
/// generator's **branch stack in packed form**: the path from the root
/// of the mask tree to the next unvisited leaf, one bit per branching
/// level (bit `i` is the branch taken at depth `width − i`), which is
/// numerically identical to the flat lexicographic cursor the dense
/// scans used. Resuming re-derives the subtree-kill decisions along
/// that path in `O(width)` probes, so nothing beyond the cursor needs
/// to be serialized and old tokens stay readable.
///
/// Serialization is a flat JSON object (`to_json`/`FromStr`) carrying
/// an enumeration-layout version, so frontiers can cross process
/// boundaries — a service can hand the token to the client and continue
/// the scan on any replica *of the same build* (the instance
/// fingerprint is toolchain-stable FNV-1a; tokens from a build with a
/// different layout version are rejected on parse).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frontier {
    concept: Concept,
    instance: u64,
    unit: u64,
    pos: u64,
    evals: u64,
}

impl Frontier {
    /// The concept this frontier belongs to.
    #[must_use]
    pub fn concept(&self) -> Concept {
        self.concept
    }

    /// Cumulative candidate evaluations across all runs so far.
    #[must_use]
    pub fn evals(&self) -> u64 {
        self.evals
    }

    /// Serializes the frontier as a flat JSON object (including the
    /// enumeration-layout version, checked on parse).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"v\":{FRONTIER_LAYOUT},\"concept\":\"{}\",\"instance\":{},\
             \"unit\":{},\"pos\":{},\"evals\":{}}}",
            self.concept.token(),
            self.instance,
            self.unit,
            self.pos,
            self.evals
        )
    }
}

impl fmt::Display for Frontier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl FromStr for Frontier {
    type Err = GameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let concept: Concept = jsonio::str_field(s, "concept")
            .ok_or_else(|| bad_frontier("missing \"concept\""))?
            .parse()?;
        let field = |key: &str| jsonio::u64_field(s, key).ok_or_else(|| bad_frontier(key));
        let layout = field("v")?;
        if layout != FRONTIER_LAYOUT {
            return Err(GameError::Unsupported {
                reason: format!(
                    "frontier token has enumeration-layout version {layout}, \
                     this build speaks version {FRONTIER_LAYOUT} — restart the \
                     scan instead of resuming"
                ),
            });
        }
        Ok(Frontier {
            concept,
            instance: field("instance")?,
            unit: field("unit")?,
            pos: field("pos")?,
            evals: field("evals")?,
        })
    }
}

fn bad_frontier(what: &str) -> GameError {
    GameError::Unsupported {
        reason: format!("malformed frontier token: missing or invalid {what}"),
    }
}

/// How far an exhausted scan got (attached to [`Verdict::Exhausted`]).
#[derive(Debug, Clone)]
pub struct Progress {
    /// Candidate counters for **this run** (a resumed query reports the
    /// slice it scanned, not the cumulative totals).
    pub stats: CandidateStats,
    /// Cumulative candidate evaluations across all runs of this query
    /// chain (equals the frontier's [`Frontier::evals`]).
    pub evals_total: u64,
    /// Fully certified leading units (the frontier's unit index).
    pub units_done: u64,
    /// Total units in the scan (centers, coalitions, or mask chunks).
    pub units_total: u64,
    /// Wall-clock time of this run.
    pub elapsed: Duration,
}

/// The structured result of a stability query.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// The full candidate space was certified non-improving.
    Stable {
        /// Candidate evaluations performed across the whole resume
        /// chain (0 for polynomial concepts, whose scans are not
        /// metered).
        evals: u64,
        /// Candidates skipped by the pruning layer without evaluation
        /// in **this run's slice** (bulk raw-space accounting happens
        /// once per unit, so a resumed slice reports only what it
        /// scanned).
        pruned: u64,
        /// Wall-clock time of this check call.
        elapsed: Duration,
    },
    /// An improving move the concept forbids — the same witness the
    /// sequential exhaustive scan returns.
    Unstable {
        /// The violating move (replayable via [`crate::delta`]).
        witness: Move,
        /// Candidate evaluations performed across the whole resume
        /// chain.
        evals: u64,
        /// Wall-clock time of this check call.
        elapsed: Duration,
    },
    /// The execution policy stopped the scan first: everything before
    /// `frontier` is certified, the rest is unknown. Resume with
    /// [`StabilityQuery::resume`].
    Exhausted {
        /// Resume token.
        frontier: Frontier,
        /// Work accounting for this run.
        progress: Progress,
    },
}

impl Verdict {
    /// `Some(true)`/`Some(false)` for conclusive verdicts, `None` when
    /// exhausted.
    #[must_use]
    pub fn is_stable(&self) -> Option<bool> {
        match self {
            Verdict::Stable { .. } => Some(true),
            Verdict::Unstable { .. } => Some(false),
            Verdict::Exhausted { .. } => None,
        }
    }

    /// The witness move, if the verdict is `Unstable`.
    #[must_use]
    pub fn witness(&self) -> Option<&Move> {
        match self {
            Verdict::Unstable { witness, .. } => Some(witness),
            _ => None,
        }
    }

    /// The resume token, if the verdict is `Exhausted`.
    #[must_use]
    pub fn frontier(&self) -> Option<&Frontier> {
        match self {
            Verdict::Exhausted { frontier, .. } => Some(frontier),
            _ => None,
        }
    }

    /// Collapses to the legacy `find_violation` signature: `Unstable`
    /// yields the witness, `Stable` yields `None`, and `Exhausted` maps
    /// to the legacy [`GameError::CheckTooLarge`] (the deprecated
    /// wrappers use this for drop-in compatibility).
    ///
    /// # Errors
    ///
    /// [`GameError::CheckTooLarge`] when the verdict is `Exhausted`.
    pub fn into_violation(self) -> Result<Option<Move>, GameError> {
        match self {
            Verdict::Stable { .. } => Ok(None),
            Verdict::Unstable { witness, .. } => Ok(Some(witness)),
            Verdict::Exhausted { frontier, progress } => Err(GameError::CheckTooLarge {
                reason: format!(
                    "query exhausted its execution policy after {} evaluations \
                     ({}/{} units); resume from frontier {}",
                    progress.evals_total, progress.units_done, progress.units_total, frontier
                ),
            }),
        }
    }
}

/// One stability question: a concept applied to an instance, optionally
/// resuming from a prior [`Frontier`].
///
/// Build with [`StabilityQuery::new`] (owns a fresh [`GameState`]) or
/// [`StabilityQuery::on`] (borrows a caller-maintained state and reuses
/// its cached distance matrix and costs — the right choice inside
/// dynamics loops and sweeps).
#[derive(Debug, Clone)]
pub struct StabilityQuery<'a> {
    concept: Concept,
    state: QueryState<'a>,
    resume: Option<Frontier>,
}

#[derive(Debug, Clone)]
enum QueryState<'a> {
    Owned(Box<GameState>),
    Borrowed(&'a GameState),
}

impl StabilityQuery<'static> {
    /// A query owning its evaluation state, built from a graph and α.
    #[must_use]
    pub fn new(concept: Concept, g: &Graph, alpha: Alpha) -> StabilityQuery<'static> {
        StabilityQuery {
            concept,
            state: QueryState::Owned(Box::new(GameState::new(g.clone(), alpha))),
            resume: None,
        }
    }
}

impl<'a> StabilityQuery<'a> {
    /// A query borrowing a caller-maintained state (no cache rebuild).
    #[must_use]
    pub fn on(concept: Concept, state: &'a GameState) -> StabilityQuery<'a> {
        StabilityQuery {
            concept,
            state: QueryState::Borrowed(state),
            resume: None,
        }
    }

    /// Continues a scan from a prior run's frontier. The frontier must
    /// come from the same concept and instance, or
    /// [`Solver::check`] rejects the query.
    #[must_use]
    pub fn resume(mut self, frontier: Frontier) -> Self {
        self.resume = Some(frontier);
        self
    }

    /// Re-prices the query under `model`. Defaults to the state's own
    /// model ([`CostModelSpec::SumDistances`] for states built with
    /// [`GameState::new`]), so every existing query is unchanged. A
    /// borrowed state whose model already matches is kept as-is; any
    /// other case rebuilds an owned state under `model` — the cache
    /// rebuild is the honest price of re-pricing, since every cached
    /// per-agent cost depends on the model.
    #[must_use]
    pub fn with_cost_model(mut self, model: CostModelSpec) -> Self {
        if self.state().cost_model() != model {
            let (g, alpha) = {
                let s = self.state();
                (s.graph().clone(), s.alpha())
            };
            self.state = QueryState::Owned(Box::new(GameState::with_cost_model(g, alpha, model)));
        }
        self
    }

    /// The cost model the query prices moves under.
    #[must_use]
    pub fn cost_model(&self) -> CostModelSpec {
        self.state().cost_model()
    }

    /// The queried concept.
    #[must_use]
    pub fn concept(&self) -> Concept {
        self.concept
    }

    fn state(&self) -> &GameState {
        match &self.state {
            QueryState::Owned(s) => s,
            QueryState::Borrowed(s) => s,
        }
    }
}

/// Executes [`StabilityQuery`]s under one [`ExecPolicy`].
#[derive(Debug, Clone, Default)]
pub struct Solver {
    policy: ExecPolicy,
}

impl Solver {
    /// A solver with the given execution policy.
    #[must_use]
    pub fn new(policy: ExecPolicy) -> Self {
        Solver { policy }
    }

    /// The solver's execution policy.
    #[must_use]
    pub fn policy(&self) -> &ExecPolicy {
        &self.policy
    }

    /// Executes one query.
    ///
    /// # Errors
    ///
    /// [`GameError::Unsupported`] when a resume frontier does not match
    /// the query (different concept or instance, or a unit cursor
    /// outside the scan — a forged token) or the instance exceeds a
    /// structural representation limit (BNE needs `n ≤ 64` and BSE
    /// `n ≤ 11` for their 64-bit masks; k-BSE caps its materialized
    /// coalition index at 2²⁰ units). The `n ≤ 64` BNE limit is the
    /// *only* BNE size guard left: the branch-and-bound generator made
    /// the scan evaluation-bound, so there is no raw-space refusal —
    /// an instance that is too expensive simply exhausts its budget.
    /// Never [`GameError::CheckTooLarge`]: running out of budget is a
    /// [`Verdict::Exhausted`], not an error.
    pub fn check(&self, query: &StabilityQuery) -> Result<Verdict, GameError> {
        self.check_with_threads(query, self.policy.threads, None)
    }

    /// Executes a batch of queries on one scoped thread pool, returning
    /// results in input order regardless of completion order. Each query
    /// runs sequentially on one worker (the pool parallelizes *across*
    /// queries); stop conditions apply per query, with deadlines
    /// measured from each query's own start — except when the policy
    /// sets a [`ExecPolicy::batch_budget`], in which case all queries
    /// drain **one shared eval pool** (first-come; result order is
    /// still the input order, but which queries exhaust depends on
    /// completion timing under multiple threads).
    pub fn check_many(&self, queries: &[StabilityQuery]) -> Vec<Result<Verdict, GameError>> {
        match self.policy.batch_budget {
            Some(_) => {
                let pool = AtomicU64::new(0);
                self.check_many_in(queries, Some(&pool))
            }
            None => self.check_many_in(queries, None),
        }
    }

    /// [`Solver::check_many`] against a **caller-owned** budget pool:
    /// the counter accumulates evaluations across calls, so a sweep
    /// that batches its instances in chunks (to bound resident state)
    /// can still drain one global budget over the whole sweep — the
    /// load-shedding shape behind `empirical::poa_over`. Requires
    /// [`ExecPolicy::batch_budget`] to be set; without it the pool is
    /// ignored and this is exactly [`Solver::check_many`].
    pub fn check_many_pooled(
        &self,
        queries: &[StabilityQuery],
        pool: &AtomicU64,
    ) -> Vec<Result<Verdict, GameError>> {
        let pool = self.policy.batch_budget.map(|_| pool);
        self.check_many_in(queries, pool)
    }

    /// Executes **one bounded time slice** of a query against a shared
    /// [`BudgetPool`] — the scheduling primitive a serving layer
    /// time-slices thousands of concurrent queries with.
    ///
    /// The slice runs under a batch-budget cap of
    /// [`BudgetPool::slice_cap`]`(slice)` = `min(granted, used +
    /// max(slice, 1))`, flushing its evaluations into the pool's
    /// counter: one scan stop condition simultaneously bounds the slice
    /// at roughly `slice` evaluations *and* guarantees the pool's grant
    /// is never overrun (beyond the documented poll-quantum overshoot).
    /// A query admitted against a pool that is already
    /// [drained](BudgetPool::drained) or [expired](BudgetPool::expired)
    /// returns [`Verdict::Exhausted`] with a **zero-work** frontier at
    /// its resume cursor — load shedding, exactly the
    /// [`ExecPolicy::batch_budget`] batch semantics. If the pool
    /// carries an [expiry instant](BudgetPool::expires_at), the
    /// remaining wall-clock is propagated into this slice's deadline
    /// (tightening any per-query [`ExecPolicy::deadline`]).
    ///
    /// Because enumeration order is deterministic, a chain of
    /// `check_sliced` calls — interleaved with slices of *other*
    /// queries against the same pool — returns the identical verdict,
    /// witness, and cumulative eval count an uninterrupted
    /// [`Solver::check`] would (asserted by `tests/solver.rs` and the
    /// `sched_slicing_overhead` gate kernel).
    ///
    /// Polynomial concepts complete eagerly within their first slice
    /// and are not metered (they return before the shed logic, as in
    /// every other entry point); fair-share layers charge them a flat
    /// rate via [`BudgetPool::charge`] so they cannot bypass the pool.
    ///
    /// # Errors
    ///
    /// As [`Solver::check`]: mismatched or forged resume frontiers and
    /// structural size limits. Running dry is a verdict, not an error.
    pub fn check_sliced(
        &self,
        query: &StabilityQuery,
        pool: &BudgetPool,
        slice: u64,
    ) -> Result<Verdict, GameError> {
        // An expired pool admits nothing: cap the slice at the used
        // count so the drained-pool shed path fires with zero work.
        let cap = if pool.expired() {
            pool.used()
        } else {
            pool.slice_cap(slice)
        };
        let mut policy = self.policy.clone();
        policy.batch_budget = Some(cap);
        if let Some(at) = pool.expires_at() {
            let left = at.saturating_duration_since(Instant::now());
            policy.deadline = Some(policy.deadline.map_or(left, |d| d.min(left)));
        }
        let threads = policy.threads;
        Solver { policy }.check_with_threads(query, threads, Some(pool.counter()))
    }

    fn check_many_in(
        &self,
        queries: &[StabilityQuery],
        pool: Option<&AtomicU64>,
    ) -> Vec<Result<Verdict, GameError>> {
        let workers = self.policy.threads.max(1).min(queries.len());
        if workers <= 1 {
            // A single worker (one query, or a sequential policy) keeps
            // the policy's full thread count *inside* each query — the
            // pool parallelizes across queries only when there are
            // enough of them to shard.
            return queries
                .iter()
                .map(|q| self.check_with_threads(q, self.policy.threads, pool))
                .collect();
        }
        let next = AtomicU64::new(0);
        let collected: Mutex<Vec<(usize, Result<Verdict, GameError>)>> =
            Mutex::new(Vec::with_capacity(queries.len()));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let next = &next;
                let collected = &collected;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                        if i >= queries.len() {
                            break;
                        }
                        local.push((i, self.check_with_threads(&queries[i], 1, pool)));
                    }
                    collected.lock().expect("no poisoning").extend(local);
                });
            }
        });
        let mut results = collected.into_inner().expect("no poisoning");
        results.sort_by_key(|(i, _)| *i);
        results.into_iter().map(|(_, r)| r).collect()
    }

    fn check_with_threads(
        &self,
        query: &StabilityQuery,
        threads: usize,
        pool: Option<&AtomicU64>,
    ) -> Result<Verdict, GameError> {
        let state = query.state();
        let started = Instant::now();

        // Resume validation first — a mismatched token is a caller bug
        // that must surface even on queries that would complete eagerly.
        // The frontier must name this concept (which also rules out the
        // polynomial concepts: they never exhaust, so there is nothing
        // to resume) and this exact instance.
        let (start_unit, start_pos, prior_evals) = match &query.resume {
            Some(f) => {
                if f.concept != query.concept {
                    return Err(GameError::Unsupported {
                        reason: format!(
                            "frontier belongs to {} but the query asks for {}",
                            f.concept, query.concept
                        ),
                    });
                }
                if !query.concept.is_exponential() {
                    return Err(GameError::Unsupported {
                        reason: format!(
                            "{} completes eagerly and never exhausts; a resume \
                             frontier for it cannot be genuine",
                            query.concept
                        ),
                    });
                }
                if f.instance != state.fingerprint() {
                    return Err(GameError::Unsupported {
                        reason: "frontier was issued for a different instance \
                                 (graph, α, or cost model differ)"
                            .into(),
                    });
                }
                (f.unit, f.pos, f.evals)
            }
            None => (0, 0, 0),
        };

        // Polynomial concepts complete eagerly; they never exhaust.
        let poly = match query.concept {
            Concept::Re => Some(re::find_violation_in(state)),
            Concept::Bae => Some(bae::find_violation_in(state)),
            Concept::Ps => Some(ps::find_violation_in(state)),
            Concept::Bswe => Some(bswe::find_violation_in(state)),
            Concept::Bge => Some(bge::find_violation_in(state)),
            _ => None,
        };
        if let Some(found) = poly {
            return Ok(match found {
                Some(witness) => Verdict::Unstable {
                    witness,
                    evals: 0,
                    elapsed: started.elapsed(),
                },
                None => Verdict::Stable {
                    evals: 0,
                    pruned: 0,
                    elapsed: started.elapsed(),
                },
            });
        }

        let threads = threads.max(1);
        let shared_evals = AtomicU64::new(0);
        let deadline = self.policy.deadline.map(|d| started + d);
        let cancel = self.policy.cancel.as_deref();
        // A batch pool replaces the per-query counter: every query of
        // the batch flushes into the caller's atomic, and the batch
        // budget caps the shared total. A query that finds the pool
        // already drained sheds immediately with a zero-work frontier
        // instead of burning a poll quantum discovering it.
        let (counter, budget) = match (pool, self.policy.batch_budget) {
            (Some(p), Some(b)) => (p, Some(b)),
            _ => (&shared_evals, self.policy.eval_budget),
        };
        let shed = pool.is_some() && budget.is_some_and(|b| counter.load(Ordering::Relaxed) >= b);
        let ctl = ScanCtl::new(counter, budget, deadline, cancel);

        let resumed = query.resume.is_some();
        let ((outcome, stats), units_total) = match query.concept {
            Concept::Bne => {
                if state.n() > 64 {
                    return Err(unsupported_size("BNE", state.n(), 64));
                }
                let scanner = bne::SolverScan::new(state);
                validate_resume_unit(resumed, start_unit, scanner.units())?;
                (
                    drive_or_shed(&scanner, threads, start_unit, start_pos, &ctl, shed),
                    scanner.units(),
                )
            }
            Concept::KBse(k) => {
                // The coalition list is materialized for unit indexing;
                // cap it before allocation so an absurd (n, k) errors
                // structurally instead of exhausting memory.
                let units = kbse_unit_count(state.n(), k as usize);
                if units > u128::from(KBSE_MAX_UNITS) {
                    return Err(GameError::Unsupported {
                        reason: format!(
                            "the exact {k}-BSE scan indexes its coalitions as \
                             materialized units and supports at most \
                             {KBSE_MAX_UNITS} of them; n = {} with k = {k} \
                             yields more (use the restricted refuter for \
                             instances of this size)",
                            state.n()
                        ),
                    });
                }
                let scanner = kbse::SolverScan::new(state, k as usize);
                validate_resume_unit(resumed, start_unit, scanner.units())?;
                (
                    drive_or_shed(&scanner, threads, start_unit, start_pos, &ctl, shed),
                    scanner.units(),
                )
            }
            Concept::Bse => {
                if state.n() > 11 {
                    return Err(unsupported_size("BSE", state.n(), 11));
                }
                let scanner = bse::SolverScan::new(state);
                validate_resume_unit(resumed, start_unit, scanner.units())?;
                (
                    drive_or_shed(&scanner, threads, start_unit, start_pos, &ctl, shed),
                    scanner.units(),
                )
            }
            _ => unreachable!("polynomial concepts returned above"),
        };

        let elapsed = started.elapsed();
        Ok(match outcome {
            DriveOutcome::Completed(None) => Verdict::Stable {
                evals: prior_evals + stats.evaluated,
                pruned: stats.skipped(),
                elapsed,
            },
            DriveOutcome::Completed(Some(witness)) => Verdict::Unstable {
                witness,
                evals: prior_evals + stats.evaluated,
                elapsed,
            },
            DriveOutcome::Stopped { unit, pos } => {
                let evals_total = prior_evals + stats.evaluated;
                Verdict::Exhausted {
                    frontier: Frontier {
                        concept: query.concept,
                        instance: state.fingerprint(),
                        unit,
                        pos,
                        evals: evals_total,
                    },
                    progress: Progress {
                        stats,
                        evals_total,
                        units_done: unit,
                        units_total,
                        elapsed,
                    },
                }
            }
        })
    }
}

/// [`drive`], unless the batch pool is already drained (`shed`): then
/// the query is load-shed with a zero-work stop at its resume start —
/// everything strictly before it was certified by prior slices, so the
/// frontier stays sound.
fn drive_or_shed<S: UnitScanner>(
    scanner: &S,
    threads: usize,
    start_unit: u64,
    start_pos: u64,
    ctl: &ScanCtl,
    shed: bool,
) -> (DriveOutcome, CandidateStats) {
    if shed {
        (
            DriveOutcome::Stopped {
                unit: start_unit,
                pos: start_pos,
            },
            CandidateStats::default(),
        )
    } else {
        drive(scanner, threads, start_unit, start_pos, ctl)
    }
}

/// Rejects resume frontiers whose unit cursor lies outside the scan —
/// the stability-query analogue of `round_robin::resume`'s forged-cursor
/// rejection. A genuine frontier always names a unit strictly inside
/// the scan (the drive only records stops there); a forged or
/// bit-rotted one past the end would otherwise make the drive loop
/// complete instantly and report **Stable without scanning anything**.
///
/// # Errors
///
/// [`GameError::Unsupported`] for an out-of-range unit on a resumed
/// query.
fn validate_resume_unit(resumed: bool, start_unit: u64, units: u64) -> Result<(), GameError> {
    if resumed && start_unit >= units {
        return Err(GameError::Unsupported {
            reason: format!(
                "frontier names unit {start_unit} of a scan with {units} \
                 units — the token was forged or corrupted, restart the \
                 scan instead of resuming"
            ),
        });
    }
    Ok(())
}

/// Hard cap on materialized k-BSE coalition units (≈ 50 MB of small
/// vectors at the limit; every instance the exact scan could ever drain
/// sits far below it).
const KBSE_MAX_UNITS: u64 = 1 << 20;

/// `Σ_{i=1..k} C(n, i)`, saturating early once past [`KBSE_MAX_UNITS`]
/// (the caller only needs "over the cap", so intermediate binomials
/// never overflow: each term is checked before it can grow past the cap
/// times `n`).
fn kbse_unit_count(n: usize, k: usize) -> u128 {
    let k = k.min(n);
    let mut total: u128 = 0;
    let mut c: u128 = 1;
    for i in 1..=k {
        c = c * (n - i + 1) as u128 / i as u128;
        total = total.saturating_add(c);
        if total > u128::from(KBSE_MAX_UNITS) {
            return total;
        }
    }
    total
}

fn unsupported_size(what: &str, n: usize, max: usize) -> GameError {
    GameError::Unsupported {
        reason: format!(
            "the exact {what} scan represents candidates as 64-bit masks and \
             supports n ≤ {max}; got n = {n} (use the sampled/restricted \
             refuters for larger instances)"
        ),
    }
}

/// Runs `concept` to completion on `state` through the solver, with the
/// default sequential unbounded policy. Shared by the deprecated
/// per-concept wrappers (which apply their legacy size guards first).
pub(crate) fn solve_to_completion(
    concept: Concept,
    state: &GameState,
) -> Result<Option<Move>, GameError> {
    Solver::default()
        .check(&StabilityQuery::on(concept, state))?
        .into_violation()
}

/// The one shared implementation of the legacy pre-scan size guards,
/// used by every guarded `Concept` entry point and deprecated wrapper
/// so the refusal semantics cannot drift between call sites. `Ok(true)`
/// means the instance is trivially stable (`n ≤ 1`, or `k = 0` for
/// k-BSE) and needs no scan at all; polynomial concepts are never
/// guarded.
///
/// # Errors
///
/// [`GameError::CheckTooLarge`] when the concept's raw move space
/// exceeds `budget` — the refusal the solver path replaces with
/// [`Verdict::Exhausted`].
pub(crate) fn legacy_guard(
    concept: Concept,
    state: &GameState,
    budget: CheckBudget,
) -> Result<bool, GameError> {
    match concept {
        Concept::Bne => {
            if state.n() <= 1 {
                return Ok(true);
            }
            bne::check_budget(state.n(), budget)?;
        }
        Concept::KBse(k) => {
            if state.n() <= 1 || k == 0 {
                return Ok(true);
            }
            kbse::check_budget(state.graph(), k as usize, budget)?;
        }
        Concept::Bse => {
            if state.n() <= 1 {
                return Ok(true);
            }
            bse::check_budget(state.n(), budget)?;
        }
        _ => {}
    }
    Ok(false)
}
