//! The incremental `GameState` evaluation engine.
//!
//! Every solution-concept checker, best-response computation, and dynamics
//! loop reduces to one primitive: *given a state, how do agent costs change
//! under a candidate [`Move`]?* The naive answer — apply the move and
//! rebuild the all-pairs [`DistanceMatrix`] — costs `O(n·(n+m))` per
//! candidate and caps the reproduction at toy sizes, because the BNE-style
//! move spaces alone hold `Θ(n·2^{n−1})` candidates.
//!
//! [`GameState`] owns the graph together with two caches that are kept
//! **exactly** consistent with it at all times:
//!
//! * the all-pairs [`DistanceMatrix`], and
//! * the per-agent [`AgentCost`] vector.
//!
//! # The incremental-evaluation contract
//!
//! 1. **Evaluation is pure and exact.** [`GameState::evaluate_move`] (and
//!    the reusable [`MoveEvaluator`]) never touches the state and returns
//!    the same lexicographic [`AgentCost`]s a from-scratch recomputation on
//!    the successor graph would produce — the engine only swaps the
//!    *algorithm*, never the *semantics*. Single-edge additions are priced
//!    in `O(n)` straight from the cached matrix (`d'(u,w) =
//!    min(d(u,w), 1 + d(v,w))`); everything else applies the move to a
//!    private scratch graph and re-runs BFS **only for the consenting
//!    agents**, never a full matrix rebuild.
//! 2. **Application is incremental.** [`GameState::apply_move`] replays the
//!    move one edge toggle at a time through
//!    [`DistanceMatrix::apply_edge_toggle`], which re-expands only the
//!    sources whose distance vector can change (endpoint-distance gap ≥ 2
//!    for additions, exactly 1 for removals), then refreshes exactly the
//!    affected agents' costs.
//! 3. **Caches never drift.** After any sequence of `apply_move` calls the
//!    caches equal `DistanceMatrix::new(graph)` and `agent_cost(graph, u)`
//!    for every `u` — the property suite in `tests/proptests.rs` asserts
//!    this on random graphs and random moves of all five kinds.
//!
//! # Examples
//!
//! Evaluating a candidate move without recomputing anything:
//!
//! ```
//! use bncg_core::{agent_cost, Alpha, GameState, Move};
//! use bncg_graph::generators;
//!
//! let alpha = Alpha::integer(1)?;
//! let state = GameState::new(generators::path(6), alpha);
//! let delta = state.evaluate_move(&Move::BilateralAdd { u: 0, v: 5 })?;
//! // Exact: matches a from-scratch recomputation on the successor graph.
//! let g2 = Move::BilateralAdd { u: 0, v: 5 }.apply(state.graph())?;
//! assert_eq!(delta.agents[0].after, agent_cost(&g2, 0));
//! assert!(delta.improving_all); // the two path ends both profit at α = 1
//! # Ok::<(), bncg_core::GameError>(())
//! ```
//!
//! Applying moves keeps the caches exact:
//!
//! ```
//! use bncg_core::{agent_cost, Alpha, GameState, Move};
//! use bncg_graph::{generators, DistanceMatrix};
//!
//! let mut state = GameState::new(generators::path(5), Alpha::integer(2)?);
//! state.apply_move(&Move::BilateralAdd { u: 0, v: 4 })?;
//! state.apply_move(&Move::Remove { agent: 1, target: 2 })?;
//! assert_eq!(*state.distances(), DistanceMatrix::new(state.graph()));
//! assert_eq!(state.cost(1), agent_cost(state.graph(), 1));
//! # Ok::<(), bncg_core::GameError>(())
//! ```

use crate::alpha::Alpha;
use crate::cost::{AgentCost, Ratio};
use crate::cost_model::{CostModel, CostModelSpec};
use crate::delta::{cost_after_add, tree_swap_costs};
use crate::error::GameError;
use crate::moves::Move;
use bncg_graph::{BitsetGraph, DistanceMatrix, Graph};

/// A game state with incrementally maintained distance and cost caches.
///
/// See the [module docs](self) for the evaluation contract.
#[derive(Debug, Clone)]
pub struct GameState {
    g: Graph,
    alpha: Alpha,
    model: CostModelSpec,
    dist: DistanceMatrix,
    costs: Vec<AgentCost>,
    is_tree: bool,
}

/// The before/after cost of one consenting agent under a candidate move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgentDelta {
    /// The agent whose consent the move requires.
    pub agent: u32,
    /// Its cost in the current state.
    pub before: AgentCost,
    /// Its exact cost in the successor state.
    pub after: AgentCost,
}

/// The exact effect of a candidate move on its consenting agents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveDelta {
    /// One entry per consenting agent, in [`Move::consenting_agents`] order.
    pub agents: Vec<AgentDelta>,
    /// Whether **every** consenting agent strictly improves — the
    /// feasibility predicate all solution concepts share.
    pub improving_all: bool,
}

impl MoveDelta {
    /// The post-move cost of `agent`, if it is a consenting agent.
    #[must_use]
    pub fn cost_after(&self, agent: u32) -> Option<AgentCost> {
        self.agents
            .iter()
            .find(|d| d.agent == agent)
            .map(|d| d.after)
    }
}

impl GameState {
    /// Builds the state and its caches under the default
    /// [`CostModelSpec::SumDistances`] objective: one BFS per node,
    /// `O(n·(n+m))`.
    #[must_use]
    pub fn new(g: Graph, alpha: Alpha) -> Self {
        GameState::with_cost_model(g, alpha, CostModelSpec::SumDistances)
    }

    /// Builds the state and its caches pricing agents under `model`.
    /// The default model is byte-identical to [`GameState::new`]; a
    /// non-default model changes what the cost cache holds (and
    /// therefore every stability verdict), folds its tag into
    /// [`GameState::fingerprint`], and disables the evaluation fast
    /// paths that are proven only for the paper's objective.
    #[must_use]
    pub fn with_cost_model(g: Graph, alpha: Alpha, model: CostModelSpec) -> Self {
        let dist = DistanceMatrix::new(&g);
        let costs = (0..g.n() as u32)
            .map(|u| model.cost_matrix(&g, &dist, u))
            .collect();
        let is_tree = g.is_tree();
        GameState {
            g,
            alpha,
            model,
            dist,
            costs,
            is_tree,
        }
    }

    /// Builds the state around a distance matrix the caller already paid
    /// for (the backing for the `find_violation_with_matrix` entry points).
    ///
    /// # Panics
    ///
    /// Panics if the matrix dimension does not match the graph.
    #[must_use]
    pub fn with_matrix(g: Graph, alpha: Alpha, dist: DistanceMatrix) -> Self {
        assert_eq!(g.n(), dist.n(), "graph/matrix dimension mismatch");
        let model = CostModelSpec::SumDistances;
        let costs = (0..g.n() as u32)
            .map(|u| model.cost_matrix(&g, &dist, u))
            .collect();
        let is_tree = g.is_tree();
        GameState {
            g,
            alpha,
            model,
            dist,
            costs,
            is_tree,
        }
    }

    /// The current graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.g
    }

    /// The edge price.
    #[must_use]
    pub fn alpha(&self) -> Alpha {
        self.alpha
    }

    /// The cost model agents are priced under.
    #[must_use]
    pub fn cost_model(&self) -> CostModelSpec {
        self.model
    }

    /// Prices agent `u` on a bitset mirror of some candidate graph
    /// under this state's model — the routed form of
    /// [`crate::agent_cost_bits`] the scan loops call.
    #[inline]
    #[must_use]
    pub fn price_bits(&self, bits: &BitsetGraph, u: u32) -> AgentCost {
        self.model.cost_bits(bits, u)
    }

    /// Prices agent `u` on a scratch graph under this state's model —
    /// the routed form of [`crate::agent_cost`] (with a caller-owned
    /// BFS buffer).
    #[inline]
    #[must_use]
    pub fn price_scalar(&self, g: &Graph, u: u32, buf: &mut Vec<u32>) -> AgentCost {
        self.model.cost_scalar(g, u, buf)
    }

    /// Prices agent `u` from a distance matrix under this state's model
    /// — the routed form of [`crate::agent_cost_from_matrix`].
    #[inline]
    #[must_use]
    pub fn price_matrix(&self, g: &Graph, d: &DistanceMatrix, u: u32) -> AgentCost {
        self.model.cost_matrix(g, d, u)
    }

    /// Number of agents.
    #[must_use]
    pub fn n(&self) -> usize {
        self.g.n()
    }

    /// The cached all-pairs distance matrix (always exact).
    #[must_use]
    pub fn distances(&self) -> &DistanceMatrix {
        &self.dist
    }

    /// The cached cost of agent `u` (always exact).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[must_use]
    pub fn cost(&self, u: u32) -> AgentCost {
        self.costs[u as usize]
    }

    /// The cached costs of all agents, indexed by agent id.
    #[must_use]
    pub fn costs(&self) -> &[AgentCost] {
        &self.costs
    }

    /// Whether the current graph is a tree (cached; enables the `O(n)`
    /// swap fast path).
    #[must_use]
    pub fn is_tree(&self) -> bool {
        self.is_tree
    }

    /// A 64-bit fingerprint of the *instance* — the labelled graph plus
    /// α — binding a [`crate::solver::Frontier`] resume token to the
    /// exact state it was issued for. Applied moves change the graph and
    /// therefore the fingerprint, so stale tokens are rejected instead
    /// of resuming into a different instance. Built on the stable
    /// [`bncg_graph::fnv1a_u64`] primitive, so serialized tokens resolve
    /// across processes, platforms, and toolchains.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let h = bncg_graph::fnv1a_u64(self.g.fingerprint(), self.alpha.num() as u64);
        let h = bncg_graph::fnv1a_u64(h, self.alpha.den() as u64);
        if self.model.is_default() {
            // The default model contributes nothing, so fingerprints —
            // and every serialized resume token, checkpoint, and atlas
            // key built on them — are unchanged from the pre-trait
            // engine.
            h
        } else {
            bncg_graph::fnv1a_u64(h, self.model.fingerprint_tag())
        }
    }

    /// Social cost of the state from the cached matrix, without any BFS.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::Disconnected`] for disconnected states.
    pub fn social_cost(&self) -> Result<Ratio, GameError> {
        if !self.model.is_default() {
            // Generic arm: Σ_u of the model's finite per-agent cost.
            // For the adversary model this is K× the expected social
            // cost — a fixed positive scale at fixed n, so ratios over
            // a common instance set are unaffected.
            if self.costs.iter().any(|c| c.unreachable > 0) {
                return Err(GameError::Disconnected);
            }
            let total: i128 = self
                .costs
                .iter()
                .map(|c| self.alpha.cost_key(c.edges, c.dist))
                .sum();
            return Ok(Ratio::new(total, i128::from(self.alpha.den())));
        }
        let total = self.dist.total_distance().ok_or(GameError::Disconnected)?;
        let edges_paid = 2 * self.g.m() as u64;
        Ok(Ratio::new(
            i128::from(self.alpha.num()) * i128::from(edges_paid)
                + i128::from(self.alpha.den()) * i128::from(total),
            i128::from(self.alpha.den()),
        ))
    }

    /// The social cost ratio `ρ` against the optimum for this `n` and `α`,
    /// from the cached matrix (same definition as
    /// [`social_cost_ratio`](crate::social_cost_ratio)).
    ///
    /// # Errors
    ///
    /// Returns [`GameError::Disconnected`] for disconnected states.
    pub fn social_cost_ratio(&self) -> Result<Ratio, GameError> {
        Ok(crate::cost::ratio_against_optimum(
            self.social_cost()?,
            self.n(),
            self.alpha,
        ))
    }

    /// A reusable evaluator holding the scratch storage for candidate
    /// evaluation. Checkers that stream through large move spaces create
    /// one evaluator and feed every candidate through it.
    #[must_use]
    pub fn evaluator(&self) -> MoveEvaluator<'_> {
        MoveEvaluator {
            state: self,
            scratch: self.g.clone(),
            bits: BitsetGraph::from_graph(&self.g),
            buf: Vec::new(),
        }
    }

    /// Evaluates one candidate move exactly (see the [module docs](self)).
    ///
    /// For repeated evaluation use [`GameState::evaluator`], which reuses
    /// its scratch graph across calls.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidMove`] / [`GameError::NodeOutOfRange`]
    /// if the move does not type-check against the current graph.
    pub fn evaluate_move(&self, mv: &Move) -> Result<MoveDelta, GameError> {
        self.evaluator().evaluate(mv)
    }

    /// Evaluates a batch of candidate moves across worker threads, each
    /// with its own scratch evaluator. Results keep the input order.
    ///
    /// (The roadmap calls for rayon here; the build container is offline,
    /// so this uses `std::thread::scope` with the same chunked shape.)
    ///
    /// # Errors
    ///
    /// Returns the first per-move validation error, if any.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn evaluate_moves_parallel(
        &self,
        moves: &[Move],
        threads: usize,
    ) -> Result<Vec<MoveDelta>, GameError> {
        assert!(threads > 0, "need at least one worker thread");
        if threads == 1 || moves.len() < 2 {
            let mut ev = self.evaluator();
            return moves.iter().map(|mv| ev.evaluate(mv)).collect();
        }
        let chunk = moves.len().div_ceil(threads);
        let mut out = Vec::with_capacity(moves.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = moves
                .chunks(chunk)
                .map(|piece| {
                    scope.spawn(move || {
                        let mut ev = self.evaluator();
                        piece
                            .iter()
                            .map(|mv| ev.evaluate(mv))
                            .collect::<Vec<Result<MoveDelta, GameError>>>()
                    })
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("evaluator threads do not panic"));
            }
        });
        out.into_iter().collect()
    }

    /// Applies a move, updating graph, distance matrix, and cost cache
    /// incrementally (per-toggle delta-BFS instead of a full rebuild).
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidMove`] / [`GameError::NodeOutOfRange`]
    /// if the move does not type-check; the state is left unchanged.
    pub fn apply_move(&mut self, mv: &Move) -> Result<(), GameError> {
        // Validate and apply on the graph, then rewind so the matrix can
        // watch every intermediate single-toggle state.
        let applied = mv.apply_in_place(&mut self.g)?;
        applied.undo(&mut self.g);
        let mut affected = vec![false; self.g.n()];
        for &(u, v, added) in applied.toggles() {
            if added {
                self.g.add_edge(u, v).expect("replaying validated toggle");
            } else {
                self.g
                    .remove_edge(u, v)
                    .expect("replaying validated toggle");
            }
            for s in self.dist.apply_edge_toggle(&self.g, u, v) {
                affected[s as usize] = true;
            }
            // Degrees changed even where distances did not.
            affected[u as usize] = true;
            affected[v as usize] = true;
        }
        if self.model.is_default() {
            for (s, touched) in affected.iter().enumerate() {
                if *touched {
                    self.costs[s] = self.model.cost_matrix(&self.g, &self.dist, s as u32);
                }
            }
        } else {
            // The affected-agents-only refresh is a sum-of-distances
            // theorem: under the adversary model an edge toggle changes
            // every agent's scenario set even where distance rows are
            // untouched, and generalized utilities share the cache, so
            // non-default models refresh the whole cost vector.
            for s in 0..self.g.n() {
                self.costs[s] = self.model.cost_matrix(&self.g, &self.dist, s as u32);
            }
        }
        self.is_tree =
            self.g.n() >= 1 && self.g.m() == self.g.n() - 1 && self.dist.row_sum(0).is_some();
        Ok(())
    }
}

/// Scratch storage for streaming candidate-move evaluation against one
/// [`GameState`]. Create via [`GameState::evaluator`].
#[derive(Debug)]
pub struct MoveEvaluator<'a> {
    state: &'a GameState,
    scratch: Graph,
    /// Word-parallel mirror of the scratch graph, present iff `n ≤ 64`;
    /// the generic path prices consenting agents on it via frontier BFS
    /// instead of adjacency-list BFS.
    bits: Option<BitsetGraph>,
    buf: Vec<u32>,
}

impl MoveEvaluator<'_> {
    /// The state this evaluator prices moves against.
    #[must_use]
    pub fn state(&self) -> &GameState {
        self.state
    }

    /// Evaluates one candidate move exactly; see the
    /// [module docs](self) for the algorithm per move shape.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidMove`] / [`GameError::NodeOutOfRange`]
    /// if the move does not type-check against the current graph.
    pub fn evaluate(&mut self, mv: &Move) -> Result<MoveDelta, GameError> {
        self.eval(mv, false)
    }

    /// Whether every consenting agent of `mv` strictly improves — the
    /// shared feasibility predicate, stopping at the first non-improving
    /// agent (the rejection-dominated scans never pay for more than one
    /// cost computation past the failure).
    ///
    /// # Errors
    ///
    /// Same contract as [`MoveEvaluator::evaluate`].
    pub fn improves_all(&mut self, mv: &Move) -> Result<bool, GameError> {
        Ok(self.eval(mv, true)?.improving_all)
    }

    /// Shared evaluation core. With `short_circuit` the per-agent loop
    /// stops at the first non-improving agent and the returned delta only
    /// covers the agents actually priced (callers then read
    /// `improving_all` alone).
    fn eval(&mut self, mv: &Move, short_circuit: bool) -> Result<MoveDelta, GameError> {
        let state = self.state;
        let alpha = state.alpha;
        // The matrix-delta fast paths below are sum-of-distances
        // theorems; non-default models take the generic
        // apply/price/undo path for every move shape.
        if state.model.is_default() {
            // Fast path 1: single bilateral addition, priced straight from
            // the cached matrix with no graph mutation at all.
            if let Move::BilateralAdd { u, v } = *mv {
                let n = state.g.n();
                if u as usize >= n {
                    return Err(GameError::NodeOutOfRange { node: u, n });
                }
                if v as usize >= n {
                    return Err(GameError::NodeOutOfRange { node: v, n });
                }
                if u == v || state.g.has_edge(u, v) {
                    return Err(GameError::InvalidMove(format!(
                        "cannot add existing or degenerate edge {{{u}, {v}}}"
                    )));
                }
                let mut deltas = Vec::with_capacity(2);
                for (a, b) in [(u, v), (v, u)] {
                    let d = AgentDelta {
                        agent: a,
                        before: state.costs[a as usize],
                        after: cost_after_add(&state.g, &state.dist, a, b),
                    };
                    let improves = d.after.better_than(&d.before, alpha);
                    deltas.push(d);
                    if short_circuit && !improves {
                        break;
                    }
                }
                return Ok(finish(deltas, alpha));
            }
            // Fast path 2: swaps on trees via component sums over the
            // cached matrix (`O(n)` per candidate instead of two BFS runs;
            // the pair comes from one pass, so there is nothing to
            // short-circuit).
            if let Move::Swap { agent, old, new } = *mv {
                if state.is_tree
                    && state.g.has_edge(agent, old)
                    && new != agent
                    && (new as usize) < state.g.n()
                    && !state.g.has_edge(agent, new)
                    && old != new
                {
                    if let Some((c_agent, c_new)) =
                        tree_swap_costs(&state.g, &state.dist, agent, old, new)
                    {
                        let deltas = vec![
                            AgentDelta {
                                agent,
                                before: state.costs[agent as usize],
                                after: c_agent,
                            },
                            AgentDelta {
                                agent: new,
                                before: state.costs[new as usize],
                                after: c_new,
                            },
                        ];
                        return Ok(finish(deltas, alpha));
                    }
                    // Disconnecting swap: fall through to the generic
                    // engine, which prices the unreachability exactly.
                }
            }
        }
        // Generic path: apply to the scratch graph (full validation), BFS
        // only the consenting agents (lazily when short-circuiting), undo.
        // At n ≤ 64 the toggles are mirrored onto the bitset scratch and
        // every agent is priced by the word-parallel frontier BFS; the
        // adjacency-list BFS is the reference fallback above that.
        let applied = mv.apply_in_place(&mut self.scratch)?;
        let consenting = mv.consenting_agents();
        let mut deltas = Vec::with_capacity(consenting.len());
        if let Some(bits) = &mut self.bits {
            applied.redo_on_bits(bits);
            for a in consenting {
                let d = AgentDelta {
                    agent: a,
                    before: state.costs[a as usize],
                    after: state.model.cost_bits(bits, a),
                };
                let improves = d.after.better_than(&d.before, alpha);
                deltas.push(d);
                if short_circuit && !improves {
                    break;
                }
            }
            applied.undo_on_bits(bits);
        } else {
            for a in consenting {
                let d = AgentDelta {
                    agent: a,
                    before: state.costs[a as usize],
                    after: state.model.cost_scalar(&self.scratch, a, &mut self.buf),
                };
                let improves = d.after.better_than(&d.before, alpha);
                deltas.push(d);
                if short_circuit && !improves {
                    break;
                }
            }
        }
        applied.undo(&mut self.scratch);
        Ok(finish(deltas, alpha))
    }
}

fn finish(agents: Vec<AgentDelta>, alpha: Alpha) -> MoveDelta {
    let improving_all = agents.iter().all(|d| d.after.better_than(&d.before, alpha));
    MoveDelta {
        agents,
        improving_all,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::agent_cost;
    use bncg_graph::generators;

    fn a(s: &str) -> Alpha {
        s.parse().unwrap()
    }

    /// Every move kind, on random graphs: evaluation equals from-scratch.
    #[test]
    fn evaluate_matches_scratch_recomputation() {
        let mut rng = bncg_graph::test_rng(1001);
        for _ in 0..12 {
            let g = generators::random_connected(9, 0.25, &mut rng);
            let state = GameState::new(g.clone(), a("3/2"));
            let mut ev = state.evaluator();
            let mut candidates: Vec<Move> = Vec::new();
            for (u, v) in g.edges().take(4) {
                candidates.push(Move::Remove {
                    agent: u,
                    target: v,
                });
            }
            for (u, v) in g.non_edges().take(4) {
                candidates.push(Move::BilateralAdd { u, v });
            }
            for u in 0..3u32 {
                for &old in g.neighbors(u).iter().take(1) {
                    for new in 0..9u32 {
                        if new != u && !g.has_edge(u, new) {
                            candidates.push(Move::Swap { agent: u, old, new });
                            break;
                        }
                    }
                }
            }
            candidates.push(Move::Neighborhood {
                center: 0,
                remove: g.neighbors(0).to_vec(),
                add: vec![(g.n() - 1) as u32; usize::from(!g.has_edge(0, g.n() as u32 - 1))],
            });
            for mv in candidates {
                if mv.apply(&g).is_err() {
                    continue;
                }
                let delta = ev.evaluate(&mv).unwrap();
                let g2 = mv.apply(&g).unwrap();
                for d in &delta.agents {
                    assert_eq!(d.before, agent_cost(&g, d.agent), "before mismatch on {mv}");
                    assert_eq!(d.after, agent_cost(&g2, d.agent), "after mismatch on {mv}");
                }
                assert_eq!(
                    delta.improving_all,
                    crate::delta::move_improves_all(&g, a("3/2"), &mv).unwrap(),
                    "predicate mismatch on {mv}"
                );
            }
        }
    }

    #[test]
    fn tree_swap_fast_path_agrees_with_generic() {
        let mut rng = bncg_graph::test_rng(1002);
        for _ in 0..10 {
            let g = generators::random_tree(10, &mut rng);
            let state = GameState::new(g.clone(), a("2"));
            assert!(state.is_tree());
            let mut ev = state.evaluator();
            for agent in 0..10u32 {
                for &old in g.neighbors(agent) {
                    for new in 0..10u32 {
                        if new == agent || g.has_edge(agent, new) {
                            continue;
                        }
                        let mv = Move::Swap { agent, old, new };
                        let delta = ev.evaluate(&mv).unwrap();
                        let g2 = mv.apply(&g).unwrap();
                        assert_eq!(delta.cost_after(agent).unwrap(), agent_cost(&g2, agent));
                        assert_eq!(delta.cost_after(new).unwrap(), agent_cost(&g2, new));
                    }
                }
            }
        }
    }

    #[test]
    fn apply_move_keeps_caches_exact() {
        let mut rng = bncg_graph::test_rng(1003);
        let mut state = GameState::new(generators::random_connected(10, 0.2, &mut rng), a("2"));
        let moves = [
            Move::BilateralAdd { u: 0, v: 9 },
            Move::Remove {
                agent: 0,
                target: 9,
            },
            Move::Neighborhood {
                center: 3,
                remove: vec![],
                add: vec![9],
            },
        ];
        for mv in moves {
            if state.evaluate_move(&mv).is_err() {
                continue;
            }
            state.apply_move(&mv).unwrap();
            assert_eq!(*state.distances(), DistanceMatrix::new(state.graph()));
            for u in 0..state.n() as u32 {
                assert_eq!(state.cost(u), agent_cost(state.graph(), u));
            }
            assert_eq!(state.is_tree(), state.graph().is_tree());
        }
    }

    #[test]
    fn failed_apply_leaves_state_unchanged() {
        let state0 = GameState::new(generators::path(5), a("1"));
        let mut state = state0.clone();
        let bad = Move::Coalition {
            members: vec![0, 1, 4],
            remove_edges: vec![(0, 1), (2, 4)], // second removal invalid
            add_edges: vec![(0, 4)],
        };
        assert!(state.apply_move(&bad).is_err());
        assert_eq!(state.graph(), state0.graph());
        assert_eq!(state.costs(), state0.costs());
        assert_eq!(*state.distances(), *state0.distances());
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let g = generators::cycle(9);
        let state = GameState::new(g.clone(), a("2"));
        let moves: Vec<Move> = g
            .non_edges()
            .map(|(u, v)| Move::BilateralAdd { u, v })
            .chain(g.edges().map(|(u, v)| Move::Remove {
                agent: u,
                target: v,
            }))
            .collect();
        let serial = state.evaluate_moves_parallel(&moves, 1).unwrap();
        let parallel = state.evaluate_moves_parallel(&moves, 4).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), moves.len());
    }

    #[test]
    fn social_cost_matches_direct_computation() {
        let g = generators::path(6);
        let state = GameState::new(g.clone(), a("2"));
        assert_eq!(
            state.social_cost().unwrap(),
            crate::cost::social_cost(&g, a("2")).unwrap()
        );
        let disconnected = GameState::new(Graph::new(3), a("1"));
        assert_eq!(disconnected.social_cost(), Err(GameError::Disconnected));
    }

    #[test]
    fn invalid_moves_are_rejected_without_mutation() {
        let state = GameState::new(generators::path(4), a("1"));
        let mut ev = state.evaluator();
        assert!(ev.evaluate(&Move::BilateralAdd { u: 0, v: 0 }).is_err());
        assert!(ev.evaluate(&Move::BilateralAdd { u: 0, v: 1 }).is_err());
        assert!(matches!(
            ev.evaluate(&Move::BilateralAdd { u: 0, v: 9 }),
            Err(GameError::NodeOutOfRange { .. })
        ));
        assert!(ev
            .evaluate(&Move::Remove {
                agent: 0,
                target: 2
            })
            .is_err());
        // The scratch graph is intact after rejected candidates.
        let ok = ev.evaluate(&Move::BilateralAdd { u: 0, v: 2 }).unwrap();
        assert_eq!(ok.agents.len(), 2);
    }
}
