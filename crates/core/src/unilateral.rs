//! The unilateral Network Creation Game (NCG) of Fabrikant et al., as far
//! as the paper needs it: Section 2 compares bilateral and unilateral
//! equilibria (Propositions 2.1–2.3) and disproves the Corbo–Parkes
//! conjecture with a graph that is in unilateral NE but not pairwise
//! stable.
//!
//! A unilateral state is a graph plus an *edge assignment*: every edge is
//! owned (paid for) by exactly one endpoint. An agent may unilaterally
//! drop owned edges and buy arbitrary new ones.

use crate::alpha::Alpha;
use crate::cost::AgentCost;
use crate::error::GameError;
use bncg_graph::{bfs_distances, Graph, UNREACHABLE};
use std::collections::BTreeMap;

/// A unilateral NCG state: graph plus edge ownership.
///
/// # Examples
///
/// ```
/// use bncg_core::unilateral::UnilateralState;
/// use bncg_core::Alpha;
/// use bncg_graph::Graph;
///
/// // Path 0-1-2 where 0 owns {0,1} and 2 owns {1,2}.
/// let g = Graph::from_edges(3, [(0, 1), (1, 2)])?;
/// let s = UnilateralState::new(g, [((0, 1), 0), ((1, 2), 2)])?;
/// assert_eq!(s.owned_count(1), 0);
/// assert_eq!(s.owned_count(0), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnilateralState {
    graph: Graph,
    /// Owner per edge, keyed by the normalized pair `(min, max)`.
    owner: BTreeMap<(u32, u32), u32>,
}

/// A single-agent deviation in the unilateral game, reported as a witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnilateralMove {
    /// Drop an owned edge.
    Drop {
        /// The deviating agent (must own the edge).
        agent: u32,
        /// The other endpoint.
        target: u32,
    },
    /// Buy a new edge.
    Buy {
        /// The deviating agent (pays `α`).
        agent: u32,
        /// The other endpoint (does not pay and is not asked).
        target: u32,
    },
    /// Replace the full target set: drop `drops`, buy `buys`.
    Rewire {
        /// The deviating agent.
        agent: u32,
        /// Owned edges to drop.
        drops: Vec<u32>,
        /// New targets to buy.
        buys: Vec<u32>,
    },
}

impl UnilateralState {
    /// Builds a state, validating that every graph edge has exactly one
    /// owner which is one of its endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidMove`] if ownership does not match the
    /// edge set.
    pub fn new<I>(graph: Graph, owners: I) -> Result<Self, GameError>
    where
        I: IntoIterator<Item = ((u32, u32), u32)>,
    {
        let mut owner = BTreeMap::new();
        for ((u, v), o) in owners {
            let key = (u.min(v), u.max(v));
            if !graph.has_edge(u, v) {
                return Err(GameError::InvalidMove(format!(
                    "ownership given for non-edge {{{u}, {v}}}"
                )));
            }
            if o != u && o != v {
                return Err(GameError::InvalidMove(format!(
                    "owner {o} is not an endpoint of {{{u}, {v}}}"
                )));
            }
            if owner.insert(key, o).is_some() {
                return Err(GameError::InvalidMove(format!(
                    "edge {{{u}, {v}}} owned twice"
                )));
            }
        }
        if owner.len() != graph.m() {
            return Err(GameError::InvalidMove(format!(
                "{} edges but {} ownerships",
                graph.m(),
                owner.len()
            )));
        }
        Ok(UnilateralState { graph, owner })
    }

    /// Enumerates all `2^m` edge assignments of a graph (for exhaustive
    /// small-instance searches).
    ///
    /// # Errors
    ///
    /// Returns [`GameError::CheckTooLarge`] if the graph has more than 20
    /// edges.
    pub fn all_assignments(graph: &Graph) -> Result<Vec<UnilateralState>, GameError> {
        let edges: Vec<(u32, u32)> = graph.edges().collect();
        if edges.len() > 20 {
            return Err(GameError::CheckTooLarge {
                reason: format!("2^{} assignments", edges.len()),
            });
        }
        let mut out = Vec::with_capacity(1 << edges.len());
        for mask in 0u32..1 << edges.len() {
            let owners = edges
                .iter()
                .enumerate()
                .map(|(i, &(u, v))| ((u, v), if mask >> i & 1 == 1 { v } else { u }));
            out.push(
                UnilateralState::new(graph.clone(), owners)
                    .expect("endpoint owners are always valid"),
            );
        }
        Ok(out)
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The owner of edge `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics if `{u, v}` is not an edge.
    #[must_use]
    pub fn owner(&self, u: u32, v: u32) -> u32 {
        self.owner[&(u.min(v), u.max(v))]
    }

    /// How many edges `u` owns (pays for).
    #[must_use]
    pub fn owned_count(&self, u: u32) -> u32 {
        self.owner.values().filter(|&&o| o == u).count() as u32
    }

    /// The targets `u` currently buys (its strategy `S_u`).
    #[must_use]
    pub fn strategy(&self, u: u32) -> Vec<u32> {
        self.owner
            .iter()
            .filter(|&(_, &o)| o == u)
            .map(|(&(a, b), _)| if a == u { b } else { a })
            .collect()
    }

    /// Cost of agent `u` in the unilateral game: `α·(owned edges) + dist`.
    #[must_use]
    pub fn agent_cost(&self, u: u32) -> AgentCost {
        let mut dist = Vec::new();
        let reached = bfs_distances(&self.graph, u, &mut dist);
        AgentCost {
            unreachable: (self.graph.n() - reached) as u32,
            edges: self.owned_count(u),
            dist: dist
                .iter()
                .filter(|&&d| d != UNREACHABLE)
                .map(|&d| u64::from(d))
                .sum(),
        }
    }

    /// Finds a profitable single-edge removal by its owner, or `None` if
    /// the state is in unilateral Remove Equilibrium.
    #[must_use]
    pub fn find_remove_violation(&self, alpha: Alpha) -> Option<UnilateralMove> {
        let mut scratch = self.graph.clone();
        for (&(u, v), &o) in &self.owner {
            let old = self.agent_cost(o);
            scratch.remove_edge(u, v).expect("edge exists");
            let after = cost_without(&scratch, o, old.edges - 1);
            scratch.add_edge(u, v).expect("restore");
            if after.better_than(&old, alpha) {
                return Some(UnilateralMove::Drop {
                    agent: o,
                    target: if o == u { v } else { u },
                });
            }
        }
        None
    }

    /// Finds a profitable single-edge purchase, or `None` if the state is
    /// in unilateral Add Equilibrium. The buyer pays `α`; the other
    /// endpoint is not asked (this is what makes Proposition 2.1's reverse
    /// direction fail).
    #[must_use]
    pub fn find_add_violation(&self, alpha: Alpha) -> Option<UnilateralMove> {
        let mut scratch = self.graph.clone();
        for (u, v) in self.graph.non_edges() {
            for (agent, target) in [(u, v), (v, u)] {
                let old = self.agent_cost(agent);
                scratch.add_edge(u, v).expect("non-edge");
                let after = cost_without(&scratch, agent, old.edges + 1);
                scratch.remove_edge(u, v).expect("restore");
                if after.better_than(&old, alpha) {
                    return Some(UnilateralMove::Buy { agent, target });
                }
            }
        }
        None
    }

    /// Finds a profitable arbitrary strategy change by a single agent, or
    /// `None` if the state is a Pure Nash Equilibrium of the unilateral
    /// game.
    ///
    /// Enumerates `2^c` candidate target sets per agent, where `c` counts
    /// the agent's plausible targets (nodes not already connected to it by
    /// an edge the *other* side owns).
    ///
    /// # Errors
    ///
    /// Returns [`GameError::CheckTooLarge`] if any agent has more than 20
    /// plausible targets.
    pub fn find_ne_violation(&self, alpha: Alpha) -> Result<Option<UnilateralMove>, GameError> {
        let n = self.graph.n() as u32;
        for agent in 0..n {
            let old = self.agent_cost(agent);
            // Base graph: all edges not owned by `agent`.
            let mut base = Graph::new(n as usize);
            for (&(u, v), &o) in &self.owner {
                if o != agent {
                    base.add_edge(u, v).expect("subset of a simple graph");
                }
            }
            // Buying an edge the other side already pays for is strictly
            // dominated; exclude those targets.
            let candidates: Vec<u32> = (0..n)
                .filter(|&t| t != agent && !base.has_edge(agent, t))
                .collect();
            if candidates.len() > 20 {
                return Err(GameError::CheckTooLarge {
                    reason: format!("agent {agent} has {} candidate targets", candidates.len()),
                });
            }
            let current: Vec<u32> = self.strategy(agent);
            let mut scratch = base.clone();
            for mask in 0u32..1 << candidates.len() {
                let mut bought = Vec::new();
                for (i, &t) in candidates.iter().enumerate() {
                    if mask >> i & 1 == 1 {
                        scratch.add_edge(agent, t).expect("fresh edge");
                        bought.push(t);
                    }
                }
                let after = cost_without(&scratch, agent, bought.len() as u32);
                for &t in &bought {
                    scratch.remove_edge(agent, t).expect("restore");
                }
                if after.better_than(&old, alpha) {
                    let drops = current
                        .iter()
                        .copied()
                        .filter(|t| !bought.contains(t))
                        .collect();
                    let buys = bought
                        .iter()
                        .copied()
                        .filter(|t| !current.contains(t))
                        .collect();
                    return Ok(Some(UnilateralMove::Rewire { agent, drops, buys }));
                }
            }
        }
        Ok(None)
    }

    /// Finds a profitable *single greedy change* — buying one edge,
    /// dropping one owned edge, or swapping one owned edge to a new
    /// target — or `None` if the state is in unilateral **Greedy
    /// Equilibrium** (Lenzner's GE, referenced in the paper's footnote 3
    /// as the unilateral ancestor of the BGE).
    #[must_use]
    pub fn find_greedy_violation(&self, alpha: Alpha) -> Option<UnilateralMove> {
        if let Some(mv) = self.find_remove_violation(alpha) {
            return Some(mv);
        }
        if let Some(mv) = self.find_add_violation(alpha) {
            return Some(mv);
        }
        // Swaps: replace one owned edge {o, t} by {o, w}; the owner's
        // buying cost is unchanged, nobody else is asked.
        let mut scratch = self.graph.clone();
        for (&(u, v), &o) in &self.owner {
            let t = if o == u { v } else { u };
            let old = self.agent_cost(o);
            for w in 0..self.graph.n() as u32 {
                if w == o || w == t || self.graph.has_edge(o, w) {
                    continue;
                }
                scratch.remove_edge(o, t).expect("owned edge");
                scratch.add_edge(o, w).expect("fresh target");
                let after = cost_without(&scratch, o, old.edges);
                scratch.remove_edge(o, w).expect("restore");
                scratch.add_edge(o, t).expect("restore");
                if after.better_than(&old, alpha) {
                    return Some(UnilateralMove::Rewire {
                        agent: o,
                        drops: vec![t],
                        buys: vec![w],
                    });
                }
            }
        }
        None
    }

    /// Whether the state is in unilateral Greedy Equilibrium.
    #[must_use]
    pub fn is_greedy_stable(&self, alpha: Alpha) -> bool {
        self.find_greedy_violation(alpha).is_none()
    }

    /// Whether the state is in unilateral Remove Equilibrium.
    #[must_use]
    pub fn is_remove_stable(&self, alpha: Alpha) -> bool {
        self.find_remove_violation(alpha).is_none()
    }

    /// Whether the state is in unilateral Add Equilibrium.
    #[must_use]
    pub fn is_add_stable(&self, alpha: Alpha) -> bool {
        self.find_add_violation(alpha).is_none()
    }

    /// Whether the state is a Pure Nash Equilibrium.
    ///
    /// # Errors
    ///
    /// Same guard as [`UnilateralState::find_ne_violation`].
    pub fn is_ne(&self, alpha: Alpha) -> Result<bool, GameError> {
        Ok(self.find_ne_violation(alpha)?.is_none())
    }
}

/// Agent cost in a mutated graph with an explicit owned-edge count (the
/// unilateral game decouples paying from adjacency).
fn cost_without(g: &Graph, u: u32, owned: u32) -> AgentCost {
    let mut dist = Vec::new();
    let reached = bfs_distances(g, u, &mut dist);
    AgentCost {
        unreachable: (g.n() - reached) as u32,
        edges: owned,
        dist: dist
            .iter()
            .filter(|&&d| d != UNREACHABLE)
            .map(|&d| u64::from(d))
            .sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bncg_graph::generators;

    fn a(s: &str) -> Alpha {
        s.parse().unwrap()
    }

    /// Star where the center owns every edge.
    fn center_owned_star(n: usize) -> UnilateralState {
        let g = generators::star(n);
        let owners: Vec<((u32, u32), u32)> = g.edges().map(|(u, v)| ((u, v), u)).collect();
        UnilateralState::new(g, owners).unwrap()
    }

    /// Star where each leaf owns its edge.
    fn leaf_owned_star(n: usize) -> UnilateralState {
        let g = generators::star(n);
        let owners: Vec<((u32, u32), u32)> = g.edges().map(|(u, v)| ((u, v), v)).collect();
        UnilateralState::new(g, owners).unwrap()
    }

    #[test]
    fn construction_validates_ownership() {
        let g = generators::path(3);
        assert!(UnilateralState::new(g.clone(), [((0, 1), 2), ((1, 2), 1)]).is_err());
        assert!(UnilateralState::new(g.clone(), [((0, 1), 0)]).is_err());
        assert!(UnilateralState::new(g.clone(), [((0, 2), 0), ((1, 2), 1)]).is_err());
        assert!(
            UnilateralState::new(g, [((0, 1), 0), ((1, 2), 1), ((1, 2), 2)]).is_err(),
            "double ownership must be rejected"
        );
    }

    #[test]
    fn leaf_owned_star_is_ne_for_reasonable_alpha() {
        // Classic: the star with leaf-owned edges is a NE for α ≥ 1.
        let s = leaf_owned_star(6);
        for alpha in ["1", "2", "10"] {
            assert!(s.is_ne(a(alpha)).unwrap(), "leaf-owned star at α = {alpha}");
        }
    }

    #[test]
    fn center_owned_star_center_drops_edges_at_high_alpha() {
        let s = center_owned_star(6);
        // Dropping a leaf edge saves α, costs reachability — never good.
        assert!(s.is_remove_stable(a("100")));
        // But a full rewire is different: still no, the center needs all
        // leaves. The *leaves* cannot do anything either (they own nothing).
        assert!(s.is_ne(a("2")).unwrap());
    }

    #[test]
    fn add_violations_found_on_paths() {
        let g = generators::path(5);
        let owners: Vec<((u32, u32), u32)> = g.edges().map(|(u, v)| ((u, v), u)).collect();
        let s = UnilateralState::new(g, owners).unwrap();
        // End agent buys an edge to the middle: distance gain 4 > α.
        assert!(matches!(
            s.find_add_violation(a("3")),
            Some(UnilateralMove::Buy { .. })
        ));
        assert!(s.is_add_stable(a("4")));
    }

    #[test]
    fn all_assignments_enumerates_2_to_m() {
        let g = generators::path(4);
        let states = UnilateralState::all_assignments(&g).unwrap();
        assert_eq!(states.len(), 8);
        // All states share the graph but differ in ownership.
        let mut strategies: Vec<Vec<u32>> = states.iter().map(|s| s.strategy(1)).collect();
        strategies.sort();
        strategies.dedup();
        assert!(strategies.len() > 1);
    }

    #[test]
    fn proposition_2_2_remove_equilibria_coincide() {
        // G is in bilateral RE iff G is in unilateral RE for EVERY edge
        // assignment.
        let mut rng = bncg_graph::test_rng(21);
        for _ in 0..15 {
            let g = generators::random_connected(6, 0.35, &mut rng);
            for alpha in ["1/2", "1", "2", "6"] {
                let alpha = a(alpha);
                let bilateral = crate::concepts::re::is_stable(&g, alpha);
                let unilateral_all = UnilateralState::all_assignments(&g)
                    .unwrap()
                    .iter()
                    .all(|s| s.is_remove_stable(alpha));
                assert_eq!(
                    bilateral, unilateral_all,
                    "Prop 2.2 violated at α = {alpha}"
                );
            }
        }
    }

    #[test]
    fn proposition_2_1_add_equilibrium_implies_bae() {
        // If (G, f) is in unilateral Add Equilibrium then G is in BAE.
        let mut rng = bncg_graph::test_rng(22);
        for _ in 0..10 {
            let g = generators::random_connected(6, 0.3, &mut rng);
            for alpha in ["1", "2"] {
                let alpha = a(alpha);
                for s in UnilateralState::all_assignments(&g).unwrap().iter().take(8) {
                    if s.is_add_stable(alpha) {
                        assert!(
                            crate::concepts::bae::is_stable(&g, alpha),
                            "Prop 2.1 violated at α = {alpha}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ne_implies_greedy_stability() {
        // GE allows a strict subset of NE deviations, so NE ⊆ GE.
        let mut rng = bncg_graph::test_rng(91);
        for _ in 0..10 {
            let g = generators::random_connected(6, 0.3, &mut rng);
            for alpha in ["1", "2", "4"] {
                let alpha = a(alpha);
                for s in UnilateralState::all_assignments(&g)
                    .unwrap()
                    .iter()
                    .take(12)
                {
                    if s.is_ne(alpha).unwrap() {
                        assert!(s.is_greedy_stable(alpha), "NE state failed GE");
                    }
                }
            }
        }
    }

    #[test]
    fn ge_and_ne_coincide_on_trees() {
        // Lenzner 2012: for trees, Greedy Equilibria and Nash Equilibria
        // coincide in the unilateral NCG.
        let mut rng = bncg_graph::test_rng(92);
        for _ in 0..8 {
            let g = generators::random_tree(7, &mut rng);
            for alpha in ["1", "3/2", "3", "8"] {
                let alpha = a(alpha);
                for s in UnilateralState::all_assignments(&g).unwrap() {
                    assert_eq!(
                        s.is_greedy_stable(alpha),
                        s.is_ne(alpha).unwrap(),
                        "GE ≠ NE on a tree assignment at α = {alpha}"
                    );
                }
            }
        }
    }

    #[test]
    fn greedy_swaps_are_detected() {
        // Leaf-owned star where one leaf instead hangs off another leaf:
        // the deep leaf prefers swapping its edge to the center.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (2, 3)]).unwrap();
        let s = UnilateralState::new(g, [((0, 1), 1), ((0, 2), 2), ((2, 3), 3)]).unwrap();
        // At α = 10 no addition or removal pays, but leaf owners profit
        // from re-aiming their single edge (e.g. 3 re-aims 2 → 0).
        assert!(s.is_add_stable(a("10")));
        assert!(s.is_remove_stable(a("10")));
        let mv = s.find_greedy_violation(a("10")).expect("swap expected");
        match mv {
            UnilateralMove::Rewire { drops, buys, .. } => {
                assert_eq!(drops.len(), 1);
                assert_eq!(buys.len(), 1);
            }
            other => panic!("expected a one-edge swap, got {other:?}"),
        }
    }

    #[test]
    fn ne_guard_fires_on_large_instances() {
        let g = generators::star(30);
        let owners: Vec<((u32, u32), u32)> = g.edges().map(|(u, v)| ((u, v), v)).collect();
        let s = UnilateralState::new(g, owners).unwrap();
        // Agent 0 (center): candidates are the 0 non-adjacent nodes — fine;
        // a leaf has 28 candidates > 20 → guard.
        assert!(matches!(
            s.find_ne_violation(a("1")),
            Err(GameError::CheckTooLarge { .. })
        ));
    }
}
