//! Exact stability windows in α.
//!
//! For a fixed graph every candidate move of the polynomial concepts (RE,
//! BAE, BSwE and their intersections) is improving on an *open rational
//! interval* of prices: an agent with `Δedges` extra edges and `Δdist`
//! saved distance improves iff `α·Δedges < Δdist` (strict), and
//! reachability changes are α-independent under the lexicographic cost.
//! Intersecting the consenting agents' intervals and uniting over all
//! candidate moves yields the exact *instability region*; its complement
//! is where the graph is stable.
//!
//! This reproduces, in one call, the α-range discussions threaded through
//! the paper (e.g. the cycle windows of Lemma 2.4 at the RE/PS level) with
//! exact rational endpoints instead of sampled grids.

use crate::alpha::Alpha;
use crate::concepts::Concept;
use crate::cost::{agent_cost, AgentCost};
use crate::error::GameError;
use crate::moves::Move;
use bncg_graph::Graph;
use std::cmp::Ordering;

/// An exact non-negative rational price bound; `None` in interval
/// endpoints denotes 0 (left) or ∞ (right).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Threshold {
    num: i128,
    den: i128,
}

impl Threshold {
    fn new(num: i128, den: i128) -> Self {
        debug_assert!(den > 0);
        let g = gcd(num.abs().max(1), den);
        Threshold {
            num: num / g,
            den: den / g,
        }
    }

    /// Numerator of the reduced bound.
    #[must_use]
    pub fn num(&self) -> i128 {
        self.num
    }

    /// Denominator of the reduced bound (positive).
    #[must_use]
    pub fn den(&self) -> i128 {
        self.den
    }

    /// Approximate value for reporting.
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    fn cmp_alpha(&self, alpha: Alpha) -> Ordering {
        (self.num * i128::from(alpha.den())).cmp(&(i128::from(alpha.num()) * self.den))
    }
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl PartialOrd for Threshold {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Threshold {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl std::fmt::Display for Threshold {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// An open interval `(lo, hi)` of prices on which some candidate move is
/// improving; `None` bounds mean 0 / ∞.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OpenInterval {
    lo: Option<Threshold>,
    hi: Option<Threshold>,
}

/// A maximal price interval with a constant stability verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StabilityWindow {
    /// Left endpoint (`None` = 0). Stability regions are closed at their
    /// finite endpoints (improvements are strict inequalities).
    pub lo: Option<Threshold>,
    /// Right endpoint (`None` = ∞).
    pub hi: Option<Threshold>,
    /// Whether the graph is stable for prices in this window.
    pub stable: bool,
}

/// Computes the exact stability windows of `g` under a polynomial concept
/// (RE, BAE, BSwE, PS, or BGE).
///
/// # Errors
///
/// Returns [`GameError::CheckTooLarge`] for the exponential concepts
/// (BNE, k-BSE, BSE), whose move spaces are not enumerated here.
///
/// # Examples
///
/// ```
/// use bncg_core::{windows::stability_windows, Concept};
/// use bncg_graph::generators;
///
/// // Lemma 2.4 arithmetic: C6 is in RE exactly for α ≤ n(n−2)/4 = 6.
/// let w = stability_windows(&generators::cycle(6), Concept::Re)?;
/// assert_eq!(w.len(), 2);
/// assert!(w[0].stable);
/// assert_eq!(w[0].hi.unwrap().to_string(), "6");
/// assert!(!w[1].stable);
/// # Ok::<(), bncg_core::GameError>(())
/// ```
pub fn stability_windows(g: &Graph, concept: Concept) -> Result<Vec<StabilityWindow>, GameError> {
    let wants_removals = matches!(concept, Concept::Re | Concept::Ps | Concept::Bge);
    let wants_adds = matches!(concept, Concept::Bae | Concept::Ps | Concept::Bge);
    let wants_swaps = matches!(concept, Concept::Bswe | Concept::Bge);
    if !(wants_removals || wants_adds || wants_swaps) {
        return Err(GameError::CheckTooLarge {
            reason: format!(
                "stability windows are only enumerable for polynomial concepts, not {concept}"
            ),
        });
    }
    let n = g.n() as u32;
    let old: Vec<AgentCost> = (0..n).map(|u| agent_cost(g, u)).collect();
    let mut improving: Vec<OpenInterval> = Vec::new();
    let mut push_move = |mv: Move| -> Result<(), GameError> {
        let g2 = mv.apply(g)?;
        if let Some(interval) = move_interval(&g2, &mv, &old) {
            improving.push(interval);
        }
        Ok(())
    };
    if wants_removals {
        for (u, v) in g.edges() {
            push_move(Move::Remove {
                agent: u,
                target: v,
            })?;
            push_move(Move::Remove {
                agent: v,
                target: u,
            })?;
        }
    }
    if wants_adds {
        for (u, v) in g.non_edges() {
            push_move(Move::BilateralAdd { u, v })?;
        }
    }
    if wants_swaps {
        for agent in 0..n {
            let neighbors: Vec<u32> = g.neighbors(agent).to_vec();
            for &dropped in &neighbors {
                for new in 0..n {
                    if new != agent && new != dropped && !g.has_edge(agent, new) {
                        push_move(Move::Swap {
                            agent,
                            old: dropped,
                            new,
                        })?;
                    }
                }
            }
        }
    }
    Ok(windows_from_intervals(improving))
}

/// The open α-interval on which `mv` improves **all** consenting agents,
/// or `None` if empty.
fn move_interval(g2: &Graph, mv: &Move, old: &[AgentCost]) -> Option<OpenInterval> {
    let mut lo: Option<Threshold> = None; // max of lower bounds
    let mut hi: Option<Threshold> = None; // min of upper bounds
    for a in mv.consenting_agents() {
        let before = &old[a as usize];
        let after = agent_cost(g2, a);
        match after.unreachable.cmp(&before.unreachable) {
            Ordering::Greater => return None, // lexicographically worse always
            Ordering::Less => continue,       // improves at every price
            Ordering::Equal => {}
        }
        let de = i128::from(after.edges) - i128::from(before.edges);
        let dd = i128::from(before.dist) - i128::from(after.dist);
        match de.cmp(&0) {
            Ordering::Equal => {
                if dd <= 0 {
                    return None; // never strictly improving
                }
                // improves at every price: no constraint
            }
            Ordering::Greater => {
                // α < dd/de — requires dd > 0.
                if dd <= 0 {
                    return None;
                }
                let bound = Threshold::new(dd, de);
                hi = Some(match hi {
                    Some(h) => h.min(bound),
                    None => bound,
                });
            }
            Ordering::Less => {
                // α(−|de|) < dd ⟺ α > −dd/|de| — a real constraint only
                // when −dd/|de| > 0, i.e. dd < 0.
                if dd < 0 {
                    let bound = Threshold::new(-dd, -de);
                    lo = Some(match lo {
                        Some(l) => l.max(bound),
                        None => bound,
                    });
                }
            }
        }
    }
    // Empty if lo ≥ hi.
    if let (Some(l), Some(h)) = (lo, hi) {
        if l >= h {
            return None;
        }
    }
    if let Some(h) = hi {
        if h.num <= 0 {
            return None; // α must be positive
        }
    }
    Some(OpenInterval { lo, hi })
}

/// Merges open instability intervals and returns the alternating windows.
fn windows_from_intervals(intervals: Vec<OpenInterval>) -> Vec<StabilityWindow> {
    if intervals.is_empty() {
        return vec![StabilityWindow {
            lo: None,
            hi: None,
            stable: true,
        }];
    }
    // Collect all endpoints as breakpoints; evaluate stability on each
    // elementary piece using a representative price (midpoints / mediants).
    let mut points: Vec<Threshold> = Vec::new();
    for iv in &intervals {
        if let Some(l) = iv.lo {
            if l.num > 0 {
                points.push(l);
            }
        }
        if let Some(h) = iv.hi {
            if h.num > 0 {
                points.push(h);
            }
        }
    }
    points.sort();
    points.dedup();
    // Representatives: a point below the first breakpoint, between each
    // consecutive pair, above the last — plus the breakpoints themselves
    // (stability is closed at endpoints, so breakpoints belong to their
    // own evaluation).
    let unstable_at = |alpha_num: i128, alpha_den: i128| -> bool {
        intervals.iter().any(|iv| {
            let above_lo = iv.lo.is_none_or(|l| {
                // α > l ?
                alpha_num * l.den > l.num * alpha_den
            });
            let below_hi = iv.hi.is_none_or(|h| alpha_num * h.den < h.num * alpha_den);
            above_lo && below_hi
        })
    };
    // Build elementary pieces: (0, p1), [p1], (p1, p2), …, (pk, ∞).
    let mut verdicts: Vec<(Option<Threshold>, Option<Threshold>, bool)> = Vec::new();
    let mut prev: Option<Threshold> = None;
    for (i, &p) in points.iter().enumerate() {
        // Open piece before p.
        let rep = match prev {
            None => (p.num, p.den * 2),                                    // p/2
            Some(q) => (p.num * q.den + q.num * p.den, 2 * p.den * q.den), // midpoint
        };
        verdicts.push((prev, Some(p), !unstable_at(rep.0, rep.1)));
        // The breakpoint itself.
        verdicts.push((Some(p), Some(p), !unstable_at(p.num, p.den)));
        prev = Some(p);
        if i == points.len() - 1 {
            // Open piece after the last breakpoint.
            verdicts.push((Some(p), None, !unstable_at(p.num + p.den, p.den)));
        }
    }
    // Merge adjacent pieces with equal verdicts into maximal windows.
    let mut out: Vec<StabilityWindow> = Vec::new();
    for (lo, hi, stable) in verdicts {
        match out.last_mut() {
            Some(last) if last.stable == stable => {
                last.hi = hi;
            }
            _ => out.push(StabilityWindow { lo, hi, stable }),
        }
    }
    out
}

/// Whether `alpha` lies in a stable window (closed at stable endpoints).
#[must_use]
pub fn windows_contain(windows: &[StabilityWindow], alpha: Alpha, stable: bool) -> bool {
    for w in windows {
        if w.stable != stable {
            continue;
        }
        let above = w.lo.is_none_or(|l| l.cmp_alpha(alpha) != Ordering::Greater);
        let below = w.hi.is_none_or(|h| h.cmp_alpha(alpha) != Ordering::Less);
        if above && below {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use bncg_graph::generators;

    fn a(s: &str) -> Alpha {
        s.parse().unwrap()
    }

    #[test]
    fn trees_are_re_stable_everywhere() {
        let w = stability_windows(&generators::path(6), Concept::Re).unwrap();
        assert_eq!(
            w,
            vec![StabilityWindow {
                lo: None,
                hi: None,
                stable: true
            }]
        );
    }

    #[test]
    fn cycle_re_breakpoint_matches_lemma_2_4_arithmetic() {
        // Even n: stable iff α ≤ n(n−2)/4; odd n: α ≤ (n−1)²/4.
        for (n, bound) in [(4usize, "2"), (5, "4"), (6, "6"), (7, "9"), (8, "12")] {
            let w = stability_windows(&generators::cycle(n), Concept::Re).unwrap();
            assert_eq!(w.len(), 2, "C{n} must have one breakpoint");
            assert!(w[0].stable && !w[1].stable);
            assert_eq!(w[0].hi.unwrap().to_string(), bound, "C{n} breakpoint");
        }
    }

    #[test]
    fn windows_agree_with_checkers_on_sampled_prices() {
        let mut rng = bncg_graph::test_rng(95);
        for _ in 0..10 {
            let g = generators::random_connected(7, 0.3, &mut rng);
            for concept in [
                Concept::Re,
                Concept::Bae,
                Concept::Bswe,
                Concept::Ps,
                Concept::Bge,
            ] {
                let w = stability_windows(&g, concept).unwrap();
                for alpha in ["1/3", "1/2", "1", "3/2", "2", "3", "9/2", "7", "12", "100"] {
                    let alpha = a(alpha);
                    let direct = concept.is_stable(&g, alpha).unwrap();
                    assert_eq!(
                        windows_contain(&w, alpha, true),
                        direct,
                        "window verdict diverges from {concept} checker at α = {alpha}"
                    );
                }
            }
        }
    }

    #[test]
    fn windows_agree_at_their_own_breakpoints() {
        // Boundary semantics: stability is closed (strict improvement).
        let mut rng = bncg_graph::test_rng(96);
        for _ in 0..6 {
            let g = generators::random_connected(6, 0.35, &mut rng);
            for concept in [Concept::Re, Concept::Bae, Concept::Bge] {
                let w = stability_windows(&g, concept).unwrap();
                for win in &w {
                    for bound in [win.lo, win.hi].into_iter().flatten() {
                        if bound.num() > 0
                            && bound.num() < i128::from(i64::MAX)
                            && bound.den() < i128::from(i64::MAX)
                        {
                            let alpha =
                                Alpha::from_ratio(bound.num() as i64, bound.den() as i64).unwrap();
                            let direct = concept.is_stable(&g, alpha).unwrap();
                            assert_eq!(windows_contain(&w, alpha, true), direct);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn star_is_stable_above_one_under_ps() {
        let w = stability_windows(&generators::star(6), Concept::Ps).unwrap();
        // Unstable for α < 1 (leaf pairs add), stable from 1 on.
        assert!(windows_contain(&w, a("1/2"), false));
        assert!(windows_contain(&w, a("1"), true));
        assert!(windows_contain(&w, a("1000"), true));
    }

    #[test]
    fn exponential_concepts_are_rejected() {
        let g = generators::path(4);
        assert!(stability_windows(&g, Concept::Bne).is_err());
        assert!(stability_windows(&g, Concept::Bse).is_err());
    }
}
