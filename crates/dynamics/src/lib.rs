//! # bncg-dynamics
//!
//! Improving-move dynamics for the Bilateral Network Creation Game: how do
//! decentralized agents *reach* the equilibria whose quality the paper
//! bounds? A run repeatedly finds a move the chosen solution concept
//! forbids and applies it, until no such move exists (the state is an
//! equilibrium of that concept) or a step limit fires.
//!
//! Three move-selection rules are provided: the deterministic first
//! violation, a uniformly random improving move, and the "most improving"
//! move (largest joint cost reduction of the consenting agents). The
//! trajectory records every step so experiments can analyze convergence
//! speed and the social-cost path.
//!
//! # Anytime runs and checkpoints
//!
//! Two policy-driven runners give the dynamics the solver's anytime
//! contract:
//!
//! * [`run_with_policy`] drives the improving-move loop through the
//!   [`Solver`] under an [`ExecPolicy`]; a budget, deadline, or cancel
//!   stop ends the run with the partial trajectory intact and a
//!   [`DynamicsCheckpoint`] carrying the interrupted check's scan
//!   frontier. [`resume_with_policy`] continues from it, and a chain of
//!   budgeted slices replays the **identical trajectory** an
//!   uninterrupted run produces (the per-step checks are deterministic
//!   first-violation scans, and a resumed frontier provably returns the
//!   same witness).
//! * [`round_robin::run_with_policy`] does the same for round-robin
//!   best-response dynamics, with a run-level eval pool and
//!   mid-activation [`round_robin::Checkpoint`]s.
//!
//! Both checkpoint tokens serialize as flat JSON via
//! `to_json`/[`FromStr`] and cross process
//! boundaries, which is what lets a serving layer (`bncg-serve`)
//! time-slice thousands of concurrent trajectories through one worker
//! pool by checkpointing and requeueing them.
//!
//! # Examples
//!
//! ```
//! use bncg_core::{Alpha, Concept};
//! use bncg_dynamics::{run, SelectionRule};
//! use bncg_graph::generators;
//!
//! // A path under greedy dynamics folds into a low-cost tree.
//! let path = generators::path(12);
//! let alpha = Alpha::integer(3)?;
//! let t = run(&path, alpha, Concept::Bge, SelectionRule::First, 10_000)?;
//! assert!(t.converged);
//! # Ok::<(), bncg_core::GameError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod round_robin;

use bncg_core::jsonio;
use bncg_core::solver::{ExecPolicy, Frontier, Solver, StabilityQuery, Verdict};
use bncg_core::{Alpha, Concept, CostModelSpec, GameError, GameState, Move};
use bncg_graph::Graph;
use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;
use std::str::FromStr;

/// How the next improving move is chosen among the violations of the
/// concept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionRule {
    /// The first violation in the checker's deterministic scan order.
    First,
    /// A uniformly random improving move (polynomial concepts only).
    Random,
    /// The move with the largest total strict improvement of its
    /// consenting agents (polynomial concepts only).
    MostImproving,
}

/// The checkpoint layout version: tokens embed a solver [`Frontier`]
/// whose positions are enumeration-layout-bound, so a layout bump there
/// implies one here.
const CHECKPOINT_LAYOUT: u64 = 1;

/// A resumable snapshot of an interrupted improving-move trajectory —
/// the [`run_with_policy`] analogue of [`round_robin::Checkpoint`].
///
/// Carries the **instance fingerprint** of the graph at interruption
/// (the caller re-supplies the graph itself — typically
/// [`Trajectory::final_graph`] — and a mismatch is rejected), the
/// cumulative applied-**step** and candidate-**evaluation** counters,
/// and — when the stop fired mid-scan — the interrupted stability
/// check's solver [`Frontier`], so no certified work is repeated on
/// resume.
///
/// Serialization is a flat JSON object (`to_json`/`FromStr`):
/// `{"v":1,"instance":…,"steps":…,"evals":…,"scan":{…}}` where `scan`
/// (optional, always last) is the embedded [`Frontier`] token. Tokens
/// cross process boundaries like the solver's; a layout-version
/// mismatch is rejected on parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicsCheckpoint {
    instance: u64,
    steps: usize,
    evals: u64,
    scan: Option<Frontier>,
}

impl DynamicsCheckpoint {
    /// Cumulative applied moves across the whole trajectory chain.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Cumulative candidate evaluations across the whole chain.
    #[must_use]
    pub fn evals(&self) -> u64 {
        self.evals
    }

    /// The interrupted check's scan frontier, if the stop fired
    /// mid-scan (absent when the run deadline passed between steps).
    #[must_use]
    pub fn scan(&self) -> Option<&Frontier> {
        self.scan.as_ref()
    }

    /// Serializes the checkpoint as a flat JSON object. The embedded
    /// scan token is emitted **last** so the checkpoint's own fields win
    /// the first-occurrence field extraction on parse (the two tokens
    /// share key names like `instance` and `evals`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let scan = match &self.scan {
            Some(f) => format!(",\"scan\":{}", f.to_json()),
            None => String::new(),
        };
        format!(
            "{{\"v\":{CHECKPOINT_LAYOUT},\"instance\":{},\"steps\":{},\
             \"evals\":{}{scan}}}",
            self.instance, self.steps, self.evals
        )
    }
}

impl fmt::Display for DynamicsCheckpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl FromStr for DynamicsCheckpoint {
    type Err = GameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // The scan object shares field names with the checkpoint, so
        // strip it off before extracting the checkpoint's own fields.
        let scan = match jsonio::object_field(s, "scan") {
            Some(obj) => Some(obj.parse::<Frontier>()?),
            None => None,
        };
        let head = match s.find("\"scan\"") {
            Some(at) => &s[..at],
            None => s,
        };
        let field = |key: &str| {
            jsonio::u64_field(head, key).ok_or_else(|| GameError::Unsupported {
                reason: format!("malformed dynamics checkpoint: missing or invalid {key:?}"),
            })
        };
        let layout = field("v")?;
        if layout != CHECKPOINT_LAYOUT {
            return Err(GameError::Unsupported {
                reason: format!(
                    "dynamics checkpoint has layout version {layout}, this \
                     build speaks version {CHECKPOINT_LAYOUT} — restart the \
                     run instead of resuming"
                ),
            });
        }
        Ok(DynamicsCheckpoint {
            instance: field("instance")?,
            steps: field("steps")? as usize,
            evals: field("evals")?,
            scan,
        })
    }
}

/// A recorded dynamics run.
#[derive(Debug, Clone)]
pub struct Trajectory {
    /// The moves applied **by this run call**, in order (an
    /// uninterrupted run's `steps` is the full trajectory; in a resume
    /// chain each slice reports its own segment and the checkpoint
    /// carries the cumulative count).
    pub steps: Vec<Move>,
    /// Whether the run reached a stable state (vs. hitting the step cap).
    pub converged: bool,
    /// Whether a stability check exhausted its [`ExecPolicy`] (budget,
    /// deadline, or cancellation) before the run could converge — only
    /// reachable through [`run_with_policy`]/[`resume_with_policy`].
    /// Mutually exclusive with `converged`.
    pub exhausted: bool,
    /// The resume token — present exactly when `exhausted` is set. Pass
    /// it with `final_graph` to [`resume_with_policy`] to continue the
    /// trajectory.
    pub checkpoint: Option<DynamicsCheckpoint>,
    /// Candidate evaluations metered by the per-step stability checks
    /// across the whole trajectory chain so far (0 on the non-policy
    /// path and for polynomial concepts, whose checks are unmetered).
    pub evals: u64,
    /// The final graph.
    pub final_graph: Graph,
    /// Social cost after every step of **this run call** (including its
    /// starting state), as `f64` for reporting; `None` entries mark
    /// disconnected states.
    pub cost_trace: Vec<Option<f64>>,
}

impl Trajectory {
    /// Number of applied moves.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether no move was applied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Runs improving dynamics from `start` under `concept` until stable or
/// `max_steps` moves were applied.
///
/// # Errors
///
/// Forwards guard errors from the exponential checkers, and
/// [`GameError::InvalidMove`] if a checker ever emits a non-applicable
/// move (a bug the dynamics would rather surface than skip).
pub fn run(
    start: &Graph,
    alpha: Alpha,
    concept: Concept,
    rule: SelectionRule,
    max_steps: usize,
) -> Result<Trajectory, GameError> {
    let mut rng = bncg_graph::test_rng(0x5eed);
    run_with_rng(start, alpha, concept, rule, max_steps, &mut rng)
}

/// [`run`] with a caller-supplied RNG (used by [`SelectionRule::Random`]).
///
/// # Errors
///
/// Same as [`run`].
pub fn run_with_rng<R: Rng + ?Sized>(
    start: &Graph,
    alpha: Alpha,
    concept: Concept,
    rule: SelectionRule,
    max_steps: usize,
    rng: &mut R,
) -> Result<Trajectory, GameError> {
    run_impl(
        start,
        alpha,
        CostModelSpec::SumDistances,
        concept,
        rule,
        max_steps,
        rng,
        None,
        None,
    )
}

/// [`run`] under an explicit [`ExecPolicy`]: every per-step
/// exponential-concept stability check goes through one [`Solver`]
/// (threads shard the scans, and this holds for **all** selection rules
/// — for BNE/k-BSE/BSE the enumerating rules degrade to the checker's
/// single deterministic violation, exactly as [`enumerate_violations`]
/// does). The policy's deadline is anchored once and bounds the **whole
/// run** (each step's check receives the remaining slice, matching
/// [`round_robin::run_with_policy`]); the eval budget applies per step.
/// A step stopped by the policy ends the run with `exhausted = true`
/// and a [`DynamicsCheckpoint`] carrying the interrupted check's scan
/// frontier — the anytime contract of the solver surface, lifted to
/// dynamics. Continue with [`resume_with_policy`]; a chain of budgeted
/// slices replays the identical trajectory an uninterrupted run
/// produces.
/// Polynomial-concept steps complete eagerly (the solver does not meter
/// them), so those runs are bounded by `max_steps`, not the policy.
///
/// # Errors
///
/// Forwards [`GameError::InvalidMove`] if a checker emits a
/// non-applicable move; unlike [`run`], oversized instances do not error
/// with [`GameError::CheckTooLarge`] — bound them via the policy.
pub fn run_with_policy(
    start: &Graph,
    alpha: Alpha,
    concept: Concept,
    rule: SelectionRule,
    max_steps: usize,
    policy: &ExecPolicy,
) -> Result<Trajectory, GameError> {
    run_with_policy_under(
        start,
        alpha,
        CostModelSpec::SumDistances,
        concept,
        rule,
        max_steps,
        policy,
    )
}

/// [`run_with_policy`] pricing every step under an explicit
/// [`CostModelSpec`] — the default model reproduces [`run_with_policy`]
/// exactly. Checkpoints are model-bound: the instance fingerprint folds
/// a non-default model's tag, so a token issued under one model cannot
/// resume a run under another.
///
/// # Errors
///
/// Same as [`run_with_policy`].
#[allow(clippy::too_many_arguments)]
pub fn run_with_policy_under(
    start: &Graph,
    alpha: Alpha,
    model: CostModelSpec,
    concept: Concept,
    rule: SelectionRule,
    max_steps: usize,
    policy: &ExecPolicy,
) -> Result<Trajectory, GameError> {
    let mut rng = bncg_graph::test_rng(0x5eed);
    run_impl(
        start,
        alpha,
        model,
        concept,
        rule,
        max_steps,
        &mut rng,
        Some(policy),
        None,
    )
}

/// Continues an interrupted trajectory: `start` must be the interrupted
/// run's `final_graph` (the checkpoint's instance fingerprint is
/// validated against it) and `max_steps` the same cap — the
/// checkpoint's step counter keeps counting against it. The policy's
/// budget and deadline are granted afresh to this slice, and the
/// checkpoint's scan frontier (if any) resumes the interrupted
/// stability check exactly where it stopped, so no certified work is
/// repeated.
///
/// # Errors
///
/// [`GameError::Unsupported`] when the checkpoint does not match
/// `(start, alpha, concept)` or its cursor is out of range for this
/// run; otherwise as [`run_with_policy`].
pub fn resume_with_policy(
    start: &Graph,
    alpha: Alpha,
    concept: Concept,
    rule: SelectionRule,
    max_steps: usize,
    policy: &ExecPolicy,
    checkpoint: &DynamicsCheckpoint,
) -> Result<Trajectory, GameError> {
    resume_with_policy_under(
        start,
        alpha,
        CostModelSpec::SumDistances,
        concept,
        rule,
        max_steps,
        policy,
        checkpoint,
    )
}

/// [`resume_with_policy`] under an explicit [`CostModelSpec`]; the model
/// must be the interrupted run's (the checkpoint's fingerprint check
/// enforces this).
///
/// # Errors
///
/// Same as [`resume_with_policy`].
#[allow(clippy::too_many_arguments)]
pub fn resume_with_policy_under(
    start: &Graph,
    alpha: Alpha,
    model: CostModelSpec,
    concept: Concept,
    rule: SelectionRule,
    max_steps: usize,
    policy: &ExecPolicy,
    checkpoint: &DynamicsCheckpoint,
) -> Result<Trajectory, GameError> {
    let mut rng = bncg_graph::test_rng(0x5eed);
    run_impl(
        start,
        alpha,
        model,
        concept,
        rule,
        max_steps,
        &mut rng,
        Some(policy),
        Some(checkpoint),
    )
}

/// One per-step check outcome on the policy path: either the
/// deterministic next move (or `None` at an equilibrium), or a policy
/// stop with the scan frontier to checkpoint.
enum Step {
    Next(Option<Move>),
    Stopped(Option<Frontier>),
}

#[allow(clippy::too_many_arguments)]
fn run_impl<R: Rng + ?Sized>(
    start: &Graph,
    alpha: Alpha,
    model: CostModelSpec,
    concept: Concept,
    rule: SelectionRule,
    max_steps: usize,
    rng: &mut R,
    policy: Option<&ExecPolicy>,
    from: Option<&DynamicsCheckpoint>,
) -> Result<Trajectory, GameError> {
    // The policy deadline bounds the *run*, not each step: it is
    // anchored once here and each per-step check receives only the
    // remaining slice (the same run-level anchoring the round-robin
    // dynamics uses, so `deadline` means one thing across both APIs).
    let run_deadline = policy
        .and_then(|p| p.deadline)
        .map(|d| std::time::Instant::now() + d);
    let mut state = GameState::with_cost_model(start.clone(), alpha, model);

    // Chain state: either fresh or rehydrated from the checkpoint.
    let (steps_prior, evals_prior, mut pending) = match from {
        Some(c) => {
            if c.instance != state.fingerprint() {
                return Err(GameError::Unsupported {
                    reason: "dynamics checkpoint was issued for a different \
                             state (pass the interrupted run's final_graph and \
                             the same α)"
                        .into(),
                });
            }
            if c.steps > max_steps {
                return Err(GameError::Unsupported {
                    reason: format!(
                        "dynamics checkpoint counts {} applied steps, past this \
                         run's max_steps = {max_steps} — the token was forged \
                         or the cap shrank",
                        c.steps
                    ),
                });
            }
            // A frontier for the wrong concept would also be rejected by
            // the solver's own resume validation, but failing here keeps
            // the error message at the dynamics level.
            if c.scan.as_ref().is_some_and(|f| f.concept() != concept) {
                return Err(GameError::Unsupported {
                    reason: "dynamics checkpoint's scan frontier belongs to a \
                             different concept than this run's"
                        .into(),
                });
            }
            (c.steps, c.evals, c.scan)
        }
        None => (0, 0, None),
    };

    let mut slice_evals = 0u64;
    // Minimum-progress guarantee (mirroring round_robin's): the
    // deadline-passed early return is suppressed until this slice has
    // attempted one check, so even an all-zero-deadline resume chain
    // advances the frontier by at least one scan quantum per slice and
    // terminates.
    let mut attempted = false;
    // Resolves the next deterministic first-violation move: through the
    // solver when a policy is given (anytime semantics), through the
    // guarded legacy entry point otherwise. `resume` carries the
    // interrupted scan frontier on the first check of a resumed slice.
    let mut next_first = |state: &GameState,
                          resume: Option<Frontier>,
                          slice_evals: &mut u64|
     -> Result<Step, GameError> {
        match policy {
            Some(p) => {
                let mut step_policy = p.clone();
                if let Some(at) = run_deadline {
                    let remaining = at.saturating_duration_since(std::time::Instant::now());
                    if attempted && remaining.is_zero() {
                        // Run deadline already passed between steps: stop
                        // without starting a scan, keeping any pending
                        // frontier for the checkpoint.
                        return Ok(Step::Stopped(resume));
                    }
                    step_policy.deadline = Some(remaining);
                }
                attempted = true;
                // Verdict eval counts are cumulative across a resumed
                // query chain; delta-track against the frontier's prior.
                let scan_prior = resume.as_ref().map_or(0, Frontier::evals);
                let mut query = StabilityQuery::on(concept, state);
                if let Some(f) = resume {
                    query = query.resume(f);
                }
                match Solver::new(step_policy).check(&query)? {
                    Verdict::Stable { evals, .. } => {
                        *slice_evals += evals - scan_prior;
                        Ok(Step::Next(None))
                    }
                    Verdict::Unstable { witness, evals, .. } => {
                        *slice_evals += evals - scan_prior;
                        Ok(Step::Next(Some(witness)))
                    }
                    Verdict::Exhausted { frontier, progress } => {
                        *slice_evals += progress.evals_total - scan_prior;
                        Ok(Step::Stopped(Some(frontier)))
                    }
                }
            }
            None => Ok(Step::Next(concept.find_violation_in(state)?)),
        }
    };
    let mut steps = Vec::new();
    let mut cost_trace = vec![state.social_cost().ok().map(|c| c.as_f64())];
    let mut converged = false;
    let mut checkpoint: Option<DynamicsCheckpoint> = None;
    // For exponential concepts every rule reduces to the checker's
    // single deterministic violation (enumerate_violations_in falls back
    // to it), so the solver-routed path covers Random/MostImproving too
    // — without it they would hit the legacy guard the policy is meant
    // to replace. (This also means every checkpointable check is
    // deterministic, which is what makes resumed chains replay the
    // identical trajectory.)
    let effective_rule = if concept.is_exponential() {
        SelectionRule::First
    } else {
        rule
    };
    let mut steps_done = steps_prior;
    while steps_done < max_steps {
        let next = match effective_rule {
            SelectionRule::First => match next_first(&state, pending.take(), &mut slice_evals)? {
                Step::Next(next) => next,
                Step::Stopped(scan) => {
                    checkpoint = Some(DynamicsCheckpoint {
                        instance: state.fingerprint(),
                        steps: steps_done,
                        evals: evals_prior + slice_evals,
                        scan,
                    });
                    break;
                }
            },
            SelectionRule::Random => enumerate_violations_in(&state, concept)?
                .choose(rng)
                .cloned(),
            SelectionRule::MostImproving => pick_most_improving(&state, concept)?,
        };
        let Some(mv) = next else {
            converged = true;
            break;
        };
        state.apply_move(&mv)?;
        cost_trace.push(state.social_cost().ok().map(|c| c.as_f64()));
        steps.push(mv);
        steps_done += 1;
    }
    if !converged && checkpoint.is_none() {
        // The step cap fired: certify (or refute) stability of the final
        // state so `converged` reflects it.
        match next_first(&state, pending.take(), &mut slice_evals)? {
            Step::Next(None) => converged = true,
            Step::Next(Some(_)) => {}
            Step::Stopped(scan) => {
                checkpoint = Some(DynamicsCheckpoint {
                    instance: state.fingerprint(),
                    steps: steps_done,
                    evals: evals_prior + slice_evals,
                    scan,
                });
            }
        }
    }
    Ok(Trajectory {
        steps,
        converged,
        exhausted: checkpoint.is_some(),
        checkpoint,
        evals: evals_prior + slice_evals,
        final_graph: state.graph().clone(),
        cost_trace,
    })
}

/// Enumerates every violating move of a *polynomial* concept (RE, BAE, PS,
/// BSwE, BGE). The exponential concepts fall back to the single move the
/// exact checker reports.
///
/// # Errors
///
/// Forwards guard errors from the exponential checkers.
pub fn enumerate_violations(
    g: &Graph,
    alpha: Alpha,
    concept: Concept,
) -> Result<Vec<Move>, GameError> {
    enumerate_violations_in(&GameState::new(g.clone(), alpha), concept)
}

/// [`enumerate_violations`] against a caller-maintained [`GameState`]:
/// each candidate is priced by the engine (matrix fast path for additions,
/// consenting-agent BFS otherwise) against the cached pre-move costs.
///
/// # Errors
///
/// Forwards guard errors from the exponential checkers.
pub fn enumerate_violations_in(
    state: &GameState,
    concept: Concept,
) -> Result<Vec<Move>, GameError> {
    let g = state.graph();
    let mut out = Vec::new();
    let mut ev = state.evaluator();
    let mut push_if_improving = |mv: Move, out: &mut Vec<Move>| -> Result<(), GameError> {
        if ev.improves_all(&mv)? {
            out.push(mv);
        }
        Ok(())
    };
    let wants_removals = matches!(concept, Concept::Re | Concept::Ps | Concept::Bge);
    let wants_adds = matches!(concept, Concept::Bae | Concept::Ps | Concept::Bge);
    let wants_swaps = matches!(concept, Concept::Bswe | Concept::Bge);
    if wants_removals {
        for (u, v) in g.edges() {
            push_if_improving(
                Move::Remove {
                    agent: u,
                    target: v,
                },
                &mut out,
            )?;
            push_if_improving(
                Move::Remove {
                    agent: v,
                    target: u,
                },
                &mut out,
            )?;
        }
    }
    if wants_adds {
        for (u, v) in g.non_edges() {
            push_if_improving(Move::BilateralAdd { u, v }, &mut out)?;
        }
    }
    if wants_swaps {
        for agent in 0..g.n() as u32 {
            let neighbors: Vec<u32> = g.neighbors(agent).to_vec();
            for &old_nb in &neighbors {
                for new in 0..g.n() as u32 {
                    if new != agent && new != old_nb && !g.has_edge(agent, new) {
                        push_if_improving(
                            Move::Swap {
                                agent,
                                old: old_nb,
                                new,
                            },
                            &mut out,
                        )?;
                    }
                }
            }
        }
    }
    if !(wants_removals || wants_adds || wants_swaps) {
        // Exponential concept: delegate to its checker.
        if let Some(mv) = concept.find_violation_in(state)? {
            out.push(mv);
        }
    }
    Ok(out)
}

fn pick_most_improving(state: &GameState, concept: Concept) -> Result<Option<Move>, GameError> {
    let alpha = state.alpha();
    let all = enumerate_violations_in(state, concept)?;
    let mut ev = state.evaluator();
    let mut best: Option<(i128, Move)> = None;
    for mv in all {
        let delta = ev.evaluate(&mv)?;
        let gain: i128 = delta
            .agents
            .iter()
            .map(|d| {
                alpha.cost_key(d.before.edges, d.before.dist)
                    - alpha.cost_key(d.after.edges, d.after.dist)
            })
            .sum();
        if best.as_ref().is_none_or(|(b, _)| gain > *b) {
            best = Some((gain, mv));
        }
    }
    Ok(best.map(|(_, mv)| mv))
}

/// Convergence statistics over many random starting trees.
#[derive(Debug, Clone)]
pub struct ConvergenceReport {
    /// Runs that reached an equilibrium.
    pub converged: usize,
    /// Total runs.
    pub runs: usize,
    /// Mean number of moves among converged runs.
    pub mean_steps: f64,
    /// Mean social cost ratio ρ of the reached equilibria.
    pub mean_rho: f64,
    /// Worst ρ among reached equilibria.
    pub max_rho: f64,
}

/// Runs `runs` dynamics from random trees on `n` nodes and aggregates
/// convergence and equilibrium quality.
///
/// # Errors
///
/// Forwards checker guard errors.
pub fn convergence_experiment<R: Rng + ?Sized>(
    n: usize,
    alpha: Alpha,
    concept: Concept,
    rule: SelectionRule,
    runs: usize,
    max_steps: usize,
    rng: &mut R,
) -> Result<ConvergenceReport, GameError> {
    let mut converged = 0usize;
    let mut steps_sum = 0usize;
    let mut rho_sum = 0.0f64;
    let mut rho_max = 0.0f64;
    for _ in 0..runs {
        let start = bncg_graph::generators::random_tree(n, rng);
        let t = run_with_rng(&start, alpha, concept, rule, max_steps, rng)?;
        if t.converged {
            converged += 1;
            steps_sum += t.len();
            let rho = bncg_core::social_cost_ratio(&t.final_graph, alpha)?.as_f64();
            rho_sum += rho;
            rho_max = rho_max.max(rho);
        }
    }
    Ok(ConvergenceReport {
        converged,
        runs,
        mean_steps: if converged > 0 {
            steps_sum as f64 / converged as f64
        } else {
            f64::NAN
        },
        mean_rho: if converged > 0 {
            rho_sum / converged as f64
        } else {
            f64::NAN
        },
        max_rho: rho_max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bncg_graph::generators;

    fn a(s: &str) -> Alpha {
        s.parse().unwrap()
    }

    #[test]
    fn dynamics_reach_stable_states() {
        let mut rng = bncg_graph::test_rng(31);
        for concept in [Concept::Ps, Concept::Bge] {
            for _ in 0..10 {
                let start = generators::random_tree(10, &mut rng);
                let t = run(&start, a("2"), concept, SelectionRule::First, 5_000).unwrap();
                assert!(t.converged, "dynamics must converge on small instances");
                assert!(concept.is_stable(&t.final_graph, a("2")).unwrap());
            }
        }
    }

    #[test]
    fn stable_start_is_a_fixpoint() {
        let star = generators::star(9);
        let t = run(&star, a("2"), Concept::Bge, SelectionRule::First, 100).unwrap();
        assert!(t.converged);
        assert!(t.is_empty());
        assert_eq!(t.final_graph, star);
        assert_eq!(t.cost_trace.len(), 1);
    }

    #[test]
    fn all_rules_reach_equilibria() {
        let mut rng = bncg_graph::test_rng(33);
        let start = generators::random_tree(9, &mut rng);
        for rule in [
            SelectionRule::First,
            SelectionRule::Random,
            SelectionRule::MostImproving,
        ] {
            let t = run_with_rng(&start, a("3/2"), Concept::Bge, rule, 5_000, &mut rng).unwrap();
            assert!(t.converged, "rule {rule:?} must converge");
            assert!(Concept::Bge.is_stable(&t.final_graph, a("3/2")).unwrap());
        }
    }

    #[test]
    fn enumerated_violations_are_exactly_the_improving_moves() {
        let mut rng = bncg_graph::test_rng(35);
        for _ in 0..10 {
            let g = generators::random_connected(7, 0.3, &mut rng);
            for concept in [Concept::Re, Concept::Bae, Concept::Bswe] {
                let all = enumerate_violations(&g, a("1"), concept).unwrap();
                for mv in &all {
                    assert!(bncg_core::delta::move_improves_all(&g, a("1"), mv).unwrap());
                }
                // Consistency with the checker's verdict.
                assert_eq!(
                    all.is_empty(),
                    concept.is_stable(&g, a("1")).unwrap(),
                    "checker and enumerator disagree under {concept}"
                );
            }
        }
    }

    #[test]
    fn policy_runs_match_default_runs() {
        // The solver-routed policy path replays the exact trajectory of
        // the legacy path, threads notwithstanding (witness determinism).
        let start = generators::path(9);
        let t1 = run(&start, a("2"), Concept::Bge, SelectionRule::First, 5_000).unwrap();
        let policy = ExecPolicy::default().with_threads(2);
        let t2 = run_with_policy(
            &start,
            a("2"),
            Concept::Bge,
            SelectionRule::First,
            5_000,
            &policy,
        )
        .unwrap();
        assert_eq!(t1.steps, t2.steps);
        assert_eq!(t1.final_graph, t2.final_graph);
        assert!(t2.converged);
        assert!(!t2.exhausted);
    }

    #[test]
    fn exhausted_policy_stops_dynamics_gracefully() {
        // A zero deadline exhausts the first exponential check mid-scan
        // (the star's BNE space is large, so the scan cannot finish
        // before the first poll) instead of erroring.
        let policy = ExecPolicy::default().with_deadline(std::time::Duration::ZERO);
        let t = run_with_policy(
            &generators::star(16),
            a("2"),
            Concept::Bne,
            SelectionRule::First,
            100,
            &policy,
        )
        .unwrap();
        assert!(t.exhausted);
        assert!(!t.converged);
        assert!(t.is_empty());
    }

    #[test]
    fn exhausted_runs_carry_a_checkpoint_and_resume_identically() {
        // The PR 4 leftover, closed: an exhausted policy run no longer
        // discards the interrupted scan's frontier — it checkpoints, and
        // a chain of budgeted slices replays the exact trajectory the
        // uninterrupted run produces.
        let start = generators::path(9);
        let alpha = a("2");
        let full = run_with_policy(
            &start,
            alpha,
            Concept::Bne,
            SelectionRule::First,
            2_000,
            &ExecPolicy::default(),
        )
        .unwrap();
        assert!(full.converged);
        assert!(full.evals > 0, "exponential checks are metered");

        let tight = ExecPolicy::default().with_eval_budget(40);
        let mut t = run_with_policy(
            &start,
            alpha,
            Concept::Bne,
            SelectionRule::First,
            2_000,
            &tight,
        )
        .unwrap();
        let mut all_steps = t.steps.clone();
        let mut slices = 1u32;
        while let Some(ckpt) = t.checkpoint.take() {
            // Round-trip the token through JSON every slice.
            let parsed: DynamicsCheckpoint = ckpt.to_json().parse().unwrap();
            assert_eq!(parsed, ckpt);
            t = resume_with_policy(
                &t.final_graph,
                alpha,
                Concept::Bne,
                SelectionRule::First,
                2_000,
                &tight,
                &parsed,
            )
            .unwrap();
            all_steps.extend(t.steps.iter().cloned());
            slices += 1;
            assert!(slices < 100_000, "resume chain failed to terminate");
        }
        assert!(slices > 1, "a 40-eval budget must interrupt the P9 run");
        assert!(t.converged && !t.exhausted);
        assert_eq!(all_steps, full.steps);
        assert_eq!(t.final_graph.fingerprint(), full.final_graph.fingerprint());
        assert_eq!(t.evals, full.evals, "chains meter identical total work");
    }

    #[test]
    fn zero_deadline_resume_chain_still_terminates() {
        // Minimum-progress guarantee: each slice attempts one check
        // before honoring the already-passed deadline, and that scan
        // stops at its first poll with an advanced frontier.
        let policy = ExecPolicy::default().with_deadline(std::time::Duration::ZERO);
        let alpha = a("2");
        let mut t = run_with_policy(
            &generators::star(12),
            alpha,
            Concept::Bne,
            SelectionRule::First,
            100,
            &policy,
        )
        .unwrap();
        let mut slices = 1u32;
        while let Some(ckpt) = t.checkpoint.take() {
            t = resume_with_policy(
                &t.final_graph,
                alpha,
                Concept::Bne,
                SelectionRule::First,
                100,
                &policy,
                &ckpt,
            )
            .unwrap();
            slices += 1;
            assert!(slices < 100_000, "zero-deadline chain must advance");
        }
        assert!(t.converged, "the star is a BNE at α = 2");
    }

    #[test]
    fn mismatched_dynamics_checkpoints_are_rejected() {
        let tight = ExecPolicy::default().with_eval_budget(5);
        let t = run_with_policy(
            &generators::path(9),
            a("2"),
            Concept::Bne,
            SelectionRule::First,
            2_000,
            &tight,
        )
        .unwrap();
        let ckpt = t.checkpoint.expect("a 5-eval budget exhausts");
        // Wrong graph, wrong α, wrong concept: all rejected.
        for (g, alpha, concept, cap) in [
            (generators::star(9), a("2"), Concept::Bne, 2_000usize),
            (generators::path(9), a("3"), Concept::Bne, 2_000),
            (generators::path(9), a("2"), Concept::Bse, 2_000),
        ] {
            assert!(matches!(
                resume_with_policy(&g, alpha, concept, SelectionRule::First, cap, &tight, &ckpt),
                Err(GameError::Unsupported { .. })
            ));
        }
        // Malformed and version-bumped tokens fail to parse.
        assert!("{\"v\":1}".parse::<DynamicsCheckpoint>().is_err());
        assert!("{\"v\":9,\"instance\":1,\"steps\":0,\"evals\":0}"
            .parse::<DynamicsCheckpoint>()
            .is_err());
    }

    #[test]
    fn trajectory_costs_are_recorded() {
        let t = run(
            &generators::path(8),
            a("1"),
            Concept::Ps,
            SelectionRule::First,
            1_000,
        )
        .unwrap();
        assert_eq!(t.cost_trace.len(), t.len() + 1);
        assert!(t.cost_trace.iter().all(Option::is_some));
    }

    #[test]
    fn convergence_experiment_aggregates() {
        let mut rng = bncg_graph::test_rng(37);
        let report = convergence_experiment(
            8,
            a("2"),
            Concept::Bge,
            SelectionRule::Random,
            12,
            5_000,
            &mut rng,
        )
        .unwrap();
        assert_eq!(report.runs, 12);
        assert!(report.converged > 0);
        assert!(report.max_rho >= 1.0 - 1e-12);
        assert!(report.mean_rho >= 1.0 - 1e-12);
    }

    #[test]
    fn bne_dynamics_run_on_small_instances() {
        let t = run(
            &generators::path(9),
            a("2"),
            Concept::Bne,
            SelectionRule::First,
            2_000,
        )
        .unwrap();
        assert!(t.converged);
        assert!(Concept::Bne.is_stable(&t.final_graph, a("2")).unwrap());
    }
}
