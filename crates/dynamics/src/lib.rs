//! # bncg-dynamics
//!
//! Improving-move dynamics for the Bilateral Network Creation Game: how do
//! decentralized agents *reach* the equilibria whose quality the paper
//! bounds? A run repeatedly finds a move the chosen solution concept
//! forbids and applies it, until no such move exists (the state is an
//! equilibrium of that concept) or a step limit fires.
//!
//! Three move-selection rules are provided: the deterministic first
//! violation, a uniformly random improving move, and the "most improving"
//! move (largest joint cost reduction of the consenting agents). The
//! trajectory records every step so experiments can analyze convergence
//! speed and the social-cost path.
//!
//! # Examples
//!
//! ```
//! use bncg_core::{Alpha, Concept};
//! use bncg_dynamics::{run, SelectionRule};
//! use bncg_graph::generators;
//!
//! // A path under greedy dynamics folds into a low-cost tree.
//! let path = generators::path(12);
//! let alpha = Alpha::integer(3)?;
//! let t = run(&path, alpha, Concept::Bge, SelectionRule::First, 10_000)?;
//! assert!(t.converged);
//! # Ok::<(), bncg_core::GameError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod round_robin;

use bncg_core::solver::{ExecPolicy, Solver, StabilityQuery, Verdict};
use bncg_core::{Alpha, Concept, GameError, GameState, Move};
use bncg_graph::Graph;
use rand::seq::SliceRandom;
use rand::Rng;

/// How the next improving move is chosen among the violations of the
/// concept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionRule {
    /// The first violation in the checker's deterministic scan order.
    First,
    /// A uniformly random improving move (polynomial concepts only).
    Random,
    /// The move with the largest total strict improvement of its
    /// consenting agents (polynomial concepts only).
    MostImproving,
}

/// A recorded dynamics run.
#[derive(Debug, Clone)]
pub struct Trajectory {
    /// The applied moves, in order.
    pub steps: Vec<Move>,
    /// Whether the run reached a stable state (vs. hitting the step cap).
    pub converged: bool,
    /// Whether a stability check exhausted its [`ExecPolicy`] (budget,
    /// deadline, or cancellation) before the run could converge — only
    /// reachable through [`run_with_policy`]. Mutually exclusive with
    /// `converged`.
    pub exhausted: bool,
    /// The final graph.
    pub final_graph: Graph,
    /// Social cost after every step (including the initial state), as
    /// `f64` for reporting; `None` entries mark disconnected states.
    pub cost_trace: Vec<Option<f64>>,
}

impl Trajectory {
    /// Number of applied moves.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether no move was applied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Runs improving dynamics from `start` under `concept` until stable or
/// `max_steps` moves were applied.
///
/// # Errors
///
/// Forwards guard errors from the exponential checkers, and
/// [`GameError::InvalidMove`] if a checker ever emits a non-applicable
/// move (a bug the dynamics would rather surface than skip).
pub fn run(
    start: &Graph,
    alpha: Alpha,
    concept: Concept,
    rule: SelectionRule,
    max_steps: usize,
) -> Result<Trajectory, GameError> {
    let mut rng = bncg_graph::test_rng(0x5eed);
    run_with_rng(start, alpha, concept, rule, max_steps, &mut rng)
}

/// [`run`] with a caller-supplied RNG (used by [`SelectionRule::Random`]).
///
/// # Errors
///
/// Same as [`run`].
pub fn run_with_rng<R: Rng + ?Sized>(
    start: &Graph,
    alpha: Alpha,
    concept: Concept,
    rule: SelectionRule,
    max_steps: usize,
    rng: &mut R,
) -> Result<Trajectory, GameError> {
    run_impl(start, alpha, concept, rule, max_steps, rng, None)
}

/// [`run`] under an explicit [`ExecPolicy`]: every per-step
/// exponential-concept stability check goes through one [`Solver`]
/// (threads shard the scans, and this holds for **all** selection rules
/// — for BNE/k-BSE/BSE the enumerating rules degrade to the checker's
/// single deterministic violation, exactly as [`enumerate_violations`]
/// does). The policy's deadline is anchored once and bounds the **whole
/// run** (each step's check receives the remaining slice, matching
/// [`round_robin::run_with_policy`]); the eval budget applies per step.
/// A step stopped by the policy ends the run with `exhausted = true`
/// instead of erroring — the anytime contract of the solver surface,
/// lifted to dynamics.
/// Polynomial-concept steps complete eagerly (the solver does not meter
/// them), so those runs are bounded by `max_steps`, not the policy.
///
/// # Errors
///
/// Forwards [`GameError::InvalidMove`] if a checker emits a
/// non-applicable move; unlike [`run`], oversized instances do not error
/// with [`GameError::CheckTooLarge`] — bound them via the policy.
pub fn run_with_policy(
    start: &Graph,
    alpha: Alpha,
    concept: Concept,
    rule: SelectionRule,
    max_steps: usize,
    policy: &ExecPolicy,
) -> Result<Trajectory, GameError> {
    let mut rng = bncg_graph::test_rng(0x5eed);
    run_impl(
        start,
        alpha,
        concept,
        rule,
        max_steps,
        &mut rng,
        Some(policy),
    )
}

fn run_impl<R: Rng + ?Sized>(
    start: &Graph,
    alpha: Alpha,
    concept: Concept,
    rule: SelectionRule,
    max_steps: usize,
    rng: &mut R,
    policy: Option<&ExecPolicy>,
) -> Result<Trajectory, GameError> {
    // The policy deadline bounds the *run*, not each step: it is
    // anchored once here and each per-step check receives only the
    // remaining slice (the same run-level anchoring the round-robin
    // dynamics uses, so `deadline` means one thing across both APIs).
    let run_deadline = policy
        .and_then(|p| p.deadline)
        .map(|d| std::time::Instant::now() + d);
    // Resolves the next deterministic first-violation move: through the
    // solver when a policy is given (anytime semantics), through the
    // guarded legacy entry point otherwise.
    let next_first = |state: &GameState| -> Result<Result<Option<Move>, ()>, GameError> {
        match policy {
            Some(p) => {
                let mut step_policy = p.clone();
                if let Some(at) = run_deadline {
                    match at.checked_duration_since(std::time::Instant::now()) {
                        // Run deadline already passed: exhausted.
                        None => return Ok(Err(())),
                        Some(remaining) => step_policy.deadline = Some(remaining),
                    }
                }
                match Solver::new(step_policy).check(&StabilityQuery::on(concept, state))? {
                    Verdict::Stable { .. } => Ok(Ok(None)),
                    Verdict::Unstable { witness, .. } => Ok(Ok(Some(witness))),
                    Verdict::Exhausted { .. } => Ok(Err(())),
                }
            }
            None => Ok(Ok(concept.find_violation_in(state)?)),
        }
    };
    let mut state = GameState::new(start.clone(), alpha);
    let mut steps = Vec::new();
    let mut cost_trace = vec![state.social_cost().ok().map(|c| c.as_f64())];
    let mut converged = false;
    let mut exhausted = false;
    // For exponential concepts every rule reduces to the checker's
    // single deterministic violation (enumerate_violations_in falls back
    // to it), so the solver-routed path covers Random/MostImproving too
    // — without it they would hit the legacy guard the policy is meant
    // to replace.
    let effective_rule = if concept.is_exponential() {
        SelectionRule::First
    } else {
        rule
    };
    for _ in 0..max_steps {
        let next = match effective_rule {
            SelectionRule::First => match next_first(&state)? {
                Ok(next) => next,
                Err(()) => {
                    exhausted = true;
                    break;
                }
            },
            SelectionRule::Random => enumerate_violations_in(&state, concept)?
                .choose(rng)
                .cloned(),
            SelectionRule::MostImproving => pick_most_improving(&state, concept)?,
        };
        let Some(mv) = next else {
            converged = true;
            break;
        };
        state.apply_move(&mv)?;
        cost_trace.push(state.social_cost().ok().map(|c| c.as_f64()));
        steps.push(mv);
    }
    if !converged && !exhausted {
        match next_first(&state)? {
            Ok(None) => converged = true,
            Ok(Some(_)) => {}
            Err(()) => exhausted = true,
        }
    }
    Ok(Trajectory {
        steps,
        converged,
        exhausted,
        final_graph: state.graph().clone(),
        cost_trace,
    })
}

/// Enumerates every violating move of a *polynomial* concept (RE, BAE, PS,
/// BSwE, BGE). The exponential concepts fall back to the single move the
/// exact checker reports.
///
/// # Errors
///
/// Forwards guard errors from the exponential checkers.
pub fn enumerate_violations(
    g: &Graph,
    alpha: Alpha,
    concept: Concept,
) -> Result<Vec<Move>, GameError> {
    enumerate_violations_in(&GameState::new(g.clone(), alpha), concept)
}

/// [`enumerate_violations`] against a caller-maintained [`GameState`]:
/// each candidate is priced by the engine (matrix fast path for additions,
/// consenting-agent BFS otherwise) against the cached pre-move costs.
///
/// # Errors
///
/// Forwards guard errors from the exponential checkers.
pub fn enumerate_violations_in(
    state: &GameState,
    concept: Concept,
) -> Result<Vec<Move>, GameError> {
    let g = state.graph();
    let mut out = Vec::new();
    let mut ev = state.evaluator();
    let mut push_if_improving = |mv: Move, out: &mut Vec<Move>| -> Result<(), GameError> {
        if ev.improves_all(&mv)? {
            out.push(mv);
        }
        Ok(())
    };
    let wants_removals = matches!(concept, Concept::Re | Concept::Ps | Concept::Bge);
    let wants_adds = matches!(concept, Concept::Bae | Concept::Ps | Concept::Bge);
    let wants_swaps = matches!(concept, Concept::Bswe | Concept::Bge);
    if wants_removals {
        for (u, v) in g.edges() {
            push_if_improving(
                Move::Remove {
                    agent: u,
                    target: v,
                },
                &mut out,
            )?;
            push_if_improving(
                Move::Remove {
                    agent: v,
                    target: u,
                },
                &mut out,
            )?;
        }
    }
    if wants_adds {
        for (u, v) in g.non_edges() {
            push_if_improving(Move::BilateralAdd { u, v }, &mut out)?;
        }
    }
    if wants_swaps {
        for agent in 0..g.n() as u32 {
            let neighbors: Vec<u32> = g.neighbors(agent).to_vec();
            for &old_nb in &neighbors {
                for new in 0..g.n() as u32 {
                    if new != agent && new != old_nb && !g.has_edge(agent, new) {
                        push_if_improving(
                            Move::Swap {
                                agent,
                                old: old_nb,
                                new,
                            },
                            &mut out,
                        )?;
                    }
                }
            }
        }
    }
    if !(wants_removals || wants_adds || wants_swaps) {
        // Exponential concept: delegate to its checker.
        if let Some(mv) = concept.find_violation_in(state)? {
            out.push(mv);
        }
    }
    Ok(out)
}

fn pick_most_improving(state: &GameState, concept: Concept) -> Result<Option<Move>, GameError> {
    let alpha = state.alpha();
    let all = enumerate_violations_in(state, concept)?;
    let mut ev = state.evaluator();
    let mut best: Option<(i128, Move)> = None;
    for mv in all {
        let delta = ev.evaluate(&mv)?;
        let gain: i128 = delta
            .agents
            .iter()
            .map(|d| {
                alpha.cost_key(d.before.edges, d.before.dist)
                    - alpha.cost_key(d.after.edges, d.after.dist)
            })
            .sum();
        if best.as_ref().is_none_or(|(b, _)| gain > *b) {
            best = Some((gain, mv));
        }
    }
    Ok(best.map(|(_, mv)| mv))
}

/// Convergence statistics over many random starting trees.
#[derive(Debug, Clone)]
pub struct ConvergenceReport {
    /// Runs that reached an equilibrium.
    pub converged: usize,
    /// Total runs.
    pub runs: usize,
    /// Mean number of moves among converged runs.
    pub mean_steps: f64,
    /// Mean social cost ratio ρ of the reached equilibria.
    pub mean_rho: f64,
    /// Worst ρ among reached equilibria.
    pub max_rho: f64,
}

/// Runs `runs` dynamics from random trees on `n` nodes and aggregates
/// convergence and equilibrium quality.
///
/// # Errors
///
/// Forwards checker guard errors.
pub fn convergence_experiment<R: Rng + ?Sized>(
    n: usize,
    alpha: Alpha,
    concept: Concept,
    rule: SelectionRule,
    runs: usize,
    max_steps: usize,
    rng: &mut R,
) -> Result<ConvergenceReport, GameError> {
    let mut converged = 0usize;
    let mut steps_sum = 0usize;
    let mut rho_sum = 0.0f64;
    let mut rho_max = 0.0f64;
    for _ in 0..runs {
        let start = bncg_graph::generators::random_tree(n, rng);
        let t = run_with_rng(&start, alpha, concept, rule, max_steps, rng)?;
        if t.converged {
            converged += 1;
            steps_sum += t.len();
            let rho = bncg_core::social_cost_ratio(&t.final_graph, alpha)?.as_f64();
            rho_sum += rho;
            rho_max = rho_max.max(rho);
        }
    }
    Ok(ConvergenceReport {
        converged,
        runs,
        mean_steps: if converged > 0 {
            steps_sum as f64 / converged as f64
        } else {
            f64::NAN
        },
        mean_rho: if converged > 0 {
            rho_sum / converged as f64
        } else {
            f64::NAN
        },
        max_rho: rho_max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bncg_graph::generators;

    fn a(s: &str) -> Alpha {
        s.parse().unwrap()
    }

    #[test]
    fn dynamics_reach_stable_states() {
        let mut rng = bncg_graph::test_rng(31);
        for concept in [Concept::Ps, Concept::Bge] {
            for _ in 0..10 {
                let start = generators::random_tree(10, &mut rng);
                let t = run(&start, a("2"), concept, SelectionRule::First, 5_000).unwrap();
                assert!(t.converged, "dynamics must converge on small instances");
                assert!(concept.is_stable(&t.final_graph, a("2")).unwrap());
            }
        }
    }

    #[test]
    fn stable_start_is_a_fixpoint() {
        let star = generators::star(9);
        let t = run(&star, a("2"), Concept::Bge, SelectionRule::First, 100).unwrap();
        assert!(t.converged);
        assert!(t.is_empty());
        assert_eq!(t.final_graph, star);
        assert_eq!(t.cost_trace.len(), 1);
    }

    #[test]
    fn all_rules_reach_equilibria() {
        let mut rng = bncg_graph::test_rng(33);
        let start = generators::random_tree(9, &mut rng);
        for rule in [
            SelectionRule::First,
            SelectionRule::Random,
            SelectionRule::MostImproving,
        ] {
            let t = run_with_rng(&start, a("3/2"), Concept::Bge, rule, 5_000, &mut rng).unwrap();
            assert!(t.converged, "rule {rule:?} must converge");
            assert!(Concept::Bge.is_stable(&t.final_graph, a("3/2")).unwrap());
        }
    }

    #[test]
    fn enumerated_violations_are_exactly_the_improving_moves() {
        let mut rng = bncg_graph::test_rng(35);
        for _ in 0..10 {
            let g = generators::random_connected(7, 0.3, &mut rng);
            for concept in [Concept::Re, Concept::Bae, Concept::Bswe] {
                let all = enumerate_violations(&g, a("1"), concept).unwrap();
                for mv in &all {
                    assert!(bncg_core::delta::move_improves_all(&g, a("1"), mv).unwrap());
                }
                // Consistency with the checker's verdict.
                assert_eq!(
                    all.is_empty(),
                    concept.is_stable(&g, a("1")).unwrap(),
                    "checker and enumerator disagree under {concept}"
                );
            }
        }
    }

    #[test]
    fn policy_runs_match_default_runs() {
        // The solver-routed policy path replays the exact trajectory of
        // the legacy path, threads notwithstanding (witness determinism).
        let start = generators::path(9);
        let t1 = run(&start, a("2"), Concept::Bge, SelectionRule::First, 5_000).unwrap();
        let policy = ExecPolicy::default().with_threads(2);
        let t2 = run_with_policy(
            &start,
            a("2"),
            Concept::Bge,
            SelectionRule::First,
            5_000,
            &policy,
        )
        .unwrap();
        assert_eq!(t1.steps, t2.steps);
        assert_eq!(t1.final_graph, t2.final_graph);
        assert!(t2.converged);
        assert!(!t2.exhausted);
    }

    #[test]
    fn exhausted_policy_stops_dynamics_gracefully() {
        // A zero deadline exhausts the first exponential check mid-scan
        // (the star's BNE space is large, so the scan cannot finish
        // before the first poll) instead of erroring.
        let policy = ExecPolicy::default().with_deadline(std::time::Duration::ZERO);
        let t = run_with_policy(
            &generators::star(16),
            a("2"),
            Concept::Bne,
            SelectionRule::First,
            100,
            &policy,
        )
        .unwrap();
        assert!(t.exhausted);
        assert!(!t.converged);
        assert!(t.is_empty());
    }

    #[test]
    fn trajectory_costs_are_recorded() {
        let t = run(
            &generators::path(8),
            a("1"),
            Concept::Ps,
            SelectionRule::First,
            1_000,
        )
        .unwrap();
        assert_eq!(t.cost_trace.len(), t.len() + 1);
        assert!(t.cost_trace.iter().all(Option::is_some));
    }

    #[test]
    fn convergence_experiment_aggregates() {
        let mut rng = bncg_graph::test_rng(37);
        let report = convergence_experiment(
            8,
            a("2"),
            Concept::Bge,
            SelectionRule::Random,
            12,
            5_000,
            &mut rng,
        )
        .unwrap();
        assert_eq!(report.runs, 12);
        assert!(report.converged > 0);
        assert!(report.max_rho >= 1.0 - 1e-12);
        assert!(report.mean_rho >= 1.0 - 1e-12);
    }

    #[test]
    fn bne_dynamics_run_on_small_instances() {
        let t = run(
            &generators::path(9),
            a("2"),
            Concept::Bne,
            SelectionRule::First,
            2_000,
        )
        .unwrap();
        assert!(t.converged);
        assert!(Concept::Bne.is_stable(&t.final_graph, a("2")).unwrap());
    }
}
